"""Unit tests for Poll Prof Data: deltas, stability, special cases."""

import pytest

from repro.cache.cat import CatController
from repro.cache.ddio import DdioConfig
from repro.cache.geometry import TINY_LLC
from repro.core.monitor import (SLOWDOWN_CAP, ChangeKind, ProfMonitor,
                                SlowdownTracker, SystemSample,
                                TenantSample, jain_fairness, rel_change)
from repro.core.params import IATParams
from repro.perf.counters import CounterFile
from repro.perf.msr import SimMsr
from repro.perf.pqos import PqosLib
from repro.perf.uncore import ChaCounters
from repro.tenants.tenant import Priority, Tenant, TenantSet


class TestRelChange:
    def test_basic(self):
        assert rel_change(110, 100) == pytest.approx(0.10)
        assert rel_change(90, 100) == pytest.approx(-0.10)

    def test_zero_previous(self):
        assert rel_change(0, 0) == 0.0
        assert rel_change(5, 0) == 1.0


class TestTenantSample:
    def test_miss_rate(self):
        sample = TenantSample("t", 1.0, 100, 30)
        assert sample.miss_rate == pytest.approx(0.3)

    def test_miss_rate_no_refs(self):
        assert TenantSample("t", 1.0, 0, 0).miss_rate == 0.0


def build_monitor():
    counters = CounterFile(num_cores=4)
    uncore = ChaCounters(TINY_LLC)
    cat = CatController(num_ways=TINY_LLC.ways)
    pqos = PqosLib(counters, uncore, cat, SimMsr(DdioConfig(TINY_LLC)))
    tenants = TenantSet([
        Tenant("io", cores=(0,), priority=Priority.PC, is_io=True),
        Tenant("appA", cores=(1,), priority=Priority.PC),
        Tenant("appB", cores=(2,), priority=Priority.BE),
    ])
    monitor = ProfMonitor(pqos, tenants, IATParams(), time_scale=1.0)
    return monitor, counters, uncore


def credit(counters, core, instr=1000, cycles=1000, refs=100, misses=10):
    counters.core(core).credit(instructions=instr, cycles=cycles,
                               llc_references=refs, llc_misses=misses)


def ddio_burst(uncore, hits=0, misses=0):
    for i in range(TINY_LLC.slices):
        uncore.hits[i] += hits // TINY_LLC.slices
        uncore.misses[i] += misses // TINY_LLC.slices


class TestClassification:
    def classify(self, monitor, sample, overlap=frozenset()):
        return monitor.classify(sample, ddio_at_max=False,
                                ddio_at_min=True, ddio_overlap=set(overlap))

    def steady(self, monitor, counters, uncore, rounds=2, **kwargs):
        """Run identical-delta intervals so the monitor has a baseline."""
        report = None
        for _ in range(rounds):
            for core in range(3):
                credit(counters, core)
            ddio_burst(uncore, hits=3600, misses=360)
            report = self.classify(monitor, monitor.poll(), **kwargs)
        return report

    def test_stable_when_deltas_flat(self):
        monitor, counters, uncore = build_monitor()
        report = self.steady(monitor, counters, uncore, rounds=3)
        assert report.kind is ChangeKind.STABLE

    def test_ipc_only_change_ignored(self):
        monitor, counters, uncore = build_monitor()
        self.steady(monitor, counters, uncore)
        # Same LLC/ddio pattern but very different cycle counts.
        credit(counters, 0, instr=1000, cycles=5000)
        credit(counters, 1)
        credit(counters, 2)
        ddio_burst(uncore, hits=3600, misses=360)
        report = self.classify(monitor, monitor.poll())
        assert report.kind is ChangeKind.IPC_ONLY

    def test_core_side_when_non_io_changes_without_ddio(self):
        monitor, counters, uncore = build_monitor()
        self.steady(monitor, counters, uncore)
        credit(counters, 0)
        credit(counters, 1, refs=5000, misses=2500)  # appA explodes
        credit(counters, 2)
        ddio_burst(uncore, hits=3600, misses=360)
        report = self.classify(monitor, monitor.poll())
        assert report.kind is ChangeKind.CORE_SIDE
        assert report.tenant == "appA"

    def test_shuffle_first_when_overlapped_non_io_changes_with_ddio(self):
        monitor, counters, uncore = build_monitor()
        self.steady(monitor, counters, uncore, overlap={"appB"})
        credit(counters, 0)
        credit(counters, 1)
        credit(counters, 2, refs=5000, misses=2500)  # appB (overlaps DDIO)
        ddio_burst(uncore, hits=2000, misses=2000)   # DDIO moved too
        report = self.classify(monitor, monitor.poll(),
                               overlap={"appB"})
        assert report.kind is ChangeKind.SHUFFLE_FIRST
        assert report.tenant == "appB"

    def test_fsm_when_io_tenant_changes_with_ddio(self):
        monitor, counters, uncore = build_monitor()
        self.steady(monitor, counters, uncore)
        credit(counters, 0, refs=9000, misses=4000)  # the I/O tenant
        credit(counters, 1)
        credit(counters, 2)
        ddio_burst(uncore, hits=1000, misses=5000)
        report = self.classify(monitor, monitor.poll())
        assert report.kind is ChangeKind.FSM
        assert report.signals.miss_up

    def test_miss_high_threshold(self):
        monitor, counters, uncore = build_monitor()
        ddio_burst(uncore, misses=2_000_000 * TINY_LLC.slices)
        sample = monitor.poll()
        report = self.classify(monitor, sample)
        assert report.signals.miss_high

    def test_poll_aggregates_per_tenant(self):
        monitor, counters, uncore = build_monitor()
        credit(counters, 1, refs=777, misses=77)
        sample = monitor.poll()
        assert sample.tenants["appA"].llc_references == 777
        assert sample.total_llc_references >= 777

    def test_close_releases_groups(self):
        monitor, counters, uncore = build_monitor()
        monitor.close()
        with pytest.raises(KeyError):
            monitor.poll()


class TestJainFairness:
    def test_equal_values_are_perfectly_fair(self):
        assert jain_fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_maximal_skew_approaches_one_over_n(self):
        assert jain_fairness([1.0, 1e-9, 1e-9, 1e-9]) \
            == pytest.approx(0.25, rel=1e-3)

    def test_empty_and_nonpositive_values(self):
        assert jain_fairness([]) == 1.0
        assert jain_fairness([0.0, -1.0]) == 1.0
        # Non-positive entries are dropped, not averaged in.
        assert jain_fairness([3.0, 0.0]) == pytest.approx(1.0)

    def test_known_two_point_value(self):
        # (1+3)^2 / (2 * (1+9)) = 16/20
        assert jain_fairness([1.0, 3.0]) == pytest.approx(0.8)


class TestSlowdownTracker:
    def test_first_observation_is_no_slowdown(self):
        tracker = SlowdownTracker()
        assert tracker.update({"a": 1.5}) == {"a": 1.0}

    def test_slowdown_is_peak_over_current(self):
        tracker = SlowdownTracker()
        tracker.update({"a": 2.0})
        assert tracker.update({"a": 1.0})["a"] == pytest.approx(2.0)
        # Recovering past the old peak re-anchors it.
        assert tracker.update({"a": 4.0})["a"] == pytest.approx(1.0)
        assert tracker.update({"a": 2.0})["a"] == pytest.approx(2.0)

    def test_collapse_is_capped(self):
        tracker = SlowdownTracker()
        tracker.update({"a": 1.0})
        assert tracker.update({"a": 0.0})["a"] == SLOWDOWN_CAP

    def test_unfairness_is_max_over_min(self):
        tracker = SlowdownTracker()
        tracker.update({"a": 2.0, "b": 2.0})
        tracker.update({"a": 1.0, "b": 2.0})   # a slowed 2x, b not
        assert tracker.unfairness() == pytest.approx(2.0)

    def test_fairness_index_tracks_jain(self):
        tracker = SlowdownTracker()
        tracker.update({"a": 2.0, "b": 2.0})
        assert tracker.fairness_index() == pytest.approx(1.0)
        tracker.update({"a": 1.0, "b": 2.0})
        slow = tracker.update({"a": 1.0, "b": 2.0})
        assert tracker.fairness_index() \
            == pytest.approx(jain_fairness(slow.values()))

    def test_empty_tracker_is_neutral(self):
        tracker = SlowdownTracker()
        assert tracker.fairness_index() == 1.0
        assert tracker.unfairness() == 1.0

"""Additional engine and workload-infrastructure coverage."""

import numpy as np
import pytest

from repro.net.traffic import TrafficSpec
from repro.sim.config import TINY_PLATFORM
from repro.sim.engine import Simulation
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant
from repro.workloads.testpmd import TestPmd
from repro.workloads.xmem import XMem


class TestMultipleControllers:
    def test_intervals_independent(self):
        platform = Platform(TINY_PLATFORM)
        sim = Simulation(platform, seed=3)
        sim.add_tenant(Tenant("x", cores=(0,), initial_ways=1),
                       XMem("x", 64 << 10))
        ticks = {"fast": 0, "slow": 0}

        class Probe:
            def __init__(self, name, interval):
                self.name, self.interval_s = name, interval

            def on_start(self, now):
                pass

            def on_interval(self, now):
                ticks[self.name] += 1

        sim.add_controller(Probe("fast", 0.1))
        sim.add_controller(Probe("slow", 0.5))
        sim.run(1.0)
        assert ticks["fast"] == pytest.approx(10, abs=1)
        assert ticks["slow"] == pytest.approx(2, abs=1)


class TestEventEdgeCases:
    def test_event_at_time_zero_fires(self):
        platform = Platform(TINY_PLATFORM)
        sim = Simulation(platform, seed=3)
        sim.add_tenant(Tenant("x", cores=(0,), initial_ways=1),
                       XMem("x", 64 << 10))
        fired = []
        sim.at(0.0, lambda: fired.append(True))
        sim.run(TINY_PLATFORM.quantum_s * 2)
        assert fired == [True]

    def test_event_beyond_horizon_never_fires(self):
        platform = Platform(TINY_PLATFORM)
        sim = Simulation(platform, seed=3)
        sim.add_tenant(Tenant("x", cores=(0,), initial_ways=1),
                       XMem("x", 64 << 10))
        fired = []
        sim.at(99.0, lambda: fired.append(True))
        sim.run(0.2)
        assert fired == []


class TestWarmRegion:
    def test_oversized_region_samples_within_bounds(self, platform):
        xmem = XMem("x", platform.spec.llc.capacity_bytes * 10)
        base = 1 << 32
        xmem.bind([platform.core_port(0, 1)], base,
                  np.random.default_rng(0))
        xmem.prefill()
        filled = platform.llc.valid_lines()
        assert 0 < filled <= platform.spec.llc.lines

    def test_zero_byte_region_noop(self, platform):
        xmem = XMem("x", 1 << 20)
        xmem.bind([platform.core_port(0, 1)], 1 << 32,
                  np.random.default_rng(0))
        xmem.warm_region(1 << 32, 0)
        assert platform.llc.valid_lines() == 0

    def test_unbound_workload_prefill_noop(self):
        xmem = XMem("x", 1 << 20)
        xmem.prefill()  # no ports bound: must not raise


class TestTimeScalePlumbing:
    def test_workload_receives_platform_scale(self):
        platform = Platform(TINY_PLATFORM)
        sim = Simulation(platform, seed=1)
        pmd_ring_nic = platform.add_nic("n", 40.0)
        vf = pmd_ring_nic.add_vf(entries=8)
        pmd = TestPmd("p", [vf.rx_ring])
        sim.add_tenant(Tenant("p", cores=(0,), priority=Priority.PC,
                              is_io=True, initial_ways=1), pmd)
        assert pmd.time_scale == TINY_PLATFORM.time_scale

    def test_queue_latency_uses_scaled_cycles(self):
        platform = Platform(TINY_PLATFORM)
        ring_nic = platform.add_nic("n", 40.0)
        vf = ring_nic.add_vf(entries=8)
        pmd = TestPmd("p", [vf.rx_ring],
                      core_freq_hz=platform.spec.freq_hz)
        pmd.time_scale = platform.spec.time_scale
        port = platform.core_port(0, 1)
        pmd.bind([port], platform.alloc_region(1 << 20),
                 np.random.default_rng(0))
        pmd.begin_quantum(0.0)
        vf.rx_ring.post(64, now=0.0)
        pmd.run(50_000, now=1.0)  # waited one simulated second
        expected_wait = (platform.spec.freq_hz
                         * platform.spec.time_scale)  # cycles elapsed
        assert pmd.stats.avg_latency_cycles == pytest.approx(
            expected_wait, rel=0.05)

"""Unit tests for the workload models (ports, X-Mem, SPEC, KVS, streams)."""

import numpy as np
import pytest

from repro.sim.config import TINY_PLATFORM
from repro.sim.platform import Platform
from repro.workloads.base import (CorePort, L2_HIT_CYCLES, LLC_HIT_CYCLES,
                                  WorkloadStats)
from repro.workloads.rocksdb import RocksDb
from repro.workloads.spec import SPEC_PROFILES, SpecProfile, SpecWorkload
from repro.workloads.streams import (ZipfKeyStream, sequential_lines,
                                     uniform_lines)
from repro.workloads.xmem import XMem
from repro.workloads.ycsb import (ALL_WORKLOADS, OpType, WORKLOAD_A,
                                  YcsbMix, YcsbOpStream)


def make_port(platform, core=0, owner=1):
    return platform.core_port(core, owner)


class TestCorePort:
    def test_miss_costs_more_than_hit(self, platform):
        port = make_port(platform)
        port.begin_quantum()
        miss_cost = port.access(0x40000)
        hit_cost = port.access(0x40000)
        assert miss_cost > hit_cost == LLC_HIT_CYCLES

    def test_counters_updated(self, platform):
        port = make_port(platform)
        port.begin_quantum()
        port.access(0x1000)
        port.access(0x1000)
        assert port.block.llc_references == 2
        assert port.block.llc_misses == 1

    def test_miss_adds_memory_read(self, platform):
        platform.mem.begin_window(0.1)
        port = make_port(platform)
        port.begin_quantum()
        port.access(0x2000)
        assert platform.mem.read_bytes == 64

    def test_mlp_divides_latency(self, platform):
        port = make_port(platform)
        port.begin_quantum()
        serial = port.access(0x3000)
        overlapped = port.access(0x83000, mlp=8.0)
        assert overlapped < serial

    def test_charge(self, platform):
        port = make_port(platform)
        port.charge(100, 200)
        assert port.block.instructions == 100
        assert port.block.cycles == 200

    def test_mask_follows_cat(self, platform):
        platform.cat.set_mask(0, 0b11)
        port = make_port(platform)
        port.begin_quantum()
        assert port.mask == 0b11

    def test_invalid_core_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.core_port(999, 1)

    def test_device_read_counts_memory_on_miss(self, platform):
        platform.mem.begin_window(0.1)
        port = make_port(platform)
        port.read_line_for_device(0x5000)
        assert platform.mem.read_bytes == 64


class TestWorkloadStats:
    def test_record_and_average(self):
        stats = WorkloadStats()
        stats.record_op(100.0)
        stats.record_op(200.0)
        assert stats.ops == 2
        assert stats.avg_latency_cycles == 150.0

    def test_percentiles_from_samples(self):
        stats = WorkloadStats()
        for i in range(100):
            stats.record_op(float(i), sample=True)
        assert stats.percentile_latency(99) == pytest.approx(98.01, rel=0.1)

    def test_empty_stats(self):
        stats = WorkloadStats()
        assert stats.avg_latency_cycles == 0.0
        assert stats.percentile_latency(99) == 0.0


class TestStreams:
    def test_uniform_lines_in_range(self, rng):
        addrs = uniform_lines(rng, 1 << 20, 4096, 100)
        assert ((addrs >= 1 << 20) & (addrs < (1 << 20) + 4096)).all()
        assert (addrs % 64 == 0).all()

    def test_sequential_lines_wrap(self):
        addrs, cursor = sequential_lines(0, 256, 2, 4)
        assert addrs.tolist() == [128, 192, 0, 64]
        assert cursor == 2

    def test_zipf_key_stream_skew(self, rng):
        stream = ZipfKeyStream(1000, 0.99, rng)
        keys = stream.draw(5000)
        assert (keys < 10).mean() > 0.2

    def test_zipf_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            ZipfKeyStream(0, 0.99, rng)


class TestXMem:
    def run_xmem(self, platform, ws, budget=200_000):
        xmem = XMem("x", ws)
        port = make_port(platform)
        xmem.bind([port], 1 << 32, np.random.default_rng(7))
        xmem.prefill()
        xmem.begin_quantum(0.0)
        xmem.run(budget, 0.0)
        return xmem, port

    def test_small_ws_is_fast(self, platform):
        small, _ = self.run_xmem(platform, 256 << 10)
        big, _ = self.run_xmem(Platform(TINY_PLATFORM), 64 << 20)
        assert small.stats.ops > big.stats.ops
        assert small.avg_latency_ns() < big.avg_latency_ns()

    def test_charges_cycles(self, platform):
        xmem, port = self.run_xmem(platform, 1 << 20)
        assert port.block.cycles >= 190_000  # roughly the budget

    def test_working_set_change(self, platform):
        xmem, _ = self.run_xmem(platform, 1 << 20)
        xmem.set_working_set(8 << 20)
        assert xmem.working_set_bytes == 8 << 20
        with pytest.raises(ValueError):
            xmem.set_working_set(0)

    def test_patterns(self, platform):
        xmem = XMem("x", 1 << 20, pattern="sequential_read")
        port = make_port(platform)
        xmem.bind([port], 1 << 32, np.random.default_rng(7))
        xmem.begin_quantum(0.0)
        xmem.run(50_000, 0.0)
        assert xmem.stats.ops > 0
        with pytest.raises(ValueError):
            XMem("bad", 1 << 20, pattern="zigzag")

    def test_throughput_unscaling(self, platform):
        xmem, _ = self.run_xmem(platform, 1 << 20)
        scaled = xmem.throughput_ops(1.0, time_scale=1.0)
        unscaled = xmem.throughput_ops(1.0, time_scale=1e-3)
        assert unscaled == pytest.approx(scaled * 1000)


class TestSpecWorkloads:
    def test_profile_catalogue(self):
        assert {"mcf", "omnetpp", "xalancbmk"} <= set(SPEC_PROFILES)
        for profile in SPEC_PROFILES.values():
            assert profile.working_set_bytes > 0
            assert 0 < profile.read_fraction <= 1

    def test_invalid_profiles_rejected(self):
        with pytest.raises(ValueError):
            SpecProfile("x", 1 << 20, read_fraction=2.0)
        with pytest.raises(ValueError):
            SpecProfile("x", 1 << 20, pattern="spiral")

    def test_runs_and_retires_instructions(self, platform):
        work = SpecWorkload(SPEC_PROFILES["gcc"])
        work.bind([make_port(platform)], 1 << 32,
                  np.random.default_rng(1))
        work.begin_quantum(0.0)
        work.run(100_000, 0.0)
        assert work.instructions_retired > 0
        assert work.instruction_rate(1.0) == work.instructions_retired

    def test_cache_heavy_slower_than_friendly(self, platform):
        """mcf (64MB pointer-chase) must achieve a far lower instruction
        rate than gcc (8MB) on the tiny LLC."""
        rates = {}
        for name in ("mcf", "gcc"):
            p = Platform(TINY_PLATFORM)
            work = SpecWorkload(SPEC_PROFILES[name])
            work.bind([p.core_port(0, 1)], 1 << 32,
                      np.random.default_rng(1))
            work.prefill()
            work.begin_quantum(0.0)
            work.run(300_000, 0.0)
            rates[name] = work.instructions_retired
        assert rates["gcc"] > 1.5 * rates["mcf"]


class TestYcsb:
    def test_all_mixes_sum_to_one(self):
        for mix in ALL_WORKLOADS.values():
            assert sum(mix.proportions.values()) == pytest.approx(1.0)

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            YcsbMix("X", {OpType.READ: 0.5})

    def test_op_stream_respects_mix(self, rng):
        stream = YcsbOpStream(WORKLOAD_A, 1000, rng)
        ops = stream.draw(4000)
        reads = sum(1 for op, _ in ops if op is OpType.READ)
        assert 0.4 < reads / len(ops) < 0.6

    def test_read_only_mix(self, rng):
        stream = YcsbOpStream(ALL_WORKLOADS["C"], 1000, rng)
        assert all(op is OpType.READ for op, _ in stream.draw(500))

    def test_insert_allocates_new_keys(self, rng):
        stream = YcsbOpStream(ALL_WORKLOADS["D"], 100, rng)
        ops = stream.draw(2000)
        inserted = [k for op, k in ops if op is OpType.INSERT]
        assert inserted
        assert all(0 <= k < 200 for _, k in ops)


class TestRocksDb:
    def run_db(self, platform, mix=WORKLOAD_A, budget=400_000):
        db = RocksDb("db", mix)
        db.bind([make_port(platform)], 1 << 32, np.random.default_rng(5))
        db.prefill()
        db.begin_quantum(0.0)
        db.run(budget, 0.0)
        return db

    def test_serves_ops(self, platform):
        db = self.run_db(platform)
        assert db.stats.ops > 50
        assert db.per_op[OpType.READ].count > 0
        assert db.per_op[OpType.UPDATE].count > 0

    def test_weighted_latency_vs_self_is_one(self, platform):
        db = self.run_db(platform)
        assert db.weighted_latency_vs(db) == pytest.approx(1.0)

    def test_scan_costs_more_than_read(self, platform):
        db = self.run_db(platform, mix=ALL_WORKLOADS["E"])
        if db.per_op[OpType.SCAN].count and db.per_op[OpType.INSERT].count:
            assert db.per_op[OpType.SCAN].avg \
                > db.per_op[OpType.INSERT].avg

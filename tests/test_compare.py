"""The ``repro compare`` tournament: measurement, ranking math, and
cache-key separation between policies."""

import json

import pytest

from repro.exec import point_key
from repro.experiments import compare
from repro.experiments.compare import ComparePoint, CompareResult


def cell(policy, scenario="s", seed=0, tput=1.0, p99=1.0, fair=1.0):
    return ComparePoint(policy=policy, scenario=scenario, seed=seed,
                        throughput=tput, p99_latency_us=p99,
                        fairness=fair)


class TestRankingMath:
    def test_sweeping_winner_scores_one(self):
        result = CompareResult([
            cell("a", tput=2.0, p99=0.5, fair=1.0),
            cell("b", tput=1.0, p99=1.0, fair=0.5),
        ])
        ranking = result.ranking()
        assert ranking[0] == ("a", 1.0)
        assert ranking[1][0] == "b"
        assert 0.0 < ranking[1][1] < 1.0

    def test_scores_normalize_per_scenario(self):
        # "b" wins the easy scenario, "a" the hard one; the mean of the
        # normalized cells decides, not absolute magnitudes.
        result = CompareResult([
            cell("a", scenario="hard", tput=10.0),
            cell("b", scenario="hard", tput=5.0),
            cell("a", scenario="easy", tput=1000.0),
            cell("b", scenario="easy", tput=2000.0),
        ])
        scores = result.cell_scores()
        assert scores[("a", "hard", 0)] == 1.0
        assert scores[("b", "easy", 0)] == 1.0
        assert scores[("b", "hard", 0)] < 1.0
        assert scores[("a", "easy", 0)] < 1.0

    def test_missing_latency_axis_is_skipped(self):
        result = CompareResult([
            cell("a", p99=0.0), cell("b", p99=0.0)])
        assert result.cell_scores()[("a", "s", 0)] == 1.0

    def test_json_report_is_serializable_and_ranked(self):
        result = CompareResult([cell("a", tput=2.0), cell("b")])
        doc = json.loads(json.dumps(result.to_json_dict()))
        assert [e["policy"] for e in doc["ranking"]] == ["a", "b"]
        assert len(doc["points"]) == 2
        assert doc["points"][0]["throughput"] == 2.0

    def test_format_table_names_everything(self):
        result = CompareResult([cell("a", scenario="x"),
                                cell("b", scenario="x")])
        table = compare.format_table(result)
        assert "rank" in table and "a" in table and "x" in table


class TestSweepIdentity:
    def test_policy_is_part_of_the_cache_key(self):
        spec = compare.sweep(policies=("iat", "lfoc"),
                             scenarios=("shuffle",))
        keys = {point_key(spec, p) for p in spec.points}
        assert len(keys) == len(spec.points) == 2

    def test_policy_params_distinguish_cache_keys(self):
        a = compare.sweep(policies=("iat",), scenarios=("shuffle",),
                          policy_params={"interval_s": 1.0})
        b = compare.sweep(policies=("iat",), scenarios=("shuffle",),
                          policy_params={"interval_s": 0.5})
        assert point_key(a, a.points[0]) != point_key(b, b.points[0])

    def test_param_dict_order_does_not_change_the_key(self):
        a = compare.sweep(policies=("iat",), scenarios=("shuffle",),
                          policy_params={"interval_s": 1.0,
                                         "shuffle": False})
        b = compare.sweep(policies=("iat",), scenarios=("shuffle",),
                          policy_params={"shuffle": False,
                                         "interval_s": 1.0})
        assert point_key(a, a.points[0]) == point_key(b, b.points[0])

    def test_unknown_scenario_rejected_up_front(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            compare.sweep(scenarios=("nope",))
        with pytest.raises(KeyError, match="mixed-nic"):
            compare.build_scenario("nope")


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def result(self):
        return compare.run(policies=("iat", "lfoc"),
                           scenarios=("mixed-nic", "shuffle"),
                           duration=2.5, warmup=0.5)

    def test_full_cross_product_ran(self, result):
        assert len(result.points) == 4
        assert set(result.policies()) == {"iat", "lfoc"}
        assert set(result.scenarios()) == {"mixed-nic", "shuffle"}

    def test_cells_carry_real_measurements(self, result):
        for point in result.points:
            assert point.throughput > 0
            assert point.p99_latency_us > 0  # both scenarios sample
            assert 0.0 < point.fairness <= 1.0
            assert point.slowdowns, "no per-tenant slowdowns recorded"

    def test_ranking_covers_every_policy(self, result):
        ranking = result.ranking()
        assert {policy for policy, _ in ranking} == {"iat", "lfoc"}
        scores = [score for _, score in ranking]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 < s <= 1.0 for s in scores)

    def test_points_are_deterministic(self, result):
        again = compare.run_point("iat", "mixed-nic", seed=0,
                                  duration=2.5, warmup=0.5)
        first = next(p for p in result.points
                     if p.policy == "iat" and p.scenario == "mixed-nic")
        assert again == first

"""Unit tests for tenants, groups, and the affiliation registry."""

import pytest

from repro.tenants.registry import (RegistryError, TenantRegistry,
                                    format_records, parse_records)
from repro.tenants.tenant import Priority, Tenant, TenantSet


class TestTenant:
    def test_basic_properties(self):
        tenant = Tenant("t", cores=(0, 1), priority=Priority.PC, is_io=True)
        assert tenant.is_pc and not tenant.is_be and not tenant.is_stack
        assert tenant.group == "t"

    def test_share_group(self):
        tenant = Tenant("redis0", cores=(0,), share_group="net")
        assert tenant.group == "net"

    def test_needs_cores(self):
        with pytest.raises(ValueError):
            Tenant("t", cores=())

    def test_duplicate_cores_rejected(self):
        with pytest.raises(ValueError):
            Tenant("t", cores=(1, 1))


class TestTenantSet:
    def _tenants(self):
        return TenantSet([
            Tenant("ovs", cores=(0, 1), priority=Priority.STACK,
                   is_io=True, share_group="net"),
            Tenant("redis", cores=(2,), priority=Priority.PC, is_io=True,
                   share_group="net"),
            Tenant("app", cores=(3,), priority=Priority.PC),
            Tenant("be0", cores=(4,), priority=Priority.BE),
        ])

    def test_core_overlap_rejected(self):
        with pytest.raises(ValueError):
            TenantSet([Tenant("a", cores=(0,)), Tenant("b", cores=(0,))])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TenantSet([Tenant("a", cores=(0,)), Tenant("a", cores=(1,))])

    def test_selectors(self):
        tenants = self._tenants()
        assert {t.name for t in tenants.io_tenants} == {"ovs", "redis"}
        assert [t.name for t in tenants.be_tenants] == ["be0"]
        assert tenants.stack.name == "ovs"
        assert tenants.by_name("app").priority is Priority.PC
        with pytest.raises(KeyError):
            tenants.by_name("nope")

    def test_all_cores_sorted(self):
        assert self._tenants().all_cores == [0, 1, 2, 3, 4]

    def test_groups(self):
        tenants = self._tenants()
        assert tenants.group_names() == ["net", "app", "be0"]
        assert {t.name for t in tenants.group_members("net")} \
            == {"ovs", "redis"}
        # STACK dominates PC within the shared group.
        assert tenants.group_priority("net") is Priority.STACK
        assert tenants.group_priority("be0") is Priority.BE

    def test_group_priority_unknown_group(self):
        with pytest.raises(KeyError):
            self._tenants().group_priority("nope")


class TestRegistryFormat:
    RECORDS = """\
# comment line
ovs cores=0,1 priority=STACK io=yes ways=2
redis0 cores=2,3 priority=PC io=yes ways=3 group=net
xmem cores=4 priority=BE io=no ways=2
"""

    def test_parse(self):
        tenants = parse_records(self.RECORDS)
        assert len(tenants) == 3
        ovs = tenants.by_name("ovs")
        assert ovs.priority is Priority.STACK and ovs.is_io
        assert tenants.by_name("redis0").group == "net"
        assert tenants.by_name("xmem").initial_ways == 2

    def test_roundtrip(self):
        tenants = parse_records(self.RECORDS)
        again = parse_records(format_records(tenants))
        assert [t.name for t in again] == [t.name for t in tenants]
        assert [t.cores for t in again] == [t.cores for t in tenants]
        assert [t.group for t in again] == [t.group for t in tenants]

    @pytest.mark.parametrize("line", [
        "solo",                       # no fields
        "t cores=a,b",                # bad core list
        "t cores=0 priority=WEIRD",   # unknown priority
        "t cores=0 nonsense",         # field without '='
        "t",                          # missing cores
    ])
    def test_malformed_lines(self, line):
        with pytest.raises(RegistryError):
            parse_records(line)

    def test_file_registry_change_detection(self, tmp_path):
        path = tmp_path / "tenants.txt"
        path.write_text("a cores=0 priority=BE io=no\n")
        registry = TenantRegistry(str(path))
        registry.load()
        assert not registry.changed()
        import os
        os.utime(path, (1, 1))
        assert registry.changed()

    def test_file_registry_save(self, tmp_path):
        path = tmp_path / "tenants.txt"
        registry = TenantRegistry(str(path))
        tenants = TenantSet([Tenant("a", cores=(0,), initial_ways=3)])
        registry.save(tenants)
        loaded = registry.load()
        assert loaded.by_name("a").initial_ways == 3

"""The paper's two worked examples (Sec. IV-F, Fig. 7) as integration
tests.

Fig. 7b (slicing model): traffic starts low; at t1 it surges, so IAT
moves to I/O Demand and widens DDIO; at t2 a BE tenant enters an
LLC-heavy phase, so IAT shuffles the *other* (lighter) BE tenant next
to DDIO; at t3 traffic fades and IAT reclaims DDIO ways.

Fig. 7a (aggregation model): the flow count in the traffic jumps at t1,
growing the virtual switch's tables — IAT grants the switch more ways;
when the flows end at t2, it reclaims them.

These run on the full Xeon geometry with a short polling interval so
each phase spans several iterations.
"""

from dataclasses import replace

import pytest

from repro.core import ControlPlane, IATDaemon, IATParams
from repro.core.fsm import State
from repro.experiments.common import leaky_dma_scenario
from repro.net.traffic import TrafficSpec
from repro.sim.config import XEON_6140
from repro.sim.engine import Simulation
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant
from repro.workloads.testpmd import TestPmd
from repro.workloads.xmem import XMem

FAST = IATParams(interval_s=0.2)


class TestFig7bSlicing:
    @pytest.fixture(scope="class")
    def run(self):
        platform = Platform(XEON_6140)
        sim = Simulation(platform, seed=77)
        nic = platform.add_nic("nic0", 40.0)
        vf = nic.add_vf(entries=1024, name="pc.vf")
        pc = TestPmd("pc", [vf.rx_ring],
                     core_freq_hz=platform.spec.freq_hz)
        sim.add_tenant(Tenant("pc", cores=(0,), priority=Priority.PC,
                              is_io=True, initial_ways=2), pc)
        # 1 MB working sets are L2-resident (as in the paper's BE
        # containers), so a BE tenant's LLC reference count reflects
        # its LLC appetite — the quantity Sec. IV-D sorts by.
        be1 = XMem("be1", 1 << 20, core_freq_hz=platform.spec.freq_hz)
        sim.add_tenant(Tenant("be1", cores=(1,), priority=Priority.BE,
                              initial_ways=2), be1)
        be2 = XMem("be2", 1 << 20, core_freq_hz=platform.spec.freq_hz)
        sim.add_tenant(Tenant("be2", cores=(2,), priority=Priority.BE,
                              initial_ways=2), be2)
        scale = platform.spec.time_scale
        low = TrafficSpec.line_rate(0.2, 1500, scale=scale)
        binding = sim.attach_traffic(nic, vf, low)
        control = ControlPlane(platform.pqos, sim.tenant_set(),
                               time_scale=scale)
        daemon = IATDaemon(control, FAST)
        sim.add_controller(daemon)

        t1, t2, t3 = 2.0, 6.0, 10.0
        surge = TrafficSpec.line_rate(40.0, 1500, scale=scale)
        sim.at(t1, lambda: binding.gen.set_spec(surge))
        # t2: BE2's working set explodes (LLC-heavy phase).
        sim.at(t2, lambda: be2.set_working_set(12 << 20))
        sim.at(t3, lambda: binding.gen.set_spec(low.scaled(0.2)))
        sim.run(14.0)
        return daemon, (t1, t2, t3)

    def ways_at(self, daemon, t):
        entries = [h for h in daemon.history if h.time <= t]
        return entries[-1].ddio_ways if entries else None

    def test_t1_traffic_surge_grows_ddio(self, run):
        daemon, (t1, t2, _) = run
        assert self.ways_at(daemon, t1) == daemon.params.ddio_ways_min
        assert self.ways_at(daemon, t2) > daemon.params.ddio_ways_min
        states = {h.state for h in daemon.history
                  if t1 < h.time <= t2}
        assert State.IO_DEMAND in states

    def test_t2_heavy_be_displaced_from_ddio(self, run):
        daemon, (_, t2, t3) = run
        # After BE2 goes LLC-heavy, the shuffler must put BE1 (the
        # lighter BE tenant) at the top of the order, i.e. next to DDIO.
        orders = [h for h in daemon.history if t2 + 0.6 < h.time <= t3]
        assert orders, "no iterations in phase"
        assert daemon._order[-1] == "be1"

    def test_t3_fading_traffic_reclaims(self, run):
        daemon, (_, _, t3) = run
        final = daemon.history[-1].ddio_ways
        peak = max(h.ddio_ways for h in daemon.history)
        assert final < peak
        states = {h.state for h in daemon.history if h.time > t3}
        assert State.RECLAIM in states or State.LOW_KEEP in states


class TestFig7aAggregation:
    @pytest.fixture(scope="class")
    def run(self):
        scenario = leaky_dma_scenario(packet_size=64, rate_fraction=0.6)
        daemon = scenario.attach_controller("iat", params=FAST)
        sim = scenario.sim
        t1, t2 = 2.0, 8.0

        def set_flows(n, theta):
            for binding in sim.traffic:
                binding.gen.set_spec(replace(binding.gen.spec,
                                             n_flows=n, zipf_theta=theta))

        sim.at(t1, lambda: set_flows(1_000_000, 0.3))
        sim.at(t2, lambda: set_flows(1, 0.0))
        sim.run(13.0)
        return daemon, (t1, t2)

    def ovs_ways_at(self, daemon, t):
        entries = [h for h in daemon.history if h.time <= t]
        return entries[-1].group_ways["ovs"] if entries else None

    def test_t1_flow_surge_grows_the_switch(self, run):
        daemon, (t1, t2) = run
        assert self.ovs_ways_at(daemon, t1) == 2
        assert self.ovs_ways_at(daemon, t2) > 2

    def test_t2_flows_end_reclaims_switch_ways(self, run):
        daemon, (_, t2) = run
        peak = max(h.group_ways["ovs"] for h in daemon.history)
        final = daemon.history[-1].group_ways["ovs"]
        assert final < peak

"""Focused tests on CAT x DDIO interplay — the micro-mechanics every
paper phenomenon reduces to."""

import pytest

from repro.cache.cat import ways_to_mask
from repro.cache.geometry import CacheGeometry
from repro.cache.llc import DDIO_OWNER, SlicedLLC

GEO = CacheGeometry(ways=8, sets_per_slice=4, slices=2)


def same_set_lines(count, geometry=GEO):
    target = geometry.frame_index(0)[0]
    found, addr = [0], 64
    while len(found) < count:
        if geometry.frame_index(addr)[0] == target:
            found.append(addr)
        addr += 64
    return found


class TestLatentContenderMicro:
    """A core whose mask covers the DDIO ways evicts inbound data, and
    vice versa — the Sec. III-B mechanism at single-set scale."""

    def test_core_evicts_ddio_lines(self):
        llc = SlicedLLC(GEO)
        ddio_mask = ways_to_mask(6, 2)
        lines = same_set_lines(12)
        packets, core = lines[:2], lines[2:]
        for addr in packets:
            llc.ddio_write(addr, ddio_mask)
        # A core masked onto the same two ways thrashes them.
        for addr in core:
            llc.access(addr, ddio_mask, owner=5)
        assert not any(llc.contains(a) for a in packets)

    def test_isolated_core_cannot_evict_ddio(self):
        llc = SlicedLLC(GEO)
        ddio_mask = ways_to_mask(6, 2)
        core_mask = ways_to_mask(0, 6)
        lines = same_set_lines(20)
        packets, core = lines[:2], lines[2:]
        for addr in packets:
            llc.ddio_write(addr, ddio_mask)
        for addr in core:
            llc.access(addr, core_mask, owner=5)
        assert all(llc.contains(a) for a in packets)

    def test_ddio_evicts_overlapped_core_lines(self):
        llc = SlicedLLC(GEO)
        shared = ways_to_mask(6, 2)
        lines = same_set_lines(12)
        core_data, packets = lines[:2], lines[2:]
        for addr in core_data:
            llc.access(addr, shared, owner=5)
        for addr in packets:
            llc.ddio_write(addr, shared)
        assert not any(llc.contains(a) for a in core_data)
        occupancy = llc.occupancy_by_owner()
        assert occupancy.get(5, 0) == 0
        assert occupancy[DDIO_OWNER] > 0


class TestLeakyDmaMicro:
    """Write allocate vs write update across a recycle cycle — the
    Sec. III-A mechanism."""

    def test_fit_pool_all_updates_after_first_round(self):
        llc = SlicedLLC(GEO)
        ddio_mask = ways_to_mask(6, 2)  # capacity: 2 ways x 8 sets = 16
        pool = same_set_lines(2)
        for addr in pool:
            assert not llc.ddio_write(addr, ddio_mask).hit
        for _ in range(5):
            for addr in pool:
                assert llc.ddio_write(addr, ddio_mask).hit

    def test_oversized_pool_keeps_allocating(self):
        llc = SlicedLLC(GEO)
        ddio_mask = ways_to_mask(6, 2)
        pool = same_set_lines(5)  # 5 lines over a 2-way set
        misses = 0
        for _ in range(6):
            for addr in pool:
                if not llc.ddio_write(addr, ddio_mask).hit:
                    misses += 1
        assert misses > len(pool)  # keeps write-allocating every round

    def test_widening_ddio_mask_stops_the_leak(self):
        llc = SlicedLLC(GEO)
        wide = ways_to_mask(3, 5)
        pool = same_set_lines(5)
        for addr in pool:
            llc.ddio_write(addr, wide)
        for _ in range(3):
            for addr in pool:
                assert llc.ddio_write(addr, wide).hit

    def test_consumer_backstop(self):
        """Footnote-1 consequence: a consumer refilling evicted buffers
        into its own ways makes later DMA writes hit there."""
        llc = SlicedLLC(GEO)
        ddio_mask = ways_to_mask(6, 2)
        consumer_mask = ways_to_mask(0, 6)
        pool = same_set_lines(5)
        for addr in pool:
            llc.ddio_write(addr, ddio_mask)
        # Consumer reads everything; misses refill into its own ways.
        for addr in pool:
            llc.access(addr, consumer_mask, owner=3)
        for addr in pool:
            assert llc.ddio_write(addr, ddio_mask).hit

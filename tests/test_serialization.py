"""Tests for metrics serialization and the replacement-policy option."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import SlicedLLC
from repro.sim.metrics import (MetricsRecorder, QuantumRecord,
                               TenantSnapshot)


def make_recorder(n=4):
    recorder = MetricsRecorder()
    for i in range(n):
        recorder.append(QuantumRecord(
            time=(i + 1) * 0.1,
            tenants={"a": TenantSnapshot(1.5, 100, 10 + i, 0b11),
                     "b": TenantSnapshot(0.7, 200, 20, 0b1100)},
            ddio_hits=50 + i, ddio_misses=5,
            ddio_mask=0b11 << 9,
            mem_read_bytes=640, mem_write_bytes=64,
            vf_delivered={"vf0": 10}, vf_dropped={"vf0": 1}))
    return recorder


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self):
        original = make_recorder()
        clone = MetricsRecorder.from_json(original.to_json())
        assert len(clone) == len(original)
        for a, b in zip(original.records, clone.records):
            assert a.time == b.time
            assert a.ddio_hits == b.ddio_hits
            assert a.vf_delivered == b.vf_delivered
            assert a.tenants["a"].ipc == b.tenants["a"].ipc
            assert a.tenants["b"].mask == b.tenants["b"].mask

    def test_empty_recorder(self):
        clone = MetricsRecorder.from_json(MetricsRecorder().to_json())
        assert len(clone) == 0

    def test_unknown_record_field_rejected(self):
        import json
        payload = json.loads(make_recorder(1).to_json())
        payload[0]["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            MetricsRecorder.from_json(json.dumps(payload))

    def test_unknown_snapshot_field_rejected(self):
        import json
        payload = json.loads(make_recorder(1).to_json())
        payload[0]["tenants"]["a"]["surprise"] = 9
        with pytest.raises(ValueError, match="surprise"):
            MetricsRecorder.from_json(json.dumps(payload))


class TestCsv:
    def test_header_and_rows(self):
        text = make_recorder(3).to_csv()
        lines = text.strip().splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("time,ddio_hits")
        assert "a.ipc" in lines[0] and "b.llc_misses" in lines[0]
        assert lines[1].startswith("0.1,50,5")

    def test_vf_columns_present(self):
        lines = make_recorder(1).to_csv().strip().splitlines()
        assert "vf.vf0.delivered" in lines[0]
        assert "vf.vf0.dropped" in lines[0]
        assert lines[1].endswith("10,1")

    def test_empty(self):
        assert MetricsRecorder().to_csv() == ""

    def test_roundtrip_preserves_everything(self):
        original = make_recorder()
        clone = MetricsRecorder.from_csv(original.to_csv())
        assert clone.records == original.records

    def test_dotted_vf_names_roundtrip(self):
        recorder = make_recorder(2)
        for record in recorder.records:
            record.vf_delivered = {"nic0.rx": 7}
            record.vf_dropped = {"nic0.rx": 2}
        clone = MetricsRecorder.from_csv(recorder.to_csv())
        assert clone.records == recorder.records

    def test_unrecognized_column_rejected(self):
        text = make_recorder(1).to_csv()
        lines = text.splitlines()
        lines[0] = lines[0].replace("a.ipc", "a.oops")
        with pytest.raises(ValueError, match="oops"):
            MetricsRecorder.from_csv("\n".join(lines))

    def test_empty_roundtrip(self):
        assert len(MetricsRecorder.from_csv("")) == 0


ONE_SET = CacheGeometry(ways=4, sets_per_slice=1, slices=1)


class TestReplacementPolicies:
    def lines_same_set(self, count):
        target = ONE_SET.frame_index(0)[0]
        found, addr = [0], 64
        while len(found) < count:
            if ONE_SET.frame_index(addr)[0] == target:
                found.append(addr)
            addr += 64
        return found

    def test_random_policy_valid(self):
        llc = SlicedLLC(ONE_SET, policy="random")
        lines = self.lines_same_set(20)
        for addr in lines:
            llc.access(addr, ONE_SET.full_mask)
        assert llc.valid_lines() == 4

    def test_random_policy_deterministic_per_seed(self):
        lines = self.lines_same_set(30)

        def survivors(seed):
            llc = SlicedLLC(ONE_SET, policy="random", seed=seed)
            for addr in lines:
                llc.access(addr, ONE_SET.full_mask)
            return frozenset(a for a in lines if llc.contains(a))

        assert survivors(1) == survivors(1)

    def test_random_differs_from_lru(self):
        lines = self.lines_same_set(30)
        lru = SlicedLLC(ONE_SET, policy="lru")
        for addr in lines:
            lru.access(addr, ONE_SET.full_mask)
        lru_set = {a for a in lines if lru.contains(a)}
        # LRU keeps exactly the last four inserted lines.
        assert lru_set == set(lines[-4:])
        # Across a handful of seeds, random replacement must deviate
        # from strict LRU at least once (any single seed may collide).
        deviated = False
        for seed in range(1, 8):
            rand = SlicedLLC(ONE_SET, policy="random", seed=seed)
            for addr in lines:
                rand.access(addr, ONE_SET.full_mask)
            if {a for a in lines if rand.contains(a)} != lru_set:
                deviated = True
                break
        assert deviated

    def test_random_respects_mask(self):
        llc = SlicedLLC(ONE_SET, policy="random", seed=5)
        lines = self.lines_same_set(10)
        llc.access(lines[0], 0b1000)  # pinned in way 3
        for addr in lines[1:]:
            llc.access(addr, 0b0111)
        assert llc.contains(lines[0])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            SlicedLLC(ONE_SET, policy="plru")

"""Unit tests for the shuffling policy (who sits next to DDIO)."""

from repro.core.shuffler import group_refs, placement_order, share_tenant
from repro.tenants.tenant import Priority, Tenant, TenantSet


def tenants_fixture():
    return TenantSet([
        Tenant("ovs", cores=(0,), priority=Priority.STACK, is_io=True),
        Tenant("pc1", cores=(1,), priority=Priority.PC),
        Tenant("pc0", cores=(2,), priority=Priority.PC),
        Tenant("beA", cores=(3,), priority=Priority.BE),
        Tenant("beB", cores=(4,), priority=Priority.BE),
    ])


class TestPlacementOrder:
    def test_stack_first_pc_middle_be_last(self):
        order = placement_order(tenants_fixture())
        assert order[0] == "ovs"
        assert set(order[1:3]) == {"pc0", "pc1"}
        assert set(order[3:]) == {"beA", "beB"}

    def test_pc_sorted_stably(self):
        order = placement_order(tenants_fixture())
        assert order[1:3] == ["pc0", "pc1"]

    def test_smallest_ref_be_goes_on_top(self):
        refs = {"beA": 100, "beB": 10_000}
        order = placement_order(tenants_fixture(), refs)
        # beB references more => placed lower; beA (least hungry) on top,
        # adjacent to DDIO.
        assert order[-1] == "beA"

    def test_no_refs_sorts_be_by_name(self):
        order = placement_order(tenants_fixture())
        assert order[3:] == ["beA", "beB"]

    def test_groups_collapse(self):
        tenants = TenantSet([
            Tenant("r0", cores=(0,), priority=Priority.PC, is_io=True,
                   share_group="net"),
            Tenant("r1", cores=(1,), priority=Priority.PC, is_io=True,
                   share_group="net"),
            Tenant("be", cores=(2,), priority=Priority.BE),
        ])
        order = placement_order(tenants)
        assert order == ["net", "be"]


class TestGroupRefs:
    def test_sums_members(self):
        tenants = TenantSet([
            Tenant("a", cores=(0,), share_group="g"),
            Tenant("b", cores=(1,), share_group="g"),
        ])
        assert group_refs(tenants, {"a": 3, "b": 4}) == {"g": 7}


class TestShareTenant:
    def test_picks_least_hungry_be(self):
        refs = {"beA": 5_000, "beB": 50}
        assert share_tenant(tenants_fixture(), refs) == "beB"

    def test_falls_back_to_topmost_without_be(self):
        tenants = TenantSet([
            Tenant("pc0", cores=(0,), priority=Priority.PC),
            Tenant("pc1", cores=(1,), priority=Priority.PC),
        ])
        assert share_tenant(tenants, {}) == "pc1"

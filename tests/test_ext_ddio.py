"""Tests for the Sec. VII extension knobs (device-/app-aware DDIO)."""

import pytest

from repro.cache.geometry import TINY_LLC
from repro.cache.llc import SlicedLLC
from repro.mem.dram import MemoryController
from repro.pci.nic import Nic
from repro.perf.uncore import ChaCounters


def machine():
    llc = SlicedLLC(TINY_LLC)
    mem = MemoryController()
    mem.begin_window(0.1)
    return llc, mem, ChaCounters(TINY_LLC)


def make_vf(**kwargs):
    nic = Nic(name="n", link_gbps=40.0, region_base=1 << 30,
              region_size=1 << 24)
    vf = nic.add_vf(entries=64, **kwargs)
    return nic, vf


class TestDeviceAwareDdio:
    def test_override_mask_restricts_allocation(self):
        llc, mem, uncore = machine()
        nic, vf = make_vf()
        vf.ddio_mask_override = 0b11 << 4  # ways 4-5, not the default top
        global_mask = 0b11 << (TINY_LLC.ways - 2)
        assert nic.dma_packet(vf, 256, 0, llc, global_mask, mem, uncore)
        record = vf.rx_ring.consume()
        for i in range(4):
            way = llc.way_of(record.buf_addr + i * 64)
            assert way in (4, 5)

    def test_no_override_uses_global_mask(self):
        llc, mem, uncore = machine()
        nic, vf = make_vf()
        global_mask = 0b11 << (TINY_LLC.ways - 2)
        nic.dma_packet(vf, 64, 0, llc, global_mask, mem, uncore)
        record = vf.rx_ring.consume()
        assert llc.way_of(record.buf_addr) >= TINY_LLC.ways - 2


class TestHeaderOnlyDdio:
    def test_payload_bypasses_llc(self):
        llc, mem, uncore = machine()
        nic, vf = make_vf()
        vf.header_only_ddio = True
        nic.dma_packet(vf, 256, 0, llc, 0b11 << 9, mem, uncore)
        record = vf.rx_ring.consume()
        assert llc.contains(record.buf_addr)            # header cached
        for i in range(1, 4):                           # payload is not
            assert not llc.contains(record.buf_addr + i * 64)
        assert mem.write_bytes == 3 * 64                # payload to DRAM

    def test_header_only_counts_one_ddio_event(self):
        llc, mem, uncore = machine()
        nic, vf = make_vf()
        vf.header_only_ddio = True
        nic.dma_packet(vf, 1500, 0, llc, 0b11 << 9, mem, uncore)
        exact = uncore.exact()
        assert exact.hits + exact.misses == 1

    def test_cached_payload_updated_in_place(self):
        llc, mem, uncore = machine()
        nic, vf = make_vf()
        vf.header_only_ddio = True
        # Pre-cache the payload line (a core read of the recycled mbuf).
        nic.dma_packet(vf, 128, 0, llc, 0b11 << 9, mem, uncore)
        record = vf.rx_ring.consume()
        llc.access(record.buf_addr + 64, TINY_LLC.full_mask)
        mem.begin_window(0.1)
        # Cycle through the rest of the mbuf pool (entries x pool_factor)
        # to come back to the same slot.
        for _ in range(vf.rx_ring.pool_slots - 1):
            nic.dma_packet(vf, 128, 0, llc, 0b11 << 9, mem, uncore)
            vf.rx_ring.consume()
        nic.dma_packet(vf, 128, 0, llc, 0b11 << 9, mem, uncore)
        again = vf.rx_ring.consume()
        assert again.buf_addr == record.buf_addr


class TestExtExperiment:
    def test_isolation_protects_pc(self):
        from repro.experiments import ext_ddio
        shared = ext_ddio.run_one("shared", duration_s=3.0, warmup_s=1.5)
        device = ext_ddio.run_one("device-aware", duration_s=3.0,
                                  warmup_s=1.5)
        assert device.pc_miss_rate <= shared.pc_miss_rate + 0.02
        table = ext_ddio.format_table(ext_ddio.ExtResult([shared, device]))
        assert "Extension" in table

    def test_unknown_mode_rejected(self):
        from repro.experiments import ext_ddio
        with pytest.raises(ValueError):
            ext_ddio.run_one("nope")

"""Parallel-vs-serial determinism for the real figure sweeps.

The runner's contract: ``ParallelRunner(jobs=4)`` returns a result list
field-for-field identical to serial in-process execution, and a warm
cache replays those exact results without executing any simulation.
These tests exercise it on two genuine harness sweeps (fig. 8 and the
sensitivity study) at reduced duration so they run in seconds.
"""

import dataclasses

import pytest

from repro.exec import ParallelRunner, ResultCache
from repro.experiments import fig08_leaky_dma, sensitivity
from repro.sim.config import TINY_PLATFORM

TINY_ARRAY = dataclasses.replace(TINY_PLATFORM, llc_backend="array")


def _fig08_sweep():
    return fig08_leaky_dma.sweep(packet_sizes=(256, 1024),
                                 duration_s=0.6, warmup_s=0.2,
                                 spec=TINY_ARRAY)


def _sensitivity_sweep():
    return sensitivity.sweep(
        sweeps={"threshold_stable": (0.03, 0.10)},
        duration_s=0.8, warmup_s=0.3, spec=TINY_ARRAY)


def _fields(result) -> dict:
    assert dataclasses.is_dataclass(result)
    return dataclasses.asdict(result)


@pytest.mark.parametrize("make_sweep", [_fig08_sweep, _sensitivity_sweep],
                         ids=["fig08", "sensitivity"])
def test_parallel_identical_to_serial(make_sweep):
    spec = make_sweep()
    serial = ParallelRunner(jobs=1).run(spec)
    with ParallelRunner(jobs=4) as runner:
        parallel = runner.run(spec)
    assert len(serial) == len(parallel) == len(spec)
    for point, a, b in zip(spec.points, serial, parallel):
        assert _fields(a) == _fields(b), f"diverged at {point.key()}"


def test_cache_round_trip_replays_without_simulating(tmp_path,
                                                     monkeypatch):
    spec = _fig08_sweep()
    cold_cache = ResultCache(str(tmp_path))
    with ParallelRunner(jobs=4, cache=cold_cache) as runner:
        cold = runner.run(spec)
    assert cold_cache.stores == len(spec)

    warm_cache = ResultCache(str(tmp_path))

    def bomb(func, params):
        raise AssertionError("warm cache must not run the simulation")

    monkeypatch.setattr("repro.exec.runner._call_point", bomb)
    with ParallelRunner(jobs=4, cache=warm_cache) as runner:
        warm = runner.run(spec)
    assert warm_cache.hits == len(spec)
    assert warm_cache.misses == 0
    for a, b in zip(cold, warm):
        assert _fields(a) == _fields(b)

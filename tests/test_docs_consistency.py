"""Documentation consistency: files, tables and claims stay in sync."""

import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name: str) -> str:
    with open(os.path.join(REPO, name)) as handle:
        return handle.read()


class TestDeliverablesExist:
    @pytest.mark.parametrize("path", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml",
        "docs/modeling.md", "docs/architecture.md", "docs/policies.md",
        "examples/quickstart.py", "examples/leaky_dma_aggregation.py",
        "examples/latent_contender_slicing.py",
        "examples/nfv_service_chain.py", "examples/tenants.example.txt",
    ])
    def test_file_present(self, path):
        assert os.path.exists(os.path.join(REPO, path)), path


class TestDesignExperimentIndex:
    def test_every_figure_module_listed_exists(self):
        design = read("DESIGN.md")
        for module in re.findall(r"fig\d\d_\w+", design):
            path = os.path.join(REPO, "src", "repro", "experiments",
                                module + ".py")
            assert os.path.exists(path), module

    def test_all_eval_figures_covered(self):
        design = read("DESIGN.md")
        for figure in ("Fig. 3", "Fig. 4", "Fig. 8", "Fig. 9", "Fig. 10",
                       "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14",
                       "Fig. 15"):
            assert figure in design, figure
        assert "Tab. I" in design and "Tab. II" in design

    def test_benchmarks_exist_per_figure(self):
        for n in (3, 4, 8, 9, 10, 11, 12, 13, 14, 15):
            path = os.path.join(REPO, "benchmarks", f"test_fig{n:02d}.py")
            assert os.path.exists(path), path


class TestExperimentsDoc:
    def test_mentions_every_figure(self):
        text = read("EXPERIMENTS.md")
        for n in (3, 4, 8, 9, 10, 11, 12, 13, 14, 15):
            assert re.search(rf"Figs?\.[^\n]*\b{n}\b", text), f"Fig {n}"

    def test_documents_known_gap(self):
        # The honest-gaps section must survive edits.
        assert "Fig. 14" in read("docs/modeling.md")


class TestReadmeSnippets:
    def test_python_snippet_names_exist(self):
        """Every `repro.*` import path mentioned in README resolves."""
        import importlib
        readme = read("README.md")
        for module in set(re.findall(r"from (repro(?:\.\w+)*) import",
                                     readme)):
            importlib.import_module(module)

    def test_cli_commands_mentioned_exist(self):
        from repro.cli import build_parser
        parser = build_parser()
        readme = read("README.md")
        # The README points at examples and pytest invocations.
        assert "pytest benchmarks/ --benchmark-only" in readme
        assert "examples/quickstart.py" in readme

"""Property-based fuzz of the daemon loop: random counter trajectories
must never drive it into an illegal state.

Invariants checked after every interval:

* every programmed CBM is contiguous, non-empty, within the cache;
* the DDIO mask stays within [DDIO_WAYS_MIN, DDIO_WAYS_MAX] while the
  daemon manages it;
* every group keeps at least one way and at most its cap;
* the recorded history stays consistent with the allocator state.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.cat import is_contiguous
from repro.core.control import ControlPlane
from repro.core.daemon import IATDaemon
from repro.core.params import IATParams
from repro.sim.config import TINY_PLATFORM
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant, TenantSet


def build_daemon(manage_ddio=True, manage_tenant_ways=True, shuffle=True):
    platform = Platform(TINY_PLATFORM)
    tenants = TenantSet([
        Tenant("io0", cores=(0,), priority=Priority.PC, is_io=True,
               initial_ways=2),
        Tenant("pc0", cores=(1,), priority=Priority.PC, initial_ways=2),
        Tenant("be0", cores=(2,), priority=Priority.BE, initial_ways=2),
        Tenant("be1", cores=(3,), priority=Priority.BE, initial_ways=1),
    ])
    for i, tenant in enumerate(tenants):
        tenant.cos_id = i + 1
        for core in tenant.cores:
            platform.cat.associate(core, tenant.cos_id)
    control = ControlPlane(platform.pqos, tenants, time_scale=1.0)
    daemon = IATDaemon(control, IATParams(),
                       manage_ddio=manage_ddio,
                       manage_tenant_ways=manage_tenant_ways,
                       shuffle=shuffle)
    return platform, daemon, tenants


def perturb(platform, rng):
    for core in range(4):
        instr = int(rng.integers(0, 5_000_000))
        platform.counters.core(core).credit(
            instructions=instr, cycles=max(1, instr // 2),
            llc_references=int(rng.integers(0, 500_000)),
            llc_misses=int(rng.integers(0, 200_000)))
    for s in range(platform.spec.llc.slices):
        platform.uncore.hits[s] += int(rng.integers(0, 500_000))
        platform.uncore.misses[s] += int(rng.integers(0, 500_000))


def check_invariants(platform, daemon, tenants):
    params = daemon.params
    ways = platform.spec.llc.ways
    for tenant in tenants:
        mask = platform.cat.get_mask(tenant.cos_id)
        assert mask != 0
        assert mask >> ways == 0
        assert is_contiguous(mask)
    if daemon.manage_ddio:
        count = bin(platform.ddio.mask).count("1")
        assert params.ddio_ways_min <= count <= params.ddio_ways_max
    for group, count in daemon.allocator.group_ways.items():
        assert 1 <= count <= min(params.tenant_ways_max, ways - 1)
    last = daemon.history[-1]
    assert last.ddio_ways == daemon.allocator.ddio_ways
    assert last.group_ways == daemon.allocator.group_ways


@given(st.integers(0, 10_000),
       st.booleans(), st.booleans(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_random_trajectories_preserve_invariants(seed, manage_ddio,
                                                 manage_tenant_ways,
                                                 shuffle):
    rng = np.random.default_rng(seed)
    platform, daemon, tenants = build_daemon(
        manage_ddio=manage_ddio, manage_tenant_ways=manage_tenant_ways,
        shuffle=shuffle)
    daemon.on_start(0.0)
    for t in range(1, 14):
        perturb(platform, rng)
        daemon.on_interval(float(t))
        check_invariants(platform, daemon, tenants)

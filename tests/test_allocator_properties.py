"""Property-based tests on layout-planning invariants."""

from hypothesis import given, settings, strategies as st

from repro.cache.cat import is_contiguous, mask_ways
from repro.core.allocator import plan_layout

NUM_WAYS = 11


@st.composite
def orders(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return [(f"g{i}", draw(st.integers(min_value=1, max_value=8)))
            for i in range(n)]


class TestLayoutInvariants:
    @given(orders(), st.integers(1, 6))
    @settings(max_examples=200)
    def test_masks_contiguous_and_in_range(self, order, ddio_ways):
        layout = plan_layout(NUM_WAYS, ddio_ways, order)
        for mask in layout.group_masks.values():
            assert is_contiguous(mask)
            assert mask >> NUM_WAYS == 0
        assert is_contiguous(layout.ddio_mask)

    @given(orders(), st.integers(1, 6))
    @settings(max_examples=200)
    def test_requested_way_counts_granted(self, order, ddio_ways):
        layout = plan_layout(NUM_WAYS, ddio_ways, order)
        for name, count in order:
            assert len(mask_ways(layout.group_masks[name])) == count

    @given(orders(), st.integers(1, 6))
    @settings(max_examples=200)
    def test_no_overlap_when_cache_fits_everything(self, order, ddio_ways):
        total = sum(count for _, count in order)
        layout = plan_layout(NUM_WAYS, ddio_ways, order)
        if total <= NUM_WAYS - ddio_ways:
            # No tenant-DDIO overlap...
            assert layout.overlap_groups() == set()
            # ...and no tenant-tenant overlap either.
            combined = 0
            for mask in layout.group_masks.values():
                assert combined & mask == 0
                combined |= mask

    @given(orders(), st.integers(1, 6))
    @settings(max_examples=200)
    def test_overlap_only_at_the_top(self, order, ddio_ways):
        """If overlap is necessary, it involves the *last* groups in the
        order (the shuffler puts the least LLC-hungry BE there)."""
        layout = plan_layout(NUM_WAYS, ddio_ways, order)
        overlapping = layout.overlap_groups()
        if overlapping:
            names = [name for name, _ in order]
            # Every group after the first overlapping one (in bottom-up
            # order) that touches DDIO must be later in the order than
            # every non-overlapping group that could have been placed
            # higher -- equivalently the first group never overlaps
            # unless it alone exceeds the non-DDIO space.
            first_name, first_count = order[0]
            if first_name in overlapping:
                assert first_count > NUM_WAYS - ddio_ways

    @given(orders(), st.integers(1, 6))
    @settings(max_examples=100)
    def test_io_isolated_never_touches_ddio(self, order, ddio_ways):
        if any(count > NUM_WAYS - ddio_ways for _, count in order):
            return  # planner rightfully rejects these; covered elsewhere
        layout = plan_layout(NUM_WAYS, ddio_ways, order, io_isolated=True)
        for mask in layout.group_masks.values():
            assert mask & layout.ddio_mask == 0

"""Smoke tests for the per-figure experiment harnesses.

Each harness runs with sharply reduced parameters — these verify the
plumbing (scenario construction, measurement windows, result shapes and
table formatting), not the paper-scale numbers; the benchmarks in
``benchmarks/`` regenerate the real figures.
"""

import pytest

from repro.experiments import (fig03_ring_size, fig04_latent_contender,
                               fig08_leaky_dma, fig09_flow_scaling,
                               fig10_shuffle, fig11_timeline,
                               fig12_exec_time, fig13_rocksdb_latency,
                               fig14_redis_ycsb, fig15_overhead)
from repro.experiments.appbench import corun, solo_app_run, solo_net_run


class TestFig03:
    def test_search_produces_rates(self):
        result = fig03_ring_size.run(ring_sizes=(64, 1024),
                                     packet_sizes=(1500,),
                                     measure_s=0.5, warmup_s=0.2,
                                     resolution=0.2, max_trials=3)
        assert set(result.max_pps) == {(1500, 64), (1500, 1024)}
        assert result.max_pps[(1500, 1024)] > 0
        assert 0 <= result.relative(1500, 64) <= 1.0
        assert "Fig. 3" in fig03_ring_size.format_table(result)


class TestFig04:
    def test_overlap_hurts(self):
        result = fig04_latent_contender.run(working_sets_mb=(8,),
                                            warmup_s=0.5, measure_s=1.0)
        point = result.points[0]
        assert point.throughput_dedicated > 0
        assert point.throughput_overlap < point.throughput_dedicated
        assert result.worst_latency_gain() > 0
        assert "Fig. 4" in fig04_latent_contender.format_table(result)


class TestFig08:
    def test_iat_beats_baseline_at_mtu(self):
        base = fig08_leaky_dma.run_one(1500, "baseline", duration_s=4.0,
                                       warmup_s=2.0)
        iat = fig08_leaky_dma.run_one(1500, "iat", duration_s=4.0,
                                      warmup_s=2.0)
        assert base.ddio_misses_per_s > iat.ddio_misses_per_s
        assert iat.ddio_ways_final > 2
        result = fig08_leaky_dma.Fig8Result([base, iat])
        assert result.mem_bw_reduction(1500) > 0
        assert "Fig. 8" in fig08_leaky_dma.format_table(result)


class TestFig09:
    def test_flow_growth_degrades_baseline(self):
        small = fig09_flow_scaling.run_one(100, "baseline",
                                           duration_s=3.0, warmup_s=1.5)
        large = fig09_flow_scaling.run_one(1_000_000, "baseline",
                                           duration_s=3.0, warmup_s=1.5)
        assert large.ovs_llc_misses_per_s > small.ovs_llc_misses_per_s
        assert large.ovs_ipc < small.ovs_ipc

    def test_format(self):
        p = fig09_flow_scaling.Fig9Point(100, "baseline", 1.0, 1e6, 2)
        q = fig09_flow_scaling.Fig9Point(100, "iat", 1.1, 0.5e6, 4)
        table = fig09_flow_scaling.format_table(
            fig09_flow_scaling.Fig9Result([p, q]))
        assert "Fig. 9" in table


class TestFig10:
    def test_iat_run_produces_phases(self):
        point = fig10_shuffle.run_one("iat", 1024, t_grow=1.0, t_ddio=4.0,
                                      t_end=7.0, settle_s=1.0)
        assert point.phase2_throughput > 0
        assert point.phase3_throughput > 0
        table = fig10_shuffle.format_table(
            fig10_shuffle.Fig10Result([point]))
        assert "Fig. 10" in table


class TestFig11:
    def test_timeline_reacts(self):
        result = fig11_timeline.run(packet_size=1024, t_grow=2.0,
                                    t_ddio=6.0, t_end=9.0)
        assert len(result.times) == len(result.ddio_masks)
        # IAT reacts within a few sleep intervals of the phase change
        # ("react timely, within the timescale of sleep interval").
        assert result.reaction_delay(2.0, window=4.0) is not None
        assert "Fig. 11" in fig11_timeline.format_timeline(result)


class TestAppBench:
    def test_solo_app(self):
        metrics = solo_app_run("gcc", warmup_s=0.3, measure_s=0.6)
        assert metrics.app_rate > 0
        assert metrics.redis_tput is None

    def test_solo_net_reports_redis(self):
        metrics = solo_net_run("kvs", "C", warmup_s=0.3, measure_s=0.6)
        assert metrics.redis_tput > 0
        assert metrics.redis_p99_us >= metrics.redis_avg_us * 0.5

    def test_corun_baseline_and_iat(self):
        for mode in ("baseline", "iat"):
            metrics = corun("kvs", "gcc", mode, seed=1, warmup_s=0.3,
                            measure_s=0.6)
            assert metrics.app_rate > 0
            assert metrics.redis_tput > 0

    def test_nfv_corun(self):
        metrics = corun("nfv", "gcc", "iat", warmup_s=0.3, measure_s=0.6)
        assert metrics.app_rate > 0
        assert metrics.redis_tput is None

    def test_rocksdb_corun_reports_per_op(self):
        metrics = corun("kvs", "rocksdb", "baseline", ycsb_letter="A",
                        seed=0, warmup_s=0.3, measure_s=0.6)
        assert metrics.rocksdb_per_op
        assert any(v > 0 for v in metrics.rocksdb_per_op.values())

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            corun("kvs", "gcc", "nope")
        from repro.experiments.appbench import build_corun
        with pytest.raises(ValueError):
            build_corun("blah", "gcc")


class TestFig12to14Aggregation:
    def test_fig12_cells(self):
        result = fig12_exec_time.run(scenarios=("kvs",), apps=("gcc",),
                                     seeds=(0,), warmup_s=0.3,
                                     measure_s=0.6)
        cell = result.cell("kvs", "gcc")
        assert cell.baseline_min <= cell.baseline_max
        assert cell.iat > 0.5
        assert "Fig. 12" in fig12_exec_time.format_table(result)

    def test_fig13_weighted_latency(self):
        result = fig13_rocksdb_latency.run(scenarios=("kvs",),
                                           letters=("C",), seeds=(0,),
                                           warmup_s=0.3, measure_s=0.6)
        cell = result.cell("kvs", "C")
        assert cell.baseline_max >= cell.baseline_min > 0
        assert "Fig. 13" in fig13_rocksdb_latency.format_table(result)

    def test_fig13_weight_function(self):
        from repro.experiments.fig13_rocksdb_latency import weighted_latency
        from repro.workloads.ycsb import OpType, WORKLOAD_A
        solo = {OpType.READ: 100.0, OpType.UPDATE: 200.0}
        corun_lat = {OpType.READ: 110.0, OpType.UPDATE: 240.0}
        value = weighted_latency(corun_lat, solo, WORKLOAD_A)
        assert value == pytest.approx(0.5 * 1.1 + 0.5 * 1.2)

    def test_fig14_degradations(self):
        result = fig14_redis_ycsb.run(letters=("C",), seeds=(0,),
                                      warmup_s=0.3, measure_s=0.6)
        assert {c.metric for c in result.cells} \
            == {"throughput", "avg", "p99"}
        assert "Fig. 14" in fig14_redis_ycsb.format_table(result)


class TestFig15:
    def test_cost_grows_with_cores_sublinearly(self):
        result = fig15_overhead.run(one_core_counts=(1, 4, 16),
                                    two_core_counts=(2,), iterations=10)
        one = result.point(1, 1)
        four = result.point(4, 1)
        sixteen = result.point(16, 1)
        assert one.stable_us < four.stable_us < sixteen.stable_us
        # Sub-linear: 16x the cores costs well below 16x the time.
        assert sixteen.stable_us < 16 * one.stable_us
        # Unstable adds only a few register writes.
        assert sixteen.unstable_us < sixteen.stable_us * 2.5
        # Paper headline: well under 800 us per iteration.
        assert result.max_cost_us() < 800.0
        assert "Fig. 15" in fig15_overhead.format_table(result)

    def test_same_cores_fewer_tenants_cheaper(self):
        result = fig15_overhead.run(one_core_counts=(8,),
                                    two_core_counts=(4,), iterations=10)
        eight_one = result.point(8, 1)   # 8 groups over 8 cores
        four_two = result.point(4, 2)    # 4 groups over 8 cores
        assert four_two.stable_us < eight_one.stable_us

"""Unit tests for counters, uncore sampling, MSRs, and the pqos facade."""

import pytest

from repro.cache.cat import CatController
from repro.cache.ddio import IIO_LLC_WAYS_MSR, DdioConfig
from repro.cache.geometry import TINY_LLC
from repro.perf.counters import CoreCounterBlock, CounterFile
from repro.perf.msr import MsrError, SimMsr
from repro.perf.pqos import PqosLib
from repro.perf.uncore import ChaCounters


class TestCoreCounters:
    def test_credit_accumulates(self):
        block = CoreCounterBlock()
        block.credit(instructions=100, cycles=50, llc_references=10,
                     llc_misses=2)
        block.credit(instructions=1)
        assert block.instructions == 101
        assert block.cycles == 50

    def test_aggregate_sums_cores(self):
        cf = CounterFile(num_cores=4)
        cf.core(0).credit(instructions=10)
        cf.core(2).credit(instructions=5, llc_misses=3)
        total = cf.aggregate([0, 2])
        assert total.instructions == 15
        assert total.llc_misses == 3

    def test_snapshot_is_independent(self):
        block = CoreCounterBlock()
        snap = block.snapshot()
        block.credit(cycles=10)
        assert snap.cycles == 0


class TestUncoreSampling:
    def test_record_and_exact(self):
        cha = ChaCounters(TINY_LLC)
        for i in range(100):
            cha.record_ddio(i * 64, hit=(i % 2 == 0))
        exact = cha.exact()
        assert exact.hits == 50
        assert exact.misses == 50

    def test_sample_scales_one_slice(self):
        cha = ChaCounters(TINY_LLC)
        for i in range(4000):
            cha.record_ddio(i * 64, hit=True)
        sample = cha.sample()
        exact = cha.exact()
        # One-slice estimate should be near truth for hashed addresses.
        assert abs(sample.hits - exact.hits) / exact.hits < 0.2
        assert cha.sampling_error() < 0.2

    def test_sampling_error_zero_when_no_traffic(self):
        assert ChaCounters(TINY_LLC).sampling_error() == 0.0

    def test_invalid_sample_slice(self):
        with pytest.raises(ValueError):
            ChaCounters(TINY_LLC, sample_slice=99)


class TestSimMsr:
    def test_iio_llc_ways_reads_ddio_mask(self):
        ddio = DdioConfig(TINY_LLC)
        msr = SimMsr(ddio)
        assert msr.read(IIO_LLC_WAYS_MSR) == ddio.mask

    def test_iio_llc_ways_write_reprograms(self):
        ddio = DdioConfig(TINY_LLC)
        msr = SimMsr(ddio)
        msr.write(IIO_LLC_WAYS_MSR, 0b111 << (TINY_LLC.ways - 3))
        assert ddio.way_count == 3

    def test_scratch_registers(self):
        msr = SimMsr(DdioConfig(TINY_LLC))
        msr.write(0x123, 0xDEAD)
        assert msr.read(0x123) == 0xDEAD
        assert msr.read(0x456) == 0

    def test_rejects_oversized_value(self):
        msr = SimMsr(DdioConfig(TINY_LLC))
        with pytest.raises(MsrError):
            msr.write(0x10, 1 << 64)


def make_pqos():
    ddio = DdioConfig(TINY_LLC)
    counters = CounterFile(num_cores=4)
    uncore = ChaCounters(TINY_LLC)
    cat = CatController(num_ways=TINY_LLC.ways)
    return PqosLib(counters, uncore, cat, SimMsr(ddio)), counters, uncore


class TestPqosFacade:
    def test_mon_poll_returns_deltas(self):
        pqos, counters, _ = make_pqos()
        pqos.mon_start("g", [0, 1])
        counters.core(0).credit(instructions=100, cycles=50)
        result = pqos.mon_poll("g")
        assert result.instructions == 100
        assert result.ipc == pytest.approx(2.0)
        # Second poll with no activity: zero deltas.
        assert pqos.mon_poll("g").instructions == 0

    def test_mon_groups_are_exclusive_names(self):
        pqos, _, _ = make_pqos()
        pqos.mon_start("g", [0])
        with pytest.raises(ValueError):
            pqos.mon_start("g", [1])
        pqos.mon_stop("g")
        pqos.mon_start("g", [1])

    def test_mon_group_needs_cores(self):
        pqos, _, _ = make_pqos()
        with pytest.raises(ValueError):
            pqos.mon_start("empty", [])

    def test_ddio_poll_deltas(self):
        pqos, _, uncore = make_pqos()
        pqos.ddio_poll()  # establish baseline
        for i in range(100):
            uncore.record_ddio(i * 64, hit=True)
        hits, misses = pqos.ddio_poll()
        assert hits > 0 and misses == 0
        assert pqos.ddio_poll() == (0, 0)

    def test_alloc_and_assoc(self):
        pqos, _, _ = make_pqos()
        pqos.alloc_set(3, 0b11)
        assert pqos.alloc_get(3) == 0b11
        pqos.assoc_set(2, 3)
        assert pqos.assoc_get(2) == 3

    def test_ddio_mask_roundtrip(self):
        pqos, _, _ = make_pqos()
        pqos.ddio_set_mask(0b1111 << (TINY_LLC.ways - 4))
        assert pqos.ddio_way_count() == 4

    def test_cost_model_accumulates(self):
        pqos, _, _ = make_pqos()
        pqos.mon_start("g", [0, 1, 2])
        pqos.reset_cost()
        pqos.mon_poll("g")
        cost_three_cores = pqos.reset_cost()
        pqos.mon_stop("g")
        pqos.mon_start("h", [0])
        pqos.reset_cost()
        pqos.mon_poll("h")
        cost_one_core = pqos.reset_cost()
        assert cost_three_cores > cost_one_core > 0

    def test_miss_rate(self):
        pqos, counters, _ = make_pqos()
        pqos.mon_start("g", [0])
        counters.core(0).credit(llc_references=100, llc_misses=25)
        assert pqos.mon_poll("g").miss_rate == pytest.approx(0.25)

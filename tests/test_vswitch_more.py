"""Deeper virtual-switch behaviour: EMC scaling and lookup costs."""

import numpy as np
import pytest

from repro.sim.config import TINY_PLATFORM
from repro.sim.platform import Platform
from repro.vswitch.flowtable import (EMC_HIT_CYCLES, FlowTables,
                                     MEGAFLOW_CYCLES)


def make(platform, emc_entries=64):
    port = platform.core_port(0, 1)
    port.begin_quantum()
    tables = FlowTables(platform.alloc_region(1 << 24),
                        emc_entries=emc_entries)
    return port, tables


class TestEmcScaling:
    def test_small_population_high_hit_rate(self, platform):
        port, tables = make(platform)
        rng = np.random.default_rng(0)
        for flow in rng.integers(0, 16, size=2000).tolist():
            tables.lookup(port, int(flow))
        assert tables.emc_hit_rate > 0.9

    def test_large_population_thrashes_emc(self, platform):
        port, tables = make(platform, emc_entries=64)
        rng = np.random.default_rng(0)
        for flow in rng.integers(0, 100_000, size=2000).tolist():
            tables.lookup(port, int(flow))
        # Nearly every lookup is an EMC miss -> wildcard path.
        assert tables.emc_hit_rate < 0.1

    def test_wildcard_lookup_costs_more(self, platform):
        port, tables = make(platform)
        miss = tables.lookup(port, 5)
        hit = tables.lookup(port, 5)
        assert not miss.emc_hit and hit.emc_hit
        assert miss.cycles > hit.cycles
        assert miss.cycles >= MEGAFLOW_CYCLES
        assert hit.cycles >= EMC_HIT_CYCLES

    def test_megaflow_footprint_grows_llc_pressure(self):
        """More distinct flows touch more distinct table lines."""
        counts = {}
        for n_flows in (16, 4096):
            platform = Platform(TINY_PLATFORM)
            port, tables = make(platform, emc_entries=16)
            rng = np.random.default_rng(1)
            for flow in rng.integers(0, n_flows, size=1500).tolist():
                tables.lookup(port, int(flow))
            counts[n_flows] = port.block.llc_misses
        assert counts[4096] > counts[16]

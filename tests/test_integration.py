"""Integration tests: the paper's phenomena must *emerge* from the
simulator, and the daemon must react end-to-end.

These run on the TINY platform (same 11-way geometry, small LLC) with
footprints chosen relative to its way capacity, so each test finishes
in well under a second of simulated time.
"""

import pytest

from repro.cache.ddio import ddio_mask_for_ways
from repro.core import ControlPlane, IATDaemon, IATParams, StaticPolicy
from repro.net.traffic import TrafficSpec
from repro.sim.config import TINY_PLATFORM, PlatformSpec
from repro.sim.engine import Simulation
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant
from repro.workloads.testpmd import TestPmd
from repro.workloads.xmem import XMem

#: TINY way capacity: 64 sets x 4 slices x 64 B = 16 KiB per way.
WAY_BYTES = TINY_PLATFORM.llc.way_capacity_bytes


def build_io_scenario(*, ring_entries=64, packet_size=1500, pps=2000.0,
                      pmd_ways=2, ddio_ways=2, xmem=None, seed=5):
    platform = Platform(TINY_PLATFORM)
    platform.ddio.set_ways(ddio_ways)
    sim = Simulation(platform, seed=seed)
    nic = platform.add_nic("n0", 40.0)
    vf = nic.add_vf(entries=ring_entries, name="vf0")
    pmd = TestPmd("pmd", [vf.rx_ring])
    sim.add_tenant(Tenant("pmd", cores=(0,), priority=Priority.PC,
                          is_io=True, initial_ways=pmd_ways), pmd)
    workloads = {"pmd": pmd}
    if xmem is not None:
        work = XMem("xmem", xmem)
        # Scale the modelled private L2 down with the TINY LLC (the
        # real ratio is ~1:24), or every access would be an L2 hit.
        work.l2_bytes = 8 << 10
        sim.add_tenant(Tenant("xmem", cores=(1,), priority=Priority.PC,
                              initial_ways=2), work)
        workloads["xmem"] = work
    sim.attach_traffic(nic, vf, TrafficSpec(pps=pps,
                                            packet_size=packet_size))
    return platform, sim, workloads, vf


class TestLeakyDmaEmerges:
    """Sec. III-A: when the DMA footprint exceeds the DDIO ways, write
    allocates (DDIO misses) and memory traffic appear; when it fits,
    write updates (hits) dominate."""

    def _run(self, ring_entries, masks):
        platform, sim, _, _ = build_io_scenario(ring_entries=ring_entries)
        control = ControlPlane(platform.pqos, sim.tenant_set(),
                               time_scale=platform.spec.time_scale)
        sim.add_controller(StaticPolicy(control, explicit_masks=masks))
        sim.run(2.0)
        exact = platform.uncore.exact()
        return exact.hits, exact.misses, platform.mem.write_bytes

    def test_small_footprint_hits(self):
        # 64-byte packets touch one line per slot: 8 entries x pool 2 =
        # 16 lines in flight, far below the DDIO ways' capacity.
        platform, sim, _, _ = build_io_scenario(ring_entries=8,
                                                packet_size=64)
        control = ControlPlane(platform.pqos, sim.tenant_set(),
                               time_scale=platform.spec.time_scale)
        sim.add_controller(StaticPolicy(control,
                                        explicit_masks={"pmd": 0b11}))
        sim.run(2.0)
        exact = platform.uncore.exact()
        assert exact.hits > 5 * exact.misses

    def test_large_footprint_misses(self):
        # 64 slots x 2 KB x 2 = 256 KB against 32 KB of DDIO ways.
        hits, misses, writebacks = self._run(64, {"pmd": 0b11})
        assert misses > hits
        assert writebacks > 0

    def test_more_ddio_ways_cut_misses(self):
        platform_small = self._run(64, {"pmd": 0b11})
        platform, sim, _, _ = build_io_scenario(ring_entries=64,
                                                ddio_ways=6)
        control = ControlPlane(platform.pqos, sim.tenant_set(),
                               time_scale=platform.spec.time_scale)
        sim.add_controller(StaticPolicy(control,
                                        explicit_masks={"pmd": 0b11}))
        sim.run(2.0)
        wide = platform.uncore.exact()
        assert wide.misses < platform_small[1]


class TestLatentContenderEmerges:
    """Sec. III-B: a tenant whose ways overlap DDIO's suffers even
    though no *core* shares its ways."""

    def _xmem_perf(self, overlap):
        ways = TINY_PLATFORM.llc.ways
        xmem_mask = (0b11 << (ways - 2)) if overlap else (0b11 << 4)
        platform, sim, workloads, _ = build_io_scenario(
            ring_entries=64, xmem=2 * WAY_BYTES)
        control = ControlPlane(platform.pqos, sim.tenant_set(),
                               time_scale=platform.spec.time_scale)
        sim.add_controller(StaticPolicy(control, explicit_masks={
            "pmd": 0b11, "xmem": xmem_mask}))
        sim.run(3.0)
        return workloads["xmem"].stats.ops

    def test_ddio_overlap_slows_xmem(self):
        dedicated = self._xmem_perf(overlap=False)
        overlapped = self._xmem_perf(overlap=True)
        assert overlapped < dedicated * 0.93


class TestDaemonEndToEnd:
    def _daemon_sim(self, **kwargs):
        platform, sim, workloads, vf = build_io_scenario(**kwargs)
        control = ControlPlane(platform.pqos, sim.tenant_set(),
                               time_scale=platform.spec.time_scale)
        params = IATParams(interval_s=0.2,
                           ddio_ways_max=6)
        daemon = IATDaemon(control, params)
        sim.add_controller(daemon)
        return platform, sim, daemon

    def test_daemon_grows_ddio_under_leak(self):
        platform, sim, daemon = self._daemon_sim(ring_entries=64)
        sim.run(4.0)
        ways_seen = {h.ddio_ways for h in daemon.history}
        assert max(ways_seen) > daemon.params.ddio_ways_min
        states = {h.state for h in daemon.history}
        from repro.core.fsm import State
        assert State.IO_DEMAND in states

    def test_daemon_keeps_minimum_when_quiet(self):
        platform, sim, daemon = self._daemon_sim(ring_entries=8,
                                                 packet_size=64, pps=200.0)
        sim.run(3.0)
        assert daemon.allocator.ddio_ways == daemon.params.ddio_ways_min

    def test_daemon_masks_stay_legal(self):
        platform, sim, daemon = self._daemon_sim(ring_entries=64)
        from repro.cache.cat import is_contiguous
        for _ in range(10):
            sim.run(0.4)
            for tenant in daemon.control.tenants:
                mask = platform.cat.get_mask(tenant.cos_id)
                assert is_contiguous(mask)
                assert mask >> platform.spec.llc.ways == 0


class TestOneSliceSampling:
    def test_sampling_error_small_under_real_traffic(self):
        platform, sim, _, _ = build_io_scenario(ring_entries=64)
        sim.run(2.0)
        assert platform.uncore.sampling_error() < 0.25


class TestPrefill:
    def test_prefill_warms_working_set(self):
        platform, sim, workloads, _ = build_io_scenario(
            ring_entries=8, xmem=WAY_BYTES)
        control = ControlPlane(platform.pqos, sim.tenant_set(),
                               time_scale=platform.spec.time_scale)
        sim.add_controller(StaticPolicy(control, explicit_masks={
            "pmd": 0b11, "xmem": 0b1100}))
        sim.run(0.2)
        # Raw counters include the prefill burst (all cold misses); the
        # recorded metrics are baselined after it, so the first quantum
        # already sees a warm cache.
        record = sim.metrics.records[0]
        snap = record.tenants["xmem"]
        assert snap.llc_references > 0
        assert snap.llc_misses / snap.llc_references < 0.5

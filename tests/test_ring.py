"""Unit tests for descriptor rings."""

import pytest

from repro.pci.ring import DescRing, MBUF_STRIDE


def make_ring(entries=8, pool_factor=1):
    return DescRing(entries, base_addr=1 << 20, pool_factor=pool_factor)


class TestBasics:
    def test_post_and_consume_fifo(self):
        ring = make_ring()
        ring.post(64, flow_id=1)
        ring.post(128, flow_id=2)
        first = ring.consume()
        second = ring.consume()
        assert (first.size, first.flow_id) == (64, 1)
        assert (second.size, second.flow_id) == (128, 2)

    def test_occupancy_and_space(self):
        ring = make_ring(entries=4)
        assert ring.space == 4
        ring.post(64)
        assert ring.occupancy == 1
        assert ring.space == 3

    def test_consume_empty_returns_none(self):
        assert make_ring().consume() is None
        assert make_ring().peek() is None

    def test_drop_when_full(self):
        ring = make_ring(entries=2)
        assert ring.post(64) is not None
        assert ring.post(64) is not None
        assert ring.post(64) is None
        assert ring.dropped == 1
        assert ring.enqueued == 2

    def test_counters(self):
        ring = make_ring(entries=4)
        for _ in range(3):
            ring.post(64)
        ring.consume()
        assert (ring.enqueued, ring.dequeued, ring.dropped) == (3, 1, 0)
        ring.reset_counters()
        assert (ring.enqueued, ring.dequeued, ring.dropped) == (0, 0, 0)

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            DescRing(100, base_addr=0)

    def test_positive_entries_required(self):
        with pytest.raises(ValueError):
            DescRing(0, base_addr=0)


class TestBufferAddresses:
    def test_slot_addresses_strided(self):
        ring = make_ring(entries=4)
        a = ring.post(64).buf_addr
        b = ring.post(64).buf_addr
        assert b - a == MBUF_STRIDE

    def test_addresses_recycle_over_pool(self):
        ring = make_ring(entries=2, pool_factor=1)
        seen = []
        for _ in range(4):
            record = ring.post(64)
            seen.append(record.buf_addr)
            ring.consume()
        assert seen[0] == seen[2]
        assert seen[1] == seen[3]

    def test_pool_factor_widens_footprint(self):
        ring = make_ring(entries=2, pool_factor=2)
        addrs = []
        for _ in range(4):
            addrs.append(ring.post(64).buf_addr)
            ring.consume()
        assert len(set(addrs)) == 4  # cycles over 4 pool slots, not 2
        assert ring.footprint_bytes == 4 * MBUF_STRIDE

    def test_arrival_stamp_recorded(self):
        ring = make_ring()
        record = ring.post(64, now=1.25)
        assert record.arrival == 1.25

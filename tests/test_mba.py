"""Tests for the MBA extension (per-CLOS memory-bandwidth throttling)."""

import pytest

from repro.mem.mba import MBA_STEPS, MbaController, MbaError
from repro.sim.config import TINY_PLATFORM
from repro.sim.platform import Platform


class TestMbaController:
    def test_default_unthrottled(self):
        mba = MbaController()
        assert mba.get_throttle(3) == 0
        assert mba.delay_factor(3) == 1.0

    def test_valid_steps(self):
        mba = MbaController()
        for step in MBA_STEPS:
            mba.set_throttle(1, step)
            assert mba.get_throttle(1) == step

    def test_delay_factor(self):
        mba = MbaController()
        mba.set_throttle(2, 50)
        assert mba.delay_factor(2) == pytest.approx(2.0)
        mba.set_throttle(2, 90)
        assert mba.delay_factor(2) == pytest.approx(10.0)

    def test_invalid_step_rejected(self):
        mba = MbaController()
        with pytest.raises(MbaError):
            mba.set_throttle(0, 55)
        with pytest.raises(MbaError):
            mba.set_throttle(0, 100)

    def test_invalid_cos_rejected(self):
        mba = MbaController(num_cos=4)
        with pytest.raises(MbaError):
            mba.set_throttle(9, 10)
        with pytest.raises(MbaError):
            mba.get_throttle(-1)

    def test_reset(self):
        mba = MbaController()
        mba.set_throttle(1, 30)
        mba.reset()
        assert mba.get_throttle(1) == 0


class TestMbaOnPlatform:
    def test_throttled_core_pays_more_for_misses(self):
        platform = Platform(TINY_PLATFORM)
        platform.cat.associate(0, 1)
        platform.cat.associate(1, 2)
        platform.mba.set_throttle(2, 80)
        free = platform.core_port(0, 1)
        slow = platform.core_port(1, 2)
        free.begin_quantum()
        slow.begin_quantum()
        free_cost = free.access(0x100000)
        slow_cost = slow.access(0x900000)
        assert slow_cost > 3 * free_cost

    def test_hits_unaffected_by_throttle(self):
        platform = Platform(TINY_PLATFORM)
        platform.cat.associate(0, 1)
        platform.mba.set_throttle(1, 90)
        port = platform.core_port(0, 1)
        port.begin_quantum()
        port.access(0x100000)          # miss (stretched)
        hit_cost = port.access(0x100000)
        from repro.workloads.base import LLC_HIT_CYCLES
        assert hit_cost == LLC_HIT_CYCLES

"""Cross-cutting invariants checked over randomized whole-system runs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.monitor import (ChangeKind, SystemSample, TenantSample)
from repro.net.traffic import TrafficSpec
from repro.sim.config import TINY_PLATFORM
from repro.sim.engine import Simulation
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant
from repro.workloads.testpmd import TestPmd


def run_sim(pps, packet_size, entries, seed):
    platform = Platform(TINY_PLATFORM)
    sim = Simulation(platform, seed=seed)
    nic = platform.add_nic("n0", 40.0)
    vf = nic.add_vf(entries=entries, name="vf0")
    pmd = TestPmd("pmd", [vf.rx_ring])
    sim.add_tenant(Tenant("pmd", cores=(0,), priority=Priority.PC,
                          is_io=True, initial_ways=2), pmd)
    sim.attach_traffic(nic, vf, TrafficSpec(pps=pps,
                                            packet_size=packet_size,
                                            n_flows=16, zipf_theta=0.5))
    sim.run(1.0)
    return platform, vf, pmd


class TestConservation:
    @given(st.floats(min_value=100.0, max_value=20_000.0),
           st.sampled_from([64, 256, 1500]),
           st.sampled_from([8, 64, 256]),
           st.integers(0, 1000))
    @settings(max_examples=12, deadline=None)
    def test_packet_conservation(self, pps, packet_size, entries, seed):
        """Every offered packet is enqueued, dropped, or never arrived;
        every enqueued packet is consumed or still queued."""
        platform, vf, pmd = run_sim(pps, packet_size, entries, seed)
        ring = vf.rx_ring
        assert ring.enqueued == ring.dequeued + ring.occupancy
        assert pmd.packets_processed == ring.dequeued
        assert ring.dropped >= 0

    @given(st.floats(min_value=100.0, max_value=20_000.0),
           st.sampled_from([64, 1500]),
           st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_ddio_events_bounded_by_dma_lines(self, pps, packet_size,
                                              seed):
        """DDIO hit+miss equals exactly the lines DMA-written for the
        enqueued (not dropped) packets."""
        platform, vf, pmd = run_sim(pps, packet_size, 64, seed)
        lines_per_pkt = -(-packet_size // 64)
        exact = platform.uncore.exact()
        assert exact.hits + exact.misses \
            == vf.rx_ring.enqueued * lines_per_pkt

    @given(st.floats(min_value=100.0, max_value=5_000.0),
           st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_memory_bytes_are_line_multiples(self, pps, seed):
        platform, _, _ = run_sim(pps, 512, 64, seed)
        assert platform.mem.read_bytes % 64 == 0
        assert platform.mem.write_bytes % 64 == 0

    @given(st.floats(min_value=100.0, max_value=20_000.0),
           st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_llc_occupancy_bounded(self, pps, seed):
        platform, _, _ = run_sim(pps, 1500, 64, seed)
        assert platform.llc.valid_lines() <= platform.spec.llc.lines


def make_sample(rng):
    tenants = {}
    for i in range(3):
        refs = int(rng.integers(0, 100_000))
        tenants[f"t{i}"] = TenantSample(
            name=f"t{i}", ipc=float(rng.random() * 3),
            llc_references=refs,
            llc_misses=int(rng.integers(0, refs + 1)))
    return SystemSample(tenants=tenants,
                        ddio_hits=int(rng.integers(0, 1_000_000)),
                        ddio_misses=int(rng.integers(0, 1_000_000)))


class TestMonitorTotality:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_classify_total_over_random_samples(self, seed):
        """classify never raises and always yields a known kind, for any
        sequence of random samples and overlap sets."""
        from repro.cache.cat import CatController
        from repro.cache.ddio import DdioConfig
        from repro.cache.geometry import TINY_LLC
        from repro.core.monitor import ProfMonitor
        from repro.core.params import IATParams
        from repro.perf.counters import CounterFile
        from repro.perf.msr import SimMsr
        from repro.perf.pqos import PqosLib
        from repro.perf.uncore import ChaCounters
        from repro.tenants.tenant import TenantSet

        rng = np.random.default_rng(seed)
        pqos = PqosLib(CounterFile(num_cores=3), ChaCounters(TINY_LLC),
                       CatController(num_ways=11),
                       SimMsr(DdioConfig(TINY_LLC)))
        tenants = TenantSet([
            Tenant("t0", cores=(0,), priority=Priority.PC, is_io=True),
            Tenant("t1", cores=(1,), priority=Priority.PC),
            Tenant("t2", cores=(2,), priority=Priority.BE),
        ])
        monitor = ProfMonitor(pqos, tenants, IATParams())
        for _ in range(6):
            overlap = {f"t{i}" for i in range(3)
                       if rng.random() < 0.5}
            report = monitor.classify(
                make_sample(rng),
                ddio_at_max=bool(rng.random() < 0.5),
                ddio_at_min=bool(rng.random() < 0.5),
                ddio_overlap=overlap)
            assert isinstance(report.kind, ChangeKind)
            assert set(report.miss_rate_delta) == {"t0", "t1", "t2"}

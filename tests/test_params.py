"""Tests pinning the paper's Table II parameters and their conversions."""

import pytest

from repro.core.params import IATParams


class TestTableII:
    def test_defaults_match_table_ii(self):
        params = IATParams()
        assert params.threshold_stable == 0.03            # 3%
        assert params.threshold_miss_low_per_s == 1e6     # 1M/s
        assert params.ddio_ways_min == 1
        assert params.ddio_ways_max == 6
        assert params.interval_s == 1.0                   # 1 second

    def test_miss_threshold_scaling(self):
        params = IATParams()
        # On real hardware: 1M misses per 1 s interval.
        assert params.miss_low_per_interval(1.0) == 1e6
        # At the simulator's default 1/1000 rate scale: 1k per interval.
        assert params.miss_low_per_interval(1e-3) == pytest.approx(1000.0)
        # Longer intervals see proportionally more misses.
        long = IATParams(interval_s=2.0)
        assert long.miss_low_per_interval(1.0) == 2e6

    @pytest.mark.parametrize("kwargs", [
        {"threshold_stable": 0.0},
        {"threshold_stable": 1.5},
        {"ddio_ways_min": 0},
        {"ddio_ways_min": 4, "ddio_ways_max": 2},
        {"interval_s": 0.0},
        {"increment_mode": "exponential"},
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            IATParams(**kwargs)

    def test_frozen(self):
        params = IATParams()
        with pytest.raises(Exception):
            params.interval_s = 5.0

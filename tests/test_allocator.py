"""Unit tests for way-count bookkeeping and layout planning."""

import pytest

from repro.cache.cat import mask_ways
from repro.core.allocator import (Layout, WayAllocator, pack_bottom_up,
                                  plan_layout)
from repro.core.params import IATParams
from repro.tenants.tenant import Priority, Tenant, TenantSet


def tenants_fixture():
    return TenantSet([
        Tenant("pmd", cores=(0,), priority=Priority.PC, is_io=True,
               initial_ways=3),
        Tenant("c2", cores=(1,), priority=Priority.BE, initial_ways=2),
        Tenant("c3", cores=(2,), priority=Priority.BE, initial_ways=2),
        Tenant("c4", cores=(3,), priority=Priority.PC, initial_ways=2),
    ])


class TestPackBottomUp:
    def test_disjoint_when_fits(self):
        masks = pack_bottom_up([("a", 2), ("b", 3)], 11, 11)
        assert mask_ways(masks["a"]) == [0, 1]
        assert mask_ways(masks["b"]) == [2, 3, 4]

    def test_clamps_at_top_when_overcommitted(self):
        masks = pack_bottom_up([("a", 6), ("b", 6)], 8, 8)
        assert mask_ways(masks["a"]) == [0, 1, 2, 3, 4, 5]
        assert mask_ways(masks["b"]) == [2, 3, 4, 5, 6, 7]  # overlaps a

    def test_respects_limit(self):
        masks = pack_bottom_up([("a", 4)], 6, 11)
        assert max(mask_ways(masks["a"])) < 6

    def test_rejects_oversized_group(self):
        with pytest.raises(ValueError):
            pack_bottom_up([("a", 7)], 6, 11)

    def test_rejects_bad_limit(self):
        with pytest.raises(ValueError):
            pack_bottom_up([("a", 1)], 0, 11)


class TestPlanLayout:
    def test_ddio_top_anchored(self):
        layout = plan_layout(11, 2, [("a", 2)])
        assert mask_ways(layout.ddio_mask) == [9, 10]

    def test_free_gap_below_ddio(self):
        layout = plan_layout(11, 2, [("a", 2), ("b", 3)])
        assert layout.used_mask() & (0b1111 << 5) == 0  # ways 5-8 idle

    def test_last_group_overlaps_ddio_under_pressure(self):
        layout = plan_layout(11, 2, [("a", 4), ("b", 4), ("c", 4)])
        assert layout.overlap_groups() == {"c"}

    def test_io_isolated_excludes_ddio_ways(self):
        layout = plan_layout(11, 4, [("a", 4), ("b", 3)],
                             io_isolated=True)
        assert layout.overlap_groups() == set()
        for mask in layout.group_masks.values():
            assert mask & layout.ddio_mask == 0

    def test_invalid_ddio_ways(self):
        with pytest.raises(ValueError):
            plan_layout(11, 0, [("a", 1)])
        with pytest.raises(ValueError):
            plan_layout(11, 12, [("a", 1)])

    def test_overlap_tenants_resolves_groups(self):
        tenants = TenantSet([
            Tenant("r0", cores=(0,), share_group="net", initial_ways=3),
            Tenant("r1", cores=(1,), share_group="net", initial_ways=3),
        ])
        layout = Layout(group_masks={"net": 0b11 << 9}, ddio_mask=0b11 << 9)
        assert layout.overlap_tenants(tenants) == {"r0", "r1"}


class TestWayAllocator:
    def make(self, **params):
        return WayAllocator.for_tenants(11, IATParams(**params),
                                        tenants_fixture())

    def test_initial_counts_from_tenants(self):
        alloc = self.make()
        assert alloc.group_ways == {"pmd": 3, "c2": 2, "c3": 2, "c4": 2}
        assert alloc.ddio_ways == 2  # hardware default before any action

    def test_ddio_grow_shrink_respects_bounds(self):
        alloc = self.make(ddio_ways_min=1, ddio_ways_max=6)
        alloc.clamp_ddio_min()
        assert alloc.ddio_at_min
        for _ in range(10):
            alloc.grow_ddio()
        assert alloc.ddio_ways == 6 and alloc.ddio_at_max
        assert not alloc.grow_ddio()
        for _ in range(10):
            alloc.shrink_ddio()
        assert alloc.ddio_ways == 1
        assert not alloc.shrink_ddio()

    def test_group_grow_capped(self):
        alloc = self.make(tenant_ways_max=5)
        for _ in range(10):
            alloc.grow_group("c4")
        assert alloc.group_ways["c4"] == 5

    def test_group_shrink_floor(self):
        alloc = self.make()
        assert not alloc.shrink_group("c4", floor=2)
        alloc.grow_group("c4")
        assert alloc.shrink_group("c4", floor=2)
        assert alloc.group_ways["c4"] == 2

    def test_increment_step_modes(self):
        one = self.make(increment_mode="one")
        assert one.increment_step(50.0) == 1
        ucp = self.make(increment_mode="ucp")
        assert ucp.increment_step(50.0) == 2
        assert ucp.increment_step(5.0) == 1

    def test_layout_uses_current_counts(self):
        alloc = self.make()
        alloc.clamp_ddio_min()
        layout = alloc.layout(["pmd", "c4", "c2", "c3"])
        assert mask_ways(layout.group_masks["pmd"]) == [0, 1, 2]
        assert mask_ways(layout.group_masks["c3"]) == [7, 8]
        assert mask_ways(layout.ddio_mask) == [10]

    def test_shared_group_uses_max_member_ways(self):
        tenants = TenantSet([
            Tenant("a", cores=(0,), share_group="g", initial_ways=2),
            Tenant("b", cores=(1,), share_group="g", initial_ways=4),
        ])
        alloc = WayAllocator.for_tenants(11, IATParams(), tenants)
        assert alloc.group_ways == {"g": 4}

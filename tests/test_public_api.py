"""The public API surface promised by README must exist and be usable."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_readme_snippet_classes(self):
        # The classes the README quickstart uses.
        from repro.core import ControlPlane, IATDaemon, IATParams
        from repro.net import TrafficSpec
        from repro.sim import Platform, Simulation, XEON_6140
        from repro.tenants import Priority, Tenant
        from repro.workloads import TestPmd
        assert all((ControlPlane, IATDaemon, IATParams, TrafficSpec,
                    Platform, Simulation, XEON_6140, Priority, Tenant,
                    TestPmd))


class TestSubpackages:
    @pytest.mark.parametrize("module", [
        "repro.cache", "repro.mem", "repro.pci", "repro.net",
        "repro.vswitch", "repro.tenants", "repro.workloads", "repro.perf",
        "repro.sim", "repro.core", "repro.experiments", "repro.cli",
        "repro.obs",
    ])
    def test_importable_with_all(self, module):
        mod = importlib.import_module(module)
        assert hasattr(mod, "__doc__") and mod.__doc__
        if hasattr(mod, "__all__"):
            for name in mod.__all__:
                assert getattr(mod, name, None) is not None, \
                    f"{module}.{name}"

    def test_every_public_callable_documented(self):
        """Doc comments on every public item (deliverable e)."""
        import inspect
        for module_name in ("repro.cache", "repro.core", "repro.sim",
                            "repro.workloads", "repro.perf"):
            mod = importlib.import_module(module_name)
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    assert obj.__doc__, f"{module_name}.{name} undocumented"

"""Property-based tests for the FSM: totality, closure, reachability."""

from hypothesis import given, settings, strategies as st

from repro.core.fsm import INITIAL_STATE, Signals, State, next_state


@st.composite
def signals(draw):
    miss = draw(st.sampled_from(["up", "down", "flat"]))
    hit = draw(st.sampled_from(["up", "down", "flat"]))
    return Signals(
        miss_high=draw(st.booleans()),
        miss_up=miss == "up", miss_down=miss == "down",
        hit_up=hit == "up", hit_down=hit == "down",
        llc_ref_up=draw(st.booleans()),
        at_max_ways=draw(st.booleans()),
        at_min_ways=draw(st.booleans()))


class TestTotalityAndClosure:
    @given(st.sampled_from(list(State)), signals())
    def test_total_over_all_inputs(self, state, sig):
        out = next_state(state, sig)
        assert isinstance(out, State)

    @given(st.lists(signals(), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_any_trajectory_stays_in_states(self, trace):
        state = INITIAL_STATE
        for sig in trace:
            state = next_state(state, sig)
            assert isinstance(state, State)


class TestReachability:
    def test_every_state_reachable_from_low_keep(self):
        reached = {INITIAL_STATE}
        frontier = [INITIAL_STATE]
        corpus = []
        for miss_high in (False, True):
            for miss in ("up", "down", "flat"):
                for hit in ("up", "down", "flat"):
                    for at_max in (False, True):
                        for at_min in (False, True):
                            for ref_up in (False, True):
                                corpus.append(Signals(
                                    miss_high=miss_high,
                                    miss_up=miss == "up",
                                    miss_down=miss == "down",
                                    hit_up=hit == "up",
                                    hit_down=hit == "down",
                                    llc_ref_up=ref_up,
                                    at_max_ways=at_max,
                                    at_min_ways=at_min))
        while frontier:
            state = frontier.pop()
            for sig in corpus:
                out = next_state(state, sig)
                if out not in reached:
                    reached.add(out)
                    frontier.append(out)
        assert reached == set(State)

    def test_calming_traffic_converges_to_low_keep(self):
        """From any state, sustained falling-miss signals with DDIO at
        its minimum lead back to Low Keep within a few steps."""
        calming = Signals(miss_high=False, miss_down=True, at_min_ways=True)
        for start in State:
            state = start
            for _ in range(4):
                state = next_state(state, calming)
            assert state is State.LOW_KEEP

    def test_sustained_pressure_reaches_high_keep(self):
        pressure = Signals(miss_high=True, miss_up=True, hit_up=True,
                           at_max_ways=True)
        state = INITIAL_STATE
        for _ in range(3):
            state = next_state(state, pressure)
        assert state is State.HIGH_KEEP

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_figures_listed(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_daemon_requires_tenants(self):
        with pytest.raises(SystemExit):
            main(["daemon"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["daemon", "--tenants", "t.txt"])
        assert args.backend == "sim"
        assert args.interval == 1.0
        assert args.log_level == "warning"
        assert args.trace_out is None

    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace", "fig11"])
        assert args.format == "perfetto"
        assert args.out is None
        assert not args.fast

    def test_trace_unknown_figure(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestFigureFast:
    def test_fig15_fast_runs(self, capsys):
        assert main(["figure", "fig15", "--fast"]) == 0
        assert "Fig. 15" in capsys.readouterr().out


class TestFigureRegistry:
    def test_every_entry_well_formed(self):
        for name, entry in FIGURES.items():
            description, full, fast = entry
            assert isinstance(description, str) and description
            assert callable(full) and callable(fast)

    def test_covers_all_eval_figures(self):
        for n in (3, 4, 8, 9, 10, 11, 12, 13, 14, 15):
            assert f"fig{n}" in FIGURES
        assert "ext-ddio" in FIGURES


class TestTrace:
    def test_fig15_fast_writes_perfetto_trace(self, tmp_path, capsys):
        import json
        out = tmp_path / "trace.json"
        assert main(["trace", "fig15", "--fast", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "Fig. 15" in stdout
        assert "trace:" in stdout and "events" in stdout
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["producer"] == "repro.obs"

    def test_jsonl_format(self, tmp_path, capsys):
        import json
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "fig15", "--fast", "--format", "jsonl",
                     "--out", str(out)]) == 0
        lines = out.read_text().strip().splitlines()
        assert lines and all(json.loads(line)["ph"] in ("i", "C", "X")
                             for line in lines)

    def test_leaves_no_tracer_installed(self, tmp_path, capsys):
        from repro.obs import NULL_TRACER, current_tracer
        out = tmp_path / "trace.json"
        main(["trace", "fig15", "--fast", "--out", str(out)])
        assert current_tracer() is NULL_TRACER


class TestDaemonSim:
    TENANTS = ("pmd cores=0,1 priority=PC io=yes ways=2\n"
               "xmem cores=2 priority=BE io=no ways=2\n")

    def test_sim_backend_runs_from_tenants_file(self, tmp_path, capsys):
        path = tmp_path / "tenants.txt"
        path.write_text(self.TENANTS)
        code = main(["daemon", "--tenants", str(path),
                     "--duration", "3.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ddio=" in out
        assert "low-keep" in out

    def test_exit_summary_line(self, tmp_path, capsys):
        path = tmp_path / "tenants.txt"
        path.write_text(self.TENANTS)
        assert main(["daemon", "--tenants", str(path),
                     "--duration", "3.0"]) == 0
        summary = [line for line in capsys.readouterr().out.splitlines()
                   if line.startswith("daemon:")]
        assert len(summary) == 1
        assert "iterations" in summary[0]
        assert "state changes" in summary[0]
        assert "ddio_ways=" in summary[0]

    def test_trace_out_writes_perfetto(self, tmp_path, capsys):
        import json
        from repro.obs import NULL_TRACER, current_tracer
        path = tmp_path / "tenants.txt"
        path.write_text(self.TENANTS)
        out = tmp_path / "daemon.json"
        assert main(["daemon", "--tenants", str(path),
                     "--duration", "3.0", "--trace-out", str(out),
                     "--log-level", "info"]) == 0
        doc = json.loads(out.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "iteration" in names  # daemon events made it to the file
        assert current_tracer() is NULL_TRACER

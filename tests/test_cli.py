"""Unit tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_figures_listed(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_daemon_requires_tenants(self):
        with pytest.raises(SystemExit):
            main(["daemon"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["daemon", "--tenants", "t.txt"])
        assert args.backend == "sim"
        assert args.interval == 1.0


class TestFigureFast:
    def test_fig15_fast_runs(self, capsys):
        assert main(["figure", "fig15", "--fast"]) == 0
        assert "Fig. 15" in capsys.readouterr().out


class TestFigureRegistry:
    def test_every_entry_well_formed(self):
        for name, entry in FIGURES.items():
            description, full, fast = entry
            assert isinstance(description, str) and description
            assert callable(full) and callable(fast)

    def test_covers_all_eval_figures(self):
        for n in (3, 4, 8, 9, 10, 11, 12, 13, 14, 15):
            assert f"fig{n}" in FIGURES
        assert "ext-ddio" in FIGURES


class TestDaemonSim:
    def test_sim_backend_runs_from_tenants_file(self, tmp_path, capsys):
        path = tmp_path / "tenants.txt"
        path.write_text(
            "pmd cores=0,1 priority=PC io=yes ways=2\n"
            "xmem cores=2 priority=BE io=no ways=2\n")
        code = main(["daemon", "--tenants", str(path),
                     "--duration", "3.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ddio=" in out
        assert "low-keep" in out

"""Unit tests for the command-line interface."""

import pytest

from repro.cli import (FIGURES, FigureEntry, build_parser, main,
                       sorted_figures)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI invocations from touching the real ~/.cache/repro."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestParser:
    def test_figures_listed(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_figures_natural_sorted(self, capsys):
        assert main(["figures"]) == 0
        lines = capsys.readouterr().out.splitlines()
        names = [line.split()[0] for line in lines]
        assert names == sorted_figures()
        # natural order: fig9 before fig10, letters after digits
        assert names.index("fig9") < names.index("fig10")
        assert names[0] == "ext-ddio" and names[-1] == "sensitivity"

    def test_sorted_figures_covers_registry(self):
        assert set(sorted_figures()) == set(FIGURES)

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure_parser_defaults(self):
        args = build_parser().parse_args(["figure", "fig8"])
        assert not args.fast
        assert args.jobs is None
        assert not args.no_cache
        assert args.cache_dir is None
        assert args.duration is None
        assert args.warmup is None

    def test_suite_parser_defaults(self):
        args = build_parser().parse_args(["suite", "--fast", "--jobs", "2"])
        assert args.fast
        assert args.jobs == 2
        assert not args.no_cache

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_daemon_requires_tenants(self):
        with pytest.raises(SystemExit):
            main(["daemon"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["daemon", "--tenants", "t.txt"])
        assert args.backend == "sim"
        assert args.interval == 1.0
        assert args.log_level == "warning"
        assert args.trace_out is None

    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace", "fig11"])
        assert args.format == "perfetto"
        assert args.out is None
        assert not args.fast

    def test_trace_unknown_figure(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_compare_parser_defaults(self):
        args = build_parser().parse_args(["compare", "--fast"])
        assert args.fast
        assert args.policies is None
        assert args.scenarios is None
        assert args.seeds is None
        assert args.json is None


class TestPoliciesCommand:
    def test_lists_registered_policies_with_tunables(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("iat", "ioca", "lfoc", "static"):
            assert name in out
        assert "interval_s" in out           # an IATParams tunable
        assert "unfairness_threshold" in out  # an lfoc constructor knob


class TestCompareCommand:
    def test_unknown_policy_rejected(self, capsys):
        assert main(["compare", "--policies", "nope"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_unknown_scenario_rejected(self, capsys):
        assert main(["compare", "--scenarios", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_small_tournament_with_json_report(self, tmp_path, capsys):
        import json

        out = tmp_path / "report.json"
        assert main(["compare", "--policies", "iat,static",
                     "--scenarios", "shuffle", "--duration", "1.5",
                     "--warmup", "0.5", "--jobs", "1", "--no-cache",
                     "--json", str(out)]) == 0
        table = capsys.readouterr().out
        assert "rank" in table and "shuffle" in table
        doc = json.loads(out.read_text())
        assert {e["policy"] for e in doc["ranking"]} == {"iat", "static"}
        assert len(doc["points"]) == 2


class TestFigureFast:
    def test_fig15_fast_runs(self, capsys):
        assert main(["figure", "fig15", "--fast"]) == 0
        assert "Fig. 15" in capsys.readouterr().out

    def test_fig15_fast_no_cache(self, capsys):
        assert main(["figure", "fig15", "--fast", "--no-cache",
                     "--jobs", "1"]) == 0
        assert "Fig. 15" in capsys.readouterr().out


class TestFigureRegistry:
    def test_every_entry_well_formed(self):
        import inspect
        for name, entry in FIGURES.items():
            assert isinstance(entry, FigureEntry)
            assert isinstance(entry.description, str) and entry.description
            assert callable(entry.run) and callable(entry.format)
            # fast kwargs must be real parameters of the run() signature
            params = inspect.signature(entry.run).parameters
            for key in entry.fast_kwargs:
                assert key in params, f"{name}: bad fast kwarg {key!r}"
            # every harness accepts a runner (the shared-pool contract)
            assert "runner" in params, f"{name}: run() lacks runner="

    def test_covers_all_eval_figures(self):
        for n in (3, 4, 8, 9, 10, 11, 12, 13, 14, 15):
            assert f"fig{n}" in FIGURES
        assert "ext-ddio" in FIGURES


class TestRunEntry:
    """Override plumbing, exercised against stub harnesses."""

    @staticmethod
    def _entry(run):
        return FigureEntry("stub", run, lambda result: f"<{result}>",
                           dict(duration_s=1.0))

    def test_duration_maps_to_duration_s(self):
        from repro.cli import _run_entry
        seen = {}

        def run(*, duration_s=9.0, warmup_s=9.0, runner=None):
            seen.update(duration_s=duration_s, warmup_s=warmup_s)
            return "ok"

        out = _run_entry(self._entry(run), fast=False, duration=2.5,
                         warmup=0.5)
        assert out == "<ok>"
        assert seen == dict(duration_s=2.5, warmup_s=0.5)

    def test_duration_falls_back_to_measure_s(self):
        from repro.cli import _run_entry
        seen = {}

        def run(*, measure_s=9.0, runner=None):
            seen.update(measure_s=measure_s)
            return "ok"

        _run_entry(FigureEntry("stub", run, str, {}), fast=False,
                   duration=3.0)
        assert seen == dict(measure_s=3.0)

    def test_unsupported_override_warns_and_runs(self, capsys):
        from repro.cli import _run_entry

        def run(*, runner=None):
            return "ok"

        out = _run_entry(FigureEntry("stub", run, str, {}), fast=False,
                         duration=3.0, warmup=1.0)
        assert out == "ok"
        err = capsys.readouterr().err
        assert "--duration" in err and "--warmup" in err

    def test_fast_kwargs_applied(self):
        from repro.cli import _run_entry
        seen = {}

        def run(*, duration_s=9.0, runner=None):
            seen.update(duration_s=duration_s)
            return "ok"

        _run_entry(self._entry(run), fast=True)
        assert seen == dict(duration_s=1.0)


class TestSuite:
    def test_suite_runs_all_in_sorted_order(self, monkeypatch, capsys):
        calls = []

        def make(name):
            def run(*, runner=None):
                calls.append(name)
                return name
            return FigureEntry(f"stub {name}", run, str, {})

        stub = {name: make(name) for name in ("fig10", "fig2", "ext-x")}
        monkeypatch.setattr("repro.cli.FIGURES", stub)
        assert main(["suite", "--fast", "--jobs", "1"]) == 0
        assert calls == ["ext-x", "fig2", "fig10"]
        out = capsys.readouterr().out
        assert "=== fig2 — stub fig2 ===" in out
        assert "suite: 3 figures" in out
        assert "jobs=1" in out


class TestTrace:
    def test_fig15_fast_writes_perfetto_trace(self, tmp_path, capsys):
        import json
        out = tmp_path / "trace.json"
        assert main(["trace", "fig15", "--fast", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "Fig. 15" in stdout
        assert "trace:" in stdout and "events" in stdout
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["producer"] == "repro.obs"

    def test_jsonl_format(self, tmp_path, capsys):
        import json
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "fig15", "--fast", "--format", "jsonl",
                     "--out", str(out)]) == 0
        lines = out.read_text().strip().splitlines()
        assert lines and all(json.loads(line)["ph"] in ("i", "C", "X")
                             for line in lines)

    def test_leaves_no_tracer_installed(self, tmp_path, capsys):
        from repro.obs import NULL_TRACER, current_tracer
        out = tmp_path / "trace.json"
        main(["trace", "fig15", "--fast", "--out", str(out)])
        assert current_tracer() is NULL_TRACER


class TestDaemonSim:
    TENANTS = ("pmd cores=0,1 priority=PC io=yes ways=2\n"
               "xmem cores=2 priority=BE io=no ways=2\n")

    def test_sim_backend_runs_from_tenants_file(self, tmp_path, capsys):
        path = tmp_path / "tenants.txt"
        path.write_text(self.TENANTS)
        code = main(["daemon", "--tenants", str(path),
                     "--duration", "3.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ddio=" in out
        assert "low-keep" in out

    def test_exit_summary_line(self, tmp_path, capsys):
        path = tmp_path / "tenants.txt"
        path.write_text(self.TENANTS)
        assert main(["daemon", "--tenants", str(path),
                     "--duration", "3.0"]) == 0
        summary = [line for line in capsys.readouterr().out.splitlines()
                   if line.startswith("daemon:")]
        assert len(summary) == 1
        assert "iterations" in summary[0]
        assert "state changes" in summary[0]
        assert "ddio_ways=" in summary[0]

    def test_trace_out_writes_perfetto(self, tmp_path, capsys):
        import json
        from repro.obs import NULL_TRACER, current_tracer
        path = tmp_path / "tenants.txt"
        path.write_text(self.TENANTS)
        out = tmp_path / "daemon.json"
        assert main(["daemon", "--tenants", str(path),
                     "--duration", "3.0", "--trace-out", str(out),
                     "--log-level", "info"]) == 0
        doc = json.loads(out.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert "iteration" in names  # daemon events made it to the file
        assert current_tracer() is NULL_TRACER

"""Edge-case tests for experiment result containers and helpers."""

import numpy as np
import pytest

from repro.experiments.ext_ddio import ExtPoint, ExtResult
from repro.experiments.fig03_ring_size import Fig3Result
from repro.experiments.fig04_latent_contender import Fig4Point, Fig4Result
from repro.experiments.fig08_leaky_dma import Fig8Point, Fig8Result
from repro.experiments.fig10_shuffle import Fig10Point, Fig10Result
from repro.experiments.fig11_timeline import Fig11Result
from repro.experiments.fig12_exec_time import Fig12Cell, Fig12Result
from repro.experiments.fig15_overhead import Fig15Result


class TestFig3Result:
    def test_relative_zero_reference(self):
        result = Fig3Result((64,), (64, 1024),
                            {(64, 64): 0.0, (64, 1024): 0.0})
        assert result.relative(64, 64) == 0.0


class TestFig4Result:
    def test_zero_division_guards(self):
        point = Fig4Point(4, 0.0, 0.0, 0.0, 0.0)
        assert point.throughput_loss == 0.0
        assert point.latency_gain == 0.0

    def test_worst_selectors(self):
        result = Fig4Result([
            Fig4Point(4, 100.0, 80.0, 10.0, 14.0),
            Fig4Point(8, 100.0, 95.0, 10.0, 11.0),
        ])
        assert result.worst_throughput_loss() == pytest.approx(0.2)
        assert result.worst_latency_gain() == pytest.approx(0.4)


class TestFig8Result:
    def make(self):
        base = Fig8Point(1500, "baseline", 1e6, 5e5, 10e9, 0.5, 1000, 2)
        iat = Fig8Point(1500, "iat", 2e6, 1e5, 8e9, 0.6, 800, 6)
        return Fig8Result([base, iat])

    def test_reduction_and_gain(self):
        result = self.make()
        assert result.mem_bw_reduction(1500) == pytest.approx(0.2)
        assert result.ipc_gain(1500) == pytest.approx(0.2)

    def test_missing_point_raises(self):
        with pytest.raises(KeyError):
            self.make().point(64, "baseline")


class TestFig10Result:
    def test_gain_vs(self):
        result = Fig10Result([
            Fig10Point("baseline", 64, 10.0, 100.0, 8.0, 120.0),
            Fig10Point("iat", 64, 15.0, 60.0, 16.0, 50.0),
        ])
        assert result.gain_vs("iat", "baseline", 64, phase=2) \
            == pytest.approx(0.5)
        assert result.gain_vs("iat", "baseline", 64, phase=3) \
            == pytest.approx(1.0)
        with pytest.raises(KeyError):
            result.point("core-only", 64)


class TestFig11Result:
    def make(self):
        return Fig11Result(
            times=np.array([0.1, 0.2, 0.3, 0.4]),
            c4_misses=np.array([10, 10, 50, 20]),
            masks={"c4": [0b11, 0b11, 0b111, 0b111]},
            ddio_masks=[0b11 << 9] * 4,
            daemon_history=[])

    def test_mask_at(self):
        result = self.make()
        assert result.mask_at("c4", 0.15) == 0b11
        assert result.mask_at("c4", 0.35) == 0b111
        assert result.mask_at("c4", 99.0) == 0b111

    def test_reaction_delay(self):
        result = self.make()
        delay = result.reaction_delay(0.2, window=1.0)
        assert delay == pytest.approx(0.1)

    def test_reaction_delay_none_when_static(self):
        result = self.make()
        assert result.reaction_delay(0.35, window=0.05) is None


class TestFig12Result:
    def test_cell_lookup(self):
        result = Fig12Result([Fig12Cell("kvs", "mcf", 1.0, 1.1, 1.02)])
        assert result.cell("kvs", "mcf").iat == 1.02
        with pytest.raises(KeyError):
            result.cell("nfv", "mcf")


class TestFig15Result:
    def test_point_lookup_raises(self):
        with pytest.raises(KeyError):
            Fig15Result().point(1, 1)


class TestExtResult:
    def test_point_lookup(self):
        result = ExtResult([ExtPoint("shared", 0.9, 0.5, 1.0, 10.0)])
        assert result.point("shared").pc_ddio_hit_rate == 0.9
        with pytest.raises(KeyError):
            result.point("device-aware")

"""Unit tests for CAT mask rules and CLOS association."""

import pytest

from repro.cache.cat import (CatController, CatError, is_contiguous,
                             mask_span, mask_ways, ways_to_mask)


class TestMaskHelpers:
    @pytest.mark.parametrize("first,count,expected", [
        (0, 1, 0b1), (0, 2, 0b11), (2, 3, 0b11100), (9, 2, 0b11 << 9),
    ])
    def test_ways_to_mask(self, first, count, expected):
        assert ways_to_mask(first, count) == expected

    def test_ways_to_mask_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ways_to_mask(-1, 1)
        with pytest.raises(ValueError):
            ways_to_mask(0, 0)

    def test_mask_ways_roundtrip(self):
        assert mask_ways(0b101100) == [2, 3, 5]
        assert mask_ways(ways_to_mask(3, 4)) == [3, 4, 5, 6]

    @pytest.mark.parametrize("mask,expected", [
        (0b1, True), (0b110, True), (0b1110, True),
        (0b101, False), (0b1001, False), (0, False), (-4, False),
    ])
    def test_is_contiguous(self, mask, expected):
        assert is_contiguous(mask) is expected

    def test_mask_span(self):
        assert mask_span(0b11100) == (2, 3)
        assert mask_span(0b1) == (0, 1)

    def test_mask_span_rejects_holes(self):
        with pytest.raises(ValueError):
            mask_span(0b101)


class TestCatController:
    def test_default_state_full_masks(self):
        cat = CatController(num_ways=11)
        assert cat.get_mask(0) == 0b111_1111_1111
        assert cat.cos_of(5) == 0  # unassociated cores use CLOS 0

    def test_set_and_get_mask(self):
        cat = CatController(num_ways=11)
        cat.set_mask(3, 0b1100)
        assert cat.get_mask(3) == 0b1100

    def test_rejects_empty_mask(self):
        cat = CatController(num_ways=11)
        with pytest.raises(CatError):
            cat.set_mask(1, 0)

    def test_rejects_noncontiguous_mask(self):
        cat = CatController(num_ways=11)
        with pytest.raises(CatError):
            cat.set_mask(1, 0b101)

    def test_rejects_mask_beyond_ways(self):
        cat = CatController(num_ways=4)
        with pytest.raises(CatError):
            cat.set_mask(1, 0b10000)

    def test_association(self):
        cat = CatController(num_ways=11)
        cat.set_mask(2, 0b11)
        cat.associate(7, 2)
        assert cat.cos_of(7) == 2
        assert cat.mask_of_core(7) == 0b11

    def test_association_rejects_unknown_cos(self):
        cat = CatController(num_ways=11, num_cos=4)
        with pytest.raises(CatError):
            cat.associate(0, 10)

    def test_association_rejects_negative_core(self):
        cat = CatController(num_ways=11)
        with pytest.raises(CatError):
            cat.associate(-1, 0)

    def test_reset_restores_default(self):
        cat = CatController(num_ways=11)
        cat.set_mask(1, 0b1)
        cat.associate(0, 1)
        cat.reset()
        assert cat.get_mask(1) == cat.get_mask(0)
        assert cat.cos_of(0) == 0

    def test_invalid_way_count(self):
        with pytest.raises(CatError):
            CatController(num_ways=0)

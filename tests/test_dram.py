"""Unit tests for the memory controller model."""

import pytest

from repro.mem.dram import MemoryController, MemorySpec


class TestAccounting:
    def test_totals_accumulate(self):
        mem = MemoryController()
        mem.begin_window(0.1)
        mem.add_read(640)
        mem.add_write(128)
        assert mem.read_bytes == 640
        assert mem.write_bytes == 128
        assert mem.window_bytes == 768

    def test_window_resets(self):
        mem = MemoryController()
        mem.begin_window(0.1)
        mem.add_read(1000)
        mem.end_window()
        mem.begin_window(0.1)
        assert mem.window_bytes == 0
        assert mem.read_bytes == 1000  # totals persist

    def test_end_window_returns_split(self):
        mem = MemoryController()
        mem.begin_window(0.1)
        mem.add_read(100)
        mem.add_write(50)
        assert mem.end_window() == (100, 50)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            MemoryController().begin_window(0)


class TestBandwidthAndLatency:
    def test_bandwidth_unscales_time(self):
        mem = MemoryController(time_scale=1e-3)
        mem.begin_window(1.0)
        mem.add_read(1_000_000)  # 1 MB in one scaled second
        assert mem.window_bandwidth() == pytest.approx(1e9)  # 1 GB/s real

    def test_idle_latency(self):
        mem = MemoryController()
        assert mem.load_latency_cycles() == pytest.approx(
            mem.spec.idle_latency_cycles)

    def test_latency_grows_with_utilization(self):
        spec = MemorySpec(peak_bytes_per_sec=1e9)
        mem = MemoryController(spec=spec, time_scale=1.0)
        mem.begin_window(1.0)
        mem.add_read(int(0.9e9))
        mem.end_window()
        loaded = mem.load_latency_cycles()
        assert loaded > spec.idle_latency_cycles * 1.5

    def test_utilization_capped(self):
        spec = MemorySpec(peak_bytes_per_sec=1e6)
        mem = MemoryController(spec=spec, time_scale=1.0)
        mem.begin_window(1.0)
        mem.add_read(10**9)
        assert mem.utilization() <= 0.98

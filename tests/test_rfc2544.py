"""Unit tests for the RFC 2544 zero-loss rate search."""

import pytest

from repro.net.rfc2544 import TrialResult, find_zero_loss_rate


def capacity_trial(capacity_pps):
    """Ideal DUT: drops iff offered exceeds capacity."""
    def trial(offered):
        dropped = int(max(0.0, offered - capacity_pps))
        return TrialResult(offered_pps=offered,
                           delivered_pps=min(offered, capacity_pps),
                           dropped=dropped)
    return trial


class TestSearch:
    def test_converges_near_capacity(self):
        result = find_zero_loss_rate(capacity_trial(3000.0), 10_000.0,
                                     resolution=0.01, max_trials=25)
        assert result.max_loss_free_pps == pytest.approx(3000.0, rel=0.05)

    def test_line_rate_capacity(self):
        result = find_zero_loss_rate(capacity_trial(1e9), 10_000.0)
        assert result.max_loss_free_pps == 10_000.0

    def test_resolves_tiny_capacity(self):
        """A capacity two orders below line rate must still be found —
        the reason the search grows geometrically instead of bisecting
        down from the ceiling."""
        result = find_zero_loss_rate(capacity_trial(800.0), 60_000.0,
                                     resolution=0.05, max_trials=20)
        assert result.max_loss_free_pps == pytest.approx(800.0, rel=0.15)

    def test_zero_capacity(self):
        result = find_zero_loss_rate(capacity_trial(0.0), 10_000.0,
                                     max_trials=10)
        assert result.max_loss_free_pps < 100.0

    def test_respects_max_trials(self):
        result = find_zero_loss_rate(capacity_trial(1234.0), 100_000.0,
                                     resolution=0.0001, max_trials=5)
        assert result.trial_count <= 5

    def test_trials_start_low_and_grow(self):
        result = find_zero_loss_rate(capacity_trial(500.0), 1000.0,
                                     max_trials=8)
        assert all(isinstance(t, TrialResult) for t in result.trials)
        offered = [t.offered_pps for t in result.trials]
        assert offered[0] == pytest.approx(10.0)
        assert offered[1] > offered[0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            find_zero_loss_rate(capacity_trial(1.0), 0.0)
        with pytest.raises(ValueError):
            find_zero_loss_rate(capacity_trial(1.0), 10.0, resolution=2.0)
        with pytest.raises(ValueError):
            find_zero_loss_rate(capacity_trial(1.0), 10.0,
                                start_fraction=0.0)

    def test_loss_free_flag(self):
        assert TrialResult(10, 10, 0).loss_free
        assert not TrialResult(10, 9, 1).loss_free

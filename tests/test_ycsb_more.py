"""Additional YCSB and traffic-split coverage."""

import numpy as np
import pytest

from repro.experiments.common import (READ_REQUEST_BYTES,
                                      WRITE_REQUEST_BYTES,
                                      ycsb_write_share)
from repro.workloads.ycsb import (ALL_WORKLOADS, OpType, SCAN_LENGTH,
                                  YcsbOpStream)


class TestWriteShare:
    @pytest.mark.parametrize("letter,expected", [
        ("A", 0.5),    # 50% update
        ("B", 0.05),
        ("C", 0.0),
        ("D", 0.05),   # 5% insert
        ("F", 0.25),   # 50% RMW -> half write
    ])
    def test_share_per_letter(self, letter, expected):
        assert ycsb_write_share(ALL_WORKLOADS[letter]) \
            == pytest.approx(expected)

    def test_request_sizes_bracket_threshold(self):
        from repro.workloads.redis import RedisServer
        assert READ_REQUEST_BYTES <= RedisServer.WRITE_REQUEST_THRESHOLD
        assert WRITE_REQUEST_BYTES > RedisServer.WRITE_REQUEST_THRESHOLD


class TestOpStreams:
    def test_workload_b_read_heavy(self):
        rng = np.random.default_rng(0)
        stream = YcsbOpStream(ALL_WORKLOADS["B"], 1000, rng)
        ops = stream.draw(4000)
        updates = sum(1 for op, _ in ops if op is OpType.UPDATE)
        assert 0.02 < updates / len(ops) < 0.10

    def test_workload_e_scans(self):
        rng = np.random.default_rng(0)
        stream = YcsbOpStream(ALL_WORKLOADS["E"], 1000, rng)
        ops = stream.draw(1000)
        scans = sum(1 for op, _ in ops if op is OpType.SCAN)
        assert scans > 800
        assert SCAN_LENGTH >= 2

    def test_zipf_head_dominates(self):
        rng = np.random.default_rng(0)
        stream = YcsbOpStream(ALL_WORKLOADS["C"], 100_000, rng)
        keys = [k for _, k in stream.draw(5000)]
        head = sum(1 for k in keys if k < 100)
        assert head / len(keys) > 0.25  # zipf(0.99) head concentration

    def test_draw_zero(self):
        rng = np.random.default_rng(0)
        stream = YcsbOpStream(ALL_WORKLOADS["A"], 10, rng)
        assert stream.draw(0) == []

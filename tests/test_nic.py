"""Unit tests for the NIC / SR-IOV / DMA model."""

import pytest

from repro.cache.llc import SlicedLLC
from repro.cache.geometry import TINY_LLC
from repro.mem.dram import MemoryController
from repro.pci.nic import Nic, line_rate_pps
from repro.perf.uncore import ChaCounters


def make_nic():
    return Nic(name="nic0", link_gbps=40.0, region_base=1 << 30,
               region_size=1 << 24)


class TestLineRate:
    def test_64b_at_100g_matches_paper(self):
        # Sec. II-B: 64B + 20B overhead at 100 Gb => 148.8 Mpps.
        assert line_rate_pps(100.0, 64) == pytest.approx(148.8e6, rel=0.01)

    def test_larger_packets_fewer_pps(self):
        assert line_rate_pps(40.0, 1500) < line_rate_pps(40.0, 64)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            line_rate_pps(40.0, 0)


class TestVfManagement:
    def test_add_vf_disjoint_regions(self):
        nic = make_nic()
        vf0 = nic.add_vf(entries=64, name="a")
        vf1 = nic.add_vf(entries=64, name="b")
        end0 = vf0.rx_ring.base_addr + vf0.rx_ring.footprint_bytes
        assert vf1.rx_ring.base_addr >= end0

    def test_vf_names_and_ids(self):
        nic = make_nic()
        vf = nic.add_vf(entries=64)
        assert vf.vf_id == 0
        assert vf.name == "nic0.vf0"

    def test_region_exhaustion(self):
        nic = Nic(name="n", link_gbps=40.0, region_base=0,
                  region_size=1 << 12)
        with pytest.raises(ValueError):
            nic.add_vf(entries=1024)


class TestDma:
    def _machine(self):
        llc = SlicedLLC(TINY_LLC)
        mem = MemoryController()
        mem.begin_window(0.1)
        uncore = ChaCounters(TINY_LLC)
        return llc, mem, uncore

    def test_dma_writes_lines_through_ddio(self):
        nic = make_nic()
        vf = nic.add_vf(entries=64)
        llc, mem, uncore = self._machine()
        ddio_mask = 0b11 << (TINY_LLC.ways - 2)
        assert nic.dma_packet(vf, 256, 0, llc, ddio_mask, mem, uncore)
        sample = uncore.exact()
        assert sample.hits + sample.misses == 4  # ceil(256/64) lines

    def test_dma_second_write_same_slot_hits(self):
        nic = make_nic()
        vf = nic.add_vf(entries=64, pool_factor=1)
        llc, mem, uncore = self._machine()
        ddio_mask = 0b11 << (TINY_LLC.ways - 2)
        # Fill every pool slot once, consuming as we go, then wrap.
        for _ in range(64):
            nic.dma_packet(vf, 64, 0, llc, ddio_mask, mem, uncore)
            vf.rx_ring.consume()
        before = uncore.exact().hits
        nic.dma_packet(vf, 64, 0, llc, ddio_mask, mem, uncore)
        assert uncore.exact().hits == before + 1  # write update

    def test_dma_drop_on_full_ring(self):
        nic = make_nic()
        vf = nic.add_vf(entries=2)
        llc, mem, uncore = self._machine()
        ddio_mask = 0b11
        assert nic.dma_packet(vf, 64, 0, llc, ddio_mask, mem, uncore)
        assert nic.dma_packet(vf, 64, 0, llc, ddio_mask, mem, uncore)
        assert not nic.dma_packet(vf, 64, 0, llc, ddio_mask, mem, uncore)
        assert vf.drops == 1
        # Dropped packets must not generate DDIO traffic.
        sample = uncore.exact()
        assert sample.hits + sample.misses == 2

"""Examples must at least parse and reference real APIs.

Full example runs are minutes long; they are exercised manually and by
the benchmarks covering the same scenarios.  Here we compile each one
and verify its imports resolve.
"""

import ast
import importlib
import os

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")
SCRIPTS = sorted(f for f in os.listdir(EXAMPLES) if f.endswith(".py"))


@pytest.mark.parametrize("script", SCRIPTS)
class TestExamples:
    def _tree(self, script):
        with open(os.path.join(EXAMPLES, script)) as handle:
            return ast.parse(handle.read(), filename=script)

    def test_parses(self, script):
        assert self._tree(script)

    def test_has_main_and_docstring(self, script):
        tree = self._tree(script)
        assert ast.get_docstring(tree), f"{script} missing docstring"
        names = {node.name for node in ast.walk(tree)
                 if isinstance(node, ast.FunctionDef)}
        assert "main" in names

    def test_imports_resolve(self, script):
        tree = self._tree(script)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), \
                        f"{script}: {node.module}.{alias.name}"

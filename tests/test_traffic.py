"""Unit tests for traffic generation, zipf weights, and phases."""

import numpy as np
import pytest

from repro.net.packet import lines_per_packet
from repro.net.traffic import (Phase, PhasedTraffic, TrafficGen, TrafficSpec,
                               zipf_weights)


class TestZipfWeights:
    def test_normalized(self):
        assert zipf_weights(100, 0.99).sum() == pytest.approx(1.0)

    def test_theta_zero_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_skew_orders_weights(self):
        w = zipf_weights(50, 0.99)
        assert all(w[i] >= w[i + 1] for i in range(49))
        assert w[0] > 5 * w[-1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 0.99)


class TestTrafficSpec:
    def test_line_rate_scaled(self):
        spec = TrafficSpec.line_rate(40.0, 64, scale=1e-3)
        assert spec.pps == pytest.approx(40e9 / 8 / 84 * 1e-3)

    def test_scaled_factor(self):
        spec = TrafficSpec(pps=1000.0).scaled(0.5)
        assert spec.pps == 500.0

    @pytest.mark.parametrize("kwargs", [
        {"pps": -1}, {"pps": 10, "packet_size": 0},
        {"pps": 10, "n_flows": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TrafficSpec(**kwargs)


class TestTrafficGen:
    def test_deterministic_rate_with_carry(self, rng):
        gen = TrafficGen(TrafficSpec(pps=1000.0), rng)
        total = sum(gen.packets(0.0101) for _ in range(100))
        assert total == pytest.approx(1000 * 1.01, rel=0.01)

    def test_fractional_rates_accumulate(self, rng):
        gen = TrafficGen(TrafficSpec(pps=0.4), rng)
        total = sum(gen.packets(1.0) for _ in range(10))
        assert total == 4

    def test_burstiness_varies_counts(self, rng):
        gen = TrafficGen(TrafficSpec(pps=1000.0, burstiness=0.5), rng)
        counts = [gen.packets(0.1) for _ in range(50)]
        assert len(set(counts)) > 5  # not deterministic

    def test_burstiness_preserves_mean_rate(self, rng):
        gen = TrafficGen(TrafficSpec(pps=1000.0, burstiness=0.6), rng)
        total = sum(gen.packets(0.1) for _ in range(3000))
        assert total == pytest.approx(1000.0 * 0.1 * 3000, rel=0.05)

    def test_single_flow_ids(self, rng):
        gen = TrafficGen(TrafficSpec(pps=10.0), rng)
        assert set(gen.flow_ids(20).tolist()) == {0}

    def test_zipf_flow_ids_skewed(self, rng):
        gen = TrafficGen(TrafficSpec(pps=10.0, n_flows=1000,
                                     zipf_theta=0.99), rng)
        ids = gen.flow_ids(5000)
        # Head flows dominate under Zipf(0.99).
        assert (ids < 10).mean() > 0.2

    def test_zero_count(self, rng):
        gen = TrafficGen(TrafficSpec(pps=10.0, n_flows=10), rng)
        assert gen.flow_ids(0).size == 0


class TestPhasedTraffic:
    def test_spec_at_times(self):
        phased = PhasedTraffic([
            Phase(0.0, TrafficSpec(pps=100.0)),
            Phase(5.0, TrafficSpec(pps=500.0)),
        ])
        assert phased.spec_at(0.0).pps == 100.0
        assert phased.spec_at(4.9).pps == 100.0
        assert phased.spec_at(5.0).pps == 500.0
        assert phased.spec_at(100.0).pps == 500.0

    def test_requires_phase_at_zero(self):
        with pytest.raises(ValueError):
            PhasedTraffic([Phase(1.0, TrafficSpec(pps=1.0))])

    def test_requires_any_phase(self):
        with pytest.raises(ValueError):
            PhasedTraffic([])


class TestPacketHelpers:
    @pytest.mark.parametrize("size,lines", [(1, 1), (64, 1), (65, 2),
                                            (1500, 24), (1024, 16)])
    def test_lines_per_packet(self, size, lines):
        assert lines_per_packet(size) == lines

    def test_lines_per_packet_rejects_zero(self):
        with pytest.raises(ValueError):
            lines_per_packet(0)

"""Tests for the tracing & telemetry subsystem (repro.obs).

Covers the tracer contract (near-zero overhead when disabled, ordering
determinism), the three sinks (ring buffer, JSONL, Perfetto JSON schema),
the sampled LLC event counters on both backends, and the headline
acceptance property: the legacy recorders are exactly reconstructible
from the event stream of a traced Fig. 11 run.
"""

import dataclasses
import io
import json
import time

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import SlicedLLC
from repro.experiments import fig11_timeline
from repro.experiments.common import leaky_dma_scenario
from repro.obs import (NULL_TRACER, JsonlSink, PerfettoSink, RingBufferSink,
                       Tracer, current_tracer, event_from_dict,
                       event_to_dict, install_tracer, perfetto_document,
                       tracing, views)
from repro.obs.sinks import SIM_PID, WALL_PID
from repro.sim.config import TINY_PLATFORM


def make_tracer():
    tracer = Tracer()
    ring = tracer.add_sink(RingBufferSink(capacity=None))
    return tracer, ring


class TestTracer:
    def test_phases_and_sequence(self):
        tracer, ring = make_tracer()
        tracer.set_sim_time(1.5)
        tracer.instant("fsm", "transition", src="low-keep", dst="io-demand")
        tracer.counter("ddio", "events", hits=3, misses=1)
        tracer.complete("sim", "quantum", 0.25, t=1.6)
        events = ring.events()
        assert [e.phase for e in events] == ["i", "C", "X"]
        assert [e.seq for e in events] == [0, 1, 2]
        assert all(e.ts == 1.5 for e in events)
        assert events[2].dur == 0.25

    def test_span_measures_wall_time(self):
        tracer, ring = make_tracer()
        with tracer.span("dma", "burst", vf="vf0"):
            time.sleep(0.01)
        (event,) = ring.events()
        assert event.phase == "X" and event.dur >= 0.01
        assert event.args == {"vf": "vf0"}

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(enabled=False)
        ring = tracer.add_sink(RingBufferSink())
        tracer.instant("a", "b")
        tracer.counter("a", "b", x=1)
        tracer.complete("a", "b", 0.1)
        with tracer.span("a", "b"):
            pass
        assert len(ring) == 0

    def test_null_tracer_is_default_and_inert(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("a", "b"):
            pass  # must be usable without error

    def test_install_and_restore(self):
        tracer, _ = make_tracer()
        previous = install_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            install_tracer(previous)
        assert current_tracer() is previous

    def test_tracing_scope_restores_on_exit(self):
        tracer, _ = make_tracer()
        with tracing(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER
        with pytest.raises(RuntimeError):
            with tracing(tracer):
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER

    def test_profiling_accumulates_shares(self):
        tracer = Tracer(profiling=True)
        tracer.profile_add("engine.workloads", 3.0)
        tracer.complete("dma", "burst", 1.0)
        shares = tracer.profile_shares()
        assert shares["engine.workloads"] == pytest.approx(0.75)
        assert shares["dma.burst"] == pytest.approx(0.25)
        assert Tracer(profiling=True).profile_shares() == {}


class TestSinks:
    def test_ring_buffer_capacity(self):
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink(capacity=3))
        for i in range(5):
            tracer.instant("t", "e", i=i)
        assert [e.args["i"] for e in ring.events()] == [2, 3, 4]

    def test_jsonl_roundtrip(self):
        tracer, ring = make_tracer()
        buffer = io.StringIO()
        tracer.add_sink(JsonlSink(buffer))
        tracer.set_sim_time(0.5)
        tracer.instant("mask", "ddio", mask=0x600, ways=2)
        tracer.complete("sim", "quantum", 0.1, t=0.6)
        tracer.close()
        lines = buffer.getvalue().strip().splitlines()
        decoded = [event_from_dict(json.loads(line)) for line in lines]
        assert decoded == ring.events()

    def test_event_dict_roundtrip(self):
        tracer, ring = make_tracer()
        tracer.counter("llc", "events", fills=10, evictions=2)
        (event,) = ring.events()
        assert event_from_dict(event_to_dict(event)) == event

    def test_jsonl_to_path(self, tmp_path):
        tracer, _ = make_tracer()
        path = tmp_path / "trace.jsonl"
        tracer.add_sink(JsonlSink(path))
        tracer.instant("a", "b")
        tracer.close()
        assert json.loads(path.read_text())["cat"] == "a"


class TestPerfettoSchema:
    def trace_document(self):
        tracer, ring = make_tracer()
        tracer.set_sim_time(1.0)
        tracer.instant("fsm", "transition", src="low-keep", dst="reclaim")
        tracer.counter("ddio", "events", hits=5, misses=2, note="x")
        tracer.complete("dma", "burst", 0.02, vf="vf0", packets=8)
        return perfetto_document(ring.events())

    def test_document_shape(self):
        doc = self.trace_document()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        for event in doc["traceEvents"]:
            assert event["ph"] in ("M", "i", "C", "X")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert event["dur"] >= 0
        json.dumps(doc)  # must be JSON-serialisable

    def test_time_domain_separation(self):
        doc = self.trace_document()
        by_phase = {}
        for event in doc["traceEvents"]:
            by_phase.setdefault(event["ph"], []).append(event)
        assert all(e["pid"] == SIM_PID for e in by_phase["i"])
        assert all(e["pid"] == SIM_PID for e in by_phase["C"])
        assert all(e["pid"] == WALL_PID for e in by_phase["X"])
        names = {(e["pid"], e["args"]["name"]) for e in by_phase["M"]
                 if e["name"] == "process_name"}
        assert names == {(SIM_PID, "sim-time"), (WALL_PID, "wall-time")}

    def test_counters_numeric_only(self):
        doc = self.trace_document()
        counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
        assert counter["name"] == "ddio.events"
        assert counter["args"] == {"hits": 5, "misses": 2}

    def test_sim_timestamps_are_microseconds(self):
        doc = self.trace_document()
        instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert instant["ts"] == pytest.approx(1.0 * 1e6)


GEOM = CacheGeometry(ways=4, sets_per_slice=8, slices=2)


class TestLlcStats:
    def workload(self, llc):
        full = GEOM.full_mask
        for addr in range(0, 64 * 200, 64):
            llc.access(addr, full, write=(addr % 128 == 0))
        llc.ddio_write_batch(list(range(0, 64 * 64, 64)), 0b1100)
        llc.ddio_write(0, 0b1100)
        llc.device_read(64)
        return llc.stats()

    def test_counters_populate(self):
        stats = self.workload(SlicedLLC(GEOM))
        assert stats["fills"] > 0
        assert stats["evictions"] > 0
        assert stats["writebacks"] > 0
        assert stats["ddio_hits"] + stats["ddio_misses"] == 65

    def test_backends_agree(self):
        scalar = self.workload(SlicedLLC(GEOM, backend="scalar"))
        array = self.workload(SlicedLLC(GEOM, backend="array"))
        assert scalar == array

    def test_stats_survive_flush(self):
        llc = SlicedLLC(GEOM)
        before = self.workload(llc)
        llc.flush()
        assert llc.stats() == before

    def test_device_read_never_counts(self):
        llc = SlicedLLC(GEOM)
        llc.device_read_batch(list(range(0, 64 * 8, 64)))
        assert llc.stats()["fills"] == 0
        assert llc.stats()["ddio_misses"] == 0


def traced_tiny_fig11():
    tracer = Tracer()
    ring = tracer.add_sink(RingBufferSink(capacity=None))
    with tracing(tracer):
        result = fig11_timeline.run(t_grow=0.5, t_ddio=1.0, t_end=1.5,
                                    spec=TINY_PLATFORM)
    return ring, result


class TestReconstruction:
    """Acceptance: recorders are views over the event stream."""

    def test_fig11_timeline_matches_result(self):
        ring, result = traced_tiny_fig11()
        assert views.history_from_events(ring) == result.daemon_history
        assert views.times(ring) == list(result.times)
        assert views.ddio_mask_timeline(ring) == list(result.ddio_masks)
        reconstructed = views.mask_timeline(ring)
        for name, masks in result.masks.items():
            assert reconstructed[name] == list(masks)

    def test_metrics_recorder_reconstruction(self):
        tracer, ring = make_tracer()
        scen = leaky_dma_scenario(packet_size=512, spec=TINY_PLATFORM)
        with tracing(tracer):
            metrics = scen.sim.run(0.2)
        clone = views.metrics_from_events(ring)
        assert clone.records == metrics.records

    def test_fsm_and_llc_events_present(self):
        ring, _ = traced_tiny_fig11()
        assert views.select(ring, "fsm", "transition")
        assert views.select(ring, "mask", "tenant")
        assert views.select(ring, "daemon", "iteration")
        assert views.select(ring, "dma", "burst")
        llc_counters = views.select(ring, "llc", "events")
        assert llc_counters
        assert sum(e.args["fills"] for e in llc_counters) > 0


class TestDeterminism:
    def test_identical_runs_identical_event_keys(self):
        def keys():
            tracer, ring = make_tracer()
            spec = dataclasses.replace(TINY_PLATFORM, llc_backend="array")
            scen = leaky_dma_scenario(packet_size=512, spec=spec)
            with tracing(tracer):
                scen.sim.run(0.3)
            return [e.key() for e in ring.events()]

        first, second = keys(), keys()
        assert len(first) > 0
        assert first == second


class TestOverheadGuard:
    def test_disabled_tracer_under_five_percent(self):
        """The hooks cost < 5% when tracing is off (best of three)."""
        spec = dataclasses.replace(TINY_PLATFORM, llc_backend="array")

        def timed(tracer):
            scen = leaky_dma_scenario(packet_size=512, spec=spec)
            t0 = time.perf_counter()
            if tracer is None:
                scen.sim.run(0.3)
            else:
                with tracing(tracer):
                    scen.sim.run(0.3)
            return time.perf_counter() - t0

        timed(None)  # warm caches/JIT-ish effects before measuring
        best = min(timed(Tracer(enabled=False)) / timed(None)
                   for _ in range(3))
        assert best < 1.05, f"disabled-tracer overhead {best - 1:.1%}"

"""Tests for the tracing & telemetry subsystem (repro.obs).

Covers the tracer contract (near-zero overhead when disabled, ordering
determinism), the three sinks (ring buffer, JSONL, Perfetto JSON schema),
the sampled LLC event counters on both backends, and the headline
acceptance property: the legacy recorders are exactly reconstructible
from the event stream of a traced Fig. 11 run.
"""

import dataclasses
import io
import json
import time

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import SlicedLLC
from repro.experiments import fig11_timeline
from repro.experiments.common import leaky_dma_scenario
from repro.obs import (NULL_TRACER, JsonlSink, PerfettoSink, RingBufferSink,
                       Tracer, current_tracer, event_from_dict,
                       event_to_dict, install_tracer, perfetto_document,
                       tracing, views)
from repro.obs.merge import (ShardWriter, TraceShard, merged_document,
                             read_shard, write_merged)
from repro.obs.ring import StructRing
from repro.obs.sinks import SIM_PID, WALL_PID
from repro.obs.tracer import _sample_hash
from repro.obs.views import SampledStreamError
from repro.sim.config import TINY_PLATFORM


def make_tracer():
    tracer = Tracer()
    ring = tracer.add_sink(RingBufferSink(capacity=None))
    return tracer, ring


class TestTracer:
    def test_phases_and_sequence(self):
        tracer, ring = make_tracer()
        tracer.set_sim_time(1.5)
        tracer.instant("fsm", "transition", src="low-keep", dst="io-demand")
        tracer.counter("ddio", "events", hits=3, misses=1)
        tracer.complete("sim", "quantum", 0.25, t=1.6)
        events = ring.events()
        assert [e.phase for e in events] == ["i", "C", "X"]
        assert [e.seq for e in events] == [0, 1, 2]
        assert all(e.ts == 1.5 for e in events)
        assert events[2].dur == 0.25

    def test_span_measures_wall_time(self):
        tracer, ring = make_tracer()
        with tracer.span("dma", "burst", vf="vf0"):
            time.sleep(0.01)
        (event,) = ring.events()
        assert event.phase == "X" and event.dur >= 0.01
        assert event.args == {"vf": "vf0"}

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(enabled=False)
        ring = tracer.add_sink(RingBufferSink())
        tracer.instant("a", "b")
        tracer.counter("a", "b", x=1)
        tracer.complete("a", "b", 0.1)
        with tracer.span("a", "b"):
            pass
        assert len(ring) == 0

    def test_null_tracer_is_default_and_inert(self):
        assert current_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("a", "b"):
            pass  # must be usable without error

    def test_install_and_restore(self):
        tracer, _ = make_tracer()
        previous = install_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            install_tracer(previous)
        assert current_tracer() is previous

    def test_tracing_scope_restores_on_exit(self):
        tracer, _ = make_tracer()
        with tracing(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NULL_TRACER
        with pytest.raises(RuntimeError):
            with tracing(tracer):
                raise RuntimeError("boom")
        assert current_tracer() is NULL_TRACER

    def test_profiling_accumulates_shares(self):
        tracer = Tracer(profiling=True)
        tracer.profile_add("engine.workloads", 3.0)
        tracer.complete("dma", "burst", 1.0)
        shares = tracer.profile_shares()
        assert shares["engine.workloads"] == pytest.approx(0.75)
        assert shares["dma.burst"] == pytest.approx(0.25)
        assert Tracer(profiling=True).profile_shares() == {}


class TestSinks:
    def test_ring_buffer_capacity(self):
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink(capacity=3))
        for i in range(5):
            tracer.instant("t", "e", i=i)
        assert [e.args["i"] for e in ring.events()] == [2, 3, 4]

    def test_jsonl_roundtrip(self):
        tracer, ring = make_tracer()
        buffer = io.StringIO()
        tracer.add_sink(JsonlSink(buffer))
        tracer.set_sim_time(0.5)
        tracer.instant("mask", "ddio", mask=0x600, ways=2)
        tracer.complete("sim", "quantum", 0.1, t=0.6)
        tracer.close()
        lines = buffer.getvalue().strip().splitlines()
        decoded = [event_from_dict(json.loads(line)) for line in lines]
        assert decoded == ring.events()

    def test_event_dict_roundtrip(self):
        tracer, ring = make_tracer()
        tracer.counter("llc", "events", fills=10, evictions=2)
        (event,) = ring.events()
        assert event_from_dict(event_to_dict(event)) == event

    def test_jsonl_to_path(self, tmp_path):
        tracer, _ = make_tracer()
        path = tmp_path / "trace.jsonl"
        tracer.add_sink(JsonlSink(path))
        tracer.instant("a", "b")
        tracer.close()
        assert json.loads(path.read_text())["cat"] == "a"


class TestPerfettoSchema:
    def trace_document(self):
        tracer, ring = make_tracer()
        tracer.set_sim_time(1.0)
        tracer.instant("fsm", "transition", src="low-keep", dst="reclaim")
        tracer.counter("ddio", "events", hits=5, misses=2, note="x")
        tracer.complete("dma", "burst", 0.02, vf="vf0", packets=8)
        return perfetto_document(ring.events())

    def test_document_shape(self):
        doc = self.trace_document()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        for event in doc["traceEvents"]:
            assert event["ph"] in ("M", "i", "C", "X")
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert event["dur"] >= 0
        json.dumps(doc)  # must be JSON-serialisable

    def test_time_domain_separation(self):
        doc = self.trace_document()
        by_phase = {}
        for event in doc["traceEvents"]:
            by_phase.setdefault(event["ph"], []).append(event)
        assert all(e["pid"] == SIM_PID for e in by_phase["i"])
        assert all(e["pid"] == SIM_PID for e in by_phase["C"])
        assert all(e["pid"] == WALL_PID for e in by_phase["X"])
        names = {(e["pid"], e["args"]["name"]) for e in by_phase["M"]
                 if e["name"] == "process_name"}
        assert names == {(SIM_PID, "sim-time"), (WALL_PID, "wall-time")}

    def test_counters_numeric_only(self):
        doc = self.trace_document()
        counter = next(e for e in doc["traceEvents"] if e["ph"] == "C")
        assert counter["name"] == "ddio.events"
        assert counter["args"] == {"hits": 5, "misses": 2}

    def test_sim_timestamps_are_microseconds(self):
        doc = self.trace_document()
        instant = next(e for e in doc["traceEvents"] if e["ph"] == "i")
        assert instant["ts"] == pytest.approx(1.0 * 1e6)


class TestStructRing:
    def test_unbounded_ring_grows(self):
        tracer, ring = make_tracer()
        for i in range(3000):
            tracer.instant("t", "e", i=i)
        assert len(tracer.ring) == 3000
        assert tracer.dropped == 0
        assert [e.args["i"] for e in ring.events()] == list(range(3000))

    def test_bounded_ring_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.instant("t", "e", i=i)
        assert len(tracer.ring) == 4
        assert tracer.ring.total == 10
        assert tracer.dropped == 6
        assert [e.args["i"] for e in tracer.events()] == [6, 7, 8, 9]

    def test_int_float_fidelity(self):
        """Inline numeric slots restore Python ints exactly — a counter
        of 2**40 events must not come back as a float."""
        tracer = Tracer()
        tracer.counter("t", "e", small=7, big=2 ** 40, rate=0.25,
                       flag=True)
        (event,) = tracer.events()
        assert event.args["small"] == 7 and \
            type(event.args["small"]) is int
        assert event.args["big"] == 2 ** 40 and \
            type(event.args["big"]) is int
        assert event.args["rate"] == 0.25 and \
            type(event.args["rate"]) is float
        assert event.args["flag"] is True

    def test_rich_args_roundtrip(self):
        tracer = Tracer()
        args = {"vf": "vf0", "order": [2, 0, 1],
                "nested": {"a": 1, "b": [0.5]}}
        tracer.instant("t", "e", **args)
        (event,) = tracer.events()
        assert event.args == args

    def test_category_counts(self):
        tracer = Tracer()
        tracer.instant("fsm", "transition")
        tracer.instant("fsm", "transition")
        tracer.counter("ddio", "events", hits=1)
        assert tracer.category_counts() == {"fsm": 2, "ddio": 1}

    def test_bounded_ring_drops_stale_rich_args(self):
        """Rich (non-inline) payloads of overwritten rows are released."""
        ring = StructRing(capacity=2)
        for i in range(6):
            ring.push(i, 0.0, 0.0, 0.0, 0, "t", "e", {"blob": [i] * 4})
        assert len(ring._args) == 2
        assert [e.args["blob"][0] for e in ring.to_events()] == [4, 5]


def sampled_tiny_run(sample, seed, duration=0.3):
    tracer = Tracer(sample=sample, seed=seed)
    spec = dataclasses.replace(TINY_PLATFORM, llc_backend="array")
    scen = leaky_dma_scenario(packet_size=512, spec=spec)
    with tracing(tracer):
        scen.sim.run(duration)
    return tracer


class TestSampling:
    def test_mode_marker_is_first_event(self):
        tracer = Tracer(sample=4, seed=9)
        event = tracer.events()[0]
        assert (event.category, event.name) == ("obs", "mode")
        assert event.args == {"sample": 4, "seed": 9}
        assert views.sampling_mode(tracer.events()) == \
            {"sample": 4, "seed": 9}

    def test_sample_hash_deterministic_and_seed_sensitive(self):
        chosen = {seed: {i for i in range(1000)
                         if _sample_hash(seed, i) % 8 == 0}
                  for seed in (0, 1)}
        assert chosen[0] and chosen[0] != chosen[1]
        assert chosen[0] == {i for i in range(1000)
                             if _sample_hash(0, i) % 8 == 0}

    def test_same_seed_same_sampled_event_set(self):
        first = sampled_tiny_run(sample=3, seed=5)
        second = sampled_tiny_run(sample=3, seed=5)
        keys_first = [e.key() for e in first.events()]
        keys_second = [e.key() for e in second.events()]
        assert len(keys_first) > 1  # marker plus sampled quanta
        assert keys_first == keys_second

    def test_sampled_is_subset_of_full(self):
        sampled = sampled_tiny_run(sample=3, seed=5)
        full = Tracer()
        spec = dataclasses.replace(TINY_PLATFORM, llc_backend="array")
        scen = leaky_dma_scenario(packet_size=512, spec=spec)
        with tracing(full):
            scen.sim.run(0.3)
        sampled_quanta = len(views.select(sampled.events(), "sim",
                                          "quantum"))
        full_quanta = len(views.select(full.events(), "sim", "quantum"))
        assert 0 < sampled_quanta < full_quanta

    def test_views_refuse_sampled_stream(self):
        tracer = sampled_tiny_run(sample=2, seed=0)
        with pytest.raises(SampledStreamError, match="sampled-mode"):
            views.metrics_from_events(tracer.events())
        with pytest.raises(SampledStreamError):
            views.history_from_events(tracer.events())

    def test_views_refuse_sampled_stream_after_jsonl(self):
        """The mode marker survives serialization, so the guard holds
        on a stream read back from disk too."""
        tracer = sampled_tiny_run(sample=2, seed=0)
        lines = [json.dumps(event_to_dict(e)) for e in tracer.events()]
        decoded = [event_from_dict(json.loads(line)) for line in lines]
        with pytest.raises(SampledStreamError):
            views.metrics_from_events(decoded)

    def test_full_fidelity_has_no_mode_marker(self):
        tracer, ring = make_tracer()
        tracer.instant("metrics", "quantum")
        assert views.sampling_mode(ring) is None


GEOM = CacheGeometry(ways=4, sets_per_slice=8, slices=2)


class TestLlcStats:
    def workload(self, llc):
        full = GEOM.full_mask
        for addr in range(0, 64 * 200, 64):
            llc.access(addr, full, write=(addr % 128 == 0))
        llc.ddio_write_batch(list(range(0, 64 * 64, 64)), 0b1100)
        llc.ddio_write(0, 0b1100)
        llc.device_read(64)
        return llc.stats()

    def test_counters_populate(self):
        stats = self.workload(SlicedLLC(GEOM))
        assert stats["fills"] > 0
        assert stats["evictions"] > 0
        assert stats["writebacks"] > 0
        assert stats["ddio_hits"] + stats["ddio_misses"] == 65

    def test_backends_agree(self):
        scalar = self.workload(SlicedLLC(GEOM, backend="scalar"))
        array = self.workload(SlicedLLC(GEOM, backend="array"))
        assert scalar == array

    def test_stats_survive_flush(self):
        llc = SlicedLLC(GEOM)
        before = self.workload(llc)
        llc.flush()
        assert llc.stats() == before

    def test_device_read_never_counts(self):
        llc = SlicedLLC(GEOM)
        llc.device_read_batch(list(range(0, 64 * 8, 64)))
        assert llc.stats()["fills"] == 0
        assert llc.stats()["ddio_misses"] == 0


def traced_tiny_fig11():
    tracer = Tracer()
    ring = tracer.add_sink(RingBufferSink(capacity=None))
    with tracing(tracer):
        result = fig11_timeline.run(t_grow=0.5, t_ddio=1.0, t_end=1.5,
                                    spec=TINY_PLATFORM)
    return ring, result


class TestReconstruction:
    """Acceptance: recorders are views over the event stream."""

    def test_fig11_timeline_matches_result(self):
        ring, result = traced_tiny_fig11()
        assert views.history_from_events(ring) == result.daemon_history
        assert views.times(ring) == list(result.times)
        assert views.ddio_mask_timeline(ring) == list(result.ddio_masks)
        reconstructed = views.mask_timeline(ring)
        for name, masks in result.masks.items():
            assert reconstructed[name] == list(masks)

    def test_metrics_recorder_reconstruction(self):
        tracer, ring = make_tracer()
        scen = leaky_dma_scenario(packet_size=512, spec=TINY_PLATFORM)
        with tracing(tracer):
            metrics = scen.sim.run(0.2)
        clone = views.metrics_from_events(ring)
        assert clone.records == metrics.records

    def test_fsm_and_llc_events_present(self):
        ring, _ = traced_tiny_fig11()
        assert views.select(ring, "fsm", "transition")
        assert views.select(ring, "mask", "tenant")
        assert views.select(ring, "daemon", "iteration")
        assert views.select(ring, "dma", "burst")
        llc_counters = views.select(ring, "llc", "events")
        assert llc_counters
        assert sum(e.args["fills"] for e in llc_counters) > 0


class TestDeterminism:
    def test_identical_runs_identical_event_keys(self):
        def keys():
            tracer, ring = make_tracer()
            spec = dataclasses.replace(TINY_PLATFORM, llc_backend="array")
            scen = leaky_dma_scenario(packet_size=512, spec=spec)
            with tracing(tracer):
                scen.sim.run(0.3)
            return [e.key() for e in ring.events()]

        first, second = keys(), keys()
        assert len(first) > 0
        assert first == second


def make_shard_events(n, wall0=0.0):
    tracer = Tracer(clock=iter(
        wall0 + 0.001 * i for i in range(2 * n + 4)).__next__)
    for i in range(n):
        tracer.set_sim_time(0.1 * i)
        tracer.instant("test", "tick", i=i)
    tracer.complete("test", "span", 0.01, i=n)
    return tracer.events()


class TestMerge:
    def test_shard_roundtrip(self, tmp_path):
        path = tmp_path / "shard-0.jsonl"
        writer = ShardWriter(str(path), index=3, label="fig8[x=1]",
                             sweep="fig8", params="[('x', 1)]",
                             sample=None, seed=0)
        writer.heartbeat("start")
        events = make_shard_events(4)
        writer.write_events(events)
        writer.heartbeat("done", events=len(events), dropped=0,
                         wall_s=0.5)
        writer.close()
        shard = read_shard(str(path))
        assert shard.index == 3 and shard.label == "fig8[x=1]"
        assert shard.meta["schema"] == "repro-trace-shard/1"
        assert shard.epoch_unix > 0
        assert not shard.sampled
        assert [h["status"] for h in shard.heartbeats] == ["start", "done"]
        assert shard.heartbeats[-1]["wall_s"] == 0.5
        assert shard.events == events

    def two_shards(self):
        return [
            TraceShard(meta={"index": 0, "label": "p0",
                             "epoch_unix": 100.0},
                       events=make_shard_events(2)),
            TraceShard(meta={"index": 1, "label": "p1",
                             "epoch_unix": 100.5},
                       events=make_shard_events(2)),
        ]

    def test_merged_layout_and_ordering(self):
        # Present shards out of order: the merge must sort by index.
        doc = merged_document(list(reversed(self.two_shards())))
        events = doc["traceEvents"]
        json.dumps(doc)  # valid JSON document
        assert doc["otherData"]["shards"] == 2
        assert doc["otherData"]["shard_labels"] == ["p0", "p1"]
        # Shard k occupies pids 2k+1 (sim) and 2k+2 (wall).
        assert {e["pid"] for e in events} == {1, 2, 3, 4}
        names = {(e["pid"], e["args"]["name"]) for e in events
                 if e.get("name") == "process_name"}
        assert names == {(1, "p0 sim-time"), (2, "p0 wall-time"),
                         (3, "p1 sim-time"), (4, "p1 wall-time")}

    def test_merged_clock_domain_offsets(self):
        """Wall spans are shifted by each shard's epoch offset from the
        earliest shard, aligning every worker on one timeline."""
        shards = self.two_shards()
        doc = merged_document(shards)
        spans = {e["pid"]: e for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        wall0 = shards[0].events[-1].wall
        wall1 = shards[1].events[-1].wall
        assert spans[2]["ts"] == pytest.approx(wall0 * 1e6)
        assert spans[4]["ts"] == pytest.approx((wall1 + 0.5) * 1e6)

    def test_single_shard_degenerates_to_classic_layout(self):
        events = make_shard_events(2)
        doc = merged_document(
            [TraceShard(meta={"index": 0, "label": ""}, events=events)])
        classic = perfetto_document(events)
        assert doc["traceEvents"] == classic["traceEvents"]

    def test_write_merged_summary(self, tmp_path):
        paths = []
        for k in range(2):
            path = tmp_path / f"shard-{k}.jsonl"
            writer = ShardWriter(str(path), index=k, label=f"p{k}",
                                 sweep="s", params="", sample=None,
                                 seed=0)
            writer.heartbeat("start")
            events = make_shard_events(3)
            writer.write_events(events)
            writer.heartbeat("done", events=len(events), dropped=k,
                             wall_s=0.1)
            writer.close()
            paths.append(str(path))
        out = tmp_path / "merged.json"
        summary = write_merged(paths, str(out))
        assert summary == {"shards": 2, "events": 8, "dropped": 1,
                           "incomplete": 0}
        doc = json.loads(out.read_text())
        assert doc["otherData"]["producer"] == "repro.obs.merge"
        assert doc["traceEvents"]

    def test_incomplete_shard_is_counted(self, tmp_path):
        path = tmp_path / "shard-0.jsonl"
        writer = ShardWriter(str(path), index=0, label="p0", sweep="s")
        writer.heartbeat("start")  # no "done": the worker died
        writer.close()
        summary = write_merged([str(path)], str(tmp_path / "out.json"))
        assert summary["incomplete"] == 1


def shard_point(n):
    """Module-level sweep point that emits ``n`` trace events."""
    tracer = current_tracer()
    for i in range(n):
        tracer.instant("point", "tick", i=i)
    return n * 2


class TestRunnerShards:
    def run_sweep(self, tmp_path, jobs):
        from repro.exec.runner import ParallelRunner, TraceFanout
        from repro.exec.sweep import SweepSpec
        spec = SweepSpec.from_points("shardtest", shard_point,
                                     [{"n": n} for n in (2, 3, 4, 5)])
        fanout = TraceFanout(str(tmp_path / "shards"))
        with ParallelRunner(jobs=jobs, trace=fanout) as runner:
            results = runner.run(spec)
            out = tmp_path / "merged.json"
            summary = runner.write_merged_trace(str(out))
        return results, summary, out

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_traced_sweep_produces_merged_document(self, tmp_path, jobs):
        results, summary, out = self.run_sweep(tmp_path, jobs)
        assert results == [4, 6, 8, 10]
        assert summary["shards"] == 4
        assert summary["events"] == 2 + 3 + 4 + 5
        assert summary["dropped"] == 0 and summary["incomplete"] == 0
        doc = json.loads(out.read_text())
        # 4 shards x 2 time domains, pids 1..8.
        assert {e["pid"] for e in doc["traceEvents"]} == set(range(1, 9))

    def test_trace_skips_cache_reads_but_writes(self, tmp_path):
        from repro.exec.cache import ResultCache
        from repro.exec.runner import ParallelRunner, TraceFanout
        from repro.exec.sweep import SweepSpec
        cache = ResultCache(str(tmp_path / "cache"))
        spec = SweepSpec.from_points("shardtest", shard_point,
                                     [{"n": 2}, {"n": 3}])
        with ParallelRunner(jobs=1, cache=cache) as runner:
            runner.run(spec)  # populate the cache
        fanout = TraceFanout(str(tmp_path / "shards"))
        with ParallelRunner(jobs=1, cache=cache, trace=fanout) as runner:
            results = runner.run(spec)
            summary = runner.write_merged_trace(
                str(tmp_path / "merged.json"))
        assert results == [4, 6]
        # Cached points were recomputed so their shards carry events.
        assert summary["shards"] == 2 and summary["events"] == 5


class TestOverheadGuard:
    def test_disabled_tracer_under_five_percent(self):
        """The hooks cost < 5% when tracing is off (best of three)."""
        spec = dataclasses.replace(TINY_PLATFORM, llc_backend="array")

        def timed(tracer):
            scen = leaky_dma_scenario(packet_size=512, spec=spec)
            t0 = time.perf_counter()
            if tracer is None:
                scen.sim.run(0.3)
            else:
                with tracing(tracer):
                    scen.sim.run(0.3)
            return time.perf_counter() - t0

        timed(None)  # warm caches/JIT-ish effects before measuring
        best = min(timed(Tracer(enabled=False)) / timed(None)
                   for _ in range(3))
        assert best < 1.05, f"disabled-tracer overhead {best - 1:.1%}"

"""Unit tests for the sliced LLC: hits, fills, LRU, CAT and DDIO semantics."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.llc import DDIO_OWNER, SlicedLLC

#: A single-set geometry makes LRU behaviour fully observable.
ONE_SET = CacheGeometry(ways=4, sets_per_slice=1, slices=1)


def addrs_in_same_set(geometry, count):
    """Distinct line addresses that all map to the same (slice, set)."""
    target = geometry.frame_index(0)[0]
    found = [0]
    addr = 64
    while len(found) < count:
        if geometry.frame_index(addr)[0] == target:
            found.append(addr)
        addr += 64
    return found


class TestBasicAccess:
    def test_miss_then_hit(self, llc):
        full = llc.geometry.full_mask
        first = llc.access(0x1000, full)
        assert not first.hit and first.fill
        second = llc.access(0x1000, full)
        assert second.hit

    def test_same_line_bytes_hit(self, llc):
        full = llc.geometry.full_mask
        llc.access(0x1000, full)
        assert llc.access(0x1030, full).hit  # same 64B line

    def test_contains_and_way_of(self, llc):
        full = llc.geometry.full_mask
        assert not llc.contains(0x2000)
        llc.access(0x2000, full)
        assert llc.contains(0x2000)
        assert llc.way_of(0x2000) is not None
        assert llc.way_of(0x9999999) is None

    def test_valid_lines_counts_fills(self, llc):
        full = llc.geometry.full_mask
        for i in range(10):
            llc.access(i * 64, full)
        assert llc.valid_lines() == 10

    def test_flush_invalidates(self, llc):
        full = llc.geometry.full_mask
        llc.access(0x1000, full)
        llc.flush()
        assert not llc.contains(0x1000)
        assert llc.valid_lines() == 0

    def test_empty_mask_allocation_rejected(self, llc):
        with pytest.raises(ValueError):
            llc.access(0x1000, 0)

    def test_no_allocate_miss_does_not_fill(self, llc):
        out = llc.access(0x1000, 0, allocate=False)
        assert not out.hit and not out.fill
        assert not llc.contains(0x1000)


class TestLRUWithinMask:
    def test_lru_victim_is_least_recent(self):
        llc = SlicedLLC(ONE_SET)
        full = ONE_SET.full_mask
        lines = addrs_in_same_set(ONE_SET, 5)
        for addr in lines[:4]:
            llc.access(addr, full)
        llc.access(lines[0], full)          # refresh line 0
        out = llc.access(lines[4], full)    # must evict line 1 (oldest)
        assert out.evicted
        assert llc.contains(lines[0])
        assert not llc.contains(lines[1])

    def test_fill_prefers_invalid_way(self):
        llc = SlicedLLC(ONE_SET)
        lines = addrs_in_same_set(ONE_SET, 3)
        llc.access(lines[0], 0b0011)
        out = llc.access(lines[1], 0b0011)
        assert out.fill and not out.evicted  # second way was free

    def test_eviction_within_mask_only(self):
        """CAT: a masked agent may only displace lines in its own ways."""
        llc = SlicedLLC(ONE_SET)
        lines = addrs_in_same_set(ONE_SET, 6)
        llc.access(lines[0], 0b1100)  # victim lives in ways 2-3
        llc.access(lines[1], 0b1100)
        for addr in lines[2:5]:       # thrash ways 0-1
            llc.access(addr, 0b0011)
        # Lines in ways 2-3 must have survived the way-0-1 thrashing.
        assert llc.contains(lines[0])
        assert llc.contains(lines[1])

    def test_hit_allowed_in_foreign_way(self):
        """Footnote 1: a core hits lines in ways outside its mask."""
        llc = SlicedLLC(ONE_SET)
        lines = addrs_in_same_set(ONE_SET, 2)
        llc.access(lines[0], 0b1000)          # allocated in way 3
        out = llc.access(lines[0], 0b0001)    # masked to way 0 only
        assert out.hit

    def test_mask_outside_geometry_rejected(self):
        llc = SlicedLLC(ONE_SET)
        with pytest.raises(ValueError):
            llc.access(0, 0b10000)  # way 4 of a 4-way cache


class TestDirtyAndWriteback:
    def test_clean_eviction_no_writeback(self):
        llc = SlicedLLC(ONE_SET)
        lines = addrs_in_same_set(ONE_SET, 5)
        for addr in lines[:4]:
            llc.access(addr, ONE_SET.full_mask)           # clean reads
        out = llc.access(lines[4], ONE_SET.full_mask)
        assert out.evicted and not out.writeback

    def test_dirty_eviction_writes_back(self):
        llc = SlicedLLC(ONE_SET)
        lines = addrs_in_same_set(ONE_SET, 5)
        llc.access(lines[0], ONE_SET.full_mask, write=True)
        for addr in lines[1:4]:
            llc.access(addr, ONE_SET.full_mask)
        out = llc.access(lines[4], ONE_SET.full_mask)
        assert out.evicted and out.writeback

    def test_write_hit_marks_dirty(self):
        llc = SlicedLLC(ONE_SET)
        lines = addrs_in_same_set(ONE_SET, 5)
        llc.access(lines[0], ONE_SET.full_mask)           # clean fill
        llc.access(lines[0], ONE_SET.full_mask, write=True)
        for addr in lines[1:4]:
            llc.access(addr, ONE_SET.full_mask)
        out = llc.access(lines[4], ONE_SET.full_mask)
        assert out.writeback


class TestDdioSemantics:
    def test_ddio_write_update_on_hit(self, llc):
        full = llc.geometry.full_mask
        llc.access(0x5000, full, owner=7)
        out = llc.ddio_write(0x5000, 0b11)
        assert out.hit  # write update: line present anywhere

    def test_ddio_write_allocate_on_miss(self, llc):
        ways = llc.geometry.ways
        ddio_mask = 0b11 << (ways - 2)
        out = llc.ddio_write(0x6000, ddio_mask)
        assert not out.hit and out.fill
        assert llc.way_of(0x6000) >= ways - 2

    def test_ddio_owner_recorded(self, llc):
        llc.ddio_write(0x7000, 0b11)
        assert llc.occupancy_by_owner().get(DDIO_OWNER) == 1

    def test_device_read_hit_from_llc(self, llc):
        full = llc.geometry.full_mask
        llc.access(0x8000, full)
        assert llc.device_read(0x8000).hit

    def test_device_read_never_allocates(self, llc):
        out = llc.device_read(0x9000)
        assert not out.hit
        assert not llc.contains(0x9000)

    def test_write_update_keeps_line_in_place(self):
        """A DDIO hit updates the line where it lives; it does not
        migrate into the DDIO ways."""
        llc = SlicedLLC(ONE_SET)
        lines = addrs_in_same_set(ONE_SET, 1)
        llc.access(lines[0], 0b0001, owner=3)  # core fills way 0
        way_before = llc.way_of(lines[0])
        llc.ddio_write(lines[0], 0b1000)
        assert llc.way_of(lines[0]) == way_before


class TestOwnerTracking:
    def test_occupancy_by_owner(self, llc):
        full = llc.geometry.full_mask
        for i in range(5):
            llc.access(0x10000 + i * 64, full, owner=1)
        for i in range(3):
            llc.access(0x20000 + i * 64, full, owner=2)
        occ = llc.occupancy_by_owner()
        assert occ[1] == 5
        assert occ[2] == 3

    def test_victim_owner_reported(self):
        llc = SlicedLLC(ONE_SET)
        lines = addrs_in_same_set(ONE_SET, 5)
        for addr in lines[:4]:
            llc.access(addr, ONE_SET.full_mask, owner=9)
        out = llc.access(lines[4], ONE_SET.full_mask, owner=1)
        assert out.victim_owner == 9

"""Unit tests for packet-consuming workloads and the virtual switch."""

import numpy as np
import pytest

from repro.pci.ring import DescRing
from repro.sim.config import TINY_PLATFORM
from repro.sim.platform import Platform
from repro.vswitch.flowtable import FlowTables
from repro.vswitch.ovs import OvsDataplane
from repro.workloads.l3fwd import L3Fwd
from repro.workloads.netbase import EMPTY_POLL_CYCLES, RingConsumer
from repro.workloads.nfv import NfvChain
from repro.workloads.redis import RedisServer
from repro.workloads.testpmd import TestPmd
from repro.workloads.ycsb import WORKLOAD_C


def make_ring(platform, entries=64):
    return DescRing(entries, base_addr=platform.alloc_region(1 << 20))


def bind(platform, workload, cores=(0,)):
    ports = [platform.core_port(c, 1) for c in cores]
    workload.bind(ports, platform.alloc_region(1 << 30),
                  np.random.default_rng(3))
    workload.begin_quantum(0.0)
    return workload


class TestTestPmd:
    def test_consumes_posted_packets(self, platform):
        ring = make_ring(platform)
        pmd = bind(platform, TestPmd("pmd", [ring]))
        for _ in range(10):
            ring.post(256)
        pmd.run(100_000, 0.0)
        assert pmd.packets_processed == 10
        assert ring.occupancy == 0
        assert pmd.tx_bytes == 2560

    def test_idles_on_empty_ring(self, platform):
        ring = make_ring(platform)
        pmd = bind(platform, TestPmd("pmd", [ring]))
        pmd.run(10_000, 0.0)
        assert pmd.packets_processed == 0
        # Budget still consumed spinning.
        assert pmd.ports[0].block.cycles >= 9_000

    def test_round_robin_across_rings(self, platform):
        rings = [make_ring(platform), make_ring(platform)]
        pmd = bind(platform, TestPmd("pmd", rings))
        for ring in rings:
            for _ in range(5):
                ring.post(64)
        pmd.run(100_000, 0.0)
        assert pmd.packets_processed == 10

    def test_latency_includes_queueing(self, platform):
        ring = make_ring(platform)
        pmd = bind(platform, TestPmd("pmd", [ring]))
        ring.post(64, now=0.0)
        pmd.run(50_000, now=0.001)  # packet waited 1 ms
        assert pmd.stats.avg_latency_cycles \
            > 0.0005 * pmd.core_freq_hz

    def test_needs_a_ring(self):
        with pytest.raises(ValueError):
            TestPmd("pmd", [])


class TestConsumerStalls:
    def test_stall_skips_budget(self, platform):
        ring = make_ring(platform)
        pmd = TestPmd("pmd", [ring], stall_period=0.5,
                      stall_durations=(0.2,))
        bind(platform, pmd)
        ring.post(64)
        pmd.begin_quantum(0.5)   # stall scheduled at t=0.5 for 0.2 s
        pmd.run(50_000, 0.55)    # inside the stall window
        assert pmd.packets_processed == 0
        pmd.run(50_000, 0.75)    # stall over
        assert pmd.packets_processed == 1

    def test_no_stall_by_default(self, platform):
        ring = make_ring(platform)
        pmd = bind(platform, TestPmd("pmd", [ring]))
        ring.post(64)
        pmd.begin_quantum(10.0)
        pmd.run(50_000, 10.0)
        assert pmd.packets_processed == 1


class TestL3Fwd:
    def test_flow_table_lookup_issues_access(self, platform):
        ring = make_ring(platform)
        fwd = bind(platform, L3Fwd("fwd", [ring], n_flows=1000))
        ring.post(64, flow_id=7)
        fwd.run(50_000, 0.0)
        # Buffer line + table line = two LLC references at least.
        assert fwd.ports[0].block.llc_references >= 2

    def test_large_table_misses_more(self):
        results = {}
        for n_flows in (100, 1_000_000):
            platform = Platform(TINY_PLATFORM)
            ring = make_ring(platform)
            fwd = bind(platform, L3Fwd("fwd", [ring], n_flows=n_flows))
            rng = np.random.default_rng(0)
            for batch in range(20):
                for _ in range(50):
                    ring.post(64, flow_id=int(rng.integers(n_flows)))
                fwd.run(200_000, 0.0)
            block = fwd.ports[0].block
            results[n_flows] = block.llc_misses / block.llc_references
        assert results[1_000_000] > results[100]

    def test_rejects_zero_flows(self, platform):
        with pytest.raises(ValueError):
            L3Fwd("fwd", [make_ring(platform)], n_flows=0)


class TestNfvChain:
    def test_processes_and_updates_flow_state(self, platform):
        ring = make_ring(platform)
        chain = bind(platform, NfvChain("nf", [ring], n_flows=128))
        for i in range(20):
            ring.post(1500, flow_id=i)
        chain.run(300_000, 0.0)
        assert chain.packets_processed == 20
        block = chain.ports[0].block
        assert block.llc_references > 20 * 24  # buffers + tables

    def test_rejects_bad_config(self, platform):
        with pytest.raises(ValueError):
            NfvChain("nf", [make_ring(platform)], n_flows=0)


class TestRedis:
    def test_serves_requests(self, platform):
        ring = make_ring(platform)
        redis = bind(platform, RedisServer("r", [ring], WORKLOAD_C,
                                           n_records=1000))
        for i in range(10):
            ring.post(128, flow_id=i)
        redis.run(300_000, 0.0)
        assert redis.stats.ops == 10
        assert redis.tx_bytes == 10 * redis.value_bytes

    def test_latency_reporting(self, platform):
        ring = make_ring(platform)
        redis = bind(platform, RedisServer("r", [ring], WORKLOAD_C,
                                           n_records=1000))
        for i in range(30):
            ring.post(128, flow_id=i)
        redis.run(1_000_000, 0.0)
        assert redis.avg_latency_us() > 0
        assert redis.p99_latency_us() >= 0


class TestFlowTables:
    def test_emc_hit_after_install(self, platform):
        port = platform.core_port(0, 1)
        port.begin_quantum()
        tables = FlowTables(platform.alloc_region(1 << 24))
        first = tables.lookup(port, 42)
        second = tables.lookup(port, 42)
        assert not first.emc_hit and second.emc_hit
        assert first.cycles > second.cycles

    def test_emc_collision_evicts(self, platform):
        port = platform.core_port(0, 1)
        port.begin_quantum()
        tables = FlowTables(platform.alloc_region(1 << 24), emc_entries=8)
        tables.lookup(port, 1)
        tables.lookup(port, 9)   # same slot (9 % 8 == 1)
        assert not tables.lookup(port, 1).emc_hit

    def test_hit_rate_tracks(self, platform):
        port = platform.core_port(0, 1)
        port.begin_quantum()
        tables = FlowTables(platform.alloc_region(1 << 24))
        for _ in range(10):
            tables.lookup(port, 5)
        assert tables.emc_hit_rate == pytest.approx(0.9)

    def test_bad_sizes(self, platform):
        with pytest.raises(ValueError):
            FlowTables(0, emc_entries=0)


class TestOvs:
    def build_ovs(self, platform, n_rings=2):
        nic_rings = [make_ring(platform) for _ in range(n_rings)]
        virtio = [make_ring(platform) for _ in range(n_rings)]
        ovs = OvsDataplane("ovs", nic_rings,
                           routes=dict(enumerate(virtio)))
        bind(platform, ovs, cores=(0, 1))
        return ovs, nic_rings, virtio

    def test_forwards_by_route(self, platform):
        ovs, nic_rings, virtio = self.build_ovs(platform)
        nic_rings[0].post(256, flow_id=1)
        nic_rings[1].post(256, flow_id=2)
        ovs.run(200_000, 0.0)
        assert virtio[0].occupancy == 1
        assert virtio[1].occupancy == 1
        assert ovs.forwarded == 2

    def test_output_drop_when_virtio_full(self, platform):
        nic_ring = make_ring(platform, entries=64)
        virtio = make_ring(platform, entries=2)
        ovs = OvsDataplane("ovs", [nic_ring], routes={0: virtio})
        bind(platform, ovs, cores=(0,))
        for _ in range(5):
            nic_ring.post(64)
        ovs.run(200_000, 0.0)
        assert ovs.output_drops == 3
        assert virtio.occupancy == 2

    def test_missing_route_rejected(self, platform):
        with pytest.raises(ValueError):
            OvsDataplane("ovs", [make_ring(platform)], routes={})

    def test_cpp_reported(self, platform):
        ovs, nic_rings, _ = self.build_ovs(platform)
        for _ in range(20):
            nic_rings[0].post(64)
        ovs.run(300_000, 0.0)
        assert ovs.cycles_per_packet() > 0

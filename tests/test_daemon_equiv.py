"""Behaviour-preservation contract for the controller-plane refactor.

``tests/data/daemon_goldens.json`` was captured from the *pre-refactor*
monolithic ``IATDaemon`` (the Fig. 10/11 harnesses at two seeds each).
These tests replay the same harness calls through the refactored stack
— ``ControllerDaemon`` driving a registry-constructed ``IATPolicy`` —
and require the iteration history to match field-for-field: same
timestamps, FSM states, change kinds, DDIO widths, per-group way
counts, and action strings.  Any behavioural drift in the policy split
shows up here as a named field diff, not a flaky figure.
"""

import json
from pathlib import Path

import pytest

from repro.core import ControllerDaemon, IATParams, create_policy
from repro.experiments import fig10_shuffle, fig11_timeline
from repro.experiments.common import shuffle_scenario

GOLDENS = json.loads(
    (Path(__file__).parent / "data" / "daemon_goldens.json").read_text())
SEEDS = GOLDENS["meta"]["seeds"]


def serialize(history):
    """The goldens' field-for-field view of an iteration history."""
    return [{"time": entry.time, "state": entry.state.value,
             "kind": entry.kind.value, "ddio_ways": entry.ddio_ways,
             "group_ways": dict(entry.group_ways), "action": entry.action}
            for entry in history]


def assert_histories_equal(actual, golden):
    assert len(actual) == len(golden), \
        f"iteration count {len(actual)} != golden {len(golden)}"
    for i, (a, g) in enumerate(zip(actual, golden)):
        assert a == g, f"iteration {i} diverged: {a} != {g}"


@pytest.mark.parametrize("seed", SEEDS)
def test_fig11_history_matches_pre_refactor_golden(seed):
    result = fig11_timeline.run_point(seed=seed,
                                      **GOLDENS["meta"]["fig11_kwargs"])
    assert_histories_equal(serialize(result.daemon_history),
                           GOLDENS["fig11"][str(seed)])


@pytest.mark.parametrize("seed", SEEDS)
def test_fig10_iat_history_matches_pre_refactor_golden(seed):
    point = fig10_shuffle.run_one("iat", seed=seed,
                                  **GOLDENS["meta"]["fig10_kwargs"])
    assert_histories_equal(serialize(point.daemon_history),
                           GOLDENS["fig10"][str(seed)])


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_registry_constructed_iat_matches_shim(seed):
    """`create_policy("iat") + ControllerDaemon` is the same controller
    as the `IATDaemon` shim the figure harnesses construct."""
    kwargs = GOLDENS["meta"]["fig11_kwargs"]

    def run(attach):
        scenario = shuffle_scenario(packet_size=kwargs["packet_size"],
                                    seed=seed)
        daemon = attach(scenario)
        c4 = scenario.workloads["c4"]
        scenario.sim.at(kwargs["t_grow"],
                        lambda: c4.set_working_set(10 << 20))
        scenario.sim.run(kwargs["t_end"])
        return serialize(daemon.history)

    via_shim = run(lambda sc: sc.attach_controller(
        "iat", manage_ddio=False))
    via_registry = run(lambda sc: sc.attach_policy(
        "iat", {"manage_ddio": False}))
    assert_histories_equal(via_registry, via_shim)


def test_registry_iat_is_a_controller_daemon():
    scenario = shuffle_scenario(packet_size=1500, seed=SEEDS[0])
    daemon = scenario.attach_policy("iat")
    assert isinstance(daemon, ControllerDaemon)
    assert daemon.policy.params == IATParams()
    assert daemon.interval_s == IATParams().interval_s

"""Unit tests for the comparison policies (baseline, Core-only, I/O-iso)."""

import pytest

from repro.cache.cat import mask_ways
from repro.core.control import ControlPlane
from repro.core.policies import CoreOnlyPolicy, IOIsoPolicy, StaticPolicy
from repro.sim.config import TINY_PLATFORM
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant, TenantSet


def build(policy_cls, *, tenants=None, **kwargs):
    platform = Platform(TINY_PLATFORM)
    tenants = tenants or TenantSet([
        Tenant("net", cores=(0,), priority=Priority.PC, is_io=True,
               initial_ways=3),
        Tenant("be0", cores=(1,), priority=Priority.BE, initial_ways=2),
        Tenant("be1", cores=(2,), priority=Priority.BE, initial_ways=2),
        Tenant("pc", cores=(3,), priority=Priority.PC, initial_ways=2),
    ])
    for i, tenant in enumerate(tenants):
        tenant.cos_id = i + 1
        for core in tenant.cores:
            platform.cat.associate(core, tenant.cos_id)
    control = ControlPlane(platform.pqos, tenants, time_scale=1.0)
    policy = policy_cls(control, **kwargs)
    return platform, policy, tenants


def drive(platform, core, refs, misses):
    platform.counters.core(core).credit(
        instructions=10_000, cycles=10_000,
        llc_references=refs, llc_misses=misses)


class TestStaticPolicy:
    def test_applies_packed_layout_once(self):
        platform, policy, tenants = build(StaticPolicy)
        policy.on_start(0.0)
        assert mask_ways(platform.cat.get_mask(1)) == [0, 1, 2]
        assert mask_ways(platform.cat.get_mask(2)) == [3, 4]
        before = platform.cat.get_mask(1)
        policy.on_interval(1.0)
        assert platform.cat.get_mask(1) == before

    def test_explicit_masks(self):
        platform, policy, _ = build(
            StaticPolicy, explicit_masks={"net": 0b11, "be0": 0b1100,
                                          "be1": 0b110000, "pc": 0b11000000})
        policy.on_start(0.0)
        assert platform.cat.get_mask(2) == 0b1100

    def test_random_mode_keeps_io_at_bottom(self):
        for seed in range(8):
            platform, policy, tenants = build(StaticPolicy,
                                              shuffle_seed=seed)
            policy.on_start(0.0)
            net_mask = policy.layout.group_masks["net"]
            assert mask_ways(net_mask) == [0, 1, 2]
            # Never overlapping DDIO (paper: networking tenants share
            # ways with "no DDIO overlap").
            assert net_mask & policy.layout.ddio_mask == 0

    def test_random_mode_varies_placement(self):
        layouts = set()
        for seed in range(10):
            _, policy, _ = build(StaticPolicy, shuffle_seed=seed)
            policy.on_start(0.0)
            layouts.add(tuple(sorted(policy.layout.group_masks.items())))
        assert len(layouts) > 2

    def test_random_mode_sometimes_overlaps_ddio(self):
        overlaps = 0
        for seed in range(24):
            _, policy, _ = build(StaticPolicy, shuffle_seed=seed)
            policy.on_start(0.0)
            if policy.layout.overlap_groups():
                overlaps += 1
        assert 0 < overlaps < 24  # the paper's wide baseline whiskers

    def test_random_mode_needs_seed_via_scenario(self):
        from repro.experiments.common import kvs_scenario
        from repro.sim.config import PlatformSpec
        from repro.cache.geometry import TINY_LLC
        spec = PlatformSpec(name="t", cores=12, llc=TINY_LLC)
        scenario = kvs_scenario(app="gcc", spec=spec)
        with pytest.raises(ValueError):
            scenario.attach_controller("baseline-rand")


class TestCoreOnlyPolicy:
    def test_grows_into_idle_ways_only(self):
        platform, policy, _ = build(CoreOnlyPolicy)
        policy.on_start(0.0)
        # 3+2+2+2 = 9 of 11 ways used: two idle (the DDIO ways).
        for t in range(1, 3):
            for core in range(4):
                drive(platform, core, 1000, 10)
            policy.on_interval(float(t))
        # pc's miss rate jumps, then improves with each grant but stays
        # meaningful, sustaining the growth session.
        schedule = [8000, 5000, 3500, 2500, 2500, 2500]
        for t, misses in enumerate(schedule, start=3):
            drive(platform, 0, 1000, 10)
            drive(platform, 1, 1000, 10)
            drive(platform, 2, 1000, 10)
            drive(platform, 3, 20_000, misses)
            policy.on_interval(float(t))
        assert policy.allocator.group_ways["pc"] == 4  # 2 + the 2 idle
        # The grown mask reaches into the DDIO ways: I/O-unawareness.
        pc_mask = policy.layout.group_masks["pc"]
        assert pc_mask & policy.layout.ddio_mask

    def test_never_touches_ddio_mask(self):
        platform, policy, _ = build(CoreOnlyPolicy)
        before = platform.ddio.mask
        policy.on_start(0.0)
        policy.on_interval(1.0)
        assert platform.ddio.mask == before


class TestIOIsoPolicy:
    def test_layout_never_overlaps_ddio(self):
        platform, policy, _ = build(IOIsoPolicy)
        policy.on_start(0.0)
        for t in range(1, 8):
            drive(platform, 3, 20_000, 8000)
            policy.on_interval(float(t))
        for mask in policy.layout.group_masks.values():
            assert mask & policy.layout.ddio_mask == 0

    def test_growth_takes_from_best_effort(self):
        platform, policy, _ = build(IOIsoPolicy)
        policy.on_start(0.0)
        for t in range(1, 3):
            for core in range(4):
                drive(platform, core, 1000, 10)
            policy.on_interval(float(t))
        misses = 10_000
        for t in range(3, 10):
            drive(platform, 0, 1000, 10)
            drive(platform, 1, 500, 5)
            drive(platform, 2, 1000, 10)
            drive(platform, 3, 30_000, misses)
            misses = max(1000, int(misses * 0.55))
            policy.on_interval(float(t))
        assert policy.allocator.group_ways["pc"] > 2
        # Pool is 9 ways (11 - 2 DDIO): someone must have paid.
        total = sum(policy.allocator.group_ways.values())
        assert total <= 9
        assert min(policy.allocator.group_ways["be0"],
                   policy.allocator.group_ways["be1"]) == 1

    def test_ddio_widening_shrinks_pool(self):
        platform, policy, _ = build(IOIsoPolicy)
        policy.on_start(0.0)
        policy.on_interval(1.0)
        from repro.cache.ddio import ddio_mask_for_ways
        platform.ddio.set_mask(ddio_mask_for_ways(platform.spec.llc, 5))
        drive(platform, 0, 1000, 100)
        policy.on_interval(2.0)
        total = sum(policy.allocator.group_ways.values())
        assert total <= platform.spec.llc.ways - 5
        for mask in policy.layout.group_masks.values():
            assert mask & policy.layout.ddio_mask == 0

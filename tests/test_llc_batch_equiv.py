"""Scalar vs. array LLC backend equivalence.

The array backend's batched engine must reproduce the scalar reference
bit-exactly: identical per-access hit/fill/eviction/writeback outcomes,
identical victim attribution, identical occupancy — over arbitrary
interleavings of core accesses, DDIO writes and device reads, under both
replacement policies.  These tests fuzz exactly that, plus the
engine-level guarantee that a full simulation produces identical metrics
on either backend.
"""

import dataclasses
import random

import numpy as np
import pytest

from repro.cache.geometry import TINY_LLC
from repro.cache.llc import DDIO_OWNER, SlicedLLC

SEEDS = [3, 17, 2021]


def random_stream(rng, steps, *, max_batch, addr_lines):
    """Yield (kind, addrs, kwargs) operations for both backends."""
    full = TINY_LLC.full_mask
    for _ in range(steps):
        n = rng.randint(1, max_batch)
        addrs = [rng.randrange(addr_lines) * 64 for _ in range(n)]
        kind = rng.randrange(4)
        if kind == 0:       # uniform core accesses
            yield ("access", addrs, dict(
                mask=rng.randrange(1, full + 1),
                write=rng.random() < 0.5,
                owner=rng.randrange(4)))
        elif kind == 1:     # DDIO write-allocate/update
            yield ("ddio", addrs, dict(mask=rng.randrange(1, full + 1)))
        elif kind == 2:     # device reads (never allocate)
            yield ("device", addrs, {})
        else:               # fully mixed per-element batch
            yield ("mixed", addrs, dict(
                mask=[rng.randrange(1, full + 1) for _ in range(n)],
                write=[rng.random() < 0.5 for _ in range(n)],
                owner=[rng.choice([0, 1, 2, DDIO_OWNER])
                       for _ in range(n)],
                allocate=[rng.random() < 0.8 for _ in range(n)]))


def apply_scalar(llc, op):
    kind, addrs, kw = op
    if kind == "access":
        return [llc.access(a, kw["mask"], write=kw["write"],
                           owner=kw["owner"]) for a in addrs]
    if kind == "ddio":
        return [llc.ddio_write(a, kw["mask"]) for a in addrs]
    if kind == "device":
        return [llc.device_read(a) for a in addrs]
    return [llc.access(a, kw["mask"][i], write=kw["write"][i],
                       owner=kw["owner"][i], allocate=kw["allocate"][i])
            for i, a in enumerate(addrs)]


def apply_batch(llc, op):
    kind, addrs, kw = op
    addrs = np.asarray(addrs, dtype=np.int64)
    if kind == "access":
        return llc.access_batch(addrs, kw["mask"], write=kw["write"],
                                owner=kw["owner"])
    if kind == "ddio":
        return llc.ddio_write_batch(addrs, kw["mask"])
    if kind == "device":
        return llc.device_read_batch(addrs)
    return llc.access_batch(addrs, np.asarray(kw["mask"]),
                            write=np.asarray(kw["write"]),
                            owner=np.asarray(kw["owner"]),
                            allocate=np.asarray(kw["allocate"]))


def assert_same_state(scalar, array):
    assert scalar.occupancy_by_owner() == array.occupancy_by_owner()
    assert scalar.valid_lines() == array.valid_lines()
    assert scalar._clock == array._clock
    for row in range(TINY_LLC.total_sets):
        assert scalar._tags[row] == array._tags[row].tolist()
        assert scalar._stamp[row] == array._stamp[row].tolist()
        assert scalar._dirty[row] == array._dirty[row].tolist()
        assert scalar._owner[row] == array._owner[row].tolist()


class TestBatchEquivalence:
    @pytest.mark.parametrize("policy", ["lru", "random"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzzed_streams_bit_identical(self, policy, seed):
        rng = random.Random(seed)
        scalar = SlicedLLC(TINY_LLC, policy=policy, backend="scalar")
        array = SlicedLLC(TINY_LLC, policy=policy, backend="array")
        for op in random_stream(rng, 120, max_batch=96, addr_lines=4096):
            expected = apply_scalar(scalar, op)
            got = apply_batch(array, op)
            for i, out in enumerate(expected):
                assert out == got.outcome_at(i), (op[0], i)
        assert_same_state(scalar, array)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_set_colliding_streams(self, seed):
        """Tiny address space: heavy same-set traffic inside each batch,
        exercising the sequential remainder of the vector engine."""
        rng = random.Random(seed)
        scalar = SlicedLLC(TINY_LLC, backend="scalar")
        array = SlicedLLC(TINY_LLC, backend="array")
        for op in random_stream(rng, 80, max_batch=200, addr_lines=96):
            expected = apply_scalar(scalar, op)
            got = apply_batch(array, op)
            for i, out in enumerate(expected):
                assert out == got.outcome_at(i), (op[0], i)
        assert_same_state(scalar, array)

    def test_batch_equals_sequential_on_same_backend(self):
        """access_batch(v) must equal issuing v element-wise (array)."""
        rng = random.Random(7)
        one = SlicedLLC(TINY_LLC, backend="array")
        many = SlicedLLC(TINY_LLC, backend="array")
        for _ in range(60):
            n = rng.randint(8, 120)
            addrs = [rng.randrange(2048) * 64 for _ in range(n)]
            mask = rng.randrange(1, TINY_LLC.full_mask + 1)
            expected = [one.access(a, mask, owner=1) for a in addrs]
            got = many.access_batch(np.asarray(addrs), mask, owner=1)
            assert [o.hit for o in expected] == got.hit.tolist()
            assert [o.fill for o in expected] == got.fill.tolist()
        assert one.occupancy_by_owner() == many.occupancy_by_owner()

    def test_batch_outcome_aggregates(self):
        llc = SlicedLLC(TINY_LLC, backend="array")
        addrs = np.arange(64, dtype=np.int64) * 64
        out = llc.access_batch(addrs, TINY_LLC.full_mask, owner=5)
        assert out.misses == 64 and out.fills == 64 and out.hits == 0
        again = llc.access_batch(addrs, TINY_LLC.full_mask, owner=5)
        assert again.hits == 64 and again.fills == 0
        assert again.victim_owner_counts() == {}

    def test_empty_mask_raises_on_both_backends(self):
        for backend in ("scalar", "array"):
            llc = SlicedLLC(TINY_LLC, backend=backend)
            with pytest.raises(ValueError):
                llc.access_batch(np.zeros(16, dtype=np.int64)
                                 + np.arange(16) * 64, 0)


class TestEngineBackendEquivalence:
    def test_quickstart_style_metrics_identical(self):
        """A small two-tenant simulation produces identical metrics on
        both backends (the engine-level acceptance criterion)."""
        from repro.experiments.common import leaky_dma_scenario
        from repro.sim.config import TINY_PLATFORM

        def fingerprint(backend):
            spec = dataclasses.replace(TINY_PLATFORM, llc_backend=backend)
            scen = leaky_dma_scenario(packet_size=512, spec=spec)
            metrics = scen.sim.run(0.6)
            return [(r.time, r.ddio_hits, r.ddio_misses,
                     r.mem_read_bytes, r.mem_write_bytes,
                     tuple(sorted((name, snap.ipc, snap.llc_references,
                                   snap.llc_misses)
                                  for name, snap in r.tenants.items())),
                     tuple(sorted(r.vf_delivered.items())),
                     tuple(sorted(r.vf_dropped.items())))
                    for r in metrics.records]

        assert fingerprint("scalar") == fingerprint("array")

"""Unit tests for the sweep-execution subsystem (repro.exec)."""

import os
import pickle

import pytest

from repro.exec import (ParallelRunner, Point, ResultCache, SweepProgress,
                        SweepSpec, canonical_params, code_fingerprint,
                        default_cache_dir, func_ref, point_key, run_sweep)


# Module-level point functions — workers import these by reference.
def add_point(a, b=0, scale=1):
    return (a + b) * scale


def pair_point(x, y):
    return {"x": x, "y": y, "sum": x + y}


def boom_point(a):
    raise AssertionError("point function must not run on a cache hit")


class TestCanonicalParams:
    def test_key_order_independent(self):
        assert canonical_params({"a": 1, "b": 2}) \
            == canonical_params({"b": 2, "a": 1})

    def test_distinguishes_values(self):
        assert canonical_params({"a": 1}) != canonical_params({"a": 2})
        assert canonical_params({"a": 1}) != canonical_params({"a": 1.0})

    def test_flat_params_keep_the_historical_format(self):
        # Pre-existing cache entries were keyed by
        # repr(sorted(params.items())); flat params must still render
        # identically so they stay addressable.
        params = {"b": 2, "a": "x", "c": (1,), "d": None, "e": 1.5}
        assert canonical_params(params) == repr(sorted(params.items()))

    def test_nested_dicts_are_order_insensitive(self):
        a = {"policy_params": {"interval_s": 1.0, "shuffle": False}}
        b = {"policy_params": {"shuffle": False, "interval_s": 1.0}}
        assert canonical_params(a) == canonical_params(b)

    def test_nested_dict_values_still_distinguish(self):
        a = {"policy_params": {"interval_s": 1.0}}
        b = {"policy_params": {"interval_s": 0.5}}
        assert canonical_params(a) != canonical_params(b)

    def test_func_ref(self):
        assert func_ref(add_point) == f"{__name__}:add_point"


class TestSweepSpec:
    def test_from_points_preserves_order(self):
        spec = SweepSpec.from_points(
            "s", add_point, [dict(a=3), dict(a=1), dict(a=2)])
        assert [p.params["a"] for p in spec.points] == [3, 1, 2]
        assert [p.index for p in spec.points] == [0, 1, 2]
        assert len(spec) == 3

    def test_from_product_last_axis_fastest(self):
        spec = SweepSpec.from_product(
            "s", add_point, axes={"a": (1, 2), "b": (10, 20)},
            common={"scale": 2})
        combos = [(p.params["a"], p.params["b"]) for p in spec.points]
        assert combos == [(1, 10), (1, 20), (2, 10), (2, 20)]
        assert all(p.params["scale"] == 2 for p in spec.points)

    def test_rejects_lambda(self):
        with pytest.raises(ValueError, match="module-level"):
            SweepSpec.from_points("s", lambda a: a, [dict(a=1)])

    def test_rejects_nested_function(self):
        def nested(a):
            return a

        with pytest.raises(ValueError, match="module-level"):
            SweepSpec.from_points("s", nested, [dict(a=1)])

    def test_point_is_picklable(self):
        point = Point(0, dict(a=1, mode="iat"))
        clone = pickle.loads(pickle.dumps(point))
        assert clone == point


class TestPointKey:
    SPEC = SweepSpec.from_points("s", add_point, [dict(a=1), dict(a=2)])

    def test_stable_across_calls(self):
        assert point_key(self.SPEC, self.SPEC.points[0]) \
            == point_key(self.SPEC, self.SPEC.points[0])

    def test_differs_by_params(self):
        assert point_key(self.SPEC, self.SPEC.points[0]) \
            != point_key(self.SPEC, self.SPEC.points[1])

    def test_differs_by_sweep_name(self):
        other = SweepSpec.from_points("t", add_point, [dict(a=1)])
        assert point_key(self.SPEC, self.SPEC.points[0]) \
            != point_key(other, other.points[0])

    def test_differs_by_version(self):
        bumped = SweepSpec.from_points("s", add_point, [dict(a=1)],
                                       version="v2")
        assert point_key(self.SPEC, self.SPEC.points[0]) \
            != point_key(bumped, bumped.points[0])

    def test_fingerprint_in_key(self, monkeypatch):
        before = point_key(self.SPEC, self.SPEC.points[0])
        monkeypatch.setattr("repro.exec.cache.code_fingerprint",
                            lambda: "different-code")
        assert point_key(self.SPEC, self.SPEC.points[0]) != before

    def test_code_fingerprint_is_hex_digest(self):
        fingerprint = code_fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)


class TestResultCache:
    def test_default_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        assert default_cache_dir() == "/tmp/somewhere"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir().endswith(os.path.join(".cache", "repro"))

    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "ab" + "0" * 62
        hit, _ = cache.get("s", key)
        assert not hit and cache.misses == 1
        cache.put("s", key, {"value": 42}, meta={"sweep": "s"})
        hit, value = cache.get("s", key)
        assert hit and value == {"value": 42}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
        # layout: <root>/<sweep>/<key[:2]>/<key>.pkl
        assert (tmp_path / "s" / "ab" / (key + ".pkl")).is_file()

    def test_corrupt_entry_is_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = "cd" + "0" * 62
        cache.put("s", key, 1)
        path = tmp_path / "s" / "cd" / (key + ".pkl")
        path.write_bytes(b"not a pickle")
        hit, _ = cache.get("s", key)
        assert not hit
        assert not path.exists()

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("s1", "ab" + "0" * 62, 1)
        cache.put("s1", "cd" + "0" * 62, 2)
        cache.put("s2", "ef" + "0" * 62, 3)
        assert cache.clear("s1") == 2
        assert cache.clear() == 1
        assert cache.clear() == 0


class TestParallelRunner:
    SPEC = SweepSpec.from_points(
        "unit", pair_point,
        [dict(x=i, y=10 * i) for i in range(6)])

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_serial_results_in_point_order(self):
        results = ParallelRunner(jobs=1).run(self.SPEC)
        assert [r["x"] for r in results] == list(range(6))

    def test_parallel_matches_serial(self):
        serial = ParallelRunner(jobs=1).run(self.SPEC)
        with ParallelRunner(jobs=4) as runner:
            assert runner.run(self.SPEC) == serial

    def test_run_sweep_defaults_to_serial(self):
        assert run_sweep(self.SPEC) == ParallelRunner(jobs=1).run(self.SPEC)

    def test_pool_is_reused_across_sweeps(self):
        with ParallelRunner(jobs=2) as runner:
            runner.run(self.SPEC)
            pool = runner._executor
            runner.run(self.SPEC)
            assert runner._executor is pool
        assert runner._executor is None

    def test_cold_run_populates_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        results = ParallelRunner(jobs=1, cache=cache).run(self.SPEC)
        assert cache.stores == len(self.SPEC)
        assert cache.hits == 0
        assert [r["x"] for r in results] == list(range(6))

    def test_warm_run_is_all_hits_and_runs_nothing(self, tmp_path,
                                                   monkeypatch):
        cache = ResultCache(str(tmp_path))
        cold = ParallelRunner(jobs=1, cache=cache).run(self.SPEC)
        warm_cache = ResultCache(str(tmp_path))

        def bomb(func, params):
            raise AssertionError("cache hit must not execute the point")

        monkeypatch.setattr("repro.exec.runner._call_point", bomb)
        warm = ParallelRunner(jobs=4, cache=warm_cache).run(self.SPEC)
        assert warm == cold
        assert warm_cache.hits == len(self.SPEC)
        assert warm_cache.misses == 0

    def test_partial_cache_fills_only_missing(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        ParallelRunner(jobs=1, cache=cache).run(self.SPEC)
        cache.clear("unit")
        half = SweepSpec.from_points(
            "unit", pair_point, [dict(x=i, y=10 * i) for i in range(3)])
        ParallelRunner(jobs=1, cache=cache).run(half)
        full_cache = ResultCache(str(tmp_path))
        results = ParallelRunner(jobs=1, cache=full_cache).run(self.SPEC)
        assert full_cache.hits == 3 and full_cache.misses == 3
        assert [r["x"] for r in results] == list(range(6))

    def test_version_bump_invalidates(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        ParallelRunner(jobs=1, cache=cache).run(self.SPEC)
        bumped = SweepSpec.from_points(
            "unit", pair_point, [p.params for p in self.SPEC.points],
            version="v2")
        fresh = ResultCache(str(tmp_path))
        ParallelRunner(jobs=1, cache=fresh).run(bumped)
        assert fresh.hits == 0 and fresh.misses == len(self.SPEC)

    def test_tracing_forces_serial_and_bypasses_pool(self):
        from repro.obs import RingBufferSink, Tracer, tracing
        tracer = Tracer()
        ring = tracer.add_sink(RingBufferSink(capacity=None))
        with tracing(tracer):
            runner = ParallelRunner(jobs=4)
            assert runner.effective_jobs() == 1
            runner.run(self.SPEC)
            assert runner._executor is None  # never created a pool
        names = {event.name for event in ring.events()}
        assert "unit" in names          # per-point progress counters
        assert "sweep_done" in names


class TestSweepProgress:
    def test_eta_excludes_cache_hits(self):
        ticks = iter(range(100))
        progress = SweepProgress("s", total=4, clock=lambda: next(ticks))
        progress.point_done(cached=True)
        assert progress.eta_s() == 0.0
        progress.point_done(cached=False, seconds=2.0)
        # one computed point at 2 s each, two points remaining
        assert progress.eta_s() == pytest.approx(4.0)
        progress.point_done(cached=False, seconds=4.0)
        assert progress.eta_s() == pytest.approx(3.0)

    def test_echo_writes_status_line(self):
        import io
        stream = io.StringIO()
        progress = SweepProgress("s", total=1, echo=True, stream=stream)
        progress.point_done(cached=False, seconds=0.5)
        progress.finish()
        out = stream.getvalue()
        assert "[s] 1/1 points" in out
        assert out.endswith("\n")

"""Copy-on-write rollback correctness for speculative chunk admission.

The run-ahead engine (:meth:`repro.workloads.netbase.RingConsumer
._run_core_vector`) admits chunks on *predicted* cost and undoes any
overshoot with the LLC's copy-on-write journal plus counter snapshots.
These tests attack that machinery from three sides:

* **journal fuzz** — randomized mixed mutation streams against
  :class:`~repro.cache.llc.SlicedLLC` between ``snapshot()`` and
  ``rollback()``, asserting the full structure-of-arrays state (tags,
  LRU stamps, dirty bits, owners), the occupancy accounting, every
  cumulative stat counter and the replacement RNG come back bit-exact;
* **commit twin** — the journal must be *pure overhead*: a committed
  speculative run ends in the same state as an unjournaled twin;
* **forced mispredictions** — end-to-end runs with
  ``SPEC_HEADROOM`` cranked up so the run-ahead engine overshoots its
  quantum budget constantly (the pathological spiky-cost case: an
  X-Mem thrasher beside the I/O app, plus the fig. 8 OVS chain), then
  field-for-field record equality against the scalar reference.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cache.llc import DDIO_OWNER, CacheGeometry, SlicedLLC
from repro.core import ControlPlane, IATDaemon, IATParams
from repro.experiments.common import leaky_dma_scenario
from repro.net.traffic import TrafficSpec
from repro.sim.config import TINY_PLATFORM
from repro.sim.engine import Simulation
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant
from repro.vswitch.flowtable import FlowTables
from repro.workloads import netbase
from repro.workloads.base import ENGINE_STATS, VectorPlan
from repro.workloads.testpmd import TestPmd
from repro.workloads.xmem import XMem

ARRAY_TINY = dataclasses.replace(TINY_PLATFORM, llc_backend="array")

GEOMETRY = CacheGeometry(ways=4, sets_per_slice=32, slices=2)


# ---------------------------------------------------------------------------
# LLC journal: fuzzed snapshot/rollback roundtrips
# ---------------------------------------------------------------------------
def _llc_state(llc: SlicedLLC) -> tuple:
    """A deep copy of everything rollback promises to restore."""
    return (llc._tags.copy(), llc._stamp.copy(), llc._dirty.copy(),
            llc._owner.copy(), llc._clock, llc._valid, dict(llc._occ),
            llc.stat_fills, llc.stat_evictions, llc.stat_writebacks,
            llc.stat_ddio_hits, llc.stat_ddio_misses, llc._rand_state)


def _assert_state_equal(a: tuple, b: tuple) -> None:
    names = ("tags", "stamp", "dirty", "owner", "clock", "valid", "occ",
             "fills", "evictions", "writebacks", "ddio_hits",
             "ddio_misses", "rand_state")
    for name, xa, xb in zip(names, a, b):
        if isinstance(xa, np.ndarray):
            assert np.array_equal(xa, xb), f"LLC {name} diverged"
        else:
            assert xa == xb, f"LLC {name} diverged: {xa} != {xb}"


def _mutate(llc: SlicedLLC, rng: np.random.Generator) -> None:
    """One random mutation step mixing every journaled entry point."""
    nlines = GEOMETRY.lines
    kind = rng.integers(0, 5)
    n = int(rng.integers(1, 160))
    # Tight address pool so hits, refills and evictions all happen.
    addrs = rng.integers(0, nlines * 3, size=n) * 64
    full = (1 << GEOMETRY.ways) - 1
    if kind == 0:
        mask = int(rng.integers(1, full + 1))
        llc.access_batch(addrs, mask, write=bool(rng.integers(0, 2)),
                         owner=int(rng.integers(0, 4)))
    elif kind == 1:
        # Per-element masks/owners/write flags force the sequential path.
        llc.access_batch(addrs, rng.integers(1, full + 1, size=n),
                         write=rng.integers(0, 2, size=n).astype(bool),
                         owner=rng.integers(0, 4, size=n))
    elif kind == 2:
        llc.ddio_write_batch(addrs, int(rng.integers(1, full + 1)))
    elif kind == 3:
        llc.device_read_batch(addrs)
    else:
        for addr in addrs[:16]:
            llc.access(int(addr), full, write=bool(rng.integers(0, 2)),
                       owner=int(rng.integers(0, 4)))


class TestLLCJournal:
    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_rollback_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        llc = SlicedLLC(GEOMETRY, backend="array", seed=seed + 1)
        for _ in range(4):  # warm to a non-trivial mixed-owner state
            _mutate(llc, rng)
        before = _llc_state(llc)
        llc.snapshot()
        for _ in range(int(rng.integers(1, 6))):
            _mutate(llc, rng)
        llc.rollback()
        _assert_state_equal(_llc_state(llc), before)
        # The journal is gone: state keeps evolving normally afterwards.
        _mutate(llc, rng)

    @pytest.mark.parametrize("seed", [3, 19])
    def test_fuzz_rollback_random_policy(self, seed):
        """The random-replacement loop path journals (and restores the
        LCG state) just like the vectorized LRU path."""
        rng = np.random.default_rng(seed)
        llc = SlicedLLC(GEOMETRY, backend="array", policy="random",
                        seed=seed + 1)
        _mutate(llc, rng)
        before = _llc_state(llc)
        llc.snapshot()
        for _ in range(3):
            _mutate(llc, rng)
        llc.rollback()
        _assert_state_equal(_llc_state(llc), before)

    def test_commit_matches_unjournaled_twin(self):
        """Journaling must not perturb outcomes: snapshot+commit lands in
        exactly the state an unjournaled twin reaches."""
        rng_a = np.random.default_rng(77)
        rng_b = np.random.default_rng(77)
        a = SlicedLLC(GEOMETRY, backend="array", seed=5)
        b = SlicedLLC(GEOMETRY, backend="array", seed=5)
        _mutate(a, rng_a)
        _mutate(b, rng_b)
        a.snapshot()
        for _ in range(4):
            _mutate(a, rng_a)
        a.commit()
        for _ in range(4):
            _mutate(b, rng_b)
        _assert_state_equal(_llc_state(a), _llc_state(b))

    def test_rollback_then_replay_equals_plain_run(self):
        """The engine's actual pattern: execute, roll back, replay a
        prefix — the end state must match never having speculated."""
        rng = np.random.default_rng(9)
        addrs = rng.integers(0, GEOMETRY.lines * 2, size=200) * 64
        full = (1 << GEOMETRY.ways) - 1
        spec = SlicedLLC(GEOMETRY, backend="array", seed=2)
        plain = SlicedLLC(GEOMETRY, backend="array", seed=2)
        spec.access_batch(addrs[:50], full)
        plain.access_batch(addrs[:50], full)
        spec.snapshot()
        spec.access_batch(addrs[50:], full, write=True, owner=1)
        spec.rollback()
        spec.access_batch(addrs[50:120], full, write=True, owner=1)
        plain.access_batch(addrs[50:120], full, write=True, owner=1)
        _assert_state_equal(_llc_state(spec), _llc_state(plain))

    def test_snapshot_guards(self):
        llc = SlicedLLC(GEOMETRY, backend="array")
        assert llc.can_snapshot
        llc.snapshot()
        with pytest.raises(RuntimeError):
            llc.snapshot()
        with pytest.raises(RuntimeError):
            llc.flush()
        llc.commit()
        with pytest.raises(RuntimeError):
            llc.rollback()
        scalar = SlicedLLC(GEOMETRY, backend="scalar")
        assert not scalar.can_snapshot
        with pytest.raises(RuntimeError):
            scalar.snapshot()

    def test_ddio_counters_restored(self):
        llc = SlicedLLC(GEOMETRY, backend="array")
        llc.ddio_write_batch(np.arange(8, dtype=np.int64) * 64, 0b11)
        hits, misses = llc.stat_ddio_hits, llc.stat_ddio_misses
        llc.snapshot()
        llc.ddio_write_batch(np.arange(64, dtype=np.int64) * 64, 0b11)
        assert llc.stat_ddio_hits + llc.stat_ddio_misses > hits + misses
        llc.rollback()
        assert (llc.stat_ddio_hits, llc.stat_ddio_misses) == (hits, misses)
        assert llc.occupancy_by_owner().get(DDIO_OWNER, 0) == llc._valid


# ---------------------------------------------------------------------------
# FlowTables (EMC) journal
# ---------------------------------------------------------------------------
class _NullPort:
    """Satisfies the lookup path's port surface with unit-cost accesses."""

    def access(self, addr, **kwargs):
        return 1.0


class TestFlowTablesJournal:
    def _tables(self) -> FlowTables:
        return FlowTables(1 << 30, emc_entries=64)

    def test_scalar_lookup_rollback(self):
        tables = self._tables()
        port = _NullPort()
        for flow in range(40):
            tables.lookup(port, flow * 3)
        tags = tables._emc_tags.copy()
        counts = (tables.emc_hits, tables.emc_misses)
        tables.snapshot()
        for flow in range(200, 260):  # collide + install new tags
            tables.lookup(port, flow)
        assert not np.array_equal(tables._emc_tags, tags)
        tables.rollback()
        assert np.array_equal(tables._emc_tags, tags)
        assert (tables.emc_hits, tables.emc_misses) == counts

    def test_chunk_lookup_rollback_and_commit_twin(self):
        rng = np.random.default_rng(23)
        spec, plain = self._tables(), self._tables()
        warm = rng.integers(0, 500, size=120)
        spec.lookup_chunk(VectorPlan(), warm, np.arange(120))
        plain.lookup_chunk(VectorPlan(), warm, np.arange(120))
        tags = spec._emc_tags.copy()
        counts = (spec.emc_hits, spec.emc_misses)
        flows = rng.integers(0, 500, size=80)
        spec.snapshot()
        spec.lookup_chunk(VectorPlan(), flows, np.arange(80))
        spec.rollback()
        assert np.array_equal(spec._emc_tags, tags)
        assert (spec.emc_hits, spec.emc_misses) == counts
        # Replay under a journal, commit: identical to the plain twin.
        spec.snapshot()
        spec.lookup_chunk(VectorPlan(), flows, np.arange(80))
        spec.commit()
        plain.lookup_chunk(VectorPlan(), flows, np.arange(80))
        assert np.array_equal(spec._emc_tags, plain._emc_tags)
        assert (spec.emc_hits, spec.emc_misses) == (plain.emc_hits,
                                                   plain.emc_misses)


# ---------------------------------------------------------------------------
# End-to-end: forced mispredictions roll back to the scalar truth
# ---------------------------------------------------------------------------
def _records(metrics) -> list:
    return [dataclasses.asdict(record) for record in metrics.records]


def _run_leaky(exec_mode: str, seed: int) -> list:
    scen = leaky_dma_scenario(packet_size=512, n_flows=16,
                              ring_entries=128, spec=ARRAY_TINY, seed=seed)
    scen.sim.exec_mode = exec_mode
    return _records(scen.sim.run(0.4))


def _run_pmd_xmem(exec_mode: str, seed: int) -> "tuple[list, list]":
    """TestPmd beside an X-Mem thrasher under the IAT daemon: the
    thrash-driven miss spikes make per-packet cost wildly non-uniform,
    the worst case for run-ahead admission."""
    platform = Platform(ARRAY_TINY)
    sim = Simulation(platform, seed=seed, exec_mode=exec_mode)
    nic = platform.add_nic("n0", 40.0)
    # Deep ring + overload: backlogs larger than a quantum budget, so an
    # over-admitted chunk genuinely overshoots instead of draining dry.
    vf = nic.add_vf(entries=256, name="vf0")
    pmd = TestPmd("pmd", [vf.rx_ring])
    sim.add_tenant(Tenant("pmd", cores=(0,), priority=Priority.PC,
                          is_io=True, initial_ways=2), pmd)
    xmem = XMem("xmem", 64 << 10)
    xmem.l2_bytes = 8 << 10
    sim.add_tenant(Tenant("xmem", cores=(1,), priority=Priority.BE,
                          initial_ways=2), xmem)
    sim.attach_traffic(nic, vf, TrafficSpec(pps=30000.0, packet_size=512,
                                            n_flows=64, zipf_theta=0.9,
                                            burstiness=0.6))
    control = ControlPlane(platform.pqos, sim.tenant_set(),
                           time_scale=platform.spec.time_scale)
    daemon = IATDaemon(control, IATParams(interval_s=0.2))
    sim.add_controller(daemon)
    metrics = sim.run(0.8)
    return _records(metrics), [dataclasses.asdict(h)
                               for h in daemon.history]


class TestForcedMisprediction:
    @pytest.mark.parametrize("seed", [8, 21])
    def test_overshoot_rollback_matches_scalar(self, monkeypatch, seed):
        """Crank the run-ahead headroom so nearly every speculative chunk
        overshoots its quantum budget: the engine must roll back and
        replay constantly, and every record must still equal scalar."""
        monkeypatch.setattr(netbase, "SPEC_HEADROOM", 2.5)
        ENGINE_STATS.reset()
        vec = _run_leaky("vector", seed)
        assert ENGINE_STATS.rollbacks > 0, \
            "headroom 2.5 was expected to force mispredicted admissions"
        assert ENGINE_STATS.wasted_packets > 0
        assert (ENGINE_STATS.exec_packets
                == ENGINE_STATS.packets + ENGINE_STATS.wasted_packets)
        assert vec == _run_leaky("scalar", seed)

    def test_xmem_mix_cost_spikes_match_scalar(self, monkeypatch):
        monkeypatch.setattr(netbase, "SPEC_HEADROOM", 2.0)
        ENGINE_STATS.reset()
        vec_metrics, vec_history = _run_pmd_xmem("vector", 42)
        assert ENGINE_STATS.rollbacks > 0
        sca_metrics, sca_history = _run_pmd_xmem("scalar", 42)
        assert vec_metrics == sca_metrics
        assert vec_history == sca_history

    def test_speculation_exercised_at_default_headroom(self):
        ENGINE_STATS.reset()
        _run_leaky("vector", 8)
        assert ENGINE_STATS.spec_chunks > 0
        assert ENGINE_STATS.mean_chunk() >= 8.0
        assert ENGINE_STATS.kernel_launches > 0

    def test_speculation_kill_switch_matches_scalar(self, monkeypatch):
        monkeypatch.setattr(netbase, "SPECULATION", False)
        ENGINE_STATS.reset()
        vec = _run_leaky("vector", 8)
        assert ENGINE_STATS.spec_chunks == 0
        assert ENGINE_STATS.rollbacks == 0
        assert vec == _run_leaky("scalar", 8)

"""Smoke test for the perf-benchmark harness.

Runs every microbenchmark and the engine benchmark at tiny scale (a few
thousand accesses, sub-second simulation) and validates the
``BENCH_llc.json`` document against the ``repro-bench-llc/1`` schema.
No timing thresholds are asserted — wall-clock on CI is noisy — only
that the harness runs, the backends agree, and the schema holds.
"""

import importlib.util
import json
import os
import sys

import pytest

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_PERF = os.path.join(_REPO, "benchmarks", "perf")


def _load(name):
    if _PERF not in sys.path:
        sys.path.insert(0, _PERF)
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(_PERF, name + ".py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_doc(tmp_path_factory):
    runner = _load("run")
    out = tmp_path_factory.mktemp("bench") / "BENCH_llc.json"
    runner.main(["--scale", "tiny", "--out", str(out)])
    with open(out) as handle:
        return json.load(handle)


class TestBenchSchema:
    def test_schema_tag_and_scale(self, bench_doc):
        assert bench_doc["schema"] == "repro-bench-llc/1"
        assert bench_doc["scale"] == "tiny"

    def test_micro_entries(self, bench_doc):
        names = [entry["name"] for entry in bench_doc["micro"]]
        assert names == ["resident_read", "thrash_read", "ddio_ring_write"]
        for entry in bench_doc["micro"]:
            assert entry["accesses"] > 0
            assert 0 <= entry["hits"] <= entry["accesses"]
            assert entry["scalar_s"] > 0 and entry["array_s"] > 0
            assert entry["speedup"] == pytest.approx(
                entry["scalar_s"] / entry["array_s"])

    def test_engine_entry(self, bench_doc):
        engine = bench_doc["engine"]
        assert engine["scenario"] == "fig08_leaky_dma"
        assert engine["metrics_match"] is True
        assert engine["quanta"] > 0
        assert bench_doc["speedup"] == engine["speedup"]

    def test_validate_rejects_divergence(self, bench_doc):
        runner = _load("run")
        broken = json.loads(json.dumps(bench_doc))
        broken["engine"]["metrics_match"] = False
        with pytest.raises(AssertionError):
            runner.validate(broken)

    def test_obs_entry(self, bench_doc):
        obs = bench_doc["obs"]
        assert obs["scenario"] == "fig08_leaky_dma"
        assert obs["repeats"] >= 3
        assert obs["sample_every"] > 1
        assert obs["events"] > obs["events_sampled"] > 0

    def test_perf_gate_obs_overhead(self):
        """The obs gate fails only when fresh enabled_overhead exceeds
        committed by more than the absolute margin, and stays silent
        when either document predates the obs section."""
        checker = _load("check_perf")
        committed = {"scale": "default", "engine": {"speedup": 10.0},
                     "obs": {"enabled_overhead": 0.03}}
        fresh = {"scale": "default", "engine": {"speedup": 10.0},
                 "obs": {"enabled_overhead": 0.12}}
        ok, message = checker.check(fresh, committed)
        assert ok and "obs enabled overhead" in message
        fresh["obs"]["enabled_overhead"] = 0.14
        ok, message = checker.check(fresh, committed)
        assert not ok and "obs enabled overhead" in message
        ok, message = checker.check(
            {"scale": "default", "engine": {"speedup": 10.0}}, committed)
        assert ok and "obs" not in message

    def test_perf_gate_thresholds(self):
        """check_perf passes at >= 0.8x committed speedup, fails below,
        and refuses cross-scale comparisons."""
        checker = _load("check_perf")
        committed = {"scale": "default", "engine": {"speedup": 10.0}}
        ok, _ = checker.check(
            {"scale": "default", "engine": {"speedup": 8.0}}, committed)
        assert ok
        ok, _ = checker.check(
            {"scale": "default", "engine": {"speedup": 7.9}}, committed)
        assert not ok
        with pytest.raises(ValueError):
            checker.check(
                {"scale": "tiny", "engine": {"speedup": 8.0}}, committed)

    def test_committed_document_is_valid(self):
        """The checked-in default-scale results must satisfy the schema."""
        path = os.path.join(_PERF, "BENCH_llc.json")
        if not os.path.exists(path):
            pytest.skip("no committed BENCH_llc.json")
        runner = _load("run")
        with open(path) as handle:
            doc = json.load(handle)
        runner.validate(doc)
        assert doc["scale"] == "default"

"""Smoke test for the perf-benchmark harness.

Runs every microbenchmark and the engine benchmark at tiny scale (a few
thousand accesses, sub-second simulation) and validates the
``BENCH_llc.json`` document against the ``repro-bench-llc/1`` schema.
No timing thresholds are asserted — wall-clock on CI is noisy — only
that the harness runs, the backends agree, and the schema holds.
"""

import importlib.util
import json
import os
import sys

import pytest

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_PERF = os.path.join(_REPO, "benchmarks", "perf")


def _load(name):
    if _PERF not in sys.path:
        sys.path.insert(0, _PERF)
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(_PERF, name + ".py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_doc(tmp_path_factory):
    runner = _load("run")
    out = tmp_path_factory.mktemp("bench") / "BENCH_llc.json"
    runner.main(["--scale", "tiny", "--out", str(out)])
    with open(out) as handle:
        return json.load(handle)


class TestBenchSchema:
    def test_schema_tag_and_scale(self, bench_doc):
        assert bench_doc["schema"] == "repro-bench-llc/1"
        assert bench_doc["scale"] == "tiny"

    def test_micro_entries(self, bench_doc):
        names = [entry["name"] for entry in bench_doc["micro"]]
        assert names == ["resident_read", "thrash_read", "ddio_ring_write"]
        for entry in bench_doc["micro"]:
            assert entry["accesses"] > 0
            assert 0 <= entry["hits"] <= entry["accesses"]
            assert entry["scalar_s"] > 0 and entry["array_s"] > 0
            assert entry["speedup"] == pytest.approx(
                entry["scalar_s"] / entry["array_s"])

    def test_engine_entry(self, bench_doc):
        engine = bench_doc["engine"]
        assert engine["scenario"] == "fig08_leaky_dma"
        assert engine["metrics_match"] is True
        assert engine["quanta"] > 0
        assert bench_doc["speedup"] == engine["speedup"]

    def test_validate_rejects_divergence(self, bench_doc):
        runner = _load("run")
        broken = json.loads(json.dumps(bench_doc))
        broken["engine"]["metrics_match"] = False
        with pytest.raises(AssertionError):
            runner.validate(broken)

    def test_obs_entry(self, bench_doc):
        obs = bench_doc["obs"]
        assert obs["scenario"] == "fig08_leaky_dma"
        assert obs["repeats"] >= 3
        assert obs["sample_every"] > 1
        assert obs["events"] > obs["events_sampled"] > 0

    def test_compare_entry(self, bench_doc):
        cmp_doc = bench_doc["compare"]
        assert cmp_doc["points"] == \
            len(cmp_doc["policies"]) * len(cmp_doc["scenarios"])
        assert cmp_doc["winner"] == cmp_doc["ranking"][0]["policy"]
        assert all(0.0 < e["score"] <= 1.0 for e in cmp_doc["ranking"])
        assert cmp_doc["wall_s"] > 0

    def test_validate_rejects_collapsed_tournament(self, bench_doc):
        runner = _load("run")
        broken = json.loads(json.dumps(bench_doc))
        broken["compare"]["points"] -= 1
        with pytest.raises(AssertionError):
            runner.validate(broken)

    def test_perf_gate_compare_shape(self):
        """The compare gate checks shape (full cross-product, sane
        scores) but never wall time, and stays silent when the fresh
        document predates the section."""
        checker = _load("check_perf")
        committed = {"scale": "default", "engine": {"speedup": 10.0}}
        cmp_doc = {"policies": ["a", "b"], "scenarios": ["x"],
                   "points": 2, "winner": "a", "point_s": 1.0,
                   "ranking": [{"policy": "a", "score": 1.0},
                               {"policy": "b", "score": 0.5}]}
        fresh = {"scale": "default", "engine": {"speedup": 10.0},
                 "compare": cmp_doc}
        ok, message = checker.check(fresh, committed)
        assert ok and "compare:" in message
        broken = json.loads(json.dumps(fresh))
        broken["compare"]["points"] = 1
        assert not checker.check(broken, committed)[0]
        broken = json.loads(json.dumps(fresh))
        broken["compare"]["ranking"][0]["score"] = 1.2
        assert not checker.check(broken, committed)[0]
        ok, message = checker.check(
            {"scale": "default", "engine": {"speedup": 10.0}}, committed)
        assert ok and "compare:" not in message

    def test_perf_gate_obs_overhead(self):
        """The obs gate fails only when fresh enabled_overhead exceeds
        committed by more than the absolute margin, and stays silent
        when either document predates the obs section."""
        checker = _load("check_perf")
        committed = {"scale": "default", "engine": {"speedup": 10.0},
                     "obs": {"enabled_overhead": 0.03}}
        fresh = {"scale": "default", "engine": {"speedup": 10.0},
                 "obs": {"enabled_overhead": 0.12}}
        ok, message = checker.check(fresh, committed)
        assert ok and "obs enabled overhead" in message
        fresh["obs"]["enabled_overhead"] = 0.14
        ok, message = checker.check(fresh, committed)
        assert not ok and "obs enabled overhead" in message
        ok, message = checker.check(
            {"scale": "default", "engine": {"speedup": 10.0}}, committed)
        assert ok and "obs" not in message

    def test_perf_gate_thresholds(self):
        """check_perf passes at >= 0.8x committed speedup, fails below,
        and refuses cross-scale comparisons."""
        checker = _load("check_perf")
        committed = {"scale": "default", "engine": {"speedup": 10.0}}
        ok, _ = checker.check(
            {"scale": "default", "engine": {"speedup": 8.0}}, committed)
        assert ok
        ok, _ = checker.check(
            {"scale": "default", "engine": {"speedup": 7.9}}, committed)
        assert not ok
        with pytest.raises(ValueError):
            checker.check(
                {"scale": "tiny", "engine": {"speedup": 8.0}}, committed)

    def test_committed_document_is_valid(self):
        """The checked-in default-scale results must satisfy the schema."""
        path = os.path.join(_PERF, "BENCH_llc.json")
        if not os.path.exists(path):
            pytest.skip("no committed BENCH_llc.json")
        runner = _load("run")
        with open(path) as handle:
            doc = json.load(handle)
        runner.validate(doc)
        assert doc["scale"] == "default"

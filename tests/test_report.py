"""Unit tests for the plain-text rendering helpers."""

import pytest

from repro.experiments.report import (bar, bar_chart, layout_diagram,
                                      mask_diagram, sparkline)


class TestBar:
    def test_full_and_half(self):
        assert bar(10, 10, width=10) == "#" * 10
        assert bar(5, 10, width=10) == "#" * 5

    def test_clamps(self):
        assert bar(20, 10, width=10) == "#" * 10
        assert bar(-5, 10, width=10) == ""

    def test_zero_max(self):
        assert bar(1, 0) == ""

    def test_bad_width(self):
        with pytest.raises(ValueError):
            bar(1, 1, width=0)


class TestBarChart:
    def test_rows_aligned(self):
        chart = bar_chart([("alpha", 2.0), ("b", 4.0)], width=8)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("alpha |")
        assert "########" in lines[1]

    def test_empty(self):
        assert bar_chart([]) == "(no data)"


class TestSparkline:
    def test_monotonic(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] < line[-1]

    def test_flat(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestMaskDiagram:
    def test_basic(self):
        assert mask_diagram(0b110, 4) == "[.XX.]"
        assert mask_diagram(0b1, 3) == "[X..]"

    def test_layout_diagram(self):
        diagram = layout_diagram({"a": 0b11, "b": 0b1100}, 0b11 << 9, 11)
        lines = diagram.splitlines()
        assert len(lines) == 4
        assert "XX........." in lines[1]
        assert "DD" in lines[-1]

"""Structural tests for the experiment scenario builders.

These assert the *topology* each builder produces matches the paper's
setup descriptions (core counts, way grants, priorities, groups,
traffic wiring) without running the simulations.
"""

import pytest

from repro.cache.geometry import TINY_LLC
from repro.experiments.common import (kvs_scenario, l3fwd_scenario,
                                      latent_contender_scenario,
                                      leaky_dma_scenario, nfv_scenario,
                                      shuffle_scenario)
from repro.sim.config import PlatformSpec
from repro.tenants.tenant import Priority

SMALL = PlatformSpec(name="small", cores=12, llc=TINY_LLC)


class TestL3fwdScenario:
    def test_single_core_io_tenant(self):
        scenario = l3fwd_scenario(spec=SMALL)
        tenants = scenario.sim.tenant_set()
        assert len(tenants) == 1
        tenant = tenants.by_name("l3fwd")
        assert tenant.cores == (0,) and tenant.is_io

    def test_ring_entries_respected(self):
        scenario = l3fwd_scenario(ring_entries=256, spec=SMALL)
        assert scenario.vfs["vf0"].rx_ring.entries == 256


class TestLeakyDmaScenario:
    def test_fig8_topology(self):
        """Sec. VI-B: OVS on 2 cores / 2 ways; two testpmd containers on
        2 cores / 1 way each; two NICs."""
        scenario = leaky_dma_scenario(packet_size=1500, spec=SMALL)
        tenants = scenario.sim.tenant_set()
        ovs = tenants.by_name("ovs")
        assert ovs.is_stack and len(ovs.cores) == 2 and ovs.initial_ways == 2
        for name in ("pmd0", "pmd1"):
            pmd = tenants.by_name(name)
            assert pmd.is_pc and len(pmd.cores) == 2
            assert pmd.initial_ways == 1
        assert len(scenario.nics) == 2
        assert len(scenario.sim.traffic) == 2

    def test_ovs_routes_cover_both_nics(self):
        scenario = leaky_dma_scenario(packet_size=64, spec=SMALL)
        ovs = scenario.workloads["ovs"]
        assert set(ovs.routes) == {0, 1}


class TestShuffleScenario:
    def test_fig10_topology(self):
        """Sec. VI-B: c0/c1 PC testpmd sharing 3 ways; c2/c3 BE and c4
        PC X-Mem with 2 dedicated ways each."""
        scenario = shuffle_scenario(packet_size=1024, spec=SMALL)
        tenants = scenario.sim.tenant_set()
        assert tenants.by_name("c0").group == "pmd"
        assert tenants.by_name("c1").group == "pmd"
        assert tenants.group_priority("pmd") is Priority.PC
        assert tenants.by_name("c2").priority is Priority.BE
        assert tenants.by_name("c3").priority is Priority.BE
        assert tenants.by_name("c4").priority is Priority.PC
        for name in ("c2", "c3", "c4"):
            assert tenants.by_name(name).initial_ways == 2
        # Initial working sets: all X-Mem containers start at 2 MB.
        assert scenario.workloads["c4"].working_set_bytes == 2 << 20


class TestLatentContenderScenario:
    def test_masks_differ_by_overlap_flag(self):
        ded = latent_contender_scenario(xmem_ws_bytes=4 << 20,
                                        overlap_ddio=False, spec=SMALL)
        ovl = latent_contender_scenario(xmem_ws_bytes=4 << 20,
                                        overlap_ddio=True, spec=SMALL)
        ded.sim.run(0.0)  # no-op; masks applied by controller at start
        # Controllers are attached inside the builder (StaticPolicy).
        assert ded.sim.controllers and ovl.sim.controllers
        ded_mask = ded.sim.controllers[0].explicit_masks["xmem"]
        ovl_mask = ovl.sim.controllers[0].explicit_masks["xmem"]
        top_two = 0b11 << (TINY_LLC.ways - 2)
        assert ovl_mask == top_two
        assert ded_mask & top_two == 0


class TestKvsScenario:
    def test_fig_kvs_topology(self):
        """Sec. VI-C: OVS (2 cores) + 2 Redis (2 cores each) share 3
        ways; app 1 core / 2 ways; two BE X-Mem; nine cores total."""
        scenario = kvs_scenario(app="mcf", spec=SMALL)
        tenants = scenario.sim.tenant_set()
        assert len(tenants.all_cores) == 9
        for name in ("ovs", "redis0", "redis1"):
            assert tenants.by_name(name).group == "net"
            assert tenants.by_name(name).initial_ways == 3
        assert tenants.by_name("app").is_pc
        assert tenants.by_name("be0").is_be
        assert tenants.group_priority("net") is Priority.STACK

    def test_rocksdb_app_needs_mix(self):
        scenario = kvs_scenario(app="rocksdb", ycsb_letter="B", spec=SMALL)
        assert scenario.workloads["app"].mix.letter == "B"

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            kvs_scenario(app="fortnite", spec=SMALL)

    def test_be_working_sets(self):
        """One 1 MB and one 10 MB X-Mem BE container (Sec. VI-C)."""
        scenario = kvs_scenario(app="gcc", spec=SMALL)
        assert scenario.workloads["be0"].working_set_bytes == 1 << 20
        assert scenario.workloads["be1"].working_set_bytes == 10 << 20


class TestNfvScenario:
    def test_fig_nfv_topology(self):
        """Sec. VI-C: four chains on one core each sharing 3 ways, one
        VF per VLAN, 20 Gb/s per VLAN."""
        scenario = nfv_scenario(app="gcc", spec=SMALL)
        tenants = scenario.sim.tenant_set()
        for i in range(4):
            chain = tenants.by_name(f"nf{i}")
            assert chain.group == "net" and chain.is_io
            assert len(chain.cores) == 1
        assert len(scenario.vfs) == 4
        assert len(scenario.sim.traffic) == 4
        # All traffic at 1.5 KB packets.
        for binding in scenario.sim.traffic:
            assert binding.gen.spec.packet_size == 1500

    def test_attach_unknown_controller(self):
        scenario = nfv_scenario(app="gcc", spec=SMALL)
        with pytest.raises(ValueError):
            scenario.attach_controller("quantum-annealer")

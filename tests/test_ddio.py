"""Unit tests for the DDIO way-mask register model."""

import pytest

from repro.cache.ddio import (DEFAULT_DDIO_WAYS, DdioConfig,
                              ddio_mask_for_ways, default_ddio_mask)
from repro.cache.geometry import TINY_LLC, XEON_6140_LLC


class TestDefaults:
    def test_default_two_top_ways(self):
        # Sec. II-B: "By default, DDIO can only perform write allocate
        # on two LLC ways (Way N-1 and Way N)".
        mask = default_ddio_mask(XEON_6140_LLC)
        assert mask == 0b11 << 9
        assert bin(mask).count("1") == DEFAULT_DDIO_WAYS

    def test_mask_for_ways_top_anchored(self):
        assert ddio_mask_for_ways(XEON_6140_LLC, 6) == 0b111111 << 5
        assert ddio_mask_for_ways(XEON_6140_LLC, 1) == 1 << 10

    def test_mask_for_ways_bounds(self):
        with pytest.raises(ValueError):
            ddio_mask_for_ways(XEON_6140_LLC, 0)
        with pytest.raises(ValueError):
            ddio_mask_for_ways(XEON_6140_LLC, 12)


class TestDdioConfig:
    def test_initializes_to_default(self):
        config = DdioConfig(TINY_LLC)
        assert config.mask == default_ddio_mask(TINY_LLC)
        assert config.way_count == 2

    def test_set_ways(self):
        config = DdioConfig(TINY_LLC)
        config.set_ways(4)
        assert config.way_count == 4
        assert config.span() == (TINY_LLC.ways - 4, 4)

    def test_set_mask_validates(self):
        config = DdioConfig(TINY_LLC)
        with pytest.raises(ValueError):
            config.set_mask(0)
        with pytest.raises(ValueError):
            config.set_mask(0b101)
        with pytest.raises(ValueError):
            config.set_mask(1 << TINY_LLC.ways)

    def test_explicit_mask_accepted(self):
        config = DdioConfig(TINY_LLC, mask=0b111 << 2)
        assert config.way_count == 3

"""Property-based tests (hypothesis) for the LLC and CAT invariants."""

from hypothesis import given, settings, strategies as st

from repro.cache.cat import is_contiguous, mask_span, mask_ways, ways_to_mask
from repro.cache.geometry import CacheGeometry
from repro.cache.llc import SlicedLLC

SMALL_GEO = CacheGeometry(ways=4, sets_per_slice=8, slices=2)

addresses = st.integers(min_value=0, max_value=1 << 20).map(lambda a: a * 64)
masks = st.integers(min_value=1, max_value=SMALL_GEO.full_mask).filter(
    is_contiguous)


@st.composite
def access_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=120))
    return [(draw(addresses), draw(masks), draw(st.booleans()))
            for _ in range(n)]


class TestLLCInvariants:
    @given(access_sequences())
    @settings(max_examples=60, deadline=None)
    def test_valid_lines_never_exceed_capacity(self, seq):
        llc = SlicedLLC(SMALL_GEO)
        for addr, mask, write in seq:
            llc.access(addr, mask, write=write)
        assert llc.valid_lines() <= SMALL_GEO.lines

    @given(access_sequences())
    @settings(max_examples=60, deadline=None)
    def test_access_then_immediate_reaccess_hits(self, seq):
        llc = SlicedLLC(SMALL_GEO)
        for addr, mask, write in seq:
            llc.access(addr, mask, write=write)
            assert llc.access(addr, mask).hit

    @given(access_sequences())
    @settings(max_examples=60, deadline=None)
    def test_no_duplicate_tags_within_a_set(self, seq):
        llc = SlicedLLC(SMALL_GEO)
        for addr, mask, write in seq:
            llc.access(addr, mask, write=write)
        for tags in llc._tags:
            valid = [t for t in tags if t != -1]
            assert len(valid) == len(set(valid))

    @given(access_sequences(), st.integers(0, SMALL_GEO.ways - 1))
    @settings(max_examples=60, deadline=None)
    def test_fills_respect_mask(self, seq, way):
        """Every line must reside in a way some past access could fill
        (trivially true per access: we check the specific mask case of
        single-way fills landing in that way)."""
        llc = SlicedLLC(SMALL_GEO)
        mask = 1 << way
        for addr, _, write in seq:
            llc.access(addr, mask, write=write)
            assert llc.way_of(addr) == way

    @given(access_sequences())
    @settings(max_examples=40, deadline=None)
    def test_occupancy_matches_valid_lines(self, seq):
        llc = SlicedLLC(SMALL_GEO)
        for i, (addr, mask, write) in enumerate(seq):
            llc.access(addr, mask, write=write, owner=i % 3)
        occ = llc.occupancy_by_owner()
        assert sum(occ.values()) == llc.valid_lines()

    @given(access_sequences())
    @settings(max_examples=40, deadline=None)
    def test_device_reads_never_change_state(self, seq):
        llc = SlicedLLC(SMALL_GEO)
        for addr, mask, write in seq:
            llc.access(addr, mask, write=write)
        before = llc.valid_lines()
        for addr, _, _ in seq:
            llc.device_read(addr + (1 << 30))  # cold addresses
        assert llc.valid_lines() == before


class TestMaskProperties:
    @given(st.integers(0, 20), st.integers(1, 16))
    def test_ways_to_mask_contiguous_and_spans(self, first, count):
        mask = ways_to_mask(first, count)
        assert is_contiguous(mask)
        assert mask_span(mask) == (first, count)
        assert mask_ways(mask) == list(range(first, first + count))

    @given(st.integers(1, 1 << 16))
    def test_contiguous_iff_span_roundtrips(self, mask):
        if is_contiguous(mask):
            low, count = mask_span(mask)
            assert ways_to_mask(low, count) == mask
        else:
            ways = mask_ways(mask)
            assert ways != list(range(ways[0], ways[0] + len(ways)))

"""Determinism: identical seeds must reproduce identical simulations.

EXPERIMENTS.md promises exact reproducibility of every table; these
tests pin that property at the engine level.
"""

from repro.core import ControlPlane, IATDaemon, IATParams
from repro.net.traffic import TrafficSpec
from repro.sim.config import TINY_PLATFORM
from repro.sim.engine import Simulation
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant
from repro.workloads.testpmd import TestPmd
from repro.workloads.xmem import XMem


def run_once(seed: int):
    platform = Platform(TINY_PLATFORM)
    sim = Simulation(platform, seed=seed)
    nic = platform.add_nic("n0", 40.0)
    vf = nic.add_vf(entries=64, name="vf0")
    pmd = TestPmd("pmd", [vf.rx_ring])
    sim.add_tenant(Tenant("pmd", cores=(0,), priority=Priority.PC,
                          is_io=True, initial_ways=2), pmd)
    xmem = XMem("xmem", 64 << 10)
    xmem.l2_bytes = 8 << 10
    sim.add_tenant(Tenant("xmem", cores=(1,), priority=Priority.BE,
                          initial_ways=2), xmem)
    sim.attach_traffic(nic, vf, TrafficSpec(pps=1500.0, packet_size=512,
                                            n_flows=64, zipf_theta=0.9,
                                            burstiness=0.3))
    control = ControlPlane(platform.pqos, sim.tenant_set(),
                           time_scale=platform.spec.time_scale)
    daemon = IATDaemon(control, IATParams(interval_s=0.2))
    sim.add_controller(daemon)
    metrics = sim.run(2.0)
    return platform, metrics, daemon, pmd, xmem


def fingerprint(run):
    platform, metrics, daemon, pmd, xmem = run
    return (
        tuple(metrics.ddio_hits().tolist()),
        tuple(metrics.ddio_misses().tolist()),
        tuple(metrics.tenant_series("xmem", "llc_misses").tolist()),
        tuple((h.state, h.ddio_ways, h.action) for h in daemon.history),
        pmd.packets_processed,
        xmem.stats.ops,
        platform.mem.read_bytes,
        platform.mem.write_bytes,
    )


class TestDeterminism:
    def test_same_seed_identical_everything(self):
        assert fingerprint(run_once(7)) == fingerprint(run_once(7))

    def test_different_seed_differs(self):
        a = fingerprint(run_once(7))
        b = fingerprint(run_once(8))
        assert a != b

"""VectorPlan layout/template/step cache bounds and launch accounting.

The fused materialize path (PR 10) leans on three per-plan caches —
concrete stage layouts, chunk-size-independent templates, and arange
step vectors — all LRU-bounded so variable packet mixes cannot grow a
long-lived plan without limit.  These tests pin the bounds, the
eviction-correctness contract (an evicted layout rebuilds bit-identical),
and the hand-maintained ``EngineStats.kernel_launches`` accounting that
the CI ``--launches-ceiling`` gate reads.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.workloads.base as base
from repro.workloads.base import ENGINE_STATS, PKT_IOTA, VectorPlan


def _stage_chunk(plan: VectorPlan, k: int, *, stride: int = 64) -> None:
    """Stage a representative steady-state chunk: three uniform iota
    stages (buffer write, app read, forward write) over ``k`` packets."""
    pkts = PKT_IOTA[:k]
    base_addrs = np.arange(k, dtype=np.int64) * 4096
    plan.add_batch(base_addrs, 2, pkts=pkts, rank=0, stride=stride,
                   write=True)
    plan.add_batch(base_addrs + 64, 1, pkts=pkts, rank=1, stride=stride)
    plan.add_batch(base_addrs + (1 << 20), 3, pkts=pkts, rank=6,
                   stride=stride, write=True)


def _materialized(plan: VectorPlan):
    """Materialize and copy the scratch-backed views for comparison."""
    out = plan.materialize()
    assert out is not None
    addrs, write, mlp_inv, dev, pkt = out
    return (addrs.copy(), write.copy(), mlp_inv.copy(),
            None if dev is None else dev.copy(), pkt.copy())


class TestCacheBounds:
    def test_step_cache_is_lru_bounded(self):
        plan = VectorPlan()
        n = VectorPlan.STEP_CACHE_CAP + 40
        for count in range(1, n + 1):
            plan._step(count, 64)
        assert len(plan._steps) == VectorPlan.STEP_CACHE_CAP
        # Least-recently-used keys (the smallest counts) were evicted;
        # the most recent survive.
        assert (1, 64) not in plan._steps
        assert (n, 64) in plan._steps
        # A hit refreshes recency instead of duplicating the entry.
        plan._step(n, 64)
        assert len(plan._steps) == VectorPlan.STEP_CACHE_CAP

    def test_step_cache_distinct_strides_are_distinct_keys(self):
        plan = VectorPlan()
        a = plan._step(8, 64)
        b = plan._step(8, 128)
        assert not np.array_equal(a, b)
        assert len(plan._steps) == 2

    def test_layout_cache_bounded_under_variable_chunk_sizes(self):
        plan = VectorPlan()
        for k in range(1, VectorPlan.LAYOUT_CACHE_CAP + 30):
            plan.reset()
            _stage_chunk(plan, k)
            assert plan.materialize() is not None
        assert len(plan._layouts) <= VectorPlan.LAYOUT_CACHE_CAP
        # All those chunk sizes share one structural template.
        assert len(plan._templates) == 1

    def test_template_cache_bounded_under_variable_strides(self):
        plan = VectorPlan()
        for i in range(VectorPlan.TEMPLATE_CACHE_CAP + 20):
            plan.reset()
            _stage_chunk(plan, 16, stride=64 * (i + 1))
            assert plan.materialize() is not None
        assert len(plan._templates) <= VectorPlan.TEMPLATE_CACHE_CAP

    def test_evicted_layout_rebuilds_identically(self):
        plan = VectorPlan()
        plan.reset()
        _stage_chunk(plan, 7)
        before = _materialized(plan)
        # Thrash every cache well past its bound...
        for k in range(1, VectorPlan.LAYOUT_CACHE_CAP + 50):
            plan.reset()
            _stage_chunk(plan, k, stride=64 * (1 + k % 70))
        # ...then the original chunk must rebuild bit-identically.
        plan.reset()
        _stage_chunk(plan, 7)
        after = _materialized(plan)
        for a, b in zip(before, after):
            if a is None:
                assert b is None
            else:
                np.testing.assert_array_equal(a, b)


class _CountingNumpy:
    """Module proxy that counts calls to a representative kernel set.

    Everything else delegates to the real module, so base.py keeps
    working; ``asarray`` and allocation helpers are deliberately not
    counted (no data pass over chunk-sized arrays).
    """

    COUNTED = frozenset({
        "arange", "multiply", "add", "take", "concatenate", "tile",
        "repeat", "cumsum", "argsort", "full", "zeros", "bincount",
    })

    def __init__(self, real):
        self._real = real
        self.calls = 0

    def __getattr__(self, name):
        attr = getattr(self._real, name)
        if name in self.COUNTED:
            def wrapper(*args, _attr=attr, **kwargs):
                self.calls += 1
                return _attr(*args, **kwargs)
            return wrapper
        return attr


class TestLaunchAccounting:
    def test_materialize_accounting_tracks_real_kernel_calls(self, monkeypatch):
        """The hand-maintained increments must track reality.

        One chunk through the template-build path plus one layout hit:
        the recorded launches and the counted NumPy-module calls agree
        within a tolerance wide enough for ndarray-method kernels
        (operators, fancy indexing) that a module proxy cannot see, but
        tight enough that dropped or doubled accounting fails.
        """
        plan = VectorPlan()
        proxy = _CountingNumpy(np)
        monkeypatch.setattr(base, "np", proxy)
        start = ENGINE_STATS.kernel_launches
        for _ in range(2):  # build + stamp, then pure layout hit
            plan.reset()
            _stage_chunk(plan, 13)
            assert plan.materialize() is not None
        recorded = ENGINE_STATS.kernel_launches - start
        counted = proxy.calls
        assert counted > 0
        assert abs(recorded - counted) <= max(5, 0.5 * counted), \
            f"recorded {recorded} launches vs {counted} counted calls"

    def test_layout_hit_is_single_digit_launches(self):
        plan = VectorPlan()
        plan.reset()
        _stage_chunk(plan, 29)
        assert plan.materialize() is not None
        start = ENGINE_STATS.kernel_launches
        plan.reset()
        _stage_chunk(plan, 29)
        assert plan.materialize() is not None
        assert ENGINE_STATS.kernel_launches - start <= 4


class TestLayoutCorrectness:
    def test_template_stamp_matches_generic_build(self):
        """The template fast path must order lines exactly like the
        generic packed-key argsort build for the same stages."""
        fast = VectorPlan()
        _stage_chunk(fast, 11)
        got = _materialized(fast)

        slow = VectorPlan()
        pkts = PKT_IOTA[:11].copy()  # real copy: not iota-eligible
        base_addrs = np.arange(11, dtype=np.int64) * 4096
        slow.add_batch(base_addrs, 2, pkts=pkts, rank=0, write=True)
        slow.add_batch(base_addrs + 64, 1, pkts=pkts, rank=1)
        slow.add_batch(base_addrs + (1 << 20), 3, pkts=pkts, rank=6,
                       write=True)
        want = _materialized(slow)
        for a, b in zip(got, want):
            if a is None:
                assert b is None
            else:
                np.testing.assert_array_equal(a, b)

    def test_subset_stages_fall_back_and_interleave(self):
        plan = VectorPlan()
        pkts = PKT_IOTA[:4]
        bases = np.asarray([0, 1000, 2000, 3000], dtype=np.int64)
        plan.add_batch(bases, 1, pkts=pkts, rank=0)
        miss = np.asarray([1, 3], dtype=np.int64)
        plan.add_batch(bases[miss] + 64, 1, pkts=miss, rank=2, write=True)
        addrs, write, _, _, pkt = _materialized(plan)
        np.testing.assert_array_equal(pkt, [0, 1, 1, 2, 3, 3])
        np.testing.assert_array_equal(addrs,
                                      [0, 1000, 1064, 2000, 3000, 3064])
        np.testing.assert_array_equal(write,
                                      [False, False, True, False, False,
                                       True])

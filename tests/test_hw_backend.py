"""Unit tests for the real-hardware pqos backend, against fake MSRs.

These verify the register-level behaviour (which MSR gets which value)
and that the IAT daemon runs unmodified on top of :class:`HwPqos` —
the whole point of the control-plane abstraction.
"""

import pytest

from repro.cache.ddio import IIO_LLC_WAYS_MSR
from repro.core.control import ControlPlane
from repro.core.daemon import IATDaemon
from repro.core.params import IATParams
from repro.perf.hw import (CHA_EVT_DDIO_HIT, EVT_LLC_MISS,
                           EVT_LLC_REFERENCE, HwPqos, IA32_FIXED_CTR0,
                           IA32_FIXED_CTR1, IA32_L3_QOS_MASK_BASE,
                           IA32_PERFEVTSEL0, IA32_PERFEVTSEL1, IA32_PMC0,
                           IA32_PMC1, IA32_PQR_ASSOC, cha_ctl_msr,
                           cha_ctr_msr)
from repro.perf.msr import MsrDevice
from repro.tenants.tenant import Priority, Tenant, TenantSet


class FakeMsr(MsrDevice):
    """Records every write; reads return stored values (default 0)."""

    def __init__(self):
        self.values = {}
        self.writes = []

    def read(self, register):
        return self.values.get(register, 0)

    def write(self, register, value):
        self.values[register] = value
        self.writes.append((register, value))


def make_hw(n_cores=4):
    msrs = {core: FakeMsr() for core in range(n_cores)}
    return HwPqos(msr_of=msrs, num_ways=11, num_slices=18), msrs


class TestAllocation:
    def test_cbm_written_to_l3_mask_msr(self):
        hw, msrs = make_hw()
        hw.alloc_set(3, 0b1100)
        assert msrs[0].values[IA32_L3_QOS_MASK_BASE + 3] == 0b1100
        assert hw.alloc_get(3) == 0b1100

    def test_invalid_cbm_rejected(self):
        hw, _ = make_hw()
        with pytest.raises(ValueError):
            hw.alloc_set(0, 0)
        with pytest.raises(ValueError):
            hw.alloc_set(0, 1 << 11)

    def test_assoc_sets_high_bits_preserving_rmid(self):
        hw, msrs = make_hw()
        msrs[2].values[IA32_PQR_ASSOC] = 0x5  # existing RMID
        hw.assoc_set(2, 7)
        assert msrs[2].values[IA32_PQR_ASSOC] == (7 << 32) | 0x5
        assert hw.assoc_get(2) == 7

    def test_unknown_core_rejected(self):
        hw, _ = make_hw(n_cores=2)
        with pytest.raises(ValueError):
            hw.assoc_set(9, 1)


class TestDdioRegister:
    def test_roundtrip(self):
        hw, msrs = make_hw()
        hw.ddio_set_mask(0b111 << 8)
        assert msrs[0].values[IIO_LLC_WAYS_MSR] == 0b111 << 8
        assert hw.ddio_way_count() == 3


class TestMbaRegisters:
    def test_throttle_written_per_clos(self):
        from repro.perf.hw import IA32_MBA_THRTL_BASE
        hw, msrs = make_hw()
        hw.mba_set(5, 40)
        assert msrs[0].values[IA32_MBA_THRTL_BASE + 5] == 40
        assert hw.mba_get(5) == 40

    def test_invalid_steps_rejected(self):
        hw, _ = make_hw()
        with pytest.raises(ValueError):
            hw.mba_set(0, 45)
        with pytest.raises(ValueError):
            hw.mba_set(0, 100)


class TestMonitoring:
    def test_pmu_programmed_on_first_group(self):
        hw, msrs = make_hw()
        hw.mon_start("g", [1])
        assert msrs[1].values[IA32_PERFEVTSEL0] == EVT_LLC_REFERENCE
        assert msrs[1].values[IA32_PERFEVTSEL1] == EVT_LLC_MISS

    def test_poll_reads_deltas_across_cores(self):
        hw, msrs = make_hw()
        hw.mon_start("g", [0, 1])
        for core in (0, 1):
            msrs[core].values[IA32_FIXED_CTR0] = 1000
            msrs[core].values[IA32_FIXED_CTR1] = 500
            msrs[core].values[IA32_PMC0] = 100
            msrs[core].values[IA32_PMC1] = 10
        result = hw.mon_poll("g")
        assert result.instructions == 2000
        assert result.cycles == 1000
        assert result.ipc == pytest.approx(2.0)
        assert result.llc_misses == 20
        assert hw.mon_poll("g").instructions == 0  # deltas

    def test_duplicate_group_rejected(self):
        hw, _ = make_hw()
        hw.mon_start("g", [0])
        with pytest.raises(ValueError):
            hw.mon_start("g", [1])

    def test_ddio_poll_scales_one_cha(self):
        hw, msrs = make_hw()
        hw.ddio_poll()  # programs + baselines
        assert msrs[0].values[cha_ctl_msr(0, 0)] == CHA_EVT_DDIO_HIT
        msrs[0].values[cha_ctr_msr(0, 0)] = 100
        msrs[0].values[cha_ctr_msr(0, 1)] = 10
        hits, misses = hw.ddio_poll()
        assert hits == 100 * 18
        assert misses == 10 * 18


class TestDaemonOnHwBackend:
    def test_daemon_runs_unmodified(self):
        hw, msrs = make_hw(n_cores=4)
        msrs[0].values[IIO_LLC_WAYS_MSR] = 0b11 << 9
        tenants = TenantSet([
            Tenant("io", cores=(0,), priority=Priority.PC, is_io=True,
                   initial_ways=2),
            Tenant("app", cores=(1,), priority=Priority.BE,
                   initial_ways=2),
        ])
        for i, tenant in enumerate(tenants):
            tenant.cos_id = i + 1
        control = ControlPlane(hw, tenants, time_scale=1.0)
        daemon = IATDaemon(control, IATParams())
        daemon.on_start(0.0)
        # Initial LLC Alloc programmed real CBM registers.
        assert IA32_L3_QOS_MASK_BASE + 1 in msrs[0].values
        assert IA32_L3_QOS_MASK_BASE + 2 in msrs[0].values
        # Low Keep pinned the DDIO register to one way.
        assert bin(msrs[0].values[IIO_LLC_WAYS_MSR]).count("1") == 1
        # A couple of quiet intervals run cleanly.
        daemon.on_interval(1.0)
        daemon.on_interval(2.0)
        assert len(daemon.timings) == 2

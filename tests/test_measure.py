"""Unit tests for the experiment measurement helpers."""

import pytest

from repro.experiments.measure import (StatsWindow, WindowResult,
                                       ddio_rates, mean_mem_bandwidth,
                                       mean_tenant_ipc, steady_window,
                                       sum_tenant_misses)
from repro.sim.metrics import (MetricsRecorder, QuantumRecord,
                               TenantSnapshot)
from repro.workloads.base import Workload


class _FakeWorkload(Workload):
    def run_core(self, port, budget_cycles, now):
        """Unused in these tests."""


def make_records(n=10, dt=0.1):
    recorder = MetricsRecorder()
    for i in range(n):
        recorder.append(QuantumRecord(
            time=(i + 1) * dt,
            tenants={"t": TenantSnapshot(ipc=1.0 + i * 0.1,
                                         llc_references=100,
                                         llc_misses=10 + i, mask=0b11)},
            ddio_hits=50, ddio_misses=5,
            ddio_mask=0b11 << 9,
            mem_read_bytes=6400, mem_write_bytes=640))
    return recorder


class TestWindows:
    def test_steady_window_skips_warmup(self):
        recorder = make_records(10)
        records = steady_window(recorder, warmup_s=0.5)
        assert len(records) == 6  # t = 0.5 .. 1.0 inclusive
        assert records[0].time >= 0.5

    def test_steady_window_empty_recorder(self):
        assert steady_window(MetricsRecorder(), 1.0) == []

    def test_mean_tenant_ipc(self):
        records = make_records(3).records
        assert mean_tenant_ipc(records, "t") == pytest.approx(1.1)
        assert mean_tenant_ipc([], "t") == 0.0

    def test_sum_tenant_misses(self):
        records = make_records(3).records
        assert sum_tenant_misses(records, "t") == 10 + 11 + 12

    def test_mem_bandwidth_unscales(self):
        records = make_records(4).records
        bw = mean_mem_bandwidth(records, quantum_s=0.1, time_scale=1e-3)
        # 7040 bytes per 0.1 s scaled => 70.4 KB/s scaled => 70.4 MB/s.
        assert bw == pytest.approx(7040 / 0.1 / 1e-3)

    def test_ddio_rates(self):
        records = make_records(4).records
        hits, misses = ddio_rates(records, quantum_s=0.1, time_scale=1e-3)
        assert hits == pytest.approx(4 * 50 / (4 * 0.1 * 1e-3))
        assert misses == pytest.approx(4 * 5 / (4 * 0.1 * 1e-3))
        assert ddio_rates([], 0.1, 1.0) == (0.0, 0.0)


class TestStatsWindow:
    def test_open_close_deltas(self):
        work = _FakeWorkload("w")
        window = StatsWindow(work)
        work.stats.record_op(100.0)
        window.open(1.0)
        work.stats.record_op(200.0)
        work.stats.record_op(300.0)
        result = window.close(2.0)
        assert result.ops == 2
        assert result.latency_sum_cycles == 500.0
        assert result.seconds == 1.0
        assert result.avg_latency_cycles == 250.0

    def test_ops_per_sec_unscaled(self):
        result = WindowResult(seconds=2.0, ops=100,
                              latency_sum_cycles=0.0, busy_cycles=0.0)
        assert result.ops_per_sec(1e-3) == pytest.approx(50_000)
        assert WindowResult(0.0, 0, 0.0, 0.0).ops_per_sec() == 0.0

    def test_empty_window(self):
        result = WindowResult(seconds=1.0, ops=0, latency_sum_cycles=0.0,
                              busy_cycles=0.0)
        assert result.avg_latency_cycles == 0.0

    def test_zero_length_window_is_all_zero(self):
        # A window closed at the instant it was opened must not divide
        # by zero even if ops were somehow recorded at that instant.
        result = WindowResult(seconds=0.0, ops=5,
                              latency_sum_cycles=500.0, busy_cycles=1.0)
        assert result.ops_per_sec() == 0.0
        assert result.avg_latency_cycles == 100.0
        empty = WindowResult(seconds=0.0, ops=0, latency_sum_cycles=0.0,
                             busy_cycles=0.0)
        assert empty.ops_per_sec() == 0.0
        assert empty.avg_latency_cycles == 0.0

    def test_open_close_without_activity(self):
        work = _FakeWorkload("w")
        window = StatsWindow(work)
        window.open(3.0)
        result = window.close(3.0)
        assert result.seconds == 0.0
        assert result.ops == 0
        assert result.ops_per_sec() == 0.0
        assert result.avg_latency_cycles == 0.0


class TestMetricsRecorder:
    def test_series_extraction(self):
        recorder = make_records(5)
        assert recorder.times().tolist() == pytest.approx(
            [0.1, 0.2, 0.3, 0.4, 0.5])
        assert recorder.ddio_hits().sum() == 250
        assert recorder.ddio_misses().sum() == 25
        assert recorder.mem_bytes().sum() == 5 * 7040
        assert recorder.tenant_series("t", "llc_misses").tolist() \
            == [10, 11, 12, 13, 14]

    def test_window_selection(self):
        recorder = make_records(5)
        inside = recorder.window(0.2, 0.4)
        assert [r.time for r in inside] == pytest.approx([0.2, 0.3])

    def test_total_ddio(self):
        assert make_records(2).total_ddio() == (100, 10)

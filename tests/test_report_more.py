"""Edge coverage for experiment table formatters (smoke on synthetic
results, no simulation)."""

from repro.experiments.ext_ddio import ExtPoint, ExtResult, format_table
from repro.experiments.fig12_exec_time import Fig12Cell, Fig12Result
from repro.experiments.fig12_exec_time import format_table as fmt12
from repro.experiments.fig13_rocksdb_latency import (Fig13Cell, Fig13Result)
from repro.experiments.fig13_rocksdb_latency import format_table as fmt13
from repro.experiments.fig14_redis_ycsb import Fig14Cell, Fig14Result
from repro.experiments.fig14_redis_ycsb import format_table as fmt14
from repro.experiments.fig15_overhead import Fig15Point, Fig15Result
from repro.experiments.fig15_overhead import format_table as fmt15
from repro.experiments.sensitivity import (SensitivityPoint,
                                           SensitivityResult)
from repro.experiments.sensitivity import format_table as fmt_sens


class TestFormatters:
    def test_fig12_table(self):
        table = fmt12(Fig12Result(
            [Fig12Cell("kvs", "mcf", 1.0, 1.12, 1.01)]))
        assert "mcf" in table and "1.120" in table

    def test_fig13_table(self):
        table = fmt13(Fig13Result([Fig13Cell("nfv", "A", 1.0, 1.5, 1.05)]))
        assert "nfv" in table and "1.500" in table

    def test_fig14_table(self):
        table = fmt14(Fig14Result(
            [Fig14Cell("A", "throughput", 0.2, 0.01, 0.03)]))
        assert "throughput" in table and "20.0%" in table

    def test_fig15_table(self):
        table = fmt15(Fig15Result(
            [Fig15Point(4, 1, 30.0, 32.0, 100.0, 120.0)]))
        assert "30.0" in table

    def test_ext_table(self):
        table = format_table(ExtResult(
            [ExtPoint("shared", 0.861, 0.17, 0.14, 5.3)]))
        assert "86.1%" in table

    def test_sensitivity_table(self):
        table = fmt_sens(SensitivityResult(
            [SensitivityPoint("interval", 1.0, 2e6, 3.5, 4)]))
        assert "interval" in table and "2.00M" in table

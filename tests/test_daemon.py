"""Unit tests for the IAT daemon loop against a hand-driven platform."""

import pytest

from repro.cache.ddio import default_ddio_mask
from repro.cache.geometry import TINY_LLC
from repro.core.control import ControlPlane
from repro.core.daemon import IATDaemon
from repro.core.fsm import State
from repro.core.monitor import ChangeKind
from repro.core.params import IATParams
from repro.sim.config import TINY_PLATFORM
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant, TenantSet


def build(n_io=1, n_app=2, params=None, **daemon_kwargs):
    platform = Platform(TINY_PLATFORM)
    tenants = []
    core = 0
    for i in range(n_io):
        tenants.append(Tenant(f"io{i}", cores=(core,), priority=Priority.PC,
                              is_io=True, initial_ways=2))
        core += 1
    for i in range(n_app):
        prio = Priority.BE if i else Priority.PC
        tenants.append(Tenant(f"app{i}", cores=(core,), priority=prio,
                              initial_ways=2))
        core += 1
    tenant_set = TenantSet(tenants)
    for i, tenant in enumerate(tenant_set):
        tenant.cos_id = i + 1
        for c in tenant.cores:
            platform.cat.associate(c, tenant.cos_id)
    control = ControlPlane(platform.pqos, tenant_set, time_scale=1.0)
    daemon = IATDaemon(control, params or IATParams(), **daemon_kwargs)
    return platform, daemon, tenant_set


def drive_ddio(platform, hits, misses):
    for s in range(TINY_LLC.slices):
        platform.uncore.hits[s] += hits // TINY_LLC.slices
        platform.uncore.misses[s] += misses // TINY_LLC.slices


def drive_core(platform, core, refs=1000, misses=100, instr=10_000):
    platform.counters.core(core).credit(
        instructions=instr, cycles=instr, llc_references=refs,
        llc_misses=misses)


MISS_HIGH = 4_000_000 * TINY_LLC.slices  # far above 1M/s threshold


class TestStartup:
    def test_initial_alloc_applies_masks(self):
        platform, daemon, tenants = build()
        daemon.on_start(0.0)
        for tenant in tenants:
            mask = platform.cat.get_mask(tenant.cos_id)
            assert mask != platform.cat.get_mask(0)  # not default full
        # Low Keep boot: DDIO pinned at the minimum.
        assert bin(platform.ddio.mask).count("1") == 1

    def test_manage_ddio_false_leaves_hardware_default(self):
        platform, daemon, _ = build(manage_ddio=False)
        daemon.on_start(0.0)
        assert platform.ddio.mask == default_ddio_mask(TINY_LLC)

    def test_boot_state_low_keep(self):
        _, daemon, _ = build()
        daemon.on_start(0.0)
        assert daemon.state is State.LOW_KEEP


class TestFsmDrive:
    def test_io_pressure_grows_ddio(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        daemon.on_interval(1.0)  # baseline sample
        ways = []
        for t in range(2, 8):
            drive_ddio(platform, hits=MISS_HIGH, misses=MISS_HIGH * t)
            for c in range(3):
                drive_core(platform, c)
            daemon.on_interval(float(t))
            ways.append(daemon.allocator.ddio_ways)
        assert daemon.state in (State.IO_DEMAND, State.HIGH_KEEP)
        assert max(ways) > daemon.params.ddio_ways_min

    def test_ddio_capped_at_max(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        for t in range(1, 20):
            drive_ddio(platform, hits=MISS_HIGH,
                       misses=MISS_HIGH * (t + 1))
            for c in range(3):
                drive_core(platform, c, refs=1000 + 10 * t)
            daemon.on_interval(float(t))
        assert daemon.allocator.ddio_ways <= daemon.params.ddio_ways_max

    def test_quiet_system_reclaims_to_min(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        # Push DDIO up first.
        for t in range(1, 6):
            drive_ddio(platform, hits=MISS_HIGH, misses=MISS_HIGH * t)
            daemon.on_interval(float(t))
        grown = daemon.allocator.ddio_ways
        # Then let traffic die: misses collapse interval over interval.
        misses = MISS_HIGH
        for t in range(6, 16):
            misses = int(misses * 0.3)
            drive_ddio(platform, hits=MISS_HIGH // 100, misses=misses)
            daemon.on_interval(float(t))
        assert daemon.allocator.ddio_ways <= grown
        assert daemon.allocator.ddio_ways == daemon.params.ddio_ways_min

    def test_stable_intervals_do_nothing(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        history_len = len(daemon.history)
        for t in range(1, 4):
            daemon.on_interval(float(t))
        stable = [t for t in daemon.timings if t.stable]
        assert len(stable) >= 2
        assert daemon.allocator.ddio_ways == daemon.params.ddio_ways_min
        assert len(daemon.history) == history_len + 3


class TestCoreSideGrowth:
    def test_non_io_demand_grows_then_settles(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        # Two identical baseline intervals.
        for t in (1, 2):
            for c in range(3):
                drive_core(platform, c, refs=1000, misses=10)
            daemon.on_interval(float(t))
        # app0 (core 1) jumps to a high miss rate; DDIO stays silent.
        misses = 5000
        for t in range(3, 10):
            drive_core(platform, 0, refs=1000, misses=10)
            drive_core(platform, 1, refs=10_000, misses=misses)
            drive_core(platform, 2, refs=1000, misses=10)
            misses = max(500, int(misses * 0.6))  # each grant helps
            daemon.on_interval(float(t))
        assert daemon.allocator.group_ways["app0"] > 2

    def test_frozen_tenant_ways_never_change(self):
        platform, daemon, _ = build(manage_tenant_ways=False)
        daemon.on_start(0.0)
        for t in range(1, 8):
            drive_core(platform, 1, refs=10_000, misses=5000 + 100 * t)
            daemon.on_interval(float(t))
        assert daemon.allocator.group_ways["app0"] == 2


class TestShuffling:
    def test_shuffle_reorders_be_groups(self):
        platform, daemon, _ = build(n_io=1, n_app=3)
        daemon.on_start(0.0)
        for t in (1, 2):
            for c in range(4):
                drive_core(platform, c)
            drive_ddio(platform, hits=MISS_HIGH, misses=MISS_HIGH)
            daemon.on_interval(float(t))
        # BE tenants app1 (core 2) hungry, app2 (core 3) idle.
        for t in range(3, 6):
            drive_core(platform, 2, refs=50_000, misses=5_000)
            drive_core(platform, 3, refs=100, misses=10)
            drive_ddio(platform, hits=MISS_HIGH, misses=MISS_HIGH * t)
            daemon.on_interval(float(t))
        order = daemon._order
        # Least-hungry BE (app2) must sit last = adjacent to DDIO.
        assert order[-1] == "app2"

    def test_no_shuffle_keeps_registration_order(self):
        platform, daemon, _ = build(n_io=1, n_app=3, shuffle=False)
        daemon.on_start(0.0)
        for t in range(1, 5):
            drive_core(platform, 3, refs=100_000 * t, misses=10_000 * t)
            drive_ddio(platform, hits=MISS_HIGH, misses=MISS_HIGH * t)
            daemon.on_interval(float(t))
        layout_groups = list(daemon.layout.group_masks)
        assert layout_groups == ["io0", "app0", "app1", "app2"]


class TestPcIsolationClamp:
    def test_pc_group_trimmed_when_ddio_widens(self):
        platform, daemon, tenants = build(n_io=1, n_app=2,
                                          manage_ddio=False)
        daemon.on_start(0.0)
        # Grow the PC app group (app0) near the cache size.
        daemon.allocator.group_ways["app0"] = 9
        platform.ddio.set_ways(4)
        daemon.on_interval(1.0)
        limit = platform.spec.llc.ways - 4
        assert daemon.allocator.group_ways["app0"] <= limit
        assert daemon.layout.group_masks["app0"] \
            & daemon.layout.ddio_mask == 0

    def test_io_groups_not_trimmed(self):
        platform, daemon, _ = build(n_io=1, n_app=1, manage_ddio=False)
        daemon.on_start(0.0)
        daemon.allocator.group_ways["io0"] = 9
        platform.ddio.set_ways(4)
        daemon.on_interval(1.0)
        # The I/O tenant may keep its ways (its data is the DDIO data).
        assert daemon.allocator.group_ways["io0"] == 9

    def test_frozen_tenant_ways_never_trimmed(self):
        platform, daemon, _ = build(n_io=1, n_app=1, manage_ddio=False,
                                    manage_tenant_ways=False)
        daemon.on_start(0.0)
        daemon.allocator.group_ways["app0"] = 9
        platform.ddio.set_ways(4)
        daemon.on_interval(1.0)
        assert daemon.allocator.group_ways["app0"] == 9


class TestRegistryRefresh:
    def test_tenant_file_change_reinitializes(self, tmp_path):
        from repro.tenants.registry import TenantRegistry, format_records
        platform, daemon, tenants = build()
        path = tmp_path / "tenants.txt"
        registry = TenantRegistry(str(path))
        registry.save(tenants)
        daemon.control.registry = registry
        registry.load()
        daemon.on_start(0.0)
        # Rewrite the file with an extra tenant.
        new = TenantSet(list(tenants.tenants)
                        + [Tenant("late", cores=(5,), initial_ways=1)])
        import os
        registry.save(new)
        os.utime(path, (9e8, 9e8))
        daemon.on_interval(1.0)
        assert "late" in daemon.allocator.group_ways


class TestTimings:
    def test_timings_recorded_per_interval(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        daemon.on_interval(1.0)
        daemon.on_interval(2.0)
        assert len(daemon.timings) == 2
        assert all(t.modelled_us > 0 for t in daemon.timings)
        assert daemon.mean_timing_us(stable=True) >= 0.0

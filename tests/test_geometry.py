"""Unit tests for cache geometry and address decomposition."""

import pytest

from repro.cache.geometry import (CacheGeometry, TINY_LLC, XEON_6140_LLC,
                                  _mix64)


class TestConstruction:
    def test_xeon_6140_matches_table_i(self):
        # Table I: 11-way, 24.75 MB, 18 slices, 64 B lines.
        geo = XEON_6140_LLC
        assert geo.ways == 11
        assert geo.slices == 18
        assert geo.capacity_bytes == int(24.75 * (1 << 20))

    def test_total_sets_and_lines(self):
        geo = CacheGeometry(ways=4, sets_per_slice=16, slices=3)
        assert geo.total_sets == 48
        assert geo.lines == 192
        assert geo.capacity_bytes == 192 * 64

    def test_way_capacity(self):
        geo = TINY_LLC
        assert geo.way_capacity_bytes == geo.total_sets * geo.line_size

    def test_full_mask(self):
        assert CacheGeometry(ways=11).full_mask == 0b111_1111_1111

    @pytest.mark.parametrize("kwargs", [
        {"ways": 0}, {"sets_per_slice": 0}, {"slices": 0},
        {"line_size": 0}, {"line_size": 48},
    ])
    def test_invalid_geometry_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CacheGeometry(**kwargs)


class TestAddressing:
    def test_locate_in_range(self):
        geo = TINY_LLC
        for addr in range(0, 1 << 16, 64):
            slice_id, set_id, tag = geo.locate(addr)
            assert 0 <= slice_id < geo.slices
            assert 0 <= set_id < geo.sets_per_slice
            assert tag == addr // 64

    def test_same_line_same_frame(self):
        geo = TINY_LLC
        assert geo.locate(128) == geo.locate(129) == geo.locate(191)

    def test_adjacent_lines_differ(self):
        geo = TINY_LLC
        assert geo.locate(0) != geo.locate(64)

    def test_frame_index_consistent_with_locate(self):
        geo = TINY_LLC
        slice_id, set_id, tag = geo.locate(4096)
        index, tag2 = geo.frame_index(4096)
        assert tag2 == tag
        assert index == slice_id * geo.sets_per_slice + set_id

    def test_line_of(self):
        assert TINY_LLC.line_of(0) == 0
        assert TINY_LLC.line_of(63) == 0
        assert TINY_LLC.line_of(64) == 1

    def test_slice_spread_is_even(self):
        """The property Sec. V relies on: lines spread ~evenly over
        slices, so one slice's counters estimate chip-wide traffic."""
        geo = XEON_6140_LLC
        counts = [0] * geo.slices
        n = 18_000
        for i in range(n):
            slice_id, _, _ = geo.locate(i * 64)
            counts[slice_id] += 1
        expected = n / geo.slices
        for count in counts:
            assert abs(count - expected) / expected < 0.15

    def test_strided_addresses_spread_over_sets(self):
        """2 KB-strided mbufs must not collapse onto a few sets."""
        geo = XEON_6140_LLC
        seen = {geo.locate(i * 2048)[:2] for i in range(4096)}
        assert len(seen) > 3000  # nearly all distinct frames

    def test_mix64_is_deterministic(self):
        assert _mix64(12345) == _mix64(12345)
        assert _mix64(1) != _mix64(2)

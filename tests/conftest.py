"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry, TINY_LLC
from repro.cache.llc import SlicedLLC
from repro.sim.config import TINY_PLATFORM
from repro.sim.platform import Platform


@pytest.fixture
def geometry() -> CacheGeometry:
    return TINY_LLC


@pytest.fixture
def llc(geometry) -> SlicedLLC:
    return SlicedLLC(geometry)


@pytest.fixture
def platform() -> Platform:
    return Platform(TINY_PLATFORM)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)

"""Sec. VI-B's container-count variation: "We also repeat the experiments
with three, four, and five containers and observe comparable performance
improvement."
"""

import pytest

from repro.experiments.common import leaky_dma_scenario
from repro.sim.config import PlatformSpec, TINY_LLC


class TestScenarioScaling:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_builds_with_n_containers(self, n):
        spec = PlatformSpec(name="s", cores=2 + 2 * 5, llc=TINY_LLC)
        scenario = leaky_dma_scenario(packet_size=256, n_containers=n,
                                      spec=spec)
        pmds = [name for name in scenario.workloads if name.startswith("pmd")]
        assert len(pmds) == n
        ovs = scenario.workloads["ovs"]
        dests = {id(ring) for rings in ovs.routes.values()
                 for ring in rings}
        assert len(dests) == n

    def test_rejects_zero_containers(self):
        with pytest.raises(ValueError):
            leaky_dma_scenario(packet_size=64, n_containers=0)

    def test_flows_spread_across_containers(self):
        spec = PlatformSpec(name="s", cores=10, llc=TINY_LLC)
        scenario = leaky_dma_scenario(packet_size=256, n_containers=4,
                                      n_flows=64, spec=spec)
        scenario.attach_controller("baseline")
        scenario.sim.run(1.0)
        served = [scenario.workloads[f"pmd{i}"].packets_processed
                  for i in range(4)]
        assert all(count > 0 for count in served)


class TestIatImprovementScales:
    def test_three_containers_iat_still_cuts_misses(self):
        """The paper's claim: the Fig. 8 improvement holds beyond two
        containers."""
        results = {}
        for mode in ("baseline", "iat"):
            scenario = leaky_dma_scenario(packet_size=1500,
                                          n_containers=3)
            scenario.attach_controller(mode)
            scenario.sim.run(6.0)
            records = scenario.sim.metrics.window(3.0, 7.0)
            results[mode] = sum(r.ddio_misses for r in records)
        assert results["iat"] < results["baseline"] * 0.6

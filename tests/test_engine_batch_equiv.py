"""Engine-level execution-mode equivalence.

The quantum pipeline runs each workload in one of three modes
(:data:`repro.sim.engine.EXEC_MODES`): the fully vectorized drain, the
chunked per-packet-planned drain, and the scalar per-packet reference
loop.  These tests pin the contract the vectorization relies on: all
three modes are *the same simulation* — every recorded metric field and
every controller decision must be identical, across seeds and scenario
shapes (fig. 8's OVS forwarding chain, fig. 9's many-flow variant, and
a fig. 11-style managed run with the IAT daemon in the loop).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import ControlPlane, IATDaemon, IATParams
from repro.experiments.common import leaky_dma_scenario
from repro.net.traffic import TrafficSpec
from repro.sim.config import TINY_PLATFORM
from repro.sim.engine import EXEC_MODES, Simulation
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant
from repro.workloads.testpmd import TestPmd
from repro.workloads.xmem import XMem

ARRAY_TINY = dataclasses.replace(TINY_PLATFORM, llc_backend="array")


def _records(metrics) -> list:
    """Field-for-field view of every quantum record (dataclass dump)."""
    return [dataclasses.asdict(record) for record in metrics.records]


def _run_leaky(exec_mode: str, seed: int, *, n_flows: int = 1) -> list:
    scen = leaky_dma_scenario(packet_size=512, n_flows=n_flows,
                              ring_entries=128, spec=ARRAY_TINY, seed=seed)
    scen.sim.exec_mode = exec_mode
    return _records(scen.sim.run(0.5))


def _run_iat(exec_mode: str, seed: int) -> "tuple[list, list]":
    """A fig. 11-flavoured managed run: PC testpmd + BE X-Mem under the
    IAT daemon, so controller decisions feed back into the pipeline."""
    platform = Platform(ARRAY_TINY)
    sim = Simulation(platform, seed=seed, exec_mode=exec_mode)
    nic = platform.add_nic("n0", 40.0)
    vf = nic.add_vf(entries=64, name="vf0")
    pmd = TestPmd("pmd", [vf.rx_ring])
    sim.add_tenant(Tenant("pmd", cores=(0,), priority=Priority.PC,
                          is_io=True, initial_ways=2), pmd)
    xmem = XMem("xmem", 64 << 10)
    xmem.l2_bytes = 8 << 10
    sim.add_tenant(Tenant("xmem", cores=(1,), priority=Priority.BE,
                          initial_ways=2), xmem)
    sim.attach_traffic(nic, vf, TrafficSpec(pps=1500.0, packet_size=512,
                                            n_flows=64, zipf_theta=0.9,
                                            burstiness=0.3))
    control = ControlPlane(platform.pqos, sim.tenant_set(),
                           time_scale=platform.spec.time_scale)
    daemon = IATDaemon(control, IATParams(interval_s=0.2))
    sim.add_controller(daemon)
    metrics = sim.run(1.2)
    return _records(metrics), [dataclasses.asdict(h)
                               for h in daemon.history]


class TestExecModeEquivalence:
    @pytest.mark.parametrize("seed", [8, 21, 1234])
    def test_vector_equals_batch_fig8(self, seed):
        assert _run_leaky("vector", seed) == _run_leaky("batch", seed)

    @pytest.mark.parametrize("seed", [8, 77])
    def test_vector_equals_scalar_fig8(self, seed):
        assert _run_leaky("vector", seed) == _run_leaky("scalar", seed)

    def test_all_modes_match_fig9_many_flows(self):
        runs = [_run_leaky(mode, 11, n_flows=128) for mode in EXEC_MODES]
        assert runs[0] == runs[1] == runs[2]

    @pytest.mark.parametrize("seed", [7, 42])
    def test_vector_equals_batch_with_iat_daemon(self, seed):
        vec_metrics, vec_history = _run_iat("vector", seed)
        bat_metrics, bat_history = _run_iat("batch", seed)
        assert vec_metrics == bat_metrics
        assert vec_history == bat_history

    def test_vector_equals_scalar_with_iat_daemon(self):
        vec_metrics, vec_history = _run_iat("vector", 7)
        sca_metrics, sca_history = _run_iat("scalar", 7)
        assert vec_metrics == sca_metrics
        assert vec_history == sca_history

"""The policy registry: discovery, construction, and the FSM
transition counter."""

import pytest

from repro.core import (Decision, IATParams, IATPolicy, IOCAPolicy,
                        LFOCPolicy, Policy, PolicyBase, available_policies,
                        create_policy, get_policy, register_policy)
from repro.core.monitor import ChangeKind
from repro.obs.metrics import REGISTRY

from tests.test_daemon import MISS_HIGH, build, drive_ddio


class TestRegistry:
    def test_core_policies_are_registered(self):
        names = {info.name for info in available_policies()}
        assert {"iat", "ioca", "lfoc", "static", "core-only",
                "io-iso"} <= names

    def test_entries_carry_summaries(self):
        for info in available_policies():
            assert info.summary, f"{info.name} has no summary"

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="iat"):
            get_policy("nope")
        with pytest.raises(KeyError, match="unknown policy"):
            create_policy("nope")

    def test_listing_is_sorted(self):
        names = [info.name for info in available_policies()]
        assert names == sorted(names)

    def test_tunables_cover_constructor_and_params(self):
        tunables = dict(get_policy("iat").tunables())
        assert "manage_ddio" in tunables        # constructor keyword
        assert "interval_s" in tunables         # IATParams field
        assert tunables["interval_s"] == repr(IATParams().interval_s)

    def test_registering_a_duplicate_name_fails(self):
        with pytest.raises(ValueError, match="iat"):
            @register_policy("iat", summary="imposter")
            class Imposter(PolicyBase):
                pass


class TestConstruction:
    def test_create_iat_splits_params(self):
        policy = create_policy("iat", {"interval_s": 0.5,
                                       "shuffle": False})
        assert isinstance(policy, IATPolicy)
        assert policy.params.interval_s == 0.5
        assert policy.shuffle is False
        # Untouched fields keep their defaults.
        assert policy.params.ddio_ways_max == IATParams().ddio_ways_max

    def test_create_with_no_params(self):
        assert isinstance(create_policy("ioca"), IOCAPolicy)
        assert isinstance(create_policy("lfoc"), LFOCPolicy)

    def test_create_rejects_unknown_param(self):
        with pytest.raises(TypeError):
            create_policy("lfoc", {"no_such_knob": 1})

    def test_constructor_knob_overrides(self):
        policy = create_policy("lfoc", {"unfairness_threshold": 2.0})
        assert policy.unfairness_threshold == 2.0

    def test_policies_satisfy_the_protocol(self):
        for name in ("iat", "ioca", "lfoc", "static"):
            assert isinstance(create_policy(name), Policy)


class TestTransitionsCounter:
    def test_fsm_transitions_are_counted(self):
        platform, daemon, _ = build()
        REGISTRY.clear()
        REGISTRY.enabled = True
        try:
            daemon.on_start(0.0)
            for t in range(1, 5):
                drive_ddio(platform, hits=MISS_HIGH,
                           misses=MISS_HIGH * t)
                daemon.on_interval(float(t))
            text = REGISTRY.to_prometheus()
        finally:
            REGISTRY.enabled = False
            REGISTRY.clear()
        assert "repro_policy_transitions_total" in text
        assert 'from="low-keep"' in text or "from=" in text

    def test_counter_silent_when_registry_disabled(self):
        platform, daemon, _ = build()
        REGISTRY.clear()
        daemon.on_start(0.0)
        drive_ddio(platform, hits=MISS_HIGH, misses=MISS_HIGH)
        daemon.on_interval(1.0)
        assert "repro_policy_transitions_total" \
            not in REGISTRY.to_prometheus()


class TestDecision:
    def test_decision_fields(self):
        decision = Decision(ChangeKind.POLICY, "rebalance", stable=False)
        assert decision.kind is ChangeKind.POLICY
        assert decision.action == "rebalance"
        assert decision.stable is False

"""Daemon introspection surfaces: history, timings, layout queries."""

import pytest

from repro.core.daemon import IterationLog, IterationTiming
from repro.core.fsm import State
from repro.core.monitor import ChangeKind

from tests.test_daemon import MISS_HIGH, build, drive_core, drive_ddio


class TestHistory:
    def test_history_records_every_interval(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        for t in range(1, 6):
            drive_ddio(platform, hits=MISS_HIGH, misses=MISS_HIGH * t)
            daemon.on_interval(float(t))
        assert len(daemon.history) == 6  # init + 5 intervals
        assert all(isinstance(h, IterationLog) for h in daemon.history)
        times = [h.time for h in daemon.history]
        assert times == sorted(times)

    def test_history_snapshots_are_independent(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        drive_ddio(platform, hits=MISS_HIGH, misses=MISS_HIGH)
        daemon.on_interval(1.0)
        first = daemon.history[0].group_ways
        daemon.allocator.group_ways["app0"] = 9
        assert first["app0"] != 9  # logged dicts are copies

    def test_layout_matches_programmed_masks(self):
        platform, daemon, tenants = build()
        daemon.on_start(0.0)
        for tenant in tenants:
            assert platform.cat.get_mask(tenant.cos_id) \
                == daemon.layout.mask_of(tenant)

    def test_actions_describe_state_changes(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        daemon.on_interval(1.0)
        for t in range(2, 6):
            drive_ddio(platform, hits=MISS_HIGH, misses=MISS_HIGH * t)
            for c in range(3):
                drive_core(platform, c)
            daemon.on_interval(float(t))
        actions = [h.action for h in daemon.history]
        assert any("ddio +" in a for a in actions)


class TestTimingSplit:
    def test_stable_vs_unstable_classified(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        daemon.on_interval(1.0)   # first poll establishes baselines
        daemon.on_interval(2.0)   # quiet -> stable
        drive_ddio(platform, hits=MISS_HIGH, misses=MISS_HIGH)
        daemon.on_interval(3.0)   # change -> unstable
        kinds = [t.stable for t in daemon.timings]
        assert True in kinds and False in kinds

    def test_mean_timing_handles_empty_bucket(self):
        _, daemon, _ = build()
        daemon.on_start(0.0)
        assert daemon.mean_timing_us(stable=True) == 0.0
        assert daemon.mean_timing_us(stable=False) == 0.0

    def test_wall_time_positive(self):
        platform, daemon, _ = build()
        daemon.on_start(0.0)
        daemon.on_interval(1.0)
        timing = daemon.timings[0]
        assert isinstance(timing, IterationTiming)
        assert timing.wall_us > 0
        assert timing.modelled_us > 0

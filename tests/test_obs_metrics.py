"""Tests for the metrics tier (repro.obs.metrics): counter/gauge/
histogram semantics, label families, both exposition formats, and the
engine's per-quantum registry feed."""

import json

import pytest

from repro.experiments.common import leaky_dma_scenario
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               REGISTRY)
from repro.sim.config import TINY_PLATFORM


class TestMetricPrimitives:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = Gauge()
        gauge.set(1.25)
        gauge.inc(0.75)
        assert gauge.value == 2.0

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 3, 4]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)


class TestRegistry:
    def test_family_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        assert registry.counter("x_total") is first

    def test_labels_create_children(self):
        registry = MetricsRegistry()
        family = registry.gauge("ipc", "per-tenant IPC")
        family.labels(tenant="ovs").set(1.5)
        family.labels(tenant="xmem").set(0.5)
        assert family.labels(tenant="ovs").value == 1.5
        snap = registry.snapshot()["ipc"]
        assert snap["kind"] == "gauge"
        assert snap["series"] == {"tenant=ovs": 1.5, "tenant=xmem": 0.5}

    def test_snapshot_is_jsonable(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        json.dumps(registry.snapshot())

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.clear()
        assert registry.snapshot() == {}

    def test_disabled_by_default(self):
        assert MetricsRegistry().enabled is False
        assert REGISTRY.enabled is False


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("packets_total", "Packets seen").inc(42)
        registry.gauge("ipc").labels(tenant="ovs").set(1.5)
        text = registry.to_prometheus()
        assert "# HELP packets_total Packets seen" in text
        assert "# TYPE packets_total counter" in text
        assert "packets_total 42" in text
        assert 'ipc{tenant="ovs"} 1.5' in text
        assert text.endswith("\n")

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "Latency",
                                       buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        lines = registry.to_prometheus().splitlines()
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 2' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 3' in lines
        assert "lat_seconds_sum 5.55" in lines
        assert "lat_seconds_count 3" in lines

    def test_empty_registry_empty_text(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestEngineFeed:
    def run_quanta(self):
        scen = leaky_dma_scenario(packet_size=512, spec=TINY_PLATFORM)
        scen.sim.run(0.2)

    def test_engine_feeds_registry_when_enabled(self):
        REGISTRY.clear()
        REGISTRY.enabled = True
        try:
            self.run_quanta()
        finally:
            REGISTRY.enabled = False
        snap = REGISTRY.snapshot()
        assert snap["repro_quantum_wall_seconds"]["series"][""]["count"] > 0
        assert any(key.startswith("tenant=")
                   for key in snap["repro_tenant_ipc"]["series"])
        assert snap["repro_ddio_hits_total"]["series"][""] >= 0
        assert 0.0 <= snap["repro_ddio_hit_rate"]["series"][""] <= 1.0
        assert snap["repro_mem_bytes_total"]["series"]["dir=write"] > 0
        assert 0.0 <= snap["repro_vf_drop_rate"]["series"][""] <= 1.0
        REGISTRY.to_prometheus()  # must format without error
        REGISTRY.clear()

    def test_engine_skips_registry_when_disabled(self):
        REGISTRY.clear()
        assert REGISTRY.enabled is False
        self.run_quanta()
        assert REGISTRY.snapshot() == {}

"""Additional appbench coverage: metric plumbing and solo variants."""

import pytest

from repro.experiments.appbench import (AppMetrics, _app_rate, build_corun,
                                        solo_app_run)
from repro.workloads.spec import SPEC_PROFILES, SpecWorkload
from repro.workloads.xmem import XMem


class TestAppRateDispatch:
    def test_spec_uses_instruction_rate(self):
        work = SpecWorkload(SPEC_PROFILES["gcc"])
        work.instructions_retired = 5_000.0
        rate = _app_rate(work, seconds=2.0, time_scale=1e-3,
                         start_instr=1_000.0, start_ops=0)
        assert rate == pytest.approx((5_000 - 1_000) / 2.0 / 1e-3)

    def test_other_workloads_use_ops(self):
        work = XMem("x", 1 << 20)
        work.stats.ops = 300
        rate = _app_rate(work, seconds=3.0, time_scale=1.0,
                         start_instr=0.0, start_ops=60)
        assert rate == pytest.approx(80.0)


class TestBuildCorun:
    def test_solo_net_drops_non_networking(self):
        scenario = build_corun("kvs", None)
        names = {b.tenant.name for b in scenario.sim.bindings}
        assert "app" not in names and "be0" not in names
        assert {"ovs", "redis0", "redis1"} <= names

    def test_corun_keeps_everything(self):
        scenario = build_corun("kvs", "gcc")
        names = {b.tenant.name for b in scenario.sim.bindings}
        assert {"app", "be0", "be1", "ovs"} <= names

    def test_nfv_has_four_chains(self):
        scenario = build_corun("nfv", "gcc")
        names = {b.tenant.name for b in scenario.sim.bindings}
        assert {f"nf{i}" for i in range(4)} <= names


class TestSoloMetrics:
    def test_solo_app_has_no_redis_fields(self):
        metrics = solo_app_run("gcc", warmup_s=0.2, measure_s=0.4)
        assert isinstance(metrics, AppMetrics)
        assert metrics.redis_tput is None
        assert metrics.rocksdb_per_op is None

    def test_solo_rocksdb_reports_per_op(self):
        metrics = solo_app_run("rocksdb", "A", warmup_s=0.2,
                               measure_s=0.4)
        assert metrics.rocksdb_per_op is not None
        assert metrics.app_rate > 0

"""Smoke tests for the parameter-sensitivity sweep."""

import pytest

from repro.experiments import sensitivity


class TestSensitivity:
    def test_one_point_runs(self):
        point = sensitivity.run_one("threshold_stable", 0.03,
                                    duration_s=3.0, warmup_s=1.5)
        assert point.knob == "threshold_stable"
        assert point.mean_ddio_ways >= 1.0
        assert point.reallocations >= 0

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError):
            sensitivity.run_one("magic", 1.0)

    def test_sweep_and_table(self):
        result = sensitivity.run(
            sweeps={"interval": (0.5, 1.0)},
            duration_s=3.0, warmup_s=1.5)
        assert len(result.for_knob("interval")) == 2
        table = sensitivity.format_table(result)
        assert "Sensitivity" in table
        assert "interval" in table

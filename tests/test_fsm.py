"""Unit tests for the IAT Mealy FSM (paper Fig. 6)."""

import pytest

from repro.core.fsm import INITIAL_STATE, Signals, State, next_state


def sig(**kwargs) -> Signals:
    return Signals(**kwargs)


class TestInitialAndKeepStates:
    def test_boots_in_low_keep(self):
        assert INITIAL_STATE is State.LOW_KEEP

    def test_low_keep_stays_when_quiet(self):
        assert next_state(State.LOW_KEEP, sig()) is State.LOW_KEEP

    def test_edge1_low_keep_to_io_demand(self):
        # Misses above THRESHOLD_MISS_LOW with growing hits => I/O.
        out = next_state(State.LOW_KEEP, sig(miss_high=True, hit_up=True))
        assert out is State.IO_DEMAND

    def test_edge3_low_keep_to_core_demand(self):
        # Fewer DDIO hits + more LLC refs => core is the contender.
        out = next_state(State.LOW_KEEP,
                         sig(miss_high=True, hit_down=True, llc_ref_up=True))
        assert out is State.CORE_DEMAND

    def test_low_keep_miss_high_alone_is_io(self):
        assert next_state(State.LOW_KEEP,
                          sig(miss_high=True)) is State.IO_DEMAND


class TestIoDemand:
    def test_stays_while_misses_high(self):
        out = next_state(State.IO_DEMAND, sig(miss_high=True, miss_up=True))
        assert out is State.IO_DEMAND

    def test_edge10_to_high_keep_at_max(self):
        out = next_state(State.IO_DEMAND,
                         sig(miss_high=True, at_max_ways=True))
        assert out is State.HIGH_KEEP

    def test_edge6_to_reclaim_when_calmed(self):
        out = next_state(State.IO_DEMAND, sig(miss_down=True,
                                              miss_high=False))
        assert out is State.RECLAIM

    def test_no_reclaim_while_misses_still_high(self):
        # Reclaim means "traffic is not intensive" (Sec. IV-C); a drop
        # that leaves misses above the threshold must not reclaim.
        out = next_state(State.IO_DEMAND, sig(miss_down=True,
                                              miss_high=True))
        assert out is State.IO_DEMAND

    def test_edge7_to_core_demand(self):
        out = next_state(State.IO_DEMAND, sig(hit_down=True, miss_up=True,
                                              miss_high=True))
        assert out is State.CORE_DEMAND


class TestHighKeep:
    def test_stays_under_pressure(self):
        out = next_state(State.HIGH_KEEP, sig(miss_high=True,
                                              at_max_ways=True))
        assert out is State.HIGH_KEEP

    def test_edge11_to_reclaim(self):
        out = next_state(State.HIGH_KEEP, sig(miss_down=True,
                                              at_max_ways=True))
        assert out is State.RECLAIM

    def test_edge12_to_core_demand(self):
        out = next_state(State.HIGH_KEEP, sig(hit_down=True, miss_high=True,
                                              at_max_ways=True))
        assert out is State.CORE_DEMAND


class TestCoreDemand:
    def test_edge8_to_reclaim_on_balance(self):
        out = next_state(State.CORE_DEMAND, sig(miss_down=True))
        assert out is State.RECLAIM

    def test_edge4_to_io_demand(self):
        out = next_state(State.CORE_DEMAND, sig(miss_up=True,
                                                miss_high=True))
        assert out is State.IO_DEMAND

    def test_stays_when_hit_down_and_miss_up(self):
        out = next_state(State.CORE_DEMAND, sig(miss_up=True, hit_down=True,
                                                miss_high=True))
        assert out is State.CORE_DEMAND


class TestReclaim:
    def test_edge2_to_low_keep_at_min(self):
        out = next_state(State.RECLAIM, sig(at_min_ways=True))
        assert out is State.LOW_KEEP

    def test_stays_while_reclaiming(self):
        assert next_state(State.RECLAIM, sig()) is State.RECLAIM

    def test_edge5_to_io_demand(self):
        out = next_state(State.RECLAIM, sig(miss_up=True, miss_high=True))
        assert out is State.IO_DEMAND

    def test_edge9_to_core_demand(self):
        out = next_state(State.RECLAIM, sig(miss_up=True, hit_down=True))
        assert out is State.CORE_DEMAND


class TestSignals:
    def test_exclusive_miss_flags(self):
        with pytest.raises(ValueError):
            Signals(miss_up=True, miss_down=True)

    def test_exclusive_hit_flags(self):
        with pytest.raises(ValueError):
            Signals(hit_up=True, hit_down=True)

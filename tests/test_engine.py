"""Unit tests for the platform assembly and simulation engine."""

import pytest

from repro.net.traffic import Phase, PhasedTraffic, TrafficSpec
from repro.sim.config import TINY_PLATFORM, XEON_6140, PlatformSpec
from repro.sim.engine import Simulation
from repro.sim.platform import Platform
from repro.tenants.tenant import Priority, Tenant
from repro.workloads.testpmd import TestPmd
from repro.workloads.xmem import XMem


class TestPlatformSpec:
    def test_xeon_matches_table_i(self):
        assert XEON_6140.cores == 18
        assert XEON_6140.freq_hz == 2.3e9
        assert XEON_6140.llc.ways == 11

    def test_cycles_per_quantum_scaled(self):
        spec = PlatformSpec(name="s", freq_hz=1e9, time_scale=1e-3,
                            quantum_s=0.1)
        assert spec.cycles_per_quantum == pytest.approx(1e5)

    @pytest.mark.parametrize("kwargs", [
        {"cores": 0}, {"time_scale": 0}, {"time_scale": 2},
        {"quantum_s": 0}, {"subquanta": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PlatformSpec(name="bad", **kwargs)


class TestPlatformAssembly:
    def test_regions_are_disjoint(self, platform):
        a = platform.alloc_region(1 << 20)
        b = platform.alloc_region(1 << 20)
        assert b >= a + (1 << 20)

    def test_region_needs_positive_size(self, platform):
        with pytest.raises(ValueError):
            platform.alloc_region(0)

    def test_nic_attachment(self, platform):
        nic = platform.add_nic("n0", 40.0)
        assert platform.nics == [nic]
        vf = nic.add_vf(entries=64)
        assert vf.rx_ring.base_addr >= nic.region_base

    def test_pqos_wired_to_ddio(self, platform):
        platform.pqos.ddio_set_mask(0b111 << 8)
        assert platform.ddio.mask == 0b111 << 8


def build_sim():
    platform = Platform(TINY_PLATFORM)
    sim = Simulation(platform, seed=1)
    nic = platform.add_nic("n0", 40.0)
    vf = nic.add_vf(entries=64, name="vf0")
    tenant = Tenant("pmd", cores=(0,), priority=Priority.PC, is_io=True,
                    initial_ways=2)
    pmd = TestPmd("pmd", [vf.rx_ring])
    sim.add_tenant(tenant, pmd)
    return platform, sim, nic, vf, pmd


class TestSimulation:
    def test_quantum_count(self):
        _, sim, nic, vf, _ = build_sim()
        sim.attach_traffic(nic, vf, TrafficSpec(pps=100.0))
        metrics = sim.run(1.0)
        expected = round(1.0 / TINY_PLATFORM.quantum_s)
        assert len(metrics) == expected

    def test_traffic_reaches_workload(self):
        platform, sim, nic, vf, pmd = build_sim()
        sim.attach_traffic(nic, vf, TrafficSpec(pps=500.0, packet_size=64))
        sim.run(1.0)
        assert pmd.packets_processed == pytest.approx(500, rel=0.1)

    def test_tenant_cos_assignment(self):
        platform, sim, _, _, _ = build_sim()
        tenant2 = Tenant("x", cores=(1,), initial_ways=1)
        sim.add_tenant(tenant2, XMem("x", 1 << 20))
        assert platform.cat.cos_of(0) == 1
        assert platform.cat.cos_of(1) == 2

    def test_metrics_record_tenants_and_ddio(self):
        platform, sim, nic, vf, _ = build_sim()
        sim.attach_traffic(nic, vf, TrafficSpec(pps=1000.0))
        metrics = sim.run(0.5)
        record = metrics.records[-1]
        assert "pmd" in record.tenants
        assert record.ddio_hits + record.ddio_misses > 0
        assert record.vf_delivered["vf0"] > 0

    def test_events_fire_in_order(self):
        _, sim, nic, vf, _ = build_sim()
        sim.attach_traffic(nic, vf, TrafficSpec(pps=10.0))
        fired = []
        sim.at(0.2, lambda: fired.append("a"))
        sim.at(0.1, lambda: fired.append("b"))
        sim.run(0.5)
        assert fired == ["b", "a"]

    def test_phased_traffic_switches(self):
        platform, sim, nic, vf, pmd = build_sim()
        phased = PhasedTraffic([
            Phase(0.0, TrafficSpec(pps=0.0)),
            Phase(0.5, TrafficSpec(pps=2000.0)),
        ])
        sim.attach_traffic(nic, vf, phased)
        sim.run(0.5)
        early = pmd.packets_processed
        sim.run(0.5)
        assert early == 0
        assert pmd.packets_processed > 100

    def test_controller_called_on_interval(self):
        _, sim, nic, vf, _ = build_sim()
        sim.attach_traffic(nic, vf, TrafficSpec(pps=10.0))
        calls = []

        class Probe:
            interval_s = 0.2

            def on_start(self, now):
                calls.append(("start", now))

            def on_interval(self, now):
                calls.append(("tick", now))

        sim.add_controller(Probe())
        sim.run(1.0)
        assert calls[0][0] == "start"
        ticks = [c for c in calls if c[0] == "tick"]
        assert len(ticks) == 5

    def test_runs_resume(self):
        _, sim, nic, vf, pmd = build_sim()
        sim.attach_traffic(nic, vf, TrafficSpec(pps=100.0))
        sim.run(0.5)
        mid = sim.now
        sim.run(0.5)
        assert sim.now == pytest.approx(1.0)
        assert mid == pytest.approx(0.5)

    def test_ipc_derived_from_counters(self):
        platform, sim, nic, vf, _ = build_sim()
        sim.attach_traffic(nic, vf, TrafficSpec(pps=100.0))
        metrics = sim.run(0.5)
        assert metrics.records[-1].tenants["pmd"].ipc > 0

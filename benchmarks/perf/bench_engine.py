"""End-to-end engine benchmark: the Fig. 8 leaky-DMA scenario, timed on
both LLC backends with a metric-fingerprint cross-check.

This is the acceptance benchmark for the batched access engine: the
array backend running the vectorized pipeline (``exec_mode="vector"``)
must be materially faster than the per-packet reference — the scalar
LLC backend driven by the scalar per-packet drain loop
(``exec_mode="scalar"``), i.e. the pipeline as it existed before any
batching — while producing *identical* recorded metrics (same DDIO
counters, memory traffic, per-tenant IPC and LLC counts, deliveries
and drops).

``stages`` reports where the vectorized run spends its wall time,
from the engine's self-profiling tracer: shares of the quantum loop
attributed to traffic sampling + DMA, workload drains, metric
recording, and controllers; ``stages.workloads_split`` further
attributes the drain stage per layer (plan build vs. LLC access vs.
everything else), normalized within the workloads stage.
"""

from __future__ import annotations

import dataclasses
import time

from repro.experiments.common import leaky_dma_scenario
from repro.obs import Tracer, tracing
from repro.sim.config import TINY_PLATFORM, XEON_6140
from repro.workloads import netbase
from repro.workloads.base import ENGINE_STATS


def _fingerprint(metrics) -> list:
    return [(r.time, r.ddio_hits, r.ddio_misses,
             r.mem_read_bytes, r.mem_write_bytes,
             tuple(sorted((name, snap.ipc, snap.llc_references,
                           snap.llc_misses)
                          for name, snap in r.tenants.items())),
             tuple(sorted(r.vf_delivered.items())),
             tuple(sorted(r.vf_dropped.items())))
            for r in metrics.records]


def _scenario(backend: str, scale: str):
    if scale == "tiny":
        spec = dataclasses.replace(TINY_PLATFORM, llc_backend=backend)
        return spec, 512, 0.3
    spec = dataclasses.replace(XEON_6140, llc_backend=backend)
    return spec, 1500, 2.0


#: Timed repetitions per backend; the reported time is the minimum.
#: The simulation is deterministic, so run-to-run spread is pure host
#: noise (scheduler, page cache) — strictly additive, which makes the
#: minimum the least-noisy estimator (same reasoning as ``timeit``;
#: ``bench_obs`` medians paired ratios for the same container-noise
#: problem).
REPEATS = 3


def _run_backend(backend: str, *, scale: str,
                 exec_mode: str = "vector") -> "tuple[float, list, dict]":
    spec, packet_size, duration = _scenario(backend, scale)
    elapsed = float("inf")
    for _ in range(REPEATS):
        # Reset per repetition so the ENGINE_STATS the caller samples
        # afterwards describe exactly one (deterministic) run.
        ENGINE_STATS.reset()
        scen = leaky_dma_scenario(packet_size=packet_size, spec=spec)
        scen.sim.exec_mode = exec_mode
        t0 = time.perf_counter()
        metrics = scen.sim.run(duration)
        elapsed = min(elapsed, time.perf_counter() - t0)
    params = {"packet_size": packet_size, "duration_s": duration}
    return elapsed, _fingerprint(metrics), params


def _stage_shares(scale: str) -> dict:
    """Wall-time shares of the vectorized quantum loop's stages.

    A separate self-profiled run (the tracer adds clock reads, so its
    absolute time is not the headline number); shares are normalized
    over the engine's four stage accumulators.
    """
    spec, packet_size, duration = _scenario("array", scale)
    scen = leaky_dma_scenario(packet_size=packet_size, spec=spec)
    tracer = Tracer(profiling=True)
    with tracing(tracer):
        scen.sim.run(duration)
    prefix = "engine."
    stage = {key[len(prefix):]: seconds
             for key, seconds in tracer.profile.items()
             if key.startswith(prefix)}
    # Dotted keys (e.g. ``workloads.plan`` / ``workloads.llc``) are
    # sub-accumulators *inside* a top-level stage: they attribute the
    # workloads stage per layer but must not double-count into the
    # quantum-loop normalization.
    nested = {name: seconds for name, seconds in stage.items()
              if "." in name}
    top = {name: seconds for name, seconds in stage.items()
           if "." not in name}
    total = sum(top.values())
    if total <= 0.0:
        return {}
    shares = {name: seconds / total for name, seconds in sorted(top.items())}
    for name, seconds in sorted(nested.items()):
        parent, _, child = name.partition(".")
        parent_s = top.get(parent, 0.0)
        if parent_s <= 0.0:
            continue
        split = shares.setdefault(f"{parent}_split", {})
        split[child] = seconds / parent_s
        split["other"] = max(0.0, 1.0 - sum(
            share for key, share in split.items() if key != "other"))
    return shares


def run_engine(scale: str = "default") -> dict:
    """Time fig. 8 leaky-DMA, vectorized array backend vs. the scalar
    per-packet reference; returns one result dict.

    The vectorized run is timed twice: with speculative run-ahead
    admission (the default) and with the worst-case-bound admission it
    replaced (``netbase.SPECULATION = False``), so the committed
    document records both the end-to-end speedup and how much of it
    speculation contributes (``spec_speedup``, plus the chunk-size and
    rollback statistics from :data:`ENGINE_STATS`).
    """
    array_s, array_fp, params = _run_backend("array", scale=scale)
    spec_stats = ENGINE_STATS.snapshot()
    chunk_mean = ENGINE_STATS.mean_chunk()
    rollback_rate = ENGINE_STATS.rollback_rate()
    launches = ENGINE_STATS.launches_per_chunk()
    netbase.SPECULATION = False
    try:
        nospec_s, nospec_fp, _ = _run_backend("array", scale=scale)
    finally:
        netbase.SPECULATION = True
    chunk_mean_nospec = ENGINE_STATS.mean_chunk()
    scalar_s, scalar_fp, _ = _run_backend("scalar", scale=scale,
                                          exec_mode="scalar")
    return {
        "scenario": "fig08_leaky_dma",
        **params,
        "scalar_s": scalar_s,
        "array_s": array_s,
        "speedup": scalar_s / array_s if array_s else 0.0,
        "metrics_match": scalar_fp == array_fp == nospec_fp,
        "quanta": len(array_fp),
        # Speculative admission vs. the worst-case-bound reference
        # (same array backend, same vector pipeline).
        "array_nospec_s": nospec_s,
        "spec_speedup": nospec_s / array_s if array_s else 0.0,
        "chunk_packets_mean": chunk_mean,
        "chunk_packets_mean_nospec": chunk_mean_nospec,
        "spec": {
            "spec_chunks": spec_stats["spec_chunks"],
            "rollbacks": spec_stats["rollbacks"],
            "rollback_rate": rollback_rate,
            "wasted_packets": spec_stats["wasted_packets"],
            "kernel_launches_per_chunk": launches,
        },
        # Where the vectorized run spends its quantum loop (profiled
        # separately; shares of traffic/workloads/record/controllers).
        "stages": _stage_shares(scale),
    }

"""End-to-end engine benchmark: the Fig. 8 leaky-DMA scenario, timed on
both LLC backends with a metric-fingerprint cross-check.

This is the acceptance benchmark for the batched access engine: the
array backend must be materially faster than the scalar reference while
producing *identical* recorded metrics (same DDIO counters, memory
traffic, per-tenant IPC and LLC counts, deliveries and drops).
"""

from __future__ import annotations

import dataclasses
import time

from repro.experiments.common import leaky_dma_scenario
from repro.sim.config import TINY_PLATFORM, XEON_6140


def _fingerprint(metrics) -> list:
    return [(r.time, r.ddio_hits, r.ddio_misses,
             r.mem_read_bytes, r.mem_write_bytes,
             tuple(sorted((name, snap.ipc, snap.llc_references,
                           snap.llc_misses)
                          for name, snap in r.tenants.items())),
             tuple(sorted(r.vf_delivered.items())),
             tuple(sorted(r.vf_dropped.items())))
            for r in metrics.records]


def _run_backend(backend: str, *, scale: str) -> "tuple[float, list, dict]":
    if scale == "tiny":
        spec = dataclasses.replace(TINY_PLATFORM, llc_backend=backend)
        packet_size, duration = 512, 0.3
    else:
        spec = dataclasses.replace(XEON_6140, llc_backend=backend)
        packet_size, duration = 1500, 2.0
    scen = leaky_dma_scenario(packet_size=packet_size, spec=spec)
    t0 = time.perf_counter()
    metrics = scen.sim.run(duration)
    elapsed = time.perf_counter() - t0
    params = {"packet_size": packet_size, "duration_s": duration}
    return elapsed, _fingerprint(metrics), params


def run_engine(scale: str = "default") -> dict:
    """Time fig. 8 leaky-DMA on both backends; returns one result dict."""
    array_s, array_fp, params = _run_backend("array", scale=scale)
    scalar_s, scalar_fp, _ = _run_backend("scalar", scale=scale)
    return {
        "scenario": "fig08_leaky_dma",
        **params,
        "scalar_s": scalar_s,
        "array_s": array_s,
        "speedup": scalar_s / array_s if array_s else 0.0,
        "metrics_match": scalar_fp == array_fp,
        "quanta": len(array_fp),
    }

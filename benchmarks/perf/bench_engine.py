"""End-to-end engine benchmark: the Fig. 8 leaky-DMA scenario, timed on
both LLC backends with a metric-fingerprint cross-check.

This is the acceptance benchmark for the batched access engine: the
array backend running the vectorized pipeline (``exec_mode="vector"``)
must be materially faster than the per-packet reference — the scalar
LLC backend driven by the scalar per-packet drain loop
(``exec_mode="scalar"``), i.e. the pipeline as it existed before any
batching — while producing *identical* recorded metrics (same DDIO
counters, memory traffic, per-tenant IPC and LLC counts, deliveries
and drops).

``stages`` reports where the vectorized run spends its wall time,
from the engine's self-profiling tracer: shares of the quantum loop
attributed to traffic sampling + DMA, workload drains, metric
recording, and controllers.
"""

from __future__ import annotations

import dataclasses
import time

from repro.experiments.common import leaky_dma_scenario
from repro.obs import Tracer, tracing
from repro.sim.config import TINY_PLATFORM, XEON_6140


def _fingerprint(metrics) -> list:
    return [(r.time, r.ddio_hits, r.ddio_misses,
             r.mem_read_bytes, r.mem_write_bytes,
             tuple(sorted((name, snap.ipc, snap.llc_references,
                           snap.llc_misses)
                          for name, snap in r.tenants.items())),
             tuple(sorted(r.vf_delivered.items())),
             tuple(sorted(r.vf_dropped.items())))
            for r in metrics.records]


def _scenario(backend: str, scale: str):
    if scale == "tiny":
        spec = dataclasses.replace(TINY_PLATFORM, llc_backend=backend)
        return spec, 512, 0.3
    spec = dataclasses.replace(XEON_6140, llc_backend=backend)
    return spec, 1500, 2.0


def _run_backend(backend: str, *, scale: str,
                 exec_mode: str = "vector") -> "tuple[float, list, dict]":
    spec, packet_size, duration = _scenario(backend, scale)
    scen = leaky_dma_scenario(packet_size=packet_size, spec=spec)
    scen.sim.exec_mode = exec_mode
    t0 = time.perf_counter()
    metrics = scen.sim.run(duration)
    elapsed = time.perf_counter() - t0
    params = {"packet_size": packet_size, "duration_s": duration}
    return elapsed, _fingerprint(metrics), params


def _stage_shares(scale: str) -> dict:
    """Wall-time shares of the vectorized quantum loop's stages.

    A separate self-profiled run (the tracer adds clock reads, so its
    absolute time is not the headline number); shares are normalized
    over the engine's four stage accumulators.
    """
    spec, packet_size, duration = _scenario("array", scale)
    scen = leaky_dma_scenario(packet_size=packet_size, spec=spec)
    tracer = Tracer(profiling=True)
    with tracing(tracer):
        scen.sim.run(duration)
    prefix = "engine."
    stage = {key[len(prefix):]: seconds
             for key, seconds in tracer.profile.items()
             if key.startswith(prefix)}
    total = sum(stage.values())
    if total <= 0.0:
        return {}
    return {name: seconds / total for name, seconds in sorted(stage.items())}


def run_engine(scale: str = "default") -> dict:
    """Time fig. 8 leaky-DMA, vectorized array backend vs. the scalar
    per-packet reference; returns one result dict."""
    array_s, array_fp, params = _run_backend("array", scale=scale)
    scalar_s, scalar_fp, _ = _run_backend("scalar", scale=scale,
                                          exec_mode="scalar")
    return {
        "scenario": "fig08_leaky_dma",
        **params,
        "scalar_s": scalar_s,
        "array_s": array_s,
        "speedup": scalar_s / array_s if array_s else 0.0,
        "metrics_match": scalar_fp == array_fp,
        "quanta": len(array_fp),
        # Where the vectorized run spends its quantum loop (profiled
        # separately; shares of traffic/workloads/record/controllers).
        "stages": _stage_shares(scale),
    }

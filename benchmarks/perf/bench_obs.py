"""Tracing-overhead benchmark: the Fig. 8 leaky-DMA scenario with the
tracer absent, disabled, and fully enabled (self-profiling on).

Two numbers matter:

* ``disabled_overhead`` — the cost of merely having the instrumentation
  hooks compiled in (one ``current_tracer()`` load plus an ``enabled``
  check per hook site).  The contract is "near zero";
  ``tests/test_obs.py`` enforces < 5% on a small run.
* ``enabled_overhead`` — the cost of full event emission into an
  in-memory ring, reported together with the tracer's self-profiling
  per-subsystem time shares (where does a traced run actually spend its
  wall time).  Note the shares overlap: ``dma.burst`` time is a subset
  of ``engine.traffic``.
"""

from __future__ import annotations

import dataclasses
import time

from repro.experiments.common import leaky_dma_scenario
from repro.obs import RingBufferSink, Tracer, tracing
from repro.sim.config import TINY_PLATFORM, XEON_6140


def _scenario(scale: str):
    if scale == "tiny":
        spec = dataclasses.replace(TINY_PLATFORM, llc_backend="array")
        return spec, 512, 0.3
    spec = dataclasses.replace(XEON_6140, llc_backend="array")
    return spec, 1500, 2.0


def _timed_run(scale: str, tracer: "Tracer | None") -> float:
    spec, packet_size, duration = _scenario(scale)
    scen = leaky_dma_scenario(packet_size=packet_size, spec=spec)
    t0 = time.perf_counter()
    if tracer is None:
        scen.sim.run(duration)
    else:
        with tracing(tracer):
            scen.sim.run(duration)
    return time.perf_counter() - t0


def run_obs(scale: str = "default") -> dict:
    """Baseline vs. disabled-tracer vs. enabled-tracer timings."""
    baseline_s = _timed_run(scale, None)
    disabled_s = _timed_run(scale, Tracer(enabled=False))
    enabled = Tracer(profiling=True)
    ring = enabled.add_sink(RingBufferSink(capacity=None))
    enabled_s = _timed_run(scale, enabled)
    return {
        "scenario": "fig08_leaky_dma",
        "baseline_s": baseline_s,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "disabled_overhead": disabled_s / baseline_s - 1.0
        if baseline_s else 0.0,
        "enabled_overhead": enabled_s / baseline_s - 1.0
        if baseline_s else 0.0,
        "events": len(ring),
        "profile_shares": enabled.profile_shares(),
    }

"""Tracing-overhead benchmark: the Fig. 8 leaky-DMA scenario with the
tracer absent, disabled, fully enabled (self-profiling on), and in
sampled mode.

Three numbers matter:

* ``disabled_overhead`` — the cost of merely having the instrumentation
  hooks compiled in (one ``current_tracer()`` load plus an ``enabled``
  check per hook site).  The contract is "near zero";
  ``tests/test_obs.py`` enforces < 5% on a small run.
* ``enabled_overhead`` — the cost of full event emission into the
  structured ring, reported together with the tracer's self-profiling
  per-subsystem time shares (where does a traced run actually spend its
  wall time).  Note the shares overlap: ``dma.burst`` time is a subset
  of ``engine.traffic``.
* ``sampled_overhead`` — 1-in-``SAMPLE_EVERY`` quantum sampling, the
  always-on production setting: un-sampled quanta run the hook-free
  fast path.

Methodology — the signal here is tiny (a few hundred ring pushes per
multi-second run, i.e. well under 1%) while per-run noise on a shared
host is 5-15% *multiplicative*, so the estimator does all the work.  An
earlier revision timed each mode once and committed an impossible
negative disabled overhead; plain min-of-k across rounds later swung to
-15% because the baseline never drew a clean round.  The current design
attacks each noise source directly:

1. ``time.process_time`` — CPU time excludes scheduler steal from
   co-tenants, the single largest wall-clock contaminant.
2. GC is collected, then disabled, around every timed region so
   collection cycles are not charged to whichever mode they land on.
3. **Tight pairing**: the baseline is re-run immediately before every
   mode sample, and each round contributes the ratio of the two
   adjacent runs.  Host regime drifts on the scale of seconds; adjacent
   runs see the same regime, so the ratio cancels it.
4. The reported overhead is the **median** of the paired ratios across
   ``REPEATS`` rounds, discarding the heavy tails that any single
   contaminated run produces.

One untimed warm-up per mode precedes measurement (first runs pay
import/allocator/branch-predictor warm-up).
"""

from __future__ import annotations

import dataclasses
import gc
import statistics
import time

from repro.experiments.common import leaky_dma_scenario
from repro.obs import RingBufferSink, Tracer, tracing
from repro.sim.config import TINY_PLATFORM, XEON_6140

#: Paired measurement rounds (median-of-k defeats tail contamination).
REPEATS = 7
#: Sampled mode traces 1 quantum in this many.
SAMPLE_EVERY = 10


def _scenario(scale: str):
    if scale == "tiny":
        spec = dataclasses.replace(TINY_PLATFORM, llc_backend="array")
        return spec, 512, 0.3
    spec = dataclasses.replace(XEON_6140, llc_backend="array")
    return spec, 1500, 2.0


def _timed_run(scale: str, tracer: "Tracer | None") -> float:
    spec, packet_size, duration = _scenario(scale)
    scen = leaky_dma_scenario(packet_size=packet_size, spec=spec)
    gc.collect()
    gc.disable()
    t0 = time.process_time()
    try:
        if tracer is None:
            scen.sim.run(duration)
        else:
            with tracing(tracer):
                scen.sim.run(duration)
    finally:
        gc.enable()
    return time.process_time() - t0


def _enabled_tracer() -> Tracer:
    tracer = Tracer(profiling=True)
    tracer.add_sink(RingBufferSink(capacity=None))
    return tracer


def _sampled_tracer() -> Tracer:
    return Tracer(sample=SAMPLE_EVERY, seed=0)


def run_obs(scale: str = "default", repeats: int = REPEATS) -> dict:
    """Baseline vs. disabled vs. enabled vs. sampled tracer timings."""
    modes = [
        ("disabled", lambda: Tracer(enabled=False)),
        ("enabled", _enabled_tracer),
        ("sampled", _sampled_tracer),
    ]
    # Warm-up pass per mode, never timed.
    _timed_run(scale, None)
    for _, make in modes:
        _timed_run(scale, make())

    baseline: "list[float]" = []
    samples = {name: [] for name, _ in modes}
    ratios = {name: [] for name, _ in modes}
    events = events_sampled = 0
    shares: dict = {}
    for _ in range(repeats):
        for name, make in modes:
            base_s = _timed_run(scale, None)
            tracer = make()
            mode_s = _timed_run(scale, tracer)
            baseline.append(base_s)
            samples[name].append(mode_s)
            ratios[name].append(mode_s / base_s)
            if name == "enabled":
                events = len(tracer.ring)
                shares = tracer.profile_shares()
            elif name == "sampled":
                events_sampled = len(tracer.ring)

    def overhead(name: str) -> float:
        return statistics.median(ratios[name]) - 1.0

    return {
        "scenario": "fig08_leaky_dma",
        "repeats": repeats,
        "sample_every": SAMPLE_EVERY,
        "baseline_s": statistics.median(baseline),
        "disabled_s": statistics.median(samples["disabled"]),
        "enabled_s": statistics.median(samples["enabled"]),
        "sampled_s": statistics.median(samples["sampled"]),
        "disabled_overhead": overhead("disabled"),
        "enabled_overhead": overhead("enabled"),
        "sampled_overhead": overhead("sampled"),
        "events": events,
        "events_sampled": events_sampled,
        "profile_shares": shares,
    }

"""Sweep-execution benchmark: the Fig. 8 sweep through ``repro.exec``.

Three timed configurations of the same sweep:

* ``serial_s`` — one point at a time, no cache (the historical
  behaviour of every harness before the runner existed).
* ``parallel_s`` — the ``ParallelRunner`` fanning points across all
  cores into a cold content-addressed cache.  ``parallel_speedup`` is
  the headline number; it only exceeds ~1x on a multi-core host, so the
  record also carries ``jobs`` for context.
* ``warm_s`` — the same sweep again with the now-warm cache: every
  point must replay from disk without running a simulation.
  ``warm_fraction`` (warm / cold-parallel wall time) is the cache's
  acceptance number — the ISSUE target is < 0.10 on any host.

``results_match`` asserts the parallel run is field-for-field identical
to the serial one (explicit per-point seeds make the simulation
deterministic; processes change scheduling, not arithmetic).
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
import time

from repro.exec import ParallelRunner, ResultCache
from repro.experiments import fig08_leaky_dma
from repro.sim.config import TINY_PLATFORM, XEON_6140


def _sweep(scale: str):
    if scale == "tiny":
        spec = dataclasses.replace(TINY_PLATFORM, llc_backend="array")
        return fig08_leaky_dma.sweep(packet_sizes=(256, 512),
                                     duration_s=0.6, warmup_s=0.2,
                                     spec=spec)
    spec = dataclasses.replace(XEON_6140, llc_backend="array")
    return fig08_leaky_dma.sweep(packet_sizes=(64, 256, 1024, 1500),
                                 duration_s=4.0, warmup_s=2.0, spec=spec)


def _timed(runner: ParallelRunner, spec) -> "tuple[float, list]":
    t0 = time.perf_counter()
    with runner:
        results = runner.run(spec)
    return time.perf_counter() - t0, results


def run_suite(scale: str = "default") -> dict:
    """Serial vs. parallel vs. warm-cache timings for one sweep."""
    spec = _sweep(scale)
    jobs = os.cpu_count() or 1
    cache_root = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        serial_s, serial = _timed(ParallelRunner(jobs=1), spec)
        parallel_s, parallel = _timed(
            ParallelRunner(jobs=jobs, cache=ResultCache(cache_root)), spec)
        warm_cache = ResultCache(cache_root)
        warm_s, warm = _timed(
            ParallelRunner(jobs=jobs, cache=warm_cache), spec)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)
    return {
        "sweep": spec.name,
        "points": len(spec),
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "warm_s": warm_s,
        "parallel_speedup": serial_s / parallel_s if parallel_s else 0.0,
        "warm_fraction": warm_s / parallel_s if parallel_s else 0.0,
        "results_match": serial == parallel == warm,
        "warm_hits": warm_cache.hits,
    }

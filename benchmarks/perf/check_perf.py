"""Perf regression gate: compare a freshly generated benchmark document
against the committed ``BENCH_llc.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py --out /tmp/BENCH.json
    python benchmarks/perf/check_perf.py /tmp/BENCH.json

Fails (exit 1) when the fresh document's end-to-end engine speedup
drops below ``--threshold`` (default 0.8) times the committed value —
i.e. the vectorized pipeline lost more than 20% of its advantage over
the scalar reference — or when the fresh tracing overhead
(``obs.enabled_overhead``) exceeds the committed value by more than
``--obs-margin`` (default 0.10 absolute, i.e. ten percentage points; an
overhead is already a same-host ratio, so an absolute margin is the
meaningful unit).  The obs gate only engages when both documents carry
an ``obs`` section.  ``--engine-floor`` adds an *absolute* speedup
floor on top of the relative gate: CI pins it to 0.8x the speedup the
speculative run-ahead engine committed, so the gate keeps biting even
if a slower document is ever (re-)committed.  ``--launches-ceiling``
gates ``engine.spec.kernel_launches_per_chunk`` the same absolute way:
the fused drain pipeline budgets single-digit-ish NumPy launches per
chunk, and that count is host-independent, so a fresh document above
the ceiling means dispatch overhead crept back regardless of how fast
the CI runner is.  When the fresh document
carries a ``compare`` section (the ``repro compare`` policy
tournament), its *shape* is gated too — full policy x scenario
cross-product, scores in (0, 1] — while its wall time is reported but
never gated (host-dependent).  Speedups and overheads are ratios of two runs on
the same host, so they are comparable across machines in a way
wall-clock is not; the two documents must still be at the same
``--scale``, because the tiny geometry has a different vector/scalar
balance (exit 2 on a scale mismatch rather than a misleading
comparison).
"""

from __future__ import annotations

import argparse
import json
import os

_HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_COMMITTED = os.path.join(_HERE, "BENCH_llc.json")


def check(fresh: dict, committed: dict, threshold: float = 0.8,
          obs_margin: float = 0.10,
          engine_floor: "float | None" = None,
          launches_ceiling: "float | None" = None) -> "tuple[bool, str]":
    """``(ok, message)`` for a fresh-vs-committed comparison."""
    if fresh.get("scale") != committed.get("scale"):
        raise ValueError(
            f"scale mismatch: fresh={fresh.get('scale')!r} vs "
            f"committed={committed.get('scale')!r} — regenerate at the "
            f"committed scale to compare")
    fresh_speedup = fresh["engine"]["speedup"]
    committed_speedup = committed["engine"]["speedup"]
    floor = threshold * committed_speedup
    ok = fresh_speedup >= floor
    messages = [f"engine speedup: fresh {fresh_speedup:.2f}x vs committed "
                f"{committed_speedup:.2f}x (floor {floor:.2f}x = "
                f"{threshold:.0%} of committed)"]
    if engine_floor is not None:
        # Absolute floor: unlike --threshold (relative to whatever is
        # committed), this pins the speedup the speculative run-ahead
        # engine is expected to deliver, so a PR cannot regress the
        # engine and "fix" the gate by committing the slower document.
        ok = ok and fresh_speedup >= engine_floor
        messages.append(f"engine floor: fresh {fresh_speedup:.2f}x vs "
                        f"required {engine_floor:.2f}x (absolute)")
    if launches_ceiling is not None:
        # Dispatch-overhead gate: the fused drain pipeline keeps NumPy
        # kernel launches per chunk in the single digits; a fresh
        # document above the ceiling means per-chunk dispatch crept
        # back in, even if this host is fast enough to hide it in the
        # wall-clock speedup.
        launches = (fresh["engine"].get("spec") or {}) \
            .get("kernel_launches_per_chunk")
        if launches is None:
            ok = False
            messages.append("launches ceiling: fresh document carries no "
                            "engine.spec.kernel_launches_per_chunk")
        else:
            ok = ok and launches <= launches_ceiling
            messages.append(f"kernel launches/chunk: fresh {launches:.1f} "
                            f"vs ceiling {launches_ceiling:.1f}")
    fresh_cmp = fresh.get("compare") or {}
    if fresh_cmp:
        # Structural gate only: tournament wall time is host-dependent,
        # but a fresh document whose cross-product collapsed (fewer
        # points than policies x scenarios) or whose scores left (0, 1]
        # means the compare harness itself broke.
        expected = (len(fresh_cmp.get("policies", ())) *
                    len(fresh_cmp.get("scenarios", ())))
        shape_ok = (fresh_cmp.get("points") == expected and
                    fresh_cmp.get("ranking") and
                    all(0.0 < entry["score"] <= 1.0
                        for entry in fresh_cmp["ranking"]))
        ok = ok and shape_ok
        line = (f"compare: {fresh_cmp.get('points')} points, winner "
                f"{fresh_cmp.get('winner')!r} "
                f"({fresh_cmp.get('point_s', 0.0):.3f}s/point)")
        committed_cmp = committed.get("compare") or {}
        if committed_cmp:
            line += (f" vs committed {committed_cmp.get('winner')!r} "
                     f"({committed_cmp.get('point_s', 0.0):.3f}s/point)")
        messages.append(line)
    fresh_obs = fresh.get("obs") or {}
    committed_obs = committed.get("obs") or {}
    if "enabled_overhead" in fresh_obs and \
            "enabled_overhead" in committed_obs:
        fresh_ov = fresh_obs["enabled_overhead"]
        ceiling = committed_obs["enabled_overhead"] + obs_margin
        ok = ok and fresh_ov <= ceiling
        messages.append(
            f"obs enabled overhead: fresh {fresh_ov:+.1%} vs committed "
            f"{committed_obs['enabled_overhead']:+.1%} "
            f"(ceiling {ceiling:+.1%} = committed + "
            f"{obs_margin:.0%} margin)")
    return ok, "; ".join(messages)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly generated benchmark JSON")
    parser.add_argument("--committed", default=DEFAULT_COMMITTED,
                        help="committed reference JSON (default: "
                             "BENCH_llc.json next to this script)")
    parser.add_argument("--threshold", type=float, default=0.8,
                        help="minimum fresh/committed speedup ratio")
    parser.add_argument("--obs-margin", type=float, default=0.10,
                        help="max absolute increase of obs "
                             "enabled_overhead over committed")
    parser.add_argument("--engine-floor", type=float, default=None,
                        help="absolute minimum engine speedup (CI pins "
                             "this to 0.8x the committed run-ahead "
                             "number so the gate survives re-commits)")
    parser.add_argument("--launches-ceiling", type=float, default=None,
                        help="maximum engine.spec.kernel_launches_per_chunk "
                             "(CI pins this to the fused-pipeline budget "
                             "so dispatch overhead cannot creep back)")
    args = parser.parse_args(argv)
    with open(args.fresh) as handle:
        fresh = json.load(handle)
    with open(args.committed) as handle:
        committed = json.load(handle)
    try:
        ok, message = check(fresh, committed, args.threshold,
                            args.obs_margin, args.engine_floor,
                            args.launches_ceiling)
    except ValueError as error:
        print(f"check_perf: {error}")
        return 2
    print(f"check_perf: {message}: {'OK' if ok else 'REGRESSION'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

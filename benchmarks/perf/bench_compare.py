"""Policy-tournament benchmark: the ``repro compare`` harness end to
end.

Times the full policy x scenario cross-product (serial, uncached — the
point is harness cost, not sweep-engine scaling, which ``bench_suite``
already covers) and records the ranked outcome so the perf trajectory
of the controller plane itself is visible across PRs: a policy whose
decision loop suddenly dominates an interval shows up here as tournament
wall time before it shows up anywhere else.

The recorded ``ranking`` doubles as a sanity anchor: every score is a
scenario-normalized mean in (0, 1], and the winner's score is 1.0 only
if it sweeps every axis of every scenario.
"""

from __future__ import annotations

import dataclasses
import time

from repro.exec import ParallelRunner
from repro.experiments import compare
from repro.sim.config import TINY_PLATFORM, XEON_6140

POLICIES = ("iat", "ioca", "lfoc")
SCENARIOS = ("mixed-nic", "dma-streams", "shuffle")


def run_compare(scale: str = "default") -> dict:
    """One serial tournament; wall time plus the ranked report."""
    if scale == "tiny":
        spec = dataclasses.replace(TINY_PLATFORM, llc_backend="array")
        duration, warmup = 2.0, 0.5
    else:
        spec = dataclasses.replace(XEON_6140, llc_backend="array")
        duration, warmup = 8.0, 2.0
    t0 = time.perf_counter()
    with ParallelRunner(jobs=1) as runner:
        result = compare.run(policies=POLICIES, scenarios=SCENARIOS,
                             duration=duration, warmup=warmup, spec=spec,
                             runner=runner)
    wall_s = time.perf_counter() - t0
    ranking = result.ranking()
    return {
        "policies": list(POLICIES),
        "scenarios": list(SCENARIOS),
        "points": len(result.points),
        "duration_s": duration,
        "wall_s": wall_s,
        "point_s": wall_s / len(result.points),
        "winner": ranking[0][0],
        "ranking": [{"policy": policy, "score": score}
                    for policy, score in ranking],
        "fairness_min": min(p.fairness for p in result.points),
    }

"""Perf-benchmark entry point: times scalar vs. array LLC backends and
writes ``BENCH_llc.json`` so the perf trajectory is tracked across PRs.

Usage::

    PYTHONPATH=src python benchmarks/perf/run.py [--scale default|tiny]
                                                 [--out PATH]

``--scale tiny`` runs every benchmark on shrunken geometry/duration so
CI can validate the harness and the JSON schema in seconds; committed
results use the default scale.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(os.path.dirname(_HERE)), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from bench_compare import run_compare      # noqa: E402
from bench_engine import run_engine        # noqa: E402
from bench_llc import run_micro            # noqa: E402
from bench_obs import run_obs              # noqa: E402
from bench_rollback import run_rollback    # noqa: E402
from bench_suite import run_suite          # noqa: E402

SCHEMA = "repro-bench-llc/1"
DEFAULT_OUT = os.path.join(_HERE, "BENCH_llc.json")


def run(scale: str = "default") -> dict:
    micro = run_micro(scale)
    engine = run_engine(scale)
    rollback = run_rollback(scale)
    obs = run_obs(scale)
    suite = run_suite(scale)
    compare = run_compare(scale)
    return {
        "schema": SCHEMA,
        "created_utc": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "scale": scale,
        "micro": micro,
        "engine": engine,
        # COW journal cost (repro.cache): plain vs. journaled vs. rollback.
        "rollback": rollback,
        # Tracing overhead (repro.obs): baseline vs. disabled vs. enabled.
        "obs": obs,
        # Sweep execution (repro.exec): serial vs. parallel vs. warm cache.
        "suite": suite,
        # Controller plane (repro compare): tournament wall time + ranking.
        "compare": compare,
        # Headline number: end-to-end scalar/array on fig. 8 leaky DMA.
        "speedup": engine["speedup"],
    }


def validate(doc: dict) -> None:
    """Schema check shared with the tier-1 smoke test."""
    assert doc.get("schema") == SCHEMA, "bad schema tag"
    assert doc.get("scale") in ("default", "tiny")
    assert isinstance(doc.get("created_utc"), str)
    assert isinstance(doc.get("micro"), list) and doc["micro"]
    for entry in doc["micro"]:
        for key in ("name", "accesses", "hits", "scalar_s", "array_s",
                    "speedup"):
            assert key in entry, f"micro entry missing {key}"
        assert entry["scalar_s"] >= 0 and entry["array_s"] > 0
    engine = doc.get("engine")
    assert isinstance(engine, dict)
    for key in ("scenario", "packet_size", "duration_s", "scalar_s",
                "array_s", "speedup", "metrics_match", "quanta"):
        assert key in engine, f"engine result missing {key}"
    assert engine["metrics_match"] is True, "backends diverged"
    if "spec" in engine:  # absent in pre-speculation documents (additive)
        for key in ("array_nospec_s", "spec_speedup", "chunk_packets_mean",
                    "chunk_packets_mean_nospec"):
            assert key in engine, f"engine result missing {key}"
        for key in ("spec_chunks", "rollbacks", "rollback_rate",
                    "wasted_packets", "kernel_launches_per_chunk"):
            assert key in engine["spec"], f"engine spec missing {key}"
        assert 0.0 <= engine["spec"]["rollback_rate"] <= 1.0
    rollback = doc.get("rollback")
    if rollback is not None:  # absent in pre-journal documents (additive)
        for key in ("accesses", "chunk", "plain_s", "journaled_s",
                    "journal_overhead", "rollback_s", "restored_ok"):
            assert key in rollback, f"rollback result missing {key}"
        assert rollback["restored_ok"] is True, \
            "rollback failed to restore the pre-snapshot LLC state"
        assert rollback["plain_s"] > 0 and rollback["journaled_s"] > 0
    stages = engine.get("stages")
    if stages is not None:  # absent in pre-breakdown documents (additive)
        assert isinstance(stages, dict)
        for name, share in stages.items():
            if name.endswith("_split"):
                # Per-layer attribution inside one stage (e.g.
                # workloads_split.plan/llc/other), normalized within
                # that stage (additive since the fused-pipeline PR).
                assert isinstance(share, dict)
                for sub in share.values():
                    assert 0.0 <= sub <= 1.0
            else:
                assert 0.0 <= share <= 1.0
    obs = doc.get("obs")
    if obs is not None:  # absent in pre-obs documents (schema additive)
        for key in ("scenario", "baseline_s", "disabled_s", "enabled_s",
                    "disabled_overhead", "enabled_overhead", "events",
                    "profile_shares"):
            assert key in obs, f"obs result missing {key}"
        assert obs["events"] > 0, "enabled tracer recorded no events"
        assert isinstance(obs["profile_shares"], dict)
        if "sampled_overhead" in obs:  # added with sampled mode (additive)
            for key in ("sampled_s", "events_sampled", "repeats",
                        "sample_every"):
                assert key in obs, f"obs result missing {key}"
            assert obs["events_sampled"] > 0, \
                "sampled tracer recorded no events"
            assert obs["events_sampled"] < obs["events"], \
                "sampled mode recorded as much as full fidelity"
            assert obs["repeats"] >= 3, "median-of-k needs >= 3 rounds"
    suite = doc.get("suite")
    if suite is not None:  # absent in pre-exec documents (schema additive)
        for key in ("sweep", "points", "jobs", "serial_s", "parallel_s",
                    "warm_s", "parallel_speedup", "warm_fraction",
                    "results_match", "warm_hits"):
            assert key in suite, f"suite result missing {key}"
        assert suite["results_match"] is True, "parallel diverged from serial"
        assert suite["warm_hits"] == suite["points"], "warm run missed cache"
    compare = doc.get("compare")
    if compare is not None:  # absent in pre-tournament documents (additive)
        for key in ("policies", "scenarios", "points", "duration_s",
                    "wall_s", "point_s", "winner", "ranking",
                    "fairness_min"):
            assert key in compare, f"compare result missing {key}"
        assert compare["points"] == \
            len(compare["policies"]) * len(compare["scenarios"]), \
            "compare did not run the full policy x scenario cross-product"
        assert compare["ranking"], "compare produced no ranking"
        for entry in compare["ranking"]:
            assert 0.0 < entry["score"] <= 1.0, \
                f"score {entry['score']} outside (0, 1]"
        assert compare["winner"] == compare["ranking"][0]["policy"]
        assert 0.0 <= compare["fairness_min"] <= 1.0
        assert compare["wall_s"] > 0 and compare["point_s"] > 0
    assert isinstance(doc.get("speedup"), float)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("default", "tiny"),
                        default="default")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output JSON path (default: BENCH_llc.json "
                             "next to this script)")
    args = parser.parse_args(argv)
    doc = run(args.scale)
    validate(doc)
    with open(args.out, "w") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    for entry in doc["micro"]:
        print(f"micro {entry['name']:>16}: scalar {entry['scalar_s']:.3f}s"
              f"  array {entry['array_s']:.3f}s"
              f"  speedup {entry['speedup']:.2f}x")
    engine = doc["engine"]
    print(f"engine {engine['scenario']}: scalar {engine['scalar_s']:.3f}s"
          f"  array {engine['array_s']:.3f}s"
          f"  speedup {engine['speedup']:.2f}x"
          f"  metrics_match={engine['metrics_match']}")
    if "spec" in engine:
        spec = engine["spec"]
        print(f"       spec: nospec {engine['array_nospec_s']:.3f}s"
              f" ({engine['spec_speedup']:.2f}x from run-ahead)"
              f"  chunk mean {engine['chunk_packets_mean']:.1f}"
              f" (vs {engine['chunk_packets_mean_nospec']:.1f} worst-case)"
              f"  rollbacks {spec['rollbacks']}/{spec['spec_chunks']}"
              f" ({spec['rollback_rate']:.1%})")
    stages = engine.get("stages", {})
    splits = {name: share for name, share in stages.items()
              if name.endswith("_split")}
    for name, share in sorted((kv for kv in stages.items()
                               if not kv[0].endswith("_split")),
                              key=lambda kv: kv[1], reverse=True):
        print(f"       stage {name:>12}: {share:.1%}")
        split = splits.get(f"{name}_split")
        if split:
            inner = "  ".join(f"{sub} {val:.1%}" for sub, val
                              in sorted(split.items(), key=lambda kv: kv[1],
                                        reverse=True))
            print(f"             {name} by layer: {inner}")
    rollback = doc.get("rollback")
    if rollback is not None:
        print(f"rollback x{rollback['accesses']}: "
              f"plain {rollback['plain_s']:.3f}s"
              f"  journaled {rollback['journaled_s']:.3f}s"
              f" ({rollback['journal_overhead']:+.1%})"
              f"  rollback {rollback['rollback_s']:.3f}s"
              f"  restored_ok={rollback['restored_ok']}")
    obs = doc["obs"]
    line = (f"obs    {obs['scenario']}: baseline {obs['baseline_s']:.3f}s"
            f"  disabled {obs['disabled_overhead']:+.1%}"
            f"  enabled {obs['enabled_overhead']:+.1%}")
    if "sampled_overhead" in obs:
        line += (f"  sampled(1/{obs['sample_every']}) "
                 f"{obs['sampled_overhead']:+.1%}")
    line += f"  ({obs['events']} events"
    if "events_sampled" in obs:
        line += f", {obs['events_sampled']} sampled"
    line += f"; median of {obs.get('repeats', 1)} pairs)"
    print(line)
    for key, share in sorted(obs["profile_shares"].items(),
                             key=lambda kv: kv[1], reverse=True):
        print(f"       profile {key:>20}: {share:.1%}")
    suite = doc["suite"]
    print(f"suite  {suite['sweep']} x{suite['points']}: "
          f"serial {suite['serial_s']:.3f}s"
          f"  parallel {suite['parallel_s']:.3f}s (jobs={suite['jobs']},"
          f" {suite['parallel_speedup']:.2f}x)"
          f"  warm {suite['warm_s']:.3f}s"
          f" ({suite['warm_fraction']:.1%} of cold)")
    compare = doc["compare"]
    ranked = ", ".join(f"{entry['policy']} {entry['score']:.3f}"
                       for entry in compare["ranking"])
    print(f"compare x{compare['points']}: {compare['wall_s']:.3f}s"
          f" ({compare['point_s']:.3f}s/point)  ranking: {ranked}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

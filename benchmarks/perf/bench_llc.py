"""Microbenchmarks: scalar vs. array `SlicedLLC` on fixed access streams.

Each benchmark builds one deterministic address stream, replays it
through a scalar-backend LLC one access at a time (the reference hot
path before batching) and through an array-backend LLC in batches, and
reports wall time for both plus the hit/miss totals (which must match —
the backends are bit-equivalent).

Importable: :func:`run_micro` returns plain dicts for ``run.py``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cache.geometry import TINY_LLC, XEON_6140_LLC, CacheGeometry
from repro.cache.llc import SlicedLLC

#: Batch size used when replaying streams through the array backend;
#: matches the order of magnitude the simulation's callers emit.
BATCH = 2048


def _scales(scale: str) -> "tuple[CacheGeometry, int]":
    if scale == "tiny":
        return TINY_LLC, 4_000
    return XEON_6140_LLC, 400_000


def _stream_resident(geom: CacheGeometry, n: int) -> "np.ndarray":
    """Cycling over half a cache's worth of lines: hit-dominated."""
    rng = np.random.default_rng(11)
    lines = max(1, geom.lines // 2)
    return rng.integers(0, lines, size=n) * geom.line_size


def _stream_thrash(geom: CacheGeometry, n: int) -> "np.ndarray":
    """Uniform over 8x the cache: miss/eviction-dominated."""
    rng = np.random.default_rng(13)
    return rng.integers(0, geom.lines * 8, size=n) * geom.line_size


def _stream_ring(geom: CacheGeometry, n: int) -> "np.ndarray":
    """DDIO-like: sequential lines cycling over a ring-buffer region."""
    slots = 2048 * 32  # 2K descriptors x 2 KB mbufs in lines
    return (np.arange(n, dtype=np.int64) % slots) * geom.line_size


def _replay_scalar(llc: SlicedLLC, addrs, mask: int, *, write: bool,
                   ddio: bool) -> "tuple[float, int]":
    hits = 0
    t0 = time.perf_counter()
    if ddio:
        for addr in addrs.tolist():
            hits += llc.ddio_write(addr, mask).hit
    else:
        for addr in addrs.tolist():
            hits += llc.access(addr, mask, write=write).hit
    return time.perf_counter() - t0, hits


def _replay_batch(llc: SlicedLLC, addrs, mask: int, *, write: bool,
                  ddio: bool) -> "tuple[float, int]":
    hits = 0
    t0 = time.perf_counter()
    for start in range(0, len(addrs), BATCH):
        chunk = addrs[start:start + BATCH]
        if ddio:
            hits += llc.ddio_write_batch(chunk, mask).hits
        else:
            hits += llc.access_batch(chunk, mask, write=write).hits
    return time.perf_counter() - t0, hits


def run_micro(scale: str = "default") -> "list[dict]":
    """Run every microbenchmark; returns one result dict per stream."""
    geom, n = _scales(scale)
    cases = [
        ("resident_read", _stream_resident(geom, n), geom.full_mask,
         False, False),
        ("thrash_read", _stream_thrash(geom, n), geom.full_mask,
         False, False),
        ("ddio_ring_write", _stream_ring(geom, n), 0b11, False, True),
    ]
    results = []
    for name, addrs, mask, write, ddio in cases:
        scalar = SlicedLLC(geom, backend="scalar")
        array = SlicedLLC(geom, backend="array")
        scalar_s, scalar_hits = _replay_scalar(scalar, addrs, mask,
                                               write=write, ddio=ddio)
        array_s, array_hits = _replay_batch(array, addrs, mask,
                                            write=write, ddio=ddio)
        if scalar_hits != array_hits:
            raise AssertionError(
                f"{name}: backend divergence ({scalar_hits} vs {array_hits})")
        if scalar.occupancy_by_owner() != array.occupancy_by_owner():
            raise AssertionError(f"{name}: occupancy divergence")
        results.append({
            "name": name,
            "accesses": int(len(addrs)),
            "hits": int(scalar_hits),
            "scalar_s": scalar_s,
            "array_s": array_s,
            "speedup": scalar_s / array_s if array_s else 0.0,
        })
    return results

"""Rollback microbenchmark: what copy-on-write journaling costs.

The speculative admission loop (PR 6) arms the array LLC's COW journal
before every run-ahead chunk.  Chunks that fit the budget pay only the
journaling overhead (pre-image appends on mutation); mispredicted
chunks additionally pay a rollback (reverse replay of the journal).
This benchmark prices both against the unjournaled baseline on the
same access stream, and checks that a rollback really restores the
pre-snapshot state (``restored_ok``).

Three timed modes over identical chunked address streams:

* ``plain``     — ``access_batch`` with no snapshot (the PR-4 cost);
* ``journaled`` — ``snapshot()`` / mutate / ``commit()`` per chunk
  (the run-ahead *hit* path: every chunk admitted);
* ``rollback``  — ``snapshot()`` / mutate / ``rollback()`` per chunk
  (the worst case: every chunk mispredicted).
"""

from __future__ import annotations

import time

import numpy as np

from repro.cache.llc import CacheGeometry, SlicedLLC

#: Chunk size matching the admission loop's run-ahead ceiling.
CHUNK = 256


def _geometry(scale: str) -> CacheGeometry:
    if scale == "tiny":
        return CacheGeometry(ways=4, sets_per_slice=64, slices=2)
    # A slice pair of the paper's Xeon 6140 geometry: big enough that
    # fills and evictions dominate, small enough to run in seconds.
    return CacheGeometry(ways=11, sets_per_slice=2048, slices=2)


def _stream(geometry: CacheGeometry, n: int, seed: int) -> "np.ndarray":
    rng = np.random.default_rng(seed)
    # 2x the line count: a thrashing mix of hits, fills and evictions.
    return rng.integers(0, geometry.lines * 2, size=n) * 64


def _state(llc: SlicedLLC) -> tuple:
    return (llc._tags.copy(), llc._stamp.copy(), llc._dirty.copy(),
            llc._owner.copy(), llc._clock, llc._valid, dict(llc._occ),
            llc.stat_fills, llc.stat_evictions, llc.stat_writebacks,
            llc._rand_state)


def _states_equal(a: tuple, b: tuple) -> bool:
    return all(np.array_equal(xa, xb) if isinstance(xa, np.ndarray)
               else xa == xb for xa, xb in zip(a, b))


def _timed(llc: SlicedLLC, addrs: "np.ndarray", mask: int,
           mode: str) -> float:
    t0 = time.perf_counter()
    for start in range(0, addrs.shape[0], CHUNK):
        chunk = addrs[start:start + CHUNK]
        if mode != "plain":
            llc.snapshot()
        llc.access_batch(chunk, mask, write=True, owner=1)
        if mode == "journaled":
            llc.commit()
        elif mode == "rollback":
            llc.rollback()
    return time.perf_counter() - t0


def run_rollback(scale: str = "default") -> dict:
    geometry = _geometry(scale)
    n = 50_000 if scale == "tiny" else 1_000_000
    mask = (1 << geometry.ways) - 1
    warm = _stream(geometry, geometry.lines, seed=3)
    addrs = _stream(geometry, n, seed=7)

    def fresh() -> SlicedLLC:
        llc = SlicedLLC(geometry, backend="array", seed=11)
        llc.access_batch(warm, mask, owner=1)
        return llc

    plain_s = _timed(fresh(), addrs, mask, "plain")
    journaled_s = _timed(fresh(), addrs, mask, "journaled")
    spec = fresh()
    before = _state(spec)
    rollback_s = _timed(spec, addrs, mask, "rollback")
    restored_ok = _states_equal(_state(spec), before)
    return {
        "accesses": n,
        "chunk": CHUNK,
        "plain_s": plain_s,
        "journaled_s": journaled_s,
        # Relative cost of arming the journal when every chunk commits
        # (the common case: the admission loop's speculation hit path).
        "journal_overhead": journaled_s / plain_s - 1.0 if plain_s else 0.0,
        "rollback_s": rollback_s,
        "restored_ok": restored_ok,
    }

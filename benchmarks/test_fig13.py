"""Bench: regenerate Fig. 13 — RocksDB normalized weighted latency."""

from conftest import run_once, save_table

from repro.experiments import fig13_rocksdb_latency as fig13

LETTERS = ("A", "C")
SEEDS = (0, 1, 2, 3)


def test_fig13_rocksdb_latency(benchmark):
    result = run_once(benchmark, lambda: fig13.run(
        scenarios=("kvs", "nfv"), letters=LETTERS, seeds=SEEDS,
        warmup_s=1.5, measure_s=2.5))
    save_table("fig13", fig13.format_table(result))

    for scenario in ("kvs", "nfv"):
        for letter in LETTERS:
            cell = result.cell(scenario, letter)
            # Co-running never makes RocksDB much faster than solo.
            assert cell.baseline_max > 0.95
            # IAT keeps weighted latency at or below the baseline's
            # worst placement (paper: 14.1%/19.7% -> 6.4%/9.9%).
            assert cell.iat <= cell.baseline_max + 0.02
    worst = max(result.cell(s, l).baseline_max
                for s in ("kvs", "nfv") for l in LETTERS)
    assert worst > 1.01

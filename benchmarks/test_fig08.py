"""Bench: regenerate Fig. 8 — solving the Leaky DMA problem."""

from conftest import run_once, save_table

from repro.experiments import fig08_leaky_dma as fig8


def test_fig08_leaky_dma(benchmark):
    result = run_once(benchmark, lambda: fig8.run(
        packet_sizes=(64, 128, 256, 512, 1024, 1500),
        duration_s=10.0, warmup_s=4.0))
    save_table("fig08", fig8.format_table(result))

    # (a)/(b): baseline DDIO misses grow with packet size; IAT converts
    # them back into hits at MTU size.
    base_small = result.point(64, "baseline")
    base_large = result.point(1500, "baseline")
    iat_large = result.point(1500, "iat")
    assert base_large.ddio_misses_per_s > 10 * max(1.0,
                                                   base_small.ddio_misses_per_s)
    assert iat_large.ddio_misses_per_s < 0.5 * base_large.ddio_misses_per_s
    assert iat_large.ddio_hits_per_s > base_large.ddio_hits_per_s
    # (c): memory bandwidth reduced (paper: up to 15.6%).
    assert result.mem_bw_reduction(1500) > 0.10
    # (d): OVS IPC improves at large packets (paper: ~5%).
    assert result.ipc_gain(1500) > 0.03
    # IAT actually widened the DDIO mask.
    assert iat_large.ddio_ways_final > 2

"""Bench: regenerate Fig. 3 — RFC2544 zero-loss throughput vs ring size."""

from conftest import run_once, save_table

from repro.experiments import fig03_ring_size as fig3


def test_fig03_ring_size(benchmark):
    result = run_once(benchmark, lambda: fig3.run(
        ring_sizes=(64, 128, 256, 512, 1024), packet_sizes=(64, 1500),
        measure_s=2.2, warmup_s=0.4, resolution=0.06, max_trials=14))
    save_table("fig03", fig3.format_table(result))

    # Shape vs the paper: 64B throughput collapses as the ring shrinks
    # (-13% at 512, <10% of peak at 64); 1.5KB stays flat down to ~256.
    assert result.relative(64, 512) < 0.95
    assert result.relative(64, 64) < 0.30
    assert result.relative(64, 64) < result.relative(64, 256) \
        < result.relative(64, 1024)
    assert result.relative(1500, 512) > 0.9
    assert result.relative(1500, 64) < result.relative(1500, 1024)

"""Bench: regenerate Fig. 10 — the four-policy Latent Contender study."""

from conftest import run_once, save_table

from repro.experiments import fig10_shuffle as fig10


def test_fig10_policies(benchmark):
    result = run_once(benchmark, lambda: fig10.run(
        packet_sizes=(64, 1500)))
    save_table("fig10", fig10.format_table(result))

    for size in (64, 1500):
        base = result.point("baseline", size)
        iat = result.point("iat", size)
        # IAT beats the baseline in both phases (paper: +53.6~111.5%).
        assert iat.phase2_throughput > base.phase2_throughput
        assert iat.phase3_throughput > base.phase3_throughput * 1.2
        assert iat.phase3_latency_ns < base.phase3_latency_ns
    # Core-only loses its edge at large packets after DDIO widens: all
    # of its granted ways are DDIO's (paper: "very close to baseline").
    core3 = result.point("core-only", 1500)
    iat3 = result.point("iat", 1500)
    assert iat3.phase3_throughput > core3.phase3_throughput
    # IAT also beats Core-only in phase 2 at large packets.
    assert result.gain_vs("iat", "core-only", 1500, phase=2) > 0.0

"""Bench: regenerate Fig. 15 — IAT daemon per-iteration cost."""

from conftest import run_once, save_table

from repro.experiments import fig15_overhead as fig15


def test_fig15_overhead(benchmark):
    result = run_once(benchmark, lambda: fig15.run(
        one_core_counts=(1, 2, 4, 8, 16), two_core_counts=(1, 2, 4, 8),
        iterations=100))
    save_table("fig15", fig15.format_table(result))

    # Poll cost grows with monitored cores, but sub-linearly.
    one = result.point(1, 1)
    sixteen = result.point(16, 1)
    assert sixteen.stable_us > one.stable_us
    assert sixteen.stable_us < 16 * one.stable_us
    # Fewer tenants over the same core count poll faster.
    assert result.point(4, 2).stable_us < result.point(8, 1).stable_us
    # Transition + re-alloc are cheap next to polling; everything stays
    # far below the paper's 800 us ceiling.
    assert sixteen.unstable_us < sixteen.stable_us * 2.5
    assert result.max_cost_us() < 800.0

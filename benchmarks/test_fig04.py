"""Bench: regenerate Fig. 4 — the Latent Contender microbenchmark."""

from conftest import run_once, save_table

from repro.experiments import fig04_latent_contender as fig4


def test_fig04_latent_contender(benchmark):
    result = run_once(benchmark, lambda: fig4.run(
        working_sets_mb=(4, 8, 12, 16), warmup_s=1.0, measure_s=2.5))
    save_table("fig04", fig4.format_table(result))

    # Paper: DDIO overlap costs X-Mem up to 26% throughput and 32%
    # latency even with zero core-level way sharing.
    assert result.worst_throughput_loss() > 0.10
    assert result.worst_latency_gain() > 0.10
    for point in result.points:
        assert point.throughput_overlap <= point.throughput_dedicated * 1.02

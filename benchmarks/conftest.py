"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs its experiment once (``benchmark.pedantic`` with a
single round — these are minutes-long simulations, not microbenchmarks),
prints the regenerated table, saves it under ``benchmarks/results/``,
and asserts the paper's qualitative shape.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_table(name: str, table: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(table + "\n")
    print()
    print(table)


def run_once(benchmark, fn):
    """Run a long experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

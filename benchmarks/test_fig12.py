"""Bench: regenerate Fig. 12 — app slowdown under co-location."""

from conftest import run_once, save_table

from repro.experiments import fig12_exec_time as fig12

APPS = ("mcf", "omnetpp", "gcc", "rocksdb")
SEEDS = (0, 1, 2, 3)


def test_fig12_exec_time(benchmark):
    result = run_once(benchmark, lambda: fig12.run(
        scenarios=("kvs", "nfv"), apps=APPS, seeds=SEEDS,
        warmup_s=1.5, measure_s=2.5))
    save_table("fig12", fig12.format_table(result))

    for scenario in ("kvs", "nfv"):
        for app in APPS:
            cell = result.cell(scenario, app)
            # The random baseline has a real spread: its worst placement
            # degrades the app more than its best one.
            assert cell.baseline_max >= cell.baseline_min
            # IAT holds degradation below the baseline's worst case
            # (paper: baseline up to 14.8%/24.9%, IAT at most ~5%).
            assert cell.iat <= cell.baseline_max + 0.02
    # At least one cache-heavy app shows a meaningful baseline hit.
    worst = max(result.cell(s, a).baseline_max
                for s in ("kvs", "nfv") for a in APPS)
    assert worst > 1.02

"""Bench: the Sec. VII future-work study — device-/app-aware DDIO."""

from conftest import run_once, save_table

from repro.experiments import ext_ddio


def test_ext_device_aware_ddio(benchmark):
    result = run_once(benchmark, lambda: ext_ddio.run(
        duration_s=8.0, warmup_s=3.0))
    save_table("ext_ddio", ext_ddio.format_table(result))

    shared = result.point("shared")
    device = result.point("device-aware")
    header = result.point("header-only")
    # Under the shared default the bulk device's churn evicts the PC
    # device's recycled pool (write allocates instead of write updates);
    # isolating the bulk device — its own ways, or header-only
    # injection — restores the PC device's DDIO hit rate.
    assert device.pc_ddio_hit_rate > shared.pc_ddio_hit_rate + 0.05
    assert header.pc_ddio_hit_rate > shared.pc_ddio_hit_rate + 0.05
    assert device.pc_latency_us <= shared.pc_latency_us * 1.05
    # Header-only pushes the bulk payload to DRAM: more memory traffic
    # is the explicit trade-off the paper describes.
    assert header.mem_gbps >= device.mem_gbps

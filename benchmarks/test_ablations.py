"""Ablation benches for the design choices DESIGN.md calls out.

1. **Way-increment policy** (paper Sec. IV-D: "miss-curve-based
   increment like UCP can also be explored"): one way per iteration vs
   the UCP-style two-way step on steep miss-rate jumps.  The UCP mode
   must converge to the same DDIO width at least as fast.
2. **Shuffling** (Sec. IV-D second half): IAT with and without the
   BE-next-to-DDIO shuffle, in the Fig. 10 scenario.  Without it, the
   PC X-Mem container lands wherever registration order put it and
   loses isolation.
"""

from conftest import run_once, save_table

from repro.cache.ddio import ddio_mask_for_ways
from repro.core import IATParams
from repro.experiments.common import leaky_dma_scenario, shuffle_scenario
from repro.experiments.measure import StatsWindow


def _ddio_convergence(increment_mode: str) -> "tuple[int, float]":
    """(final DDIO ways, seconds until first reaching them).

    Traffic starts at a trickle and jumps to line rate at t=3 s, so the
    DDIO-miss slope at the jump is steep — the condition under which
    the UCP-style mode takes two-way steps.
    """
    scenario = leaky_dma_scenario(packet_size=1500, rate_fraction=0.05)
    params = IATParams(increment_mode=increment_mode)
    daemon = scenario.attach_controller("iat", params=params)
    from dataclasses import replace

    def jump() -> None:
        for binding in scenario.sim.traffic:
            binding.gen.set_spec(replace(binding.gen.spec,
                                         pps=binding.gen.spec.pps * 20))

    scenario.sim.at(3.0, jump)
    scenario.sim.run(12.0)
    final = daemon.allocator.ddio_ways
    reached_at = next((h.time for h in daemon.history
                       if h.ddio_ways >= final), 12.0)
    return final, reached_at


def test_ablation_increment_mode(benchmark):
    def run():
        return _ddio_convergence("one"), _ddio_convergence("ucp")

    (one_ways, one_at), (ucp_ways, ucp_at) = run_once(benchmark, run)
    table = ("Ablation — way-increment policy (Fig. 8 scenario, 1.5KB,\n"
             "traffic jumps to line rate at t=3s)\n"
             f"{'mode':>6} {'final DDIO ways':>16} {'reached at (s)':>15}\n"
             f"{'one':>6} {one_ways:>16} {one_at:>15.1f}\n"
             f"{'ucp':>6} {ucp_ways:>16} {ucp_at:>15.1f}")
    save_table("ablation_increment", table)
    assert ucp_ways >= one_ways - 1
    assert ucp_at <= one_at  # steeper steps converge no slower


def _fig10_iat(shuffle: bool) -> float:
    scenario = shuffle_scenario(packet_size=1500)
    scenario.attach_controller("iat", manage_ddio=False, shuffle=shuffle)
    sim = scenario.sim
    c4 = scenario.workloads["c4"]
    window = StatsWindow(c4)
    sim.at(5.0, lambda: c4.set_working_set(10 << 20))
    sim.at(15.0, lambda: scenario.platform.ddio.set_mask(
        ddio_mask_for_ways(scenario.platform.spec.llc, 4)))
    sim.at(20.0, lambda: window.open(sim.now))
    sim.run(25.0)
    return window.close(sim.now).ops_per_sec(scenario.time_scale)


def test_ablation_shuffling(benchmark):
    def run():
        return _fig10_iat(True), _fig10_iat(False)

    with_shuffle, without = run_once(benchmark, run)
    table = ("Ablation — LLC-way shuffling (Fig. 10 scenario, 1.5KB,\n"
             "container-4 throughput after DDIO widens to 4 ways)\n"
             f"  shuffle on : {with_shuffle / 1e6:8.2f} M ops/s\n"
             f"  shuffle off: {without / 1e6:8.2f} M ops/s")
    save_table("ablation_shuffle", table)
    assert with_shuffle > without

"""Bench: regenerate Fig. 9 — OVS Core Demand under flow-count growth."""

from conftest import run_once, save_table

from repro.experiments import fig09_flow_scaling as fig9


def test_fig09_flow_scaling(benchmark):
    result = run_once(benchmark, lambda: fig9.run(
        flow_counts=(1, 1_000, 10_000, 100_000, 1_000_000),
        duration_s=10.0, warmup_s=4.0))
    save_table("fig09", fig9.format_table(result))

    # Baseline degrades past ~1k flows: LLC misses up, IPC down.
    base_few = result.point(1, "baseline")
    base_many = result.point(1_000_000, "baseline")
    assert base_many.ovs_llc_misses_per_s > base_few.ovs_llc_misses_per_s
    assert base_many.ovs_ipc < base_few.ovs_ipc
    # IAT detects the core-side demand: grants OVS more ways, improving
    # IPC at large flow counts (paper: up to +11.4%).
    iat_many = result.point(1_000_000, "iat")
    assert iat_many.ovs_ways_final > 2
    # Direction check: IAT recovers IPC.  The magnitude is well below
    # the paper's +11.4% because the modelled megaflow table at 1M
    # flows (128 MB) dwarfs any way grant — see EXPERIMENTS.md.
    assert result.ipc_gain(1_000_000) > 0.005

"""Bench: regenerate Fig. 11 — allocation timeline under IAT."""

from conftest import run_once, save_table

from repro.experiments import fig11_timeline as fig11


def test_fig11_timeline(benchmark):
    result = run_once(benchmark, lambda: fig11.run(
        packet_size=1500, t_grow=5.0, t_ddio=15.0, t_end=20.0))
    save_table("fig11", fig11.format_timeline(result))

    # IAT reacts "within the timescale of the sleep interval" to both
    # phase changes: container 4's allocation moves shortly after its
    # working set grows at t=5s...
    delay = result.reaction_delay(5.0, window=4.0)
    assert delay is not None and delay <= 4.0
    # ...and container 4 (the non-I/O PC tenant) ends isolated from the
    # widened DDIO ways.  Demands exceed the cache, so some groups must
    # overlap DDIO — but every sharer is either best-effort (c2/c3, the
    # shuffler's choice) or an I/O tenant whose inbound data *is* the
    # DDIO content (c0/c1); never the PC X-Mem container.
    final_ddio = result.ddio_masks[-1]
    assert result.masks["c4"][-1] & final_ddio == 0
    overlapped = {name for name, series in result.masks.items()
                  if series[-1] & final_ddio}
    assert overlapped <= {"c0", "c1", "c2", "c3"}
    assert {"c2", "c3"} & overlapped  # a BE tenant is sharing

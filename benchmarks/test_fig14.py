"""Bench: regenerate Fig. 14 — Redis YCSB degradation."""

from conftest import run_once, save_table

from repro.experiments import fig14_redis_ycsb as fig14

LETTERS = ("A", "B", "C")
SEEDS = (0, 1, 2, 3)


def test_fig14_redis_ycsb(benchmark):
    result = run_once(benchmark, lambda: fig14.run(
        letters=LETTERS, seeds=SEEDS, warmup_s=1.5, measure_s=2.5))
    save_table("fig14", fig14.format_table(result))

    for letter in LETTERS:
        tput = result.cell(letter, "throughput")
        avg = result.cell(letter, "avg")
        # The baseline's worst random placement hurts Redis even though
        # Redis "seems" isolated (paper: 7.1~24.5% tput, 7.9~26.5% avg).
        # The simulated magnitude is smaller than the paper's — the
        # virtio path shields most of Redis's service from the DDIO
        # ways (see EXPERIMENTS.md) — but the direction and ordering
        # must hold.
        assert tput.baseline_worst >= tput.baseline_best
        # IAT's degradation stays at or below the baseline's worst case
        # (paper: 2.8~5.6% tput).
        assert tput.iat <= tput.baseline_worst + 0.02
        assert avg.iat <= avg.baseline_worst + 0.05
    worst = max(result.cell(l, "throughput").baseline_worst
                for l in LETTERS)
    assert worst > 0.005

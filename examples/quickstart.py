#!/usr/bin/env python3
"""Quickstart: build a two-tenant server, watch IAT manage the LLC.

This is the smallest end-to-end use of the library:

1. assemble a simulated Xeon 6140 platform with one 40GbE NIC,
2. register an I/O tenant (DPDK testpmd) and a non-I/O tenant (X-Mem),
3. offer MTU-sized line-rate traffic (enough to leak out of the default
   two DDIO ways),
4. attach the IAT daemon and run for 10 simulated seconds,
5. print what the daemon saw and did each interval.

Run:  python examples/quickstart.py
"""

from repro.core import ControlPlane, IATDaemon, IATParams
from repro.net import TrafficSpec
from repro.sim import Platform, Simulation, XEON_6140
from repro.tenants import Priority, Tenant
from repro.workloads import TestPmd, XMem


def main() -> None:
    # 1. The machine: Table I's Xeon Gold 6140 (11-way 24.75 MB LLC).
    platform = Platform(XEON_6140)
    nic = platform.add_nic("nic0", link_gbps=40.0)
    vf = nic.add_vf(entries=1024, name="nic0.vf0")
    sim = Simulation(platform, seed=2021)

    # 2. Tenants: a performance-critical packet forwarder on two cores,
    #    and a best-effort memory-bound container on one core.
    pmd = TestPmd("pmd", [vf.rx_ring], core_freq_hz=platform.spec.freq_hz)
    sim.add_tenant(Tenant("pmd", cores=(0, 1), priority=Priority.PC,
                          is_io=True, initial_ways=2), pmd)
    xmem = XMem("xmem", working_set_bytes=8 << 20,
                core_freq_hz=platform.spec.freq_hz)
    sim.add_tenant(Tenant("xmem", cores=(2,), priority=Priority.BE,
                          initial_ways=2), xmem)

    # 3. Traffic: 40 Gb line rate of 1.5 KB packets (rates are scaled by
    #    the platform's time_scale; footprints are full-size).
    sim.attach_traffic(nic, vf, TrafficSpec.line_rate(
        40.0, 1500, scale=platform.spec.time_scale))

    # 4. The daemon, speaking pqos + MSRs through the control plane.
    control = ControlPlane(platform.pqos, sim.tenant_set(),
                           time_scale=platform.spec.time_scale)
    daemon = IATDaemon(control, IATParams())
    sim.add_controller(daemon)

    metrics = sim.run(10.0)

    # 5. Report.
    print("interval log (state / DDIO ways / action):")
    for entry in daemon.history:
        print(f"  t={entry.time:5.1f}s  {entry.state.value:12s} "
              f"ddio={entry.ddio_ways}  {entry.action}")
    hits, misses = metrics.total_ddio()
    print(f"\nDDIO transactions: {hits} write updates (hits), "
          f"{misses} write allocates (misses)")
    print(f"packets forwarded: {pmd.packets_processed}, "
          f"dropped: {pmd.drops}")
    print(f"X-Mem: {xmem.stats.ops} ops, "
          f"avg latency {xmem.avg_latency_ns():.1f} ns")
    print(f"final DDIO mask: {platform.ddio.mask:#05x} "
          f"({bin(platform.ddio.mask).count('1')} ways)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The Leaky DMA problem in the aggregation model (paper Secs. III-A, VI-B).

Two 40GbE NICs feed an OVS-style virtual switch that forwards to two
testpmd containers over virtio rings — the exact Fig. 8 topology.  The
script runs the same traffic twice, with the static baseline and with
IAT, and prints the head-to-head: DDIO hit/miss rates, memory bandwidth,
and the switch's IPC/cycles-per-packet.

Watch the mechanism: at MTU packet size the in-flight buffer footprint
exceeds the default two DDIO ways, so the NIC's write allocates evict
packets to DRAM before the switch reads them (that's the "leak").  IAT
sees the DDIO miss counter climb, walks Low Keep -> I/O Demand, and
widens the DDIO mask one way per second until the misses subside.

Run:  python examples/leaky_dma_aggregation.py [packet_size]
"""

import sys

from repro.experiments.common import leaky_dma_scenario
from repro.experiments.measure import (ddio_rates, mean_mem_bandwidth,
                                       mean_tenant_ipc, steady_window)


def run_mode(mode: str, packet_size: int) -> dict:
    scenario = leaky_dma_scenario(packet_size=packet_size)
    controller = scenario.attach_controller(mode)
    scenario.sim.run(10.0)
    records = steady_window(scenario.sim.metrics, warmup_s=4.0)
    quantum = scenario.platform.spec.quantum_s
    scale = scenario.time_scale
    hits, misses = ddio_rates(records, quantum, scale)
    ovs = scenario.workloads["ovs"]
    result = {
        "ddio_hits_per_s": hits,
        "ddio_misses_per_s": misses,
        "mem_gbps": mean_mem_bandwidth(records, quantum, scale) / 1e9,
        "ovs_ipc": mean_tenant_ipc(records, "ovs"),
        "ovs_cpp": ovs.cycles_per_packet(),
        "ddio_ways": bin(scenario.platform.ddio.mask).count("1"),
    }
    if mode == "iat":
        result["history"] = controller.history
    return result


def main() -> None:
    packet_size = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    print(f"packet size: {packet_size} B, two NICs at line rate\n")
    baseline = run_mode("baseline", packet_size)
    iat = run_mode("iat", packet_size)

    print(f"{'metric':>22} {'baseline':>12} {'IAT':>12}")
    for key, label in (("ddio_hits_per_s", "DDIO hits/s"),
                       ("ddio_misses_per_s", "DDIO misses/s"),
                       ("mem_gbps", "memory GB/s"),
                       ("ovs_ipc", "OVS IPC"),
                       ("ovs_cpp", "OVS cycles/pkt"),
                       ("ddio_ways", "final DDIO ways")):
        b, i = baseline[key], iat[key]
        if key.endswith("per_s"):
            print(f"{label:>22} {b / 1e6:>11.2f}M {i / 1e6:>11.2f}M")
        else:
            print(f"{label:>22} {b:>12.2f} {i:>12.2f}")

    print("\nIAT state trajectory:")
    for entry in iat["history"]:
        print(f"  t={entry.time:5.1f}s {entry.state.value:12s} "
              f"ddio={entry.ddio_ways} {entry.action}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The Latent Contender problem in the slicing model (paper Sec. III-B,
Fig. 10): why "isolated" LLC ways are not isolated from the I/O.

Five containers on SR-IOV VFs and dedicated cores: two PC testpmd
forwarders (sharing three ways), two BE X-Mem probes, and one PC X-Mem
container whose working set jumps from 2 MB to 10 MB at t=5 s.  At
t=15 s an operator widens DDIO from two to four ways.

The script replays this under all four policies the paper compares and
prints the PC X-Mem container's stabilized throughput/latency per phase,
plus IAT's shuffling decisions (which BE container it parked next to
the DDIO ways).

Run:  python examples/latent_contender_slicing.py [packet_size]
"""

import sys

from repro.experiments import fig10_shuffle


def main() -> None:
    packet_size = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    print(f"packet size: {packet_size} B; phases: working set jump at "
          f"t=5s, DDIO widened 2->4 ways at t=15s\n")
    print(f"{'policy':>10} | {'phase 2 (5-15s)':>24} | "
          f"{'phase 3 (>15s)':>24}")
    print("-" * 66)
    for mode in ("baseline", "core-only", "io-iso", "iat"):
        point = fig10_shuffle.run_one(mode, packet_size)
        print(f"{mode:>10} | {point.phase2_throughput / 1e6:9.2f}M ops/s "
              f"{point.phase2_latency_ns:6.1f}ns | "
              f"{point.phase3_throughput / 1e6:9.2f}M ops/s "
              f"{point.phase3_latency_ns:6.1f}ns")
    print("\nExpected shape (paper Fig. 10): IAT keeps the PC container "
          "both fed (more ways)\nand isolated (a BE container shares "
          "with DDIO instead); Core-only's extra ways\nare secretly "
          "DDIO's; I/O-iso runs out of pool when DDIO widens.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Trace the Fig. 11 scenario, then rebuild its timeline from events.

Demonstrates that the legacy recorders are *views* over the trace: run
the paper's LLC-allocation timeline (Fig. 11) with the tracing subsystem
enabled, keep every event in an in-memory ring, and reconstruct — from
the event stream alone — the daemon's FSM/state log, the per-tenant CAT
way masks and the DDIO way mask, then check them against what the
harness returned directly.  Also writes a Perfetto-loadable JSON so the
same run can be inspected at https://ui.perfetto.dev.

Run:  python examples/fig11_trace_timeline.py  (a few minutes; pass
--fast for a shrunken platform that finishes in seconds)
"""

import json
import sys

from repro.experiments import fig11_timeline
from repro.obs import RingBufferSink, Tracer, perfetto_document, tracing, views
from repro.sim.config import TINY_PLATFORM

TRACE_OUT = "trace_fig11.json"


def main() -> None:
    fast = "--fast" in sys.argv[1:]
    tracer = Tracer(profiling=True)
    ring = tracer.add_sink(RingBufferSink(capacity=None))

    with tracing(tracer):
        if fast:
            result = fig11_timeline.run(t_grow=0.5, t_ddio=1.0,
                                        t_end=1.5, spec=TINY_PLATFORM)
        else:
            result = fig11_timeline.run()

    # Reconstruct the timeline purely from the event stream.
    print("FSM timeline (from daemon/iteration events):")
    for t, state in views.fsm_timeline(ring):
        print(f"  t={t:5.1f}s  {state.value}")

    print("\nway-mask timeline (from metrics/quantum events, last 5):")
    masks = views.mask_timeline(ring)
    times = views.times(ring)
    ddio = views.ddio_mask_timeline(ring)
    for i in range(max(0, len(times) - 5), len(times)):
        row = "  ".join(f"{name}={masks[name][i]:#05x}"
                        for name in sorted(masks))
        print(f"  t={times[i]:5.2f}s  ddio={ddio[i]:#05x}  {row}")

    # The acceptance check: views must equal the harness's own records.
    assert views.history_from_events(ring) == result.daemon_history
    assert views.times(ring) == list(result.times)
    assert views.ddio_mask_timeline(ring) == list(result.ddio_masks)
    for name, series in result.masks.items():
        assert masks[name] == list(series)
    print("\nreconstruction matches Fig11Result exactly "
          f"({len(ring)} events)")

    with open(TRACE_OUT, "w") as handle:
        json.dump(perfetto_document(ring.events()), handle)
    print(f"Perfetto trace -> {TRACE_OUT} (open at ui.perfetto.dev)")

    shares = tracer.profile_shares()
    if shares:
        print("self-profile (wall-time shares):")
        for key, share in sorted(shares.items(), key=lambda kv: -kv[1]):
            print(f"  {key:>20}  {share:6.1%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""NFV service chains co-located with cloud apps (paper Sec. VI-C).

Four FastClick-style chains (firewall -> flow stats -> NAPT), each
processing one VLAN's 20 Gb/s of MTU traffic from its own SR-IOV VF,
share a server with a performance-critical RocksDB container and two
best-effort X-Mem containers.

The script measures RocksDB's YCSB-A latency per op type in three
configurations — solo, co-run under a random static baseline, and
co-run under IAT — and prints the normalized weighted latency the paper
reports in Fig. 13, along with where each policy left the LLC layout.

Run:  python examples/nfv_service_chain.py
"""

from repro.cache.cat import mask_ways
from repro.experiments.appbench import corun, solo_app_run
from repro.experiments.fig13_rocksdb_latency import weighted_latency
from repro.workloads.ycsb import ALL_WORKLOADS


def main() -> None:
    letter = "A"
    mix = ALL_WORKLOADS[letter]
    print("measuring RocksDB (YCSB-A) solo ...")
    solo = solo_app_run("rocksdb", letter, warmup_s=1.5, measure_s=2.5)

    print("co-running with 4x FastClick chains (random baseline) ...")
    rows = []
    for seed in (0, 1, 2):
        metrics = corun("nfv", "rocksdb", "baseline", ycsb_letter=letter,
                        seed=seed, warmup_s=1.5, measure_s=2.5)
        rows.append((f"baseline (seed {seed})",
                     weighted_latency(metrics.rocksdb_per_op,
                                      solo.rocksdb_per_op, mix)))
    print("co-running with 4x FastClick chains (IAT) ...")
    metrics = corun("nfv", "rocksdb", "iat", ycsb_letter=letter,
                    warmup_s=1.5, measure_s=2.5)
    rows.append(("IAT", weighted_latency(metrics.rocksdb_per_op,
                                         solo.rocksdb_per_op, mix)))

    print(f"\n{'configuration':>20} {'normalized weighted latency':>28}")
    for name, value in rows:
        bar = "#" * int((value - 1.0) * 200)
        print(f"{name:>20} {value:>10.3f}  {bar}")
    print("\n(1.000 = solo; paper Fig. 13: baseline up to 1.197 with "
          "FastClick, IAT at most 1.099)")


if __name__ == "__main__":
    main()

"""repro: a simulator-backed reproduction of "Don't Forget the I/O When
Allocating Your LLC" (Yuan et al., ISCA 2021).

The package re-implements IAT — the first I/O-aware LLC management
mechanism — together with every substrate it needs: a way-partitioned
sliced LLC with CAT and DDIO semantics, a memory model, NIC/SR-IOV
descriptor rings, an OVS-style virtual switch, the paper's workload
suite, a pqos/MSR-shaped control plane, and a discrete-time simulation
engine.  ``repro.experiments`` regenerates every figure of the paper's
evaluation section.

Quick start::

    from repro.experiments import leaky_dma_scenario
    scenario = leaky_dma_scenario(packet_size=1500)
    scenario.attach_controller("iat")
    metrics = scenario.sim.run(10.0)

See README.md for the full tour and EXPERIMENTS.md for paper-vs-measured
results.
"""

from .cache import (CacheGeometry, CatController, DdioConfig, SlicedLLC,
                    XEON_6140_LLC)
from .core import (ControlPlane, CoreOnlyPolicy, IATDaemon, IATParams,
                   IOIsoPolicy, State, StaticPolicy)
from .sim import Platform, PlatformSpec, Simulation, XEON_6140
from .tenants import Priority, Tenant, TenantSet

__version__ = "1.0.0"

__all__ = [
    "CacheGeometry", "CatController", "ControlPlane", "CoreOnlyPolicy",
    "DdioConfig", "IATDaemon", "IATParams", "IOIsoPolicy", "Platform",
    "PlatformSpec", "Priority", "Simulation", "SlicedLLC", "State",
    "StaticPolicy", "Tenant", "TenantSet", "XEON_6140", "XEON_6140_LLC",
    "__version__",
]

"""The sweep runner: fan independent points across processes, replay
completed ones from the cache.

:class:`ParallelRunner` executes a :class:`~repro.exec.sweep.SweepSpec`
and returns the point results *in declared point order*, regardless of
completion order, cache state, or worker count — so

* ``ParallelRunner(jobs=1)`` (a plain in-process loop) and
* ``ParallelRunner(jobs=N)`` (a forkserver ``ProcessPoolExecutor``
  fed contiguous point chunks rather than single points)

produce bit-identical result lists: every point function builds its own
explicitly-seeded simulation from its arguments alone, and pickling the
result back from a worker preserves float bits exactly.

Tracing composes with parallelism through *trace shards*: give the
runner a :class:`TraceFanout` and every computed point — in-process or
in a worker — records into its own tracer and writes one shard file
(meta + heartbeats + events, see :mod:`repro.obs.merge`); the parent
merges all shards into a single Perfetto document afterwards
(:meth:`ParallelRunner.write_merged_trace`).  An *in-process* enabled
tracer (``repro trace``) still forces serial execution — workers can't
feed the parent's ring — but that is now the fallback, not the only
path.  Shard runs skip cache **reads** (a cached point would record no
events) while still populating the cache for later runs.

The executor is created lazily and kept for the runner's lifetime, so
one runner can drive many sweeps — ``repro suite`` pushes every figure
through a single shared pool.  Use the runner as a context manager (or
call :meth:`close`) to shut the pool down.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from time import perf_counter

from ..obs import current_tracer
from ..obs.merge import ShardWriter, write_merged
from ..obs.tracer import Tracer, tracing
from .cache import ResultCache, code_fingerprint, point_key
from .progress import SweepProgress
from .sweep import SweepSpec

__all__ = ["ParallelRunner", "TraceFanout", "run_sweep"]

#: Upper bound on points per worker task, so a long sweep still reports
#: progress at a useful cadence.
_MAX_CHUNK = 32


def _call_point(func, params: dict):
    """Module-level worker entry point (picklable by reference).

    Returns ``(result, compute_seconds)`` — the duration is measured in
    the worker so the parent's ETA reflects compute time, not queueing.
    """
    start = perf_counter()
    value = func(**params)
    return value, perf_counter() - start


def _call_chunk(func, params_list: "list[dict]") -> list:
    """Run several points in one worker task.

    Submitting chunks instead of single points amortizes the per-task
    pickling and queue round-trips that made fine-grained fan-out lose
    to the serial loop on short points.
    """
    return [_call_point(func, params) for params in params_list]


@dataclass
class TraceFanout:
    """Per-point trace-shard recording for sweep runs.

    ``dir``       directory the shard files are written into;
    ``sample``    1-in-N quantum sampling for each point's tracer
                  (``None`` = full fidelity);
    ``seed``      sampling seed (shared by every point, so identical
                  configs sample identical quanta);
    ``capacity``  per-point ring bound (``None`` = unbounded; overflow
                  is counted in the shard's ``done`` heartbeat).
    """

    dir: str
    sample: "int | None" = None
    seed: int = 0
    capacity: "int | None" = None


def _call_point_shard(func, params: dict, shard: dict):
    """Worker entry for one traced point: run ``func`` under a fresh
    tracer and write the events as a shard file (see
    :mod:`repro.obs.merge`).  Works identically in-process and in a
    pool worker — each point gets its own tracer either way."""
    writer = ShardWriter(shard["path"], index=shard["index"],
                         label=shard["label"], sweep=shard["sweep"],
                         params=shard["params"], sample=shard["sample"],
                         seed=shard["seed"])
    writer.heartbeat("start")
    tracer = Tracer(capacity=shard["capacity"], sample=shard["sample"],
                    seed=shard["seed"])
    start = perf_counter()
    try:
        with tracing(tracer):
            value = func(**params)
    except BaseException:
        writer.heartbeat("error")
        writer.close()
        raise
    seconds = perf_counter() - start
    events = tracer.events()
    writer.write_events(events)
    writer.heartbeat("done", events=len(events), dropped=tracer.dropped,
                     wall_s=seconds)
    writer.close()
    return value, seconds


def _call_chunk_shard(func, items: "list[tuple[dict, dict]]") -> list:
    """Chunked variant of :func:`_call_point_shard`."""
    return [_call_point_shard(func, params, shard)
            for params, shard in items]


class ParallelRunner:
    """Executes sweeps; owns an optional process pool and result cache.

    ``jobs``      worker processes; ``None`` means ``os.cpu_count()``.
                  ``1`` runs points serially in-process (no pool, no
                  pickling of results — the historical behavior).
    ``cache``     a :class:`~repro.exec.cache.ResultCache`, or ``None``
                  to recompute everything.
    ``echo``      keep a progress/ETA line updated on stderr.
    ``trace``     a :class:`TraceFanout` to record every computed point
                  as a trace shard (merged afterwards with
                  :meth:`write_merged_trace`), or ``None``.
    """

    def __init__(self, *, jobs: "int | None" = None,
                 cache: "ResultCache | None" = None,
                 echo: bool = False,
                 trace: "TraceFanout | None" = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.echo = echo
        self.trace = trace
        self._executor: "ProcessPoolExecutor | None" = None
        self._shards: "list[str]" = []
        self._shard_seq = 0

    # ------------------------------------------------------------------
    def effective_jobs(self) -> int:
        """Worker count for the next sweep; 1 under an active tracer."""
        if current_tracer().enabled:
            return 1
        return self.jobs if self.jobs else max(1, os.cpu_count() or 1)

    def _pool(self, jobs: int) -> ProcessPoolExecutor:
        if self._executor is None:
            # forkserver: workers fork from a small, numpy-free server
            # process instead of the fully-loaded parent, so spawning is
            # cheap and repeatable; fork-from-parent copies the page
            # tables of every simulation the parent has already run.
            self._executor = ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=multiprocessing.get_context("forkserver"))
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> list:
        """Evaluate every point; results in declared point order."""
        points = spec.points
        total = len(points)
        progress = SweepProgress(spec.name, total, echo=self.echo)
        results: "list[object]" = [None] * total
        todo: "list[int]" = []
        keys: "list[str] | None" = None

        # Shard-tracing runs skip cache reads (a cache hit records no
        # events) but still populate the cache in _finish.
        if self.cache is not None:
            keys = [point_key(spec, p) for p in points]
        if self.cache is not None and self.trace is None:
            for i, key in enumerate(keys):
                hit, value = self.cache.get(spec.name, key)
                if hit:
                    results[i] = value
                    progress.point_done(cached=True)
                else:
                    todo.append(i)
        else:
            todo = list(range(total))

        shards = self._plan_shards(spec, todo)
        jobs = self.effective_jobs()
        if len(todo) <= 1 or jobs == 1:
            for i in todo:
                if shards is not None:
                    value, seconds = _call_point_shard(
                        spec.func, points[i].params, shards[i])
                else:
                    value, seconds = _call_point(spec.func,
                                                 points[i].params)
                self._finish(spec, i, keys, results, progress,
                             value, seconds)
        else:
            pool = self._pool(jobs)
            # Contiguous chunks, ~4 waves per worker: large enough to
            # amortize task overhead, small enough to load-balance.
            size = max(1, min(_MAX_CHUNK, -(-len(todo) // (jobs * 4))))
            chunks = [todo[at:at + size]
                      for at in range(0, len(todo), size)]
            if shards is not None:
                futures = {pool.submit(
                    _call_chunk_shard, spec.func,
                    [(points[i].params, shards[i]) for i in chunk]):
                    chunk for chunk in chunks}
            else:
                futures = {pool.submit(
                    _call_chunk, spec.func,
                    [points[i].params for i in chunk]):
                    chunk for chunk in chunks}
            for future in as_completed(futures):
                chunk = futures[future]
                for i, (value, seconds) in zip(chunk, future.result()):
                    self._finish(spec, i, keys, results, progress,
                                 value, seconds)
        progress.finish()
        return results

    def _plan_shards(self, spec: SweepSpec,
                     todo: "list[int]") -> "dict[int, dict] | None":
        """Assign one shard file (with a globally unique index) per
        computed point; records the paths for the final merge."""
        fanout = self.trace
        if fanout is None or not todo:
            return None
        os.makedirs(fanout.dir, exist_ok=True)
        shards: "dict[int, dict]" = {}
        for i in todo:
            index = self._shard_seq
            self._shard_seq = index + 1
            params = spec.points[i].params
            label = ",".join(f"{k}={v}" for k, v in sorted(params.items())
                             if v is not None)
            path = os.path.join(fanout.dir,
                                f"{spec.name}-{index:04d}.jsonl")
            shards[i] = {"path": path, "index": index,
                         "label": f"{spec.name}[{label}]",
                         "sweep": spec.name, "params": spec.points[i].key(),
                         "sample": fanout.sample, "seed": fanout.seed,
                         "capacity": fanout.capacity}
            self._shards.append(path)
        return shards

    def write_merged_trace(self, out) -> "dict | None":
        """Merge every shard recorded so far (across all sweeps this
        runner ran) into one Perfetto document at ``out``; returns the
        merge summary, or ``None`` if nothing was traced."""
        if not self._shards:
            return None
        return write_merged(self._shards, out)

    def _finish(self, spec, index, keys, results, progress,
                value, seconds) -> None:
        results[index] = value
        if self.cache is not None and keys is not None:
            self.cache.put(spec.name, keys[index], value,
                           meta={"sweep": spec.name,
                                 "params": spec.points[index].key(),
                                 "fingerprint": code_fingerprint()})
        progress.point_done(cached=False, seconds=seconds)


def run_sweep(spec: SweepSpec,
              runner: "ParallelRunner | None" = None) -> list:
    """Run ``spec`` through ``runner``, or serially in-process (no pool,
    no cache) when none is given — the default for library callers, so
    ``fig08_leaky_dma.run()`` behaves exactly as it always has unless a
    runner is handed in (the CLI builds one from ``--jobs``/``--cache``
    flags)."""
    if runner is None:
        return ParallelRunner(jobs=1).run(spec)
    return runner.run(spec)

"""Progress and ETA reporting for sweep runs, wired through repro.obs.

Every completed point emits an ``exec`` counter sample on the process-
wide tracer (``done`` / ``total`` / ``cache_hits`` / ``eta_s``), so a
traced run shows the sweep's progress as a counter track next to the
simulation's own telemetry; a finished sweep additionally emits one
``exec/sweep_done`` instant with the wall-clock totals.  When ``echo``
is on, a single carriage-return status line with point counts and a
wall-clock ETA is kept up to date on ``stream`` (stderr by default) —
the CLI enables this only when stderr is a TTY.

ETA is the classic remaining-work estimate: mean wall seconds per
*computed* point (cache hits are excluded — they are ~free and would
drag the estimate toward zero) times the number of points still to run.
"""

from __future__ import annotations

import sys
import time

from ..obs import tracer as _obs

__all__ = ["SweepProgress"]


class SweepProgress:
    """Tracks one sweep run; not thread-safe (the runner completes
    points from a single thread)."""

    def __init__(self, name: str, total: int, *, echo: bool = False,
                 stream=None, clock=time.perf_counter) -> None:
        self.name = name
        self.total = total
        self.echo = echo
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.done = 0
        self.cache_hits = 0
        self._computed_s = 0.0
        self._start = clock()

    # ------------------------------------------------------------------
    def eta_s(self) -> float:
        computed = self.done - self.cache_hits
        if computed <= 0:
            return 0.0
        remaining = self.total - self.done
        return self._computed_s / computed * remaining

    def point_done(self, *, cached: bool, seconds: float = 0.0) -> None:
        self.done += 1
        if cached:
            self.cache_hits += 1
        else:
            self._computed_s += seconds
        eta = self.eta_s()
        # Module-attribute access so install_tracer's rebinding is seen:
        # with tracing off this is one no-op call.
        _obs.counter_hook("exec", self.name, done=self.done,
                          total=self.total,
                          cache_hits=self.cache_hits, eta_s=eta)
        if self.echo:
            self.stream.write(
                f"\r[{self.name}] {self.done}/{self.total} points "
                f"({self.cache_hits} cached)  eta {eta:5.1f}s ")
            self.stream.flush()

    def finish(self) -> float:
        """Emit the sweep-done instant; returns elapsed wall seconds."""
        elapsed = self.clock() - self._start
        _obs.instant_hook("exec", "sweep_done", sweep=self.name,
                          points=self.total,
                          cache_hits=self.cache_hits,
                          wall_s=elapsed)
        if self.echo:
            self.stream.write(
                f"\r[{self.name}] {self.done}/{self.total} points "
                f"({self.cache_hits} cached) in {elapsed:.1f}s\n")
            self.stream.flush()
        return elapsed

"""Content-addressed on-disk result cache for sweep points.

A completed point is a pure function of its parameters and of the code
that computed it, so its result can be keyed by content and replayed
for free on the next run.  The key of one point is::

    sha256(spec name \\n point-function module:qualname \\n spec version
           \\n code fingerprint \\n canonical params)

where the *code fingerprint* is a sha256 over the source of every
``*.py`` file in the installed :mod:`repro` package (path-sorted,
content-addressed — timestamps never matter) plus ``repro.__version__``.
Any source change anywhere in the package therefore invalidates every
cached point; this is deliberately coarse because a point runs the
whole simulator stack, and a stale hit is far worse than a spurious
miss.  See ``docs/experiments.md`` for the full invalidation rules.

Layout (default root ``~/.cache/repro``, overridable with
``--cache-dir`` or ``REPRO_CACHE_DIR``)::

    <root>/<spec name>/<key[:2]>/<key>.pkl

Each entry is a pickle of ``{"meta": {...}, "result": <point result>}``
written atomically (temp file + ``os.replace``), so concurrent writers
— e.g. two ``repro figure`` invocations racing on the same point — are
safe: last writer wins with an identical payload.  Unreadable or
corrupt entries are treated as misses and removed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from functools import lru_cache

from .sweep import Point, SweepSpec, canonical_params, func_ref

__all__ = ["ResultCache", "code_fingerprint", "default_cache_dir",
           "point_key"]


def default_cache_dir() -> str:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """sha256 over every ``repro/**.py`` source file plus the version."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    digest.update(repro.__version__.encode())
    return digest.hexdigest()


def point_key(spec: SweepSpec, point: Point) -> str:
    """Stable content hash identifying one point's result."""
    payload = "\n".join((spec.name, func_ref(spec.func), spec.version,
                         code_fingerprint(), canonical_params(point.params)))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle store addressed by :func:`point_key` digests."""

    def __init__(self, root: "str | None" = None) -> None:
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, spec_name: str, key: str) -> str:
        return os.path.join(self.root, spec_name, key[:2], key + ".pkl")

    def get(self, spec_name: str, key: str) -> "tuple[bool, object]":
        """``(hit, result)``; corrupt entries count as misses."""
        path = self._path(spec_name, key)
        try:
            with open(path, "rb") as handle:
                doc = pickle.load(handle)
            result = doc["result"]
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except (OSError, KeyError, TypeError, EOFError, AttributeError,
                pickle.UnpicklingError):
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return False, None
        self.hits += 1
        return True, result

    def put(self, spec_name: str, key: str, result,
            meta: "dict | None" = None) -> None:
        path = self._path(spec_name, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        doc = {"meta": dict(meta or {}, stored_utc=time.time()),
               "result": result}
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(doc, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def clear(self, spec_name: "str | None" = None) -> int:
        """Remove cached entries (one sweep's, or everything); returns
        the number of entries removed."""
        import shutil

        roots = ([os.path.join(self.root, spec_name)] if spec_name
                 else [os.path.join(self.root, d)
                       for d in (os.listdir(self.root)
                                 if os.path.isdir(self.root) else [])])
        removed = 0
        for root in roots:
            if not os.path.isdir(root):
                continue
            for dirpath, _dirnames, filenames in os.walk(root):
                removed += sum(1 for f in filenames if f.endswith(".pkl"))
            shutil.rmtree(root, ignore_errors=True)
        return removed

"""Declarative sweep model: a figure harness is a cross-product of
independent points.

Every experiment harness in :mod:`repro.experiments` reproduces one
paper figure by evaluating a *point function* — a pure, module-level
function of picklable keyword arguments (packet size, mode, seed,
platform spec, durations) — over a cross-product of those arguments.
:class:`SweepSpec` captures that structure declaratively so the
execution strategy (serial loop, process pool, result cache — see
:mod:`repro.exec.runner`) is chosen by the caller, not hard-coded in
each harness's nested ``for`` loops.

Point functions must be *module-level* (picklable by reference) and
*pure*: the result may depend only on the call arguments, never on
process-global state.  Purity is what makes fan-out across a
``ProcessPoolExecutor`` bit-identical to a serial loop, and what makes
a content-addressed result cache (:mod:`repro.exec.cache`) sound.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from itertools import product

__all__ = ["Point", "SweepSpec", "canonical_params", "func_ref"]


def _canon(value) -> str:
    """Canonical repr of one parameter value, recursing into containers.

    Dict values are *key-sorted* before rendering: two points whose
    nested params (e.g. a policy-params dict) hold the same mappings in
    different insertion orders must produce the same cache key.  Plain
    ``repr`` preserves insertion order, which made cache identity
    depend on how a caller happened to build the dict — and let two
    genuinely different nested configs collide with two spellings of
    the same one.  Lists/tuples keep their order (it is meaningful);
    scalars and dataclasses fall back to ``repr``.
    """
    if isinstance(value, dict):
        inner = ", ".join(f"{key!r}: {_canon(value[key])}"
                          for key in sorted(value))
        return "{" + inner + "}"
    if isinstance(value, tuple):
        inner = ", ".join(_canon(v) for v in value)
        return "(" + inner + ("," if len(value) == 1 else "") + ")"
    if isinstance(value, list):
        return "[" + ", ".join(_canon(v) for v in value) + "]"
    return repr(value)


def canonical_params(params: dict) -> str:
    """Stable textual identity of a point's parameters.

    The key-sorted item list rendered via :func:`_canon`: deterministic
    across processes and runs for the parameter types sweeps use (str,
    int, float, bool, None, tuples, nested dicts such as policy params,
    and dataclasses such as :class:`~repro.sim.config.PlatformSpec`,
    whose generated ``repr`` is value-based).  For flat params this
    matches the historical ``repr(sorted(params.items()))`` format, so
    pre-existing cache entries stay addressable.
    """
    inner = ", ".join(f"({key!r}, {_canon(params[key])})"
                      for key in sorted(params))
    return "[" + inner + "]"


def func_ref(func) -> str:
    """``module:qualname`` reference of a point function."""
    return f"{func.__module__}:{func.__qualname__}"


def _check_point_function(func) -> None:
    """Reject functions a worker process could not import by reference."""
    qualname = getattr(func, "__qualname__", "")
    module = getattr(func, "__module__", "")
    if "<" in qualname or "." in qualname or not module:
        raise ValueError(
            f"point function {func!r} must be module-level (picklable "
            f"by reference); got qualname {qualname!r}")
    owner = sys.modules.get(module)
    if owner is not None and getattr(owner, qualname, None) is not func:
        raise ValueError(
            f"point function {qualname!r} does not resolve to itself in "
            f"module {module!r}; workers could not import it")


@dataclass(frozen=True)
class Point:
    """One evaluation of a sweep's point function.

    ``index`` is the position in the sweep's declared order (which is
    also the order of the runner's result list); ``params`` are the
    keyword arguments of the call.
    """

    index: int
    params: dict

    def key(self) -> str:
        return canonical_params(self.params)


@dataclass
class SweepSpec:
    """A named sweep: one point function plus the points to evaluate.

    ``version`` is an optional extra cache-invalidation token a harness
    can bump when its *semantics* change in a way not visible in the
    parameters (the code fingerprint already covers source changes).
    """

    name: str
    func: object
    points: "list[Point]" = field(default_factory=list)
    version: str = ""

    def __post_init__(self) -> None:
        _check_point_function(self.func)

    def __len__(self) -> int:
        return len(self.points)

    @classmethod
    def from_points(cls, name: str, func, param_dicts, *,
                    version: str = "") -> "SweepSpec":
        """Build from an explicit, ordered iterable of parameter dicts."""
        points = [Point(i, dict(p)) for i, p in enumerate(param_dicts)]
        return cls(name, func, points, version)

    @classmethod
    def from_product(cls, name: str, func, axes: dict, *,
                     common: "dict | None" = None,
                     version: str = "") -> "SweepSpec":
        """Cross-product of ``axes`` (in insertion order, last axis
        fastest — matching the harnesses' historical nested loops),
        each point extended with the ``common`` fixed parameters."""
        common = dict(common or {})
        names = list(axes)
        dicts = []
        for values in product(*(tuple(axes[n]) for n in names)):
            params = dict(common)
            params.update(zip(names, values))
            dicts.append(params)
        return cls.from_points(name, func, dicts, version=version)

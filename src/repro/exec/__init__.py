"""repro.exec: the sweep-execution subsystem.

Every figure harness is a cross-product of independent, pure points
(:class:`SweepSpec` / :class:`Point` — :mod:`repro.exec.sweep`);
:class:`ParallelRunner` (:mod:`repro.exec.runner`) fans those points
across a process pool with a serial in-process fallback, replays
completed points from a content-addressed on-disk cache
(:class:`ResultCache` — :mod:`repro.exec.cache`), and reports
progress/ETA through the :mod:`repro.obs` tracer
(:mod:`repro.exec.progress`).

Quick use::

    from repro.exec import ParallelRunner, ResultCache
    from repro.experiments import fig08_leaky_dma

    with ParallelRunner(jobs=4, cache=ResultCache()) as runner:
        result = fig08_leaky_dma.run(runner=runner)

See ``docs/experiments.md`` for point hashing, the cache layout, and
the invalidation rules.
"""

from .cache import (ResultCache, code_fingerprint, default_cache_dir,
                    point_key)
from .progress import SweepProgress
from .runner import ParallelRunner, run_sweep
from .sweep import Point, SweepSpec, canonical_params, func_ref

__all__ = [
    "ParallelRunner", "Point", "ResultCache", "SweepProgress",
    "SweepSpec", "canonical_params", "code_fingerprint",
    "default_cache_dir", "func_ref", "point_key", "run_sweep",
]

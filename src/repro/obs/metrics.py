"""The metrics tier: counters, gauges, histograms with exposition.

Where the tracer answers "what happened, in order", metrics answer
"what is the level right now" — the substrate the future service tier
(ROADMAP item 3) scrapes.  A :class:`MetricsRegistry` holds named
metric *families* (optionally labelled, Prometheus-style):

* :class:`Counter` — monotonically increasing totals (packets dropped,
  memory bytes written);
* :class:`Gauge` — last-set level (per-tenant IPC, DDIO hit rate,
  simulated time);
* :class:`Histogram` — cumulative-bucket distributions (quantum
  wall-time).

Two exposition formats, both pure functions of the registry state:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text format
  (``# HELP`` / ``# TYPE`` / ``name{label="v"} value``), ready to serve
  from a ``/metrics`` endpoint;
* :meth:`MetricsRegistry.snapshot` — a JSON-able dict for the REST
  tier and for test assertions.

The process-wide :data:`REGISTRY` is **disabled by default**: the
engine's hook site checks one attribute per quantum and skips the
export entirely, so the always-on contract of the tracing tier holds
here too.  Enable with ``REGISTRY.enabled = True`` (or pass
``--metrics-out`` to ``repro trace``).
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY"]

#: Default histogram buckets (seconds): wide enough for both tiny-scale
#: quanta (~100us) and bench-scale quanta (~100ms+).
DEFAULT_BUCKETS = (0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
                   1.0, 5.0)


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def sample(self):
        return self.value


class Gauge:
    """A level that can go up and down; exposes the last set value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def sample(self):
        return self.value


class Histogram:
    """Cumulative-bucket distribution (Prometheus semantics: bucket
    ``le=x`` counts observations <= x; ``+Inf`` equals ``count``)."""

    kind = "histogram"

    def __init__(self, buckets=DEFAULT_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1

    def add_counts(self, per_bucket, count: int, total: float) -> None:
        """Bulk-merge a pre-bucketed batch of observations.

        ``per_bucket[i]`` observations fell into bucket ``i``
        (*non*-cumulative, aligned with ``buckets``); they are folded
        into the cumulative Prometheus representation.  ``count`` and
        ``total`` update the observation count and value sum.  Lets hot
        paths keep their own cheap bucket tallies and merge them here
        once per quantum instead of calling :meth:`observe` per event.
        """
        running = 0
        nsrc = len(per_bucket)
        for i in range(len(self.buckets)):
            if i < nsrc:
                running += per_bucket[i]
            self.bucket_counts[i] += running
        self.count += count
        self.sum += float(total)

    def sample(self):
        return {"buckets": dict(zip((str(b) for b in self.buckets),
                                    self.bucket_counts)),
                "count": self.count, "sum": self.sum}


class _Family:
    """One named metric family: label-less singleton or labelled children."""

    def __init__(self, name: str, help_text: str, factory) -> None:
        self.name = name
        self.help = help_text
        self._factory = factory
        self._children: "dict[tuple, object]" = {}

    @property
    def kind(self) -> str:
        return self._factory().kind if not self._children else \
            next(iter(self._children.values())).kind

    def labels(self, **labelset):
        """The child metric for one label combination (created on first
        use).  Call with no labels for the family's singleton."""
        key = tuple(sorted(labelset.items()))
        child = self._children.get(key)
        if child is None:
            child = self._factory()
            self._children[key] = child
        return child

    # Convenience: family-level ops act on the label-less singleton.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def add_counts(self, per_bucket, count: int, total: float) -> None:
        self.labels().add_counts(per_bucket, count, total)

    def items(self):
        """``(label_tuple, metric)`` pairs in stable (sorted) order."""
        return sorted(self._children.items())


def _format_labels(labelset: tuple) -> str:
    if not labelset:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labelset)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Prometheus accepts floats everywhere; render integral values bare.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """A named collection of metric families with exposition.

    ``enabled`` gates the producers (hook sites check it once per
    quantum); consumers may read a disabled registry freely (it is
    simply empty or stale).
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = enabled
        self._families: "dict[str, _Family]" = {}

    # -- registration (get-or-create, idempotent) --------------------------
    def _family(self, name: str, help_text: str, factory) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, help_text, factory)
            self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "") -> _Family:
        return self._family(name, help_text, Counter)

    def gauge(self, name: str, help_text: str = "") -> _Family:
        return self._family(name, help_text, Gauge)

    def histogram(self, name: str, help_text: str = "",
                  buckets=DEFAULT_BUCKETS) -> _Family:
        return self._family(name, help_text,
                            lambda: Histogram(buckets))

    def clear(self) -> None:
        """Drop every family (tests and fresh runs)."""
        self._families.clear()

    # -- exposition --------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able state: ``{family: {kind, help, series: {labels: v}}}``."""
        out: dict = {}
        for name, family in sorted(self._families.items()):
            series = {}
            for labelset, metric in family.items():
                label_key = ",".join(f"{k}={v}" for k, v in labelset)
                series[label_key] = metric.sample()
            out[name] = {"kind": family.kind, "help": family.help,
                         "series": series}
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: "list[str]" = []
        for name, family in sorted(self._families.items()):
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for labelset, metric in family.items():
                labels = _format_labels(labelset)
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(metric.buckets,
                                            metric.bucket_counts):
                        cumulative = count
                        le = dict(labelset)
                        le["le"] = _format_value(bound)
                        lines.append(
                            f"{name}_bucket"
                            f"{_format_labels(tuple(sorted(le.items())))}"
                            f" {cumulative}")
                    inf = dict(labelset)
                    inf["le"] = "+Inf"
                    lines.append(
                        f"{name}_bucket"
                        f"{_format_labels(tuple(sorted(inf.items())))}"
                        f" {metric.count}")
                    lines.append(f"{name}_sum{labels} "
                                 f"{_format_value(metric.sum)}")
                    lines.append(f"{name}_count{labels} {metric.count}")
                else:
                    lines.append(f"{name}{labels} "
                                 f"{_format_value(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide registry the engine's hook sites feed (disabled by
#: default — one attribute check per quantum when off).
REGISTRY = MetricsRegistry()

"""The structured event ring: preallocated NumPy storage for the tracer.

The hot-path cost of the original tracer was one ``TraceEvent``
dataclass plus one args ``dict`` per event, for every counter sample
and span — a malloc-heavy pattern that made permanently-enabled tracing
expensive at scale.  :class:`StructRing` replaces it with a
preallocated NumPy structured array (:data:`EVENT_DTYPE`): one record
per event with the sequence number, both clocks, the span duration, and
up to :data:`NSLOTS` *numeric* argument slots whose keys — like the
category and name strings — are interned into a :class:`StringTable`.

Events whose payload does not fit the numeric fast path (nested dicts
such as ``metrics/quantum``, string arguments, more than
:data:`NSLOTS` keys) park their args object in a side table and store a
reference; those are the rare, cold records (one per daemon interval),
so the common counter/span case stays allocation-free until the stream
is materialized.

Capacity semantics:

* ``capacity=None`` — unbounded: the array grows by doubling
  (amortized O(1) per event, still one contiguous structured array).
* ``capacity=N`` — a true ring: the most recent N events are kept, the
  oldest are overwritten, and :attr:`dropped` counts every overwritten
  record so overflow is never silent (``repro trace`` reports it).

Materialization back to :class:`~repro.obs.tracer.TraceEvent` objects
(:meth:`to_events`) is exact in full-fidelity mode: integer argument
values round-trip as ``int`` (a per-slot bit in ``intmask``), rich
payloads are returned as stored.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EVENT_DTYPE", "NSLOTS", "PHASES", "StringTable", "StructRing"]

#: Fixed numeric argument slots per record; payloads that need more (or
#: non-numeric values) take the rich-reference path.
NSLOTS = 8

#: Phase codes, index == code (``"i"`` instant, ``"C"`` counter,
#: ``"X"`` complete span).
PHASES = "iCX"

#: One trace record.  ``cat``/``name``/``keys`` are string-table ids;
#: ``argref`` >= 0 points at a rich args payload instead of the slots.
EVENT_DTYPE = np.dtype([
    ("seq", "<i8"),                  # per-tracer sequence number
    ("ts", "<f8"),                   # simulated time, seconds
    ("wall", "<f8"),                 # wall seconds since tracer epoch
    ("dur", "<f8"),                  # span duration (phase X only)
    ("phase", "u1"),                 # index into PHASES
    ("cat", "<u2"),                  # interned category
    ("name", "<u2"),                 # interned name
    ("nargs", "u1"),                 # used numeric slots
    ("intmask", "u1"),               # slot i held a Python int
    ("argref", "<i4"),               # rich-args id, -1 = inline slots
    ("keys", "<u2", (NSLOTS,)),      # interned arg keys
    ("vals", "<f8", (NSLOTS,)),      # numeric arg values
])

#: Initial allocation for unbounded rings (grows by doubling).
_INITIAL_CAPACITY = 1024


class StringTable:
    """Bidirectional string interning: ``intern(s) -> id`` and back."""

    def __init__(self) -> None:
        self._ids: "dict[str, int]" = {}
        self._strings: "list[str]" = []

    def intern(self, string: str) -> int:
        ident = self._ids.get(string)
        if ident is None:
            ident = len(self._strings)
            self._ids[string] = ident
            self._strings.append(string)
        return ident

    def lookup(self, ident: int) -> str:
        return self._strings[ident]

    def __len__(self) -> int:
        return len(self._strings)


class StructRing:
    """Preallocated structured-array event storage (see module doc)."""

    def __init__(self, capacity: "int | None" = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.strings = StringTable()
        #: Records overwritten after the ring filled (bounded mode).
        self.dropped = 0
        self._total = 0                       # records ever pushed
        self._args: "dict[int, object]" = {}  # rich payloads by argref
        self._next_argref = 0
        self._alloc(capacity or _INITIAL_CAPACITY)

    # -- storage -----------------------------------------------------------
    def _alloc(self, rows: int) -> None:
        self._buf = np.zeros(rows, dtype=EVENT_DTYPE)
        # Cached field views: plain-array scalar stores are markedly
        # cheaper than structured-record field assignment on the hot path.
        self._seq = self._buf["seq"]
        self._ts = self._buf["ts"]
        self._wall = self._buf["wall"]
        self._dur = self._buf["dur"]
        self._phase = self._buf["phase"]
        self._cat = self._buf["cat"]
        self._name = self._buf["name"]
        self._nargs = self._buf["nargs"]
        self._intmask = self._buf["intmask"]
        self._argref = self._buf["argref"]
        self._keys = self._buf["keys"]
        self._vals = self._buf["vals"]

    def _grow(self) -> None:
        old = self._buf
        self._alloc(old.shape[0] * 2)
        self._buf[:old.shape[0]] = old

    # -- hot path ----------------------------------------------------------
    def push(self, seq: int, ts: float, wall: float, dur: float,
             phase: int, category: str, name: str, args: dict) -> None:
        """Append one record (called by the tracer for every event)."""
        cap = self._buf.shape[0]
        total = self._total
        if total == cap and self.capacity is None:
            self._grow()
            cap = self._buf.shape[0]
        pos = total % cap
        if total >= cap:                       # bounded ring wrapped
            self.dropped += 1
            old_ref = self._argref[pos]
            if old_ref >= 0:
                del self._args[old_ref]
        self._total = total + 1
        self._seq[pos] = seq
        self._ts[pos] = ts
        self._wall[pos] = wall
        self._dur[pos] = dur
        self._phase[pos] = phase
        strings = self.strings
        self._cat[pos] = strings.intern(category)
        self._name[pos] = strings.intern(name)
        if len(args) <= NSLOTS and all(
                type(v) is int or type(v) is float for v in args.values()):
            keys = self._keys
            vals = self._vals
            slot = 0
            intmask = 0
            for key, value in args.items():
                keys[pos, slot] = strings.intern(key)
                vals[pos, slot] = value
                if type(value) is int:
                    intmask |= 1 << slot
                slot += 1
            self._nargs[pos] = slot
            self._intmask[pos] = intmask
            self._argref[pos] = -1
        else:
            ref = self._next_argref
            self._next_argref = ref + 1
            self._args[ref] = args
            self._nargs[pos] = 0
            self._intmask[pos] = 0
            self._argref[pos] = ref

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return min(self._total, self._buf.shape[0])

    @property
    def total(self) -> int:
        """Records ever pushed, including any since dropped."""
        return self._total

    def _live_positions(self) -> "np.ndarray":
        """Buffer positions of the live records, oldest first."""
        cap = self._buf.shape[0]
        size = min(self._total, cap)
        start = self._total - size
        return (np.arange(start, self._total, dtype=np.int64) % cap)

    def array(self) -> "np.ndarray":
        """Structured-array snapshot of the live records, oldest first
        (a copy — safe to slice and query with NumPy)."""
        return self._buf[self._live_positions()]

    def category_counts(self) -> "dict[str, int]":
        """Live event counts per category, descending by count."""
        cats = self._cat[self._live_positions()]
        if cats.size == 0:
            return {}
        counts = np.bincount(cats, minlength=len(self.strings))
        pairs = [(self.strings.lookup(i), int(n))
                 for i, n in enumerate(counts) if n > 0]
        pairs.sort(key=lambda kv: (-kv[1], kv[0]))
        return dict(pairs)

    def to_events(self) -> list:
        """Materialize the live records as :class:`TraceEvent` objects,
        oldest first.  Exact: inline integer args come back as ``int``,
        rich payloads as stored."""
        from .tracer import TraceEvent
        lookup = self.strings.lookup
        rich = self._args
        out = []
        for pos in self._live_positions():
            ref = self._argref[pos]
            if ref >= 0:
                args = rich[ref]
            else:
                nargs = self._nargs[pos]
                intmask = self._intmask[pos]
                keys = self._keys[pos]
                vals = self._vals[pos]
                args = {}
                for slot in range(nargs):
                    value = vals[slot]
                    args[lookup(keys[slot])] = (
                        int(value) if intmask & (1 << slot) else float(value))
            out.append(TraceEvent(
                seq=int(self._seq[pos]), ts=float(self._ts[pos]),
                wall=float(self._wall[pos]), phase=PHASES[self._phase[pos]],
                category=lookup(self._cat[pos]),
                name=lookup(self._name[pos]),
                dur=float(self._dur[pos]), args=args))
        return out

"""The tracer: structured events, spans and counters with two clocks.

Every event carries a *simulated-time* stamp (``ts``, seconds — the
clock the paper's timelines are plotted against) and a *wall-clock*
stamp (``wall``, seconds since the tracer was created — what the
overhead profile of Fig. 15 cares about).  Three event phases, mirroring
the Chrome ``trace_event`` format so export is a direct mapping:

* ``"i"`` — instant: a typed point event (an FSM transition, a way-mask
  write, a shuffle decision).
* ``"X"`` — complete span: something with a wall-clock duration (one
  engine quantum, one DMA burst, one daemon interval).
* ``"C"`` — counter: a named set of numeric series sampled at a point
  in simulated time (DDIO hits/misses, per-tenant IPC, LLC fill rates).

Storage is a preallocated NumPy structured ring
(:class:`~repro.obs.ring.StructRing`): hooks write scalar slots, not
dataclasses — ``TraceEvent`` objects are materialized only when a sink
or view asks for them.  A bounded ring (``capacity=N``) keeps the most
recent N events and counts what it overwrote (:attr:`Tracer.dropped`);
overflow is reported, never silent.

Always-on operation has three tiers:

* **disabled** — instrumented subsystems fetch the process-wide current
  tracer (:func:`current_tracer`) once per quantum/burst into a local
  and guard hooks on ``tracer.enabled``; the default is the shared
  :data:`NULL_TRACER` whose hooks are no-ops.  :func:`enabled_tracer`
  (returns ``None`` unless tracing is live) and the module-level
  :data:`instant_hook`/:data:`counter_hook` trampolines — rebound to
  no-ops by :func:`install_tracer` whenever tracing is off — let cold
  call sites compile their hooks down to a single no-op call.
* **full fidelity** — every event is recorded; the reconstruction
  guarantees of :mod:`repro.obs.views` hold exactly.
* **sampled** — ``Tracer(sample=N, seed=s)`` traces 1-in-N simulation
  quanta, chosen deterministically from ``(seed, quantum index)`` by a
  splitmix64 hash, so identical runs sample identical quanta.  The
  engine gates each quantum through :meth:`Tracer.begin_quantum`;
  un-sampled quanta run the completely hook-free fast path.  A sampled
  stream carries an ``obs/mode`` marker event, and the exact-replay
  views refuse it (:class:`~repro.obs.views.SampledStreamError`).

Self-profiling: with ``profiling=True`` the tracer also accumulates
wall seconds per subsystem key (``profile``), which
``benchmarks/perf/bench_obs.py`` turns into per-subsystem time shares.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .ring import StructRing

_PHASE_I, _PHASE_C, _PHASE_X = 0, 1, 2


@dataclass
class TraceEvent:
    """One structured trace record.

    ``seq``      monotonically increasing per-tracer sequence number.
    ``ts``       simulated time, seconds.
    ``wall``     wall-clock seconds since the tracer's epoch (for spans:
                 the span start).
    ``phase``    ``"i"`` instant, ``"X"`` complete span, ``"C"`` counter.
    ``category`` subsystem key (``fsm``, ``mask``, ``shuffle``,
                 ``daemon``, ``sim``, ``dma``, ``llc``, ``ddio``,
                 ``mem``, ``tenant``, ``metrics``, ``obs``).
    ``name``     event name within the category.
    ``dur``      wall-clock duration, seconds (spans only).
    ``args``     JSON-serialisable payload.
    """

    seq: int
    ts: float
    wall: float
    phase: str
    category: str
    name: str
    dur: float = 0.0
    args: dict = field(default_factory=dict)

    def key(self) -> tuple:
        """Deterministic identity: every field except the wall-clock
        stamps (which legitimately differ between identical runs)."""
        return (self.seq, self.ts, self.phase, self.category, self.name,
                tuple(sorted(self.args.items())))


_MASK64 = (1 << 64) - 1


def _sample_hash(seed: int, index: int) -> int:
    """splitmix64 of ``(seed, index)`` — the deterministic coin for
    sampled mode (same seed, same quantum index -> same decision)."""
    z = (index + (seed * 0x9E3779B97F4A7C15) + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class Tracer:
    """Records trace events into a structured ring; optionally feeds
    streaming sinks (see :mod:`.sinks`).

    ``enabled=False`` builds a disabled tracer: hooks return without
    touching storage.  ``capacity`` bounds the ring (None = unbounded);
    ``sample=N`` enables 1-in-N quantum sampling seeded by ``seed``.
    ``profiling=True`` additionally accumulates per-subsystem wall time
    from spans and :meth:`profile_add` calls.
    """

    def __init__(self, *, enabled: bool = True, profiling: bool = False,
                 clock=time.perf_counter, capacity: "int | None" = None,
                 sample: "int | None" = None, seed: int = 0) -> None:
        if sample is not None and sample < 1:
            raise ValueError(f"sample must be >= 1 or None, got {sample}")
        self.profiling = profiling
        self.clock = clock
        self.sample = sample
        self.seed = seed
        self.sinks: list = []
        self._streaming: list = []
        self._epoch = clock()
        self._seq = 0
        self._sim_now = 0.0
        #: Accumulated wall seconds per subsystem key (profiling mode).
        self.profile: "dict[str, float]" = {}
        #: The structured event storage (see :mod:`repro.obs.ring`).
        self.ring = StructRing(capacity)
        self._base_enabled = enabled
        # Sampled tracers start gated-off; begin_quantum opens sampled
        # quanta.  Full-fidelity tracers are simply on or off.
        self.enabled = enabled and sample is None
        if sample is not None and enabled:
            # Mode marker: consumers (and the strict exact-replay guard
            # in views) can recognise a sampled stream from the events
            # alone, even after a JSONL round trip.
            self._push(_PHASE_I, "obs", "mode",
                       0.0, {"sample": sample, "seed": seed})

    # -- wiring ------------------------------------------------------------
    def add_sink(self, sink):
        """Attach a sink; returns it for chaining.

        Ring-backed sinks (``streaming = False`` — the ring-buffer and
        Perfetto sinks) read this tracer's storage lazily and cost
        nothing per event; streaming sinks (JSONL) receive a
        materialized :class:`TraceEvent` per emission.
        """
        attach = getattr(sink, "attach", None)
        if attach is not None:
            attach(self)
        if getattr(sink, "streaming", True):
            self._streaming.append(sink)
        self.sinks.append(sink)
        return sink

    def close(self) -> None:
        """Flush and close every sink."""
        for sink in self.sinks:
            sink.close()

    # -- clocks ------------------------------------------------------------
    def set_sim_time(self, now: float) -> None:
        """Advance the simulated-time stamp used for subsequent events."""
        self._sim_now = now

    @property
    def sim_now(self) -> float:
        return self._sim_now

    def _wall(self) -> float:
        return self.clock() - self._epoch

    # -- sampling ----------------------------------------------------------
    def begin_quantum(self, index: int) -> bool:
        """Per-quantum gate called by the engine.  In sampled mode this
        flips :attr:`enabled` according to the deterministic 1-in-N
        decision for ``index``; in full-fidelity mode it is a no-op.
        Returns whether this quantum is traced."""
        if self.sample is not None and self._base_enabled:
            self.enabled = \
                _sample_hash(self.seed, index) % self.sample == 0
        return self.enabled

    # -- event emission ----------------------------------------------------
    def _push(self, phase: int, category: str, name: str, dur: float,
              args: dict, wall: "float | None" = None) -> None:
        if wall is None:
            wall = self.clock() - self._epoch
        seq = self._seq
        self._seq = seq + 1
        self.ring.push(seq, self._sim_now, wall, dur, phase,
                       category, name, args)
        if self._streaming:
            event = TraceEvent(seq=seq, ts=self._sim_now, wall=wall,
                               phase="iCX"[phase], category=category,
                               name=name, dur=dur, args=args)
            for sink in self._streaming:
                sink.emit(event)

    def instant(self, category: str, name: str, **args) -> None:
        """Record a typed point event at the current simulated time."""
        if self.enabled:
            self._push(_PHASE_I, category, name, 0.0, args)

    def counter(self, category: str, name: str, **values) -> None:
        """Record a set of numeric counter samples."""
        if self.enabled:
            self._push(_PHASE_C, category, name, 0.0, values)

    def complete(self, category: str, name: str, dur: float,
                 **args) -> None:
        """Record a finished span of ``dur`` wall seconds ending now."""
        if not self.enabled:
            return
        self._push(_PHASE_X, category, name, dur, args,
                   wall=max(0.0, self._wall() - dur))
        if self.profiling:
            key = f"{category}.{name}"
            self.profile[key] = self.profile.get(key, 0.0) + dur

    @contextmanager
    def span(self, category: str, name: str, **args):
        """Context manager measuring a wall-clock span."""
        start = self.clock()
        try:
            yield self
        finally:
            self.complete(category, name, self.clock() - start, **args)

    # -- stream access -----------------------------------------------------
    def events(self) -> "list[TraceEvent]":
        """Materialize the buffered events, oldest first."""
        return self.ring.to_events()

    @property
    def dropped(self) -> int:
        """Events overwritten after a bounded ring filled."""
        return self.ring.dropped

    def category_counts(self) -> "dict[str, int]":
        """Buffered event counts per category (for exit summaries)."""
        return self.ring.category_counts()

    # -- self-profiling ----------------------------------------------------
    def profile_add(self, key: str, seconds: float) -> None:
        """Accumulate wall time against a subsystem key (no event)."""
        if self.profiling:
            self.profile[key] = self.profile.get(key, 0.0) + seconds

    def profile_shares(self) -> "dict[str, float]":
        """Per-subsystem fraction of the accumulated profiled time."""
        total = sum(self.profile.values())
        if total <= 0.0:
            return {}
        return {key: value / total
                for key, value in sorted(self.profile.items())}


class _NullSpan:
    """Reusable no-op context manager for :class:`NullTracer` spans."""

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: every hook is a no-op.

    Installed by default so instrumented code can always call
    ``current_tracer()`` without a None check.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def begin_quantum(self, index) -> bool:
        return False

    def instant(self, category, name, **args) -> None:  # pragma: no cover
        pass

    def counter(self, category, name, **values) -> None:  # pragma: no cover
        pass

    def complete(self, category, name, dur, **args) -> None:
        pass

    def span(self, category, name, **args):
        return _NULL_SPAN

    def profile_add(self, key, seconds) -> None:  # pragma: no cover
        pass


#: Shared disabled tracer (the default current tracer).
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def _noop_hook(category, name, **kwargs) -> None:
    """Module-level no-op the hook trampolines rebind to when tracing
    is off — an untraced call site pays one no-op call, nothing else."""
    return None


#: Module-level hook trampolines.  Cold call sites (progress reporting,
#: cache flushes) invoke these through their owning module
#: (``tracer.instant_hook(...)``); :func:`install_tracer` rebinds them
#: to the live tracer's bound methods, and back to :func:`_noop_hook`
#: when tracing ends — disabled hooks compile out to a no-op call.
instant_hook = _noop_hook
counter_hook = _noop_hook


def current_tracer() -> Tracer:
    """The process-wide tracer instrumented subsystems report to."""
    return _current


def enabled_tracer() -> "Tracer | None":
    """The current tracer if it is live this quantum, else ``None`` —
    hot sites cache the result in a local and guard on ``is not None``."""
    tracer = _current
    return tracer if tracer.enabled else None


def install_tracer(tracer: "Tracer | None") -> Tracer:
    """Install ``tracer`` (None restores the null tracer); returns the
    previously installed tracer so callers can restore it."""
    global _current, instant_hook, counter_hook
    previous = _current
    current = tracer if tracer is not None else NULL_TRACER
    _current = current
    # A sampled tracer's .enabled flips per quantum, so bind its methods
    # (they re-check); a plain disabled tracer binds the no-ops.
    if current.enabled or current.sample is not None:
        instant_hook = current.instant
        counter_hook = current.counter
    else:
        instant_hook = _noop_hook
        counter_hook = _noop_hook
    return previous


@contextmanager
def tracing(tracer: "Tracer | None"):
    """Scope ``tracer`` as the current tracer for a ``with`` block."""
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)

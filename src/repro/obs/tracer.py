"""The tracer: structured events, spans and counters with two clocks.

Every event carries a *simulated-time* stamp (``ts``, seconds — the
clock the paper's timelines are plotted against) and a *wall-clock*
stamp (``wall``, seconds since the tracer was created — what the
overhead profile of Fig. 15 cares about).  Three event phases, mirroring
the Chrome ``trace_event`` format so export is a direct mapping:

* ``"i"`` — instant: a typed point event (an FSM transition, a way-mask
  write, a shuffle decision).
* ``"X"`` — complete span: something with a wall-clock duration (one
  engine quantum, one DMA burst, one daemon interval).
* ``"C"`` — counter: a named set of numeric series sampled at a point
  in simulated time (DDIO hits/misses, per-tenant IPC, LLC fill rates).

Instrumented subsystems do not hold a tracer; they fetch the process-
wide current tracer (:func:`current_tracer`) and guard every hook with
``if tracer.enabled``.  The default is the shared :data:`NULL_TRACER`,
whose ``enabled`` is False and whose hooks are no-ops, so an untraced
run pays one attribute load per hook site — the near-zero-overhead-
when-disabled contract that ``tests/test_obs.py`` enforces.

Self-profiling: with ``profiling=True`` the tracer also accumulates
wall seconds per subsystem key (``profile``), which
``benchmarks/perf/bench_obs.py`` turns into per-subsystem time shares.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class TraceEvent:
    """One structured trace record.

    ``seq``      monotonically increasing per-tracer sequence number.
    ``ts``       simulated time, seconds.
    ``wall``     wall-clock seconds since the tracer's epoch (for spans:
                 the span start).
    ``phase``    ``"i"`` instant, ``"X"`` complete span, ``"C"`` counter.
    ``category`` subsystem key (``fsm``, ``mask``, ``shuffle``,
                 ``daemon``, ``sim``, ``dma``, ``llc``, ``ddio``,
                 ``mem``, ``tenant``, ``metrics``).
    ``name``     event name within the category.
    ``dur``      wall-clock duration, seconds (spans only).
    ``args``     JSON-serialisable payload.
    """

    seq: int
    ts: float
    wall: float
    phase: str
    category: str
    name: str
    dur: float = 0.0
    args: dict = field(default_factory=dict)

    def key(self) -> tuple:
        """Deterministic identity: every field except the wall-clock
        stamps (which legitimately differ between identical runs)."""
        return (self.seq, self.ts, self.phase, self.category, self.name,
                tuple(sorted(self.args.items())))


class Tracer:
    """Routes trace events to a set of sinks (see :mod:`.sinks`).

    ``enabled=False`` builds a disabled tracer: hooks return without
    touching the sinks.  ``profiling=True`` additionally accumulates
    per-subsystem wall time from spans and :meth:`profile_add` calls.
    """

    def __init__(self, *, enabled: bool = True, profiling: bool = False,
                 clock=time.perf_counter) -> None:
        self.enabled = enabled
        self.profiling = profiling
        self.clock = clock
        self.sinks: list = []
        self._epoch = clock()
        self._seq = 0
        self._sim_now = 0.0
        #: Accumulated wall seconds per subsystem key (profiling mode).
        self.profile: "dict[str, float]" = {}

    # -- wiring ------------------------------------------------------------
    def add_sink(self, sink):
        """Attach a sink; returns it for chaining."""
        self.sinks.append(sink)
        return sink

    def close(self) -> None:
        """Flush and close every sink."""
        for sink in self.sinks:
            sink.close()

    # -- clocks ------------------------------------------------------------
    def set_sim_time(self, now: float) -> None:
        """Advance the simulated-time stamp used for subsequent events."""
        self._sim_now = now

    @property
    def sim_now(self) -> float:
        return self._sim_now

    def _wall(self) -> float:
        return self.clock() - self._epoch

    # -- event emission ----------------------------------------------------
    def _emit(self, phase: str, category: str, name: str, *,
              dur: float = 0.0, args: "dict | None" = None,
              wall: "float | None" = None) -> None:
        event = TraceEvent(seq=self._seq, ts=self._sim_now,
                           wall=self._wall() if wall is None else wall,
                           phase=phase, category=category, name=name,
                           dur=dur, args=args or {})
        self._seq += 1
        for sink in self.sinks:
            sink.emit(event)

    def instant(self, category: str, name: str, **args) -> None:
        """Record a typed point event at the current simulated time."""
        if self.enabled:
            self._emit("i", category, name, args=args)

    def counter(self, category: str, name: str, **values) -> None:
        """Record a set of numeric counter samples."""
        if self.enabled:
            self._emit("C", category, name, args=values)

    def complete(self, category: str, name: str, dur: float,
                 **args) -> None:
        """Record a finished span of ``dur`` wall seconds ending now."""
        if not self.enabled:
            return
        self._emit("X", category, name, dur=dur, args=args,
                   wall=max(0.0, self._wall() - dur))
        if self.profiling:
            key = f"{category}.{name}"
            self.profile[key] = self.profile.get(key, 0.0) + dur

    @contextmanager
    def span(self, category: str, name: str, **args):
        """Context manager measuring a wall-clock span."""
        start = self.clock()
        try:
            yield self
        finally:
            self.complete(category, name, self.clock() - start, **args)

    # -- self-profiling ----------------------------------------------------
    def profile_add(self, key: str, seconds: float) -> None:
        """Accumulate wall time against a subsystem key (no event)."""
        if self.profiling:
            self.profile[key] = self.profile.get(key, 0.0) + seconds

    def profile_shares(self) -> "dict[str, float]":
        """Per-subsystem fraction of the accumulated profiled time."""
        total = sum(self.profile.values())
        if total <= 0.0:
            return {}
        return {key: value / total
                for key, value in sorted(self.profile.items())}


class _NullSpan:
    """Reusable no-op context manager for :class:`NullTracer` spans."""

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled tracer: every hook is a no-op.

    Installed by default so instrumented code can always call
    ``current_tracer()`` without a None check.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def instant(self, category, name, **args) -> None:  # pragma: no cover
        pass

    def counter(self, category, name, **values) -> None:  # pragma: no cover
        pass

    def complete(self, category, name, dur, **args) -> None:
        pass

    def span(self, category, name, **args):
        return _NULL_SPAN

    def profile_add(self, key, seconds) -> None:  # pragma: no cover
        pass


#: Shared disabled tracer (the default current tracer).
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def current_tracer() -> Tracer:
    """The process-wide tracer instrumented subsystems report to."""
    return _current


def install_tracer(tracer: "Tracer | None") -> Tracer:
    """Install ``tracer`` (None restores the null tracer); returns the
    previously installed tracer so callers can restore it."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: "Tracer | None"):
    """Scope ``tracer`` as the current tracer for a ``with`` block."""
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)

"""repro.obs: the unified tracing & telemetry subsystem.

One tracer, threaded through every layer of the reproduction:

* the simulation engine emits a span per quantum plus counter tracks
  (DDIO events, memory bytes, per-tenant IPC/LLC, sampled LLC
  fill/eviction/writeback deltas) and a ``metrics/quantum`` record;
* the IAT daemon emits typed instants for FSM transitions, way-mask
  writes, shuffle decisions, and a ``daemon/iteration`` record, plus a
  span per control interval;
* the NIC emits a span per DMA burst.

Sinks: an in-memory ring buffer, a JSONL stream, and Chrome/Perfetto
``trace_event`` JSON (open it at https://ui.perfetto.dev).  The legacy
recorders (``MetricsRecorder``, ``IATDaemon.history``) are exactly
reconstructible from the stream via :mod:`repro.obs.views`.

See ``docs/observability.md`` for the event taxonomy and a worked
example; ``repro trace <figure>`` traces any figure harness from the
command line.
"""

from . import views
from .sinks import (JsonlSink, PerfettoSink, RingBufferSink, event_from_dict,
                    event_to_dict, perfetto_document)
from .tracer import (NULL_TRACER, NullTracer, TraceEvent, Tracer,
                     current_tracer, install_tracer, tracing)

__all__ = [
    "JsonlSink", "NULL_TRACER", "NullTracer", "PerfettoSink",
    "RingBufferSink", "TraceEvent", "Tracer", "current_tracer",
    "event_from_dict", "event_to_dict", "install_tracer",
    "perfetto_document", "tracing", "views",
]

"""repro.obs: the unified tracing & telemetry subsystem.

One tracer, threaded through every layer of the reproduction:

* the simulation engine emits a span per quantum plus counter tracks
  (DDIO events, memory bytes, per-tenant IPC/LLC, sampled LLC
  fill/eviction/writeback deltas) and a ``metrics/quantum`` record;
* the IAT daemon emits typed instants for FSM transitions, way-mask
  writes, shuffle decisions, and a ``daemon/iteration`` record, plus a
  span per control interval;
* the NIC emits a span per DMA burst.

Built for always-on production telemetry:

* **hot path** — events land in a preallocated NumPy structured ring
  (:mod:`repro.obs.ring`): no per-event dicts, interned strings,
  counted (never silent) overflow;
* **sampling** — ``Tracer(sample=N, seed=s)`` traces 1-in-N quanta
  deterministically; un-sampled quanta run the hook-free fast path;
* **metrics** — :mod:`repro.obs.metrics` keeps counters/gauges/
  histograms (per-tenant IPC, DDIO hit rate, drop rate, quantum wall
  time) with Prometheus-text and JSON exposition;
* **cross-process** — sweep workers record per-point trace shards that
  :mod:`repro.obs.merge` merges into one Perfetto file
  (``repro figure --jobs N --trace-out``).

Sinks: an in-memory ring buffer, a JSONL stream, and Chrome/Perfetto
``trace_event`` JSON (open it at https://ui.perfetto.dev).  The legacy
recorders (``MetricsRecorder``, ``IATDaemon.history``) are exactly
reconstructible from a full-fidelity stream via :mod:`repro.obs.views`
(a sampled stream raises :class:`~repro.obs.views.SampledStreamError`).

See ``docs/observability.md`` for the event taxonomy and a worked
example; ``repro trace <figure>`` traces any figure harness from the
command line.
"""

from . import merge, metrics, views
from .metrics import REGISTRY, MetricsRegistry
from .ring import StructRing
from .sinks import (JsonlSink, PerfettoSink, RingBufferSink, event_from_dict,
                    event_to_dict, perfetto_document)
from .tracer import (NULL_TRACER, NullTracer, TraceEvent, Tracer,
                     current_tracer, enabled_tracer, install_tracer, tracing)
from .views import SampledStreamError

__all__ = [
    "JsonlSink", "MetricsRegistry", "NULL_TRACER", "NullTracer",
    "PerfettoSink", "REGISTRY", "RingBufferSink", "SampledStreamError",
    "StructRing", "TraceEvent", "Tracer", "current_tracer",
    "enabled_tracer", "event_from_dict", "event_to_dict", "install_tracer",
    "merge", "metrics", "perfetto_document", "tracing", "views",
]

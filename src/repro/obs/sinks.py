"""Trace sinks: in-memory ring buffer, JSONL stream, Perfetto export.

A sink receives every :class:`~repro.obs.tracer.TraceEvent` the tracer
emits via ``emit(event)`` and is flushed/closed by ``close()``.  Three
are provided:

* :class:`RingBufferSink` — keeps the last N events (or all of them) in
  memory; the substrate for the reconstruction views in :mod:`.views`.
* :class:`JsonlSink` — one JSON object per line, streamed as events
  arrive; suitable for tailing a long run.
* :class:`PerfettoSink` — Chrome ``trace_event`` JSON (the legacy JSON
  flavour Perfetto ingests), so a whole run can be dropped into
  https://ui.perfetto.dev.  Simulated-time events (instants, counters)
  land on a ``sim-time`` process whose microseconds are simulated
  seconds x 1e6; wall-clock spans land on a separate ``wall-time``
  process, keeping the two time domains visually distinct.
"""

from __future__ import annotations

import collections
import json
from numbers import Number

from .tracer import TraceEvent

#: Synthetic pids separating the two time domains in the Perfetto UI.
SIM_PID = 1
WALL_PID = 2


def event_to_dict(event: TraceEvent) -> dict:
    """Plain-dict form of an event (the JSONL line payload)."""
    return {
        "seq": event.seq,
        "ts": event.ts,
        "wall": event.wall,
        "ph": event.phase,
        "cat": event.category,
        "name": event.name,
        "dur": event.dur,
        "args": event.args,
    }


def event_from_dict(raw: dict) -> TraceEvent:
    """Inverse of :func:`event_to_dict` (reads a JSONL line back)."""
    return TraceEvent(seq=raw["seq"], ts=raw["ts"], wall=raw["wall"],
                      phase=raw["ph"], category=raw["cat"],
                      name=raw["name"], dur=raw.get("dur", 0.0),
                      args=raw.get("args", {}))


class RingBufferSink:
    """Keeps the most recent ``capacity`` events (None = unbounded)."""

    def __init__(self, capacity: "int | None" = 65536) -> None:
        self.capacity = capacity
        self._events: "collections.deque[TraceEvent]" = \
            collections.deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        pass

    def events(self) -> "list[TraceEvent]":
        """Snapshot of the buffered events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink:
    """Streams one JSON object per event to a path or file object."""

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._handle = target
            self._owns = False
        else:
            self._handle = open(target, "w")
            self._owns = True

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(event_to_dict(event)))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns:
            self._handle.close()


def perfetto_events(events) -> "list[dict]":
    """Convert events to Chrome ``trace_event`` dicts (plus metadata).

    One thread per category within each time-domain process; thread ids
    are assigned in first-seen order so identical runs produce identical
    documents.
    """
    tids: "dict[tuple[int, str], int]" = {}
    out: "list[dict]" = []
    for pid, label in ((SIM_PID, "sim-time"), (WALL_PID, "wall-time")):
        out.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                    "name": "process_name", "args": {"name": label}})

    def tid_of(pid: int, category: str) -> int:
        key = (pid, category)
        tid = tids.get(key)
        if tid is None:
            tid = len([k for k in tids if k[0] == pid]) + 1
            tids[key] = tid
            out.append({"ph": "M", "pid": pid, "tid": tid, "ts": 0,
                        "name": "thread_name", "args": {"name": category}})
        return tid

    for event in events:
        if event.phase == "X":
            out.append({"ph": "X", "pid": WALL_PID,
                        "tid": tid_of(WALL_PID, event.category),
                        "ts": event.wall * 1e6, "dur": event.dur * 1e6,
                        "cat": event.category, "name": event.name,
                        "args": dict(event.args)})
        elif event.phase == "C":
            # Counter tracks accept numeric series only.
            values = {k: v for k, v in event.args.items()
                      if isinstance(v, Number) and not isinstance(v, bool)}
            out.append({"ph": "C", "pid": SIM_PID,
                        "tid": tid_of(SIM_PID, event.category),
                        "ts": event.ts * 1e6,
                        "name": f"{event.category}.{event.name}",
                        "args": values})
        else:
            out.append({"ph": "i", "pid": SIM_PID,
                        "tid": tid_of(SIM_PID, event.category),
                        "ts": event.ts * 1e6, "s": "t",
                        "cat": event.category, "name": event.name,
                        "args": dict(event.args)})
    return out


def perfetto_document(events) -> dict:
    """The full JSON object Perfetto/chrome://tracing loads."""
    return {
        "traceEvents": perfetto_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs",
                      "sim_time_unit": "1us == 1e-6 simulated seconds"},
    }


class PerfettoSink:
    """Buffers events and writes one Perfetto-loadable JSON on close."""

    def __init__(self, target) -> None:
        self._target = target
        self._events: "list[TraceEvent]" = []

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        doc = perfetto_document(self._events)
        if hasattr(self._target, "write"):
            json.dump(doc, self._target)
        else:
            with open(self._target, "w") as handle:
                json.dump(doc, handle)

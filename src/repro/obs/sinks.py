"""Trace sinks: in-memory ring buffer, JSONL stream, Perfetto export.

Sinks come in two kinds:

* **ring-backed** (``streaming = False``) — :class:`RingBufferSink` and
  :class:`PerfettoSink` attach to the tracer's structured ring
  (:mod:`repro.obs.ring`) and materialize events lazily, so they add
  *zero* per-event cost on the hot path.
* **streaming** (``streaming = True``) — :class:`JsonlSink` receives a
  materialized :class:`~repro.obs.tracer.TraceEvent` per emission (one
  JSON object per line, suitable for tailing a long run).

:class:`PerfettoSink` writes Chrome ``trace_event`` JSON (the legacy
JSON flavour Perfetto ingests), so a whole run can be dropped into
https://ui.perfetto.dev.  Simulated-time events (instants, counters)
land on a ``sim-time`` process whose microseconds are simulated seconds
x 1e6; wall-clock spans land on a separate ``wall-time`` process,
keeping the two time domains visually distinct.  The same converter
(:func:`perfetto_events`) is parameterized over pids/labels/offsets so
:mod:`repro.obs.merge` can lay multiple processes' shards side by side.
"""

from __future__ import annotations

import collections
import json
from numbers import Number

from .tracer import TraceEvent

#: Synthetic pids separating the two time domains in the Perfetto UI.
SIM_PID = 1
WALL_PID = 2


def event_to_dict(event: TraceEvent) -> dict:
    """Plain-dict form of an event (the JSONL line payload)."""
    return {
        "seq": event.seq,
        "ts": event.ts,
        "wall": event.wall,
        "ph": event.phase,
        "cat": event.category,
        "name": event.name,
        "dur": event.dur,
        "args": event.args,
    }


def event_from_dict(raw: dict) -> TraceEvent:
    """Inverse of :func:`event_to_dict` (reads a JSONL line back)."""
    return TraceEvent(seq=raw["seq"], ts=raw["ts"], wall=raw["wall"],
                      phase=raw["ph"], category=raw["cat"],
                      name=raw["name"], dur=raw.get("dur", 0.0),
                      args=raw.get("args", {}))


class RingBufferSink:
    """Keeps the most recent ``capacity`` events (None = unbounded).

    Attached to a tracer it is a lazy view over the tracer's structured
    ring; standalone (``emit`` called directly) it buffers events itself.
    """

    streaming = False

    def __init__(self, capacity: "int | None" = 65536) -> None:
        self.capacity = capacity
        self._tracer = None
        self._events: "collections.deque[TraceEvent]" = \
            collections.deque(maxlen=capacity)

    def attach(self, tracer) -> None:
        self._tracer = tracer

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        pass

    def events(self) -> "list[TraceEvent]":
        """Snapshot of the buffered events, oldest first."""
        if self._tracer is not None:
            events = self._tracer.events()
            if self.capacity is not None and len(events) > self.capacity:
                return events[-self.capacity:]
            return events
        return list(self._events)

    def __len__(self) -> int:
        if self._tracer is not None:
            size = len(self._tracer.ring)
            return size if self.capacity is None \
                else min(size, self.capacity)
        return len(self._events)


class JsonlSink:
    """Streams one JSON object per event to a path or file object."""

    streaming = True

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._handle = target
            self._owns = False
        else:
            self._handle = open(target, "w")
            self._owns = True

    def emit(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(event_to_dict(event)))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns:
            self._handle.close()


def perfetto_events(events, *, sim_pid: int = SIM_PID,
                    wall_pid: int = WALL_PID, label: str = "",
                    wall_offset_s: float = 0.0,
                    out: "list[dict] | None" = None) -> "list[dict]":
    """Convert events to Chrome ``trace_event`` dicts (plus metadata).

    One thread per category within each time-domain process; thread ids
    are assigned in first-seen order so identical runs produce identical
    documents.  ``label`` prefixes the process names and
    ``wall_offset_s`` shifts wall timestamps into a shared clock domain
    — both used by :mod:`repro.obs.merge` to lay shards from several
    processes side by side; the defaults reproduce the classic
    two-process (``sim-time`` pid 1 / ``wall-time`` pid 2) layout.
    """
    tids: "dict[tuple[int, str], int]" = {}
    out = [] if out is None else out
    prefix = f"{label} " if label else ""
    for pid, domain in ((sim_pid, "sim-time"), (wall_pid, "wall-time")):
        out.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                    "name": "process_name",
                    "args": {"name": f"{prefix}{domain}"}})

    def tid_of(pid: int, category: str) -> int:
        key = (pid, category)
        tid = tids.get(key)
        if tid is None:
            tid = len([k for k in tids if k[0] == pid]) + 1
            tids[key] = tid
            out.append({"ph": "M", "pid": pid, "tid": tid, "ts": 0,
                        "name": "thread_name", "args": {"name": category}})
        return tid

    for event in events:
        if event.phase == "X":
            out.append({"ph": "X", "pid": wall_pid,
                        "tid": tid_of(wall_pid, event.category),
                        "ts": (event.wall + wall_offset_s) * 1e6,
                        "dur": event.dur * 1e6,
                        "cat": event.category, "name": event.name,
                        "args": dict(event.args)})
        elif event.phase == "C":
            # Counter tracks accept numeric series only.
            values = {k: v for k, v in event.args.items()
                      if isinstance(v, Number) and not isinstance(v, bool)}
            out.append({"ph": "C", "pid": sim_pid,
                        "tid": tid_of(sim_pid, event.category),
                        "ts": event.ts * 1e6,
                        "name": f"{event.category}.{event.name}",
                        "args": values})
        else:
            out.append({"ph": "i", "pid": sim_pid,
                        "tid": tid_of(sim_pid, event.category),
                        "ts": event.ts * 1e6, "s": "t",
                        "cat": event.category, "name": event.name,
                        "args": dict(event.args)})
    return out


def perfetto_document(events) -> dict:
    """The full JSON object Perfetto/chrome://tracing loads."""
    return {
        "traceEvents": perfetto_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs",
                      "sim_time_unit": "1us == 1e-6 simulated seconds"},
    }


class PerfettoSink:
    """Writes one Perfetto-loadable JSON document on close.

    Attached to a tracer it materializes the tracer's ring at close
    time (zero per-event cost); standalone it buffers emitted events.
    """

    streaming = False

    def __init__(self, target) -> None:
        self._target = target
        self._tracer = None
        self._events: "list[TraceEvent]" = []

    def attach(self, tracer) -> None:
        self._tracer = tracer

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        events = (self._tracer.events() if self._tracer is not None
                  else self._events)
        doc = perfetto_document(events)
        if hasattr(self._target, "write"):
            json.dump(doc, self._target)
        else:
            with open(self._target, "w") as handle:
                json.dump(doc, handle)

"""Views over the event stream: the old ad-hoc recorders, rebuilt.

Before the tracing subsystem existed the reproduction had two
disconnected recorders — ``sim.metrics.MetricsRecorder`` (the
"independent pqos process" sampling every quantum) and
``IATDaemon.history`` (the daemon's own ``IterationLog``).  Both are now
*views* over the trace: every quantum the engine emits a
``metrics/quantum`` instant carrying the full record, and every daemon
iteration emits a ``daemon/iteration`` instant carrying the full log
entry, so either recorder can be reconstructed exactly from the event
stream alone.  ``examples/fig11_trace_timeline.py`` demonstrates the
round trip on the Fig. 11 scenario.

Imports of the recorder types happen inside the functions: the
instrumented subsystems import :mod:`repro.obs.tracer` at module load,
so a top-level import of ``repro.core`` here would be circular.
"""

from __future__ import annotations


class SampledStreamError(RuntimeError):
    """Raised when an exact-replay view is fed a sampled-mode stream.

    Sampled tracing (``Tracer(sample=N)``) records only 1-in-N quanta,
    so reconstructing ``MetricsRecorder`` or the daemon history from it
    would silently return a subset that *looks* complete.  The views
    refuse instead; re-run in full-fidelity mode for exact replay.
    """


def _events(source) -> list:
    """Accept a RingBufferSink, a Tracer-owned sink, or a plain list."""
    if hasattr(source, "events"):
        return source.events()
    return list(source)


def sampling_mode(source) -> "dict | None":
    """The stream's ``obs/mode`` marker args if it was recorded in
    sampled mode (survives JSONL round trips), else None."""
    for event in _events(source):
        if (event.category == "obs" and event.name == "mode"
                and event.args.get("sample")):
            return dict(event.args)
    return None


def _require_full_fidelity(source, what: str) -> None:
    mode = sampling_mode(source)
    if mode is not None:
        raise SampledStreamError(
            f"cannot reconstruct {what} from a sampled-mode stream "
            f"(1-in-{mode['sample']} quanta, seed {mode.get('seed')}): "
            f"exact metrics replay only holds at full fidelity — "
            f"re-record without sample=")


def select(source, category: str, name: "str | None" = None) -> list:
    """Events of one category (and optionally one name), in order."""
    return [e for e in _events(source)
            if e.category == category and (name is None or e.name == name)]


def metrics_from_events(source):
    """Rebuild a :class:`~repro.sim.metrics.MetricsRecorder` from the
    ``metrics/quantum`` events — identical to the engine's recorder."""
    from ..sim.metrics import MetricsRecorder, record_from_dict
    _require_full_fidelity(source, "MetricsRecorder")
    recorder = MetricsRecorder()
    for event in select(source, "metrics", "quantum"):
        recorder.append(record_from_dict(event.args))
    return recorder


def history_from_events(source) -> list:
    """Rebuild the daemon's ``IterationLog`` list from the
    ``daemon/iteration`` events — identical to ``IATDaemon.history``."""
    from ..core.daemon import IterationLog
    from ..core.fsm import State
    from ..core.monitor import ChangeKind
    _require_full_fidelity(source, "IATDaemon.history")
    history = []
    for event in select(source, "daemon", "iteration"):
        args = event.args
        history.append(IterationLog(
            time=args["time"], state=State(args["state"]),
            kind=ChangeKind(args["kind"]), ddio_ways=args["ddio_ways"],
            group_ways=dict(args["group_ways"]), action=args["action"]))
    return history


def fsm_timeline(source) -> "list[tuple[float, object]]":
    """(time, State) after every daemon iteration."""
    return [(entry.time, entry.state)
            for entry in history_from_events(source)]


def times(source) -> "list[float]":
    """Quantum timestamps of the recorded run."""
    return [e.args["time"] for e in select(source, "metrics", "quantum")]


def mask_timeline(source) -> "dict[str, list[int]]":
    """Per-tenant CAT mask series, one entry per quantum."""
    masks: "dict[str, list[int]]" = {}
    for event in select(source, "metrics", "quantum"):
        for name, snap in event.args["tenants"].items():
            masks.setdefault(name, []).append(snap["mask"])
    return masks


def ddio_mask_timeline(source) -> "list[int]":
    """DDIO way-mask series, one entry per quantum."""
    return [e.args["ddio_mask"] for e in select(source, "metrics", "quantum")]

"""Cross-process trace shards and their merge into one Perfetto file.

Parallel sweeps (:mod:`repro.exec.runner`) used to be observability-
blind: worker processes would emit events into their own, unobserved
tracers.  Instead, each worker now records every point into a
*per-point trace shard* — a JSONL file with three record kinds:

* a **meta** header (``{"shard": {...}}``): shard index, a display
  label, the sweep name and point parameters, the worker ``pid``, the
  tracer's sampling config, and ``epoch_unix`` — the Unix time of the
  tracer's wall-clock epoch, which is what lets the parent translate
  every shard's relative wall stamps into one shared clock domain;
* **heartbeat** status records (``{"heartbeat": {...}}``) at point
  start and completion (with event/drop/wall totals), so a hung worker
  is visible from its shard file alone;
* plain **event** lines (the :func:`~repro.obs.sinks.event_to_dict`
  payload), written in one batch from the worker's structured ring.

The parent merges any number of shards into a single Perfetto document:
shards are ordered by index; shard *k* (0-based) occupies pids
``2k+1`` (sim-time) and ``2k+2`` (wall-time), labelled with the shard's
point, so a two-shard merge of one point degenerates to the classic
two-process layout.  Wall timestamps are shifted by each shard's epoch
offset from the earliest shard, aligning all workers on one timeline.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from .sinks import event_from_dict, event_to_dict, perfetto_events
from .tracer import TraceEvent

__all__ = ["ShardWriter", "TraceShard", "merged_document", "read_shard",
           "write_merged"]

SHARD_SCHEMA = "repro-trace-shard/1"


class ShardWriter:
    """Writes one trace shard (meta + heartbeats + events) as JSONL."""

    def __init__(self, path: str, *, index: int, label: str,
                 sweep: str = "", params: str = "",
                 sample: "int | None" = None, seed: int = 0) -> None:
        self.path = path
        self.index = index
        self._handle = open(path, "w")
        self._write({"shard": {
            "schema": SHARD_SCHEMA, "index": index, "label": label,
            "sweep": sweep, "params": params, "pid": os.getpid(),
            "epoch_unix": time.time(), "sample": sample, "seed": seed,
        }})

    def _write(self, obj: dict) -> None:
        self._handle.write(json.dumps(obj))
        self._handle.write("\n")
        self._handle.flush()

    def heartbeat(self, status: str, **extra) -> None:
        """A status record (``start`` / ``done`` / ``error``) with the
        worker pid and Unix time, plus any caller totals."""
        self._write({"heartbeat": {"status": status, "pid": os.getpid(),
                                   "t_unix": time.time(), **extra}})

    def write_events(self, events) -> None:
        """Append the event stream (one batch, from the tracer's ring)."""
        handle = self._handle
        for event in events:
            handle.write(json.dumps(event_to_dict(event)))
            handle.write("\n")
        handle.flush()

    def close(self) -> None:
        self._handle.close()


@dataclass
class TraceShard:
    """One parsed shard: meta header, heartbeats, and the events."""

    meta: dict
    events: "list[TraceEvent]" = field(default_factory=list)
    heartbeats: "list[dict]" = field(default_factory=list)

    @property
    def index(self) -> int:
        return self.meta.get("index", 0)

    @property
    def label(self) -> str:
        return self.meta.get("label", f"shard-{self.index}")

    @property
    def epoch_unix(self) -> float:
        return self.meta.get("epoch_unix", 0.0)

    @property
    def sampled(self) -> bool:
        return bool(self.meta.get("sample"))


def read_shard(path: str) -> TraceShard:
    """Parse one shard file back into meta, heartbeats, and events."""
    meta: dict = {}
    heartbeats: "list[dict]" = []
    events: "list[TraceEvent]" = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if "shard" in obj:
                meta = obj["shard"]
            elif "heartbeat" in obj:
                heartbeats.append(obj["heartbeat"])
            else:
                events.append(event_from_dict(obj))
    return TraceShard(meta=meta, events=events, heartbeats=heartbeats)


def merged_document(shards: "list[TraceShard]") -> dict:
    """One Perfetto document laying every shard's two time domains side
    by side, ordered by shard index, wall clocks aligned to the
    earliest shard's epoch."""
    ordered = sorted(shards, key=lambda s: (s.index, s.label))
    base_epoch = min((s.epoch_unix for s in ordered), default=0.0)
    trace_events: "list[dict]" = []
    for position, shard in enumerate(ordered):
        perfetto_events(
            shard.events,
            sim_pid=2 * position + 1, wall_pid=2 * position + 2,
            label=shard.label,
            wall_offset_s=shard.epoch_unix - base_epoch,
            out=trace_events)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs.merge",
            "sim_time_unit": "1us == 1e-6 simulated seconds",
            "shards": len(ordered),
            "shard_labels": [s.label for s in ordered],
        },
    }


def write_merged(paths, out) -> dict:
    """Read every shard file in ``paths``, merge, and write the Perfetto
    JSON to ``out`` (path or file object).  Returns a summary dict:
    shard/event/drop totals for the caller's exit report."""
    shards = [read_shard(path) for path in paths]
    doc = merged_document(shards)
    if hasattr(out, "write"):
        json.dump(doc, out)
    else:
        with open(out, "w") as handle:
            json.dump(doc, handle)
    dropped = 0
    incomplete = 0
    for shard in shards:
        done = [h for h in shard.heartbeats if h.get("status") == "done"]
        if done:
            dropped += int(done[-1].get("dropped", 0))
        else:
            incomplete += 1
    return {"shards": len(shards),
            "events": sum(len(s.events) for s in shards),
            "dropped": dropped,
            "incomplete": incomplete}

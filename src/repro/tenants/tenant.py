"""Tenant model: cores, priority class, and I/O character.

IAT needs exactly three facts about each tenant (paper Sec. IV-A):

* which cores (and hence which CLOS) it owns,
* whether its workload is "I/O" (networking) or not, and
* its priority — performance-critical (PC) or best-effort (BE), plus a
  special priority for the aggregation model's software stack (OVS),
  which is not a tenant but is tracked like one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Priority(enum.Enum):
    """Workload priority classes (Sec. IV-A)."""

    PC = "performance-critical"
    BE = "best-effort"
    STACK = "software-stack"


@dataclass
class Tenant:
    """One tenant (container/VM) or the centralized software stack."""

    name: str
    cores: "tuple[int, ...]"
    priority: Priority = Priority.BE
    is_io: bool = False
    cos_id: int = 0
    #: Way count the tenant was initially granted (used for reclaim floors).
    initial_ways: int = 1
    #: Tenants with the same ``share_group`` share one way mask (the
    #: paper's setups often give several containers a common region,
    #: e.g. "the OVS and two Redis containers share three LLC ways").
    share_group: "str | None" = None

    def __post_init__(self) -> None:
        self.cores = tuple(self.cores)
        if not self.cores:
            raise ValueError(f"tenant {self.name!r} needs at least one core")
        if len(set(self.cores)) != len(self.cores):
            raise ValueError(f"tenant {self.name!r} lists a core twice")

    @property
    def group(self) -> str:
        """Allocation-group key: shared group name, or the tenant name."""
        return self.share_group or self.name

    @property
    def is_stack(self) -> bool:
        return self.priority is Priority.STACK

    @property
    def is_pc(self) -> bool:
        return self.priority is Priority.PC

    @property
    def is_be(self) -> bool:
        return self.priority is Priority.BE


@dataclass
class TenantSet:
    """A validated collection of tenants sharing one CPU package."""

    tenants: "list[Tenant]" = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError("duplicate tenant names")
        seen_cores: "set[int]" = set()
        for tenant in self.tenants:
            overlap = seen_cores & set(tenant.cores)
            if overlap:
                raise ValueError(
                    f"cores {sorted(overlap)} assigned to multiple tenants")
            seen_cores |= set(tenant.cores)

    def __iter__(self):
        return iter(self.tenants)

    def __len__(self) -> int:
        return len(self.tenants)

    def by_name(self, name: str) -> Tenant:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(name)

    @property
    def io_tenants(self) -> "list[Tenant]":
        return [t for t in self.tenants if t.is_io]

    @property
    def be_tenants(self) -> "list[Tenant]":
        return [t for t in self.tenants if t.is_be]

    @property
    def stack(self) -> "Tenant | None":
        for tenant in self.tenants:
            if tenant.is_stack:
                return tenant
        return None

    @property
    def all_cores(self) -> "list[int]":
        return sorted(c for t in self.tenants for c in t.cores)

    # -- allocation groups -------------------------------------------------
    def group_names(self) -> "list[str]":
        """Distinct allocation groups in registration order."""
        seen: "list[str]" = []
        for tenant in self.tenants:
            if tenant.group not in seen:
                seen.append(tenant.group)
        return seen

    def group_members(self, group: str) -> "list[Tenant]":
        return [t for t in self.tenants if t.group == group]

    def group_priority(self, group: str) -> Priority:
        """Strongest priority among a group's members (STACK > PC > BE)."""
        members = self.group_members(group)
        if not members:
            raise KeyError(group)
        if any(t.is_stack for t in members):
            return Priority.STACK
        if any(t.is_pc for t in members):
            return Priority.PC
        return Priority.BE

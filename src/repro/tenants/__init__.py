"""Tenant model (PC/BE priorities) and the text-file affiliation registry."""

from .registry import (RegistryError, TenantRegistry, format_records,
                       parse_records)
from .tenant import Priority, Tenant, TenantSet

__all__ = [
    "Priority", "RegistryError", "Tenant", "TenantRegistry", "TenantSet",
    "format_records", "parse_records",
]

"""Tenant affiliation records in a text file, as in the paper (Sec. V):

    "For simplicity, we keep such affiliation records in a text file.
     When the daemon is starting or is notified of a change, it will
     parse the records from this file."

Format (one tenant per line, ``#`` comments allowed)::

    <name> cores=<c0,c1,...> priority=<PC|BE|STACK> io=<yes|no> [ways=<n>]

The registry remembers the file's mtime so the daemon can cheaply detect
changes between sleep intervals (Sec. IV-E: "after each sleep, if IAT is
informed about changes of tenants ... it will go through the Get Tenant
Info and LLC Alloc steps").
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from .tenant import Priority, Tenant, TenantSet


class RegistryError(ValueError):
    """Raised for malformed affiliation records."""


def _parse_line(line: str, lineno: int) -> Tenant:
    parts = line.split()
    if len(parts) < 2:
        raise RegistryError(f"line {lineno}: expected '<name> key=value...'")
    name, fields = parts[0], parts[1:]
    values: "dict[str, str]" = {}
    for fld in fields:
        if "=" not in fld:
            raise RegistryError(f"line {lineno}: bad field {fld!r}")
        key, _, value = fld.partition("=")
        values[key] = value
    if "cores" not in values:
        raise RegistryError(f"line {lineno}: missing cores=")
    try:
        cores = tuple(int(c) for c in values["cores"].split(",") if c)
    except ValueError as exc:
        raise RegistryError(f"line {lineno}: bad core list") from exc
    prio_name = values.get("priority", "BE").upper()
    try:
        priority = Priority[prio_name]
    except KeyError as exc:
        raise RegistryError(
            f"line {lineno}: unknown priority {prio_name!r}") from exc
    is_io = values.get("io", "no").lower() in ("yes", "true", "1")
    ways = int(values.get("ways", "1"))
    group = values.get("group") or None
    return Tenant(name=name, cores=cores, priority=priority, is_io=is_io,
                  initial_ways=ways, share_group=group)


def parse_records(text: str) -> TenantSet:
    """Parse affiliation records from a string."""
    tenants = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tenants.append(_parse_line(line, lineno))
    return TenantSet(tenants)


def format_records(tenants: TenantSet) -> str:
    """Render a tenant set back to the file format (round-trips parse)."""
    lines = []
    for tenant in tenants:
        io_flag = "yes" if tenant.is_io else "no"
        cores = ",".join(str(c) for c in tenant.cores)
        line = (f"{tenant.name} cores={cores} "
                f"priority={tenant.priority.name} io={io_flag} "
                f"ways={tenant.initial_ways}")
        if tenant.share_group:
            line += f" group={tenant.share_group}"
        lines.append(line)
    return "\n".join(lines) + "\n"


@dataclass
class TenantRegistry:
    """File-backed tenant registry with change detection."""

    path: str
    _mtime: float = -1.0

    def load(self) -> TenantSet:
        with open(self.path) as handle:
            text = handle.read()
        self._mtime = os.path.getmtime(self.path)
        return parse_records(text)

    def save(self, tenants: TenantSet) -> None:
        with open(self.path, "w") as handle:
            handle.write(format_records(tenants))
        self._mtime = os.path.getmtime(self.path)

    def changed(self) -> bool:
        """True if the file was modified since the last load/save."""
        try:
            return os.path.getmtime(self.path) != self._mtime
        except OSError:
            return True

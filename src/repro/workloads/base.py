"""Workload execution model: core ports, cycle accounting, latencies.

Workloads in this reproduction are *memory-behaviour models*: each one
issues a stream of LLC-level accesses (its post-L2 miss stream) into the
simulated cache through a :class:`CorePort`, paying per-access latencies
that in turn determine how many operations fit into a core's cycle
budget.  IPC, LLC reference/miss counts, throughput, and latency all
emerge from this loop — they are not scripted.

The latency constants approximate Skylake-SP: ~14 cycles L2 hit, ~44
cycles LLC hit, DRAM latency from the (utilization-aware) memory model.
``mlp`` expresses memory-level parallelism: independent misses overlap,
so the charged stall is ``dram_latency / mlp``; a dependent pointer
chase has ``mlp = 1``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..cache.cat import CatController
from ..cache.llc import SlicedLLC
from ..mem.dram import MemoryController
from ..obs.tracer import current_tracer
from ..perf.counters import CoreCounterBlock

#: Cycles for an access served by the (modelled) L2.
L2_HIT_CYCLES = 14.0

#: Cycles for an access served by the LLC.
LLC_HIT_CYCLES = 44.0


class CorePort:
    """One core's path into the memory hierarchy.

    Binds together the LLC (with the core's current CAT mask), the
    memory controller, and the core's counter block.  ``begin_quantum``
    caches the mask and the current DRAM latency so the per-access hot
    path stays cheap; controllers only reprogram masks between quanta,
    so this is exact.
    """

    __slots__ = ("core_id", "owner", "_llc", "_cat", "_mem", "_mba",
                 "block", "_mask", "_dram_cycles", "_line", "_lat_buf")

    def __init__(self, core_id: int, owner: int, llc: SlicedLLC,
                 cat: CatController, mem: MemoryController,
                 block: CoreCounterBlock, mba=None) -> None:
        self.core_id = core_id
        self.owner = owner
        self._llc = llc
        self._cat = cat
        self._mem = mem
        self._mba = mba
        self.block = block
        self._line = llc.geometry.line_size
        self._mask = cat.mask_of_core(core_id)
        self._dram_cycles = mem.spec.idle_latency_cycles
        self._lat_buf = np.empty(0)

    def begin_quantum(self) -> None:
        """Refresh cached mask and DRAM latency at a quantum boundary."""
        self._mask = self._cat.mask_of_core(self.core_id)
        self._dram_cycles = self._mem.load_latency_cycles()
        if self._mba is not None:
            # MBA extension: a throttled class pays stretched DRAM time.
            cos = self._cat.cos_of(self.core_id)
            self._dram_cycles *= self._mba.delay_factor(cos)

    @property
    def mask(self) -> int:
        return self._mask

    @property
    def dram_cycles(self) -> float:
        """Current per-miss DRAM penalty (refreshed by ``begin_quantum``).

        Batched callers use this to compute worst-case cycle bounds for
        budget-guarded chunking.
        """
        return self._dram_cycles

    def access(self, addr: int, *, write: bool = False,
               mlp: float = 1.0) -> float:
        """One LLC-level access; returns the charged latency in cycles.

        ``mlp`` models memory-level parallelism: independent or
        prefetched accesses (streaming a packet buffer, copying a value)
        overlap, so both the hit latency and the DRAM penalty are
        divided by it.  A dependent pointer chase passes ``mlp=1``.
        """
        out = self._llc.access(addr, self._mask, write=write,
                               owner=self.owner)
        block = self.block
        block.llc_references += 1
        if out.hit:
            return LLC_HIT_CYCLES / mlp
        block.llc_misses += 1
        line = self._line
        self._mem.add_read(line)
        if out.writeback:
            self._mem.add_write(line)
        return (LLC_HIT_CYCLES + self._dram_cycles) / mlp

    def access_batch(self, addrs, *, write: bool = False,
                     mlp: float = 1.0) -> "np.ndarray":
        """Issue an address vector in order; returns per-access cycles.

        Equivalent to calling :meth:`access` per address (same counter
        and memory-traffic accounting); the total charged cycles is the
        returned array's sum.  Works on either LLC backend — on the
        array backend the whole vector is one vectorized batch.
        """
        addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        n = addrs.shape[0]
        if n == 0:
            return np.zeros(0)
        out = self._llc.access_batch(addrs, self._mask, write=write,
                                     owner=self.owner)
        block = self.block
        block.llc_references += n
        misses = out.misses
        block.llc_misses += misses
        if misses:
            self._mem.add_read(self._line * misses)
        writebacks = out.writebacks
        if writebacks:
            self._mem.add_write(self._line * writebacks)
        return np.where(out.hit, LLC_HIT_CYCLES / mlp,
                        (LLC_HIT_CYCLES + self._dram_cycles) / mlp)

    def read_line_for_device(self, addr: int) -> None:
        """Device-side read (Tx DMA): LLC if present, else DRAM; no fill."""
        out = self._llc.device_read(addr)
        if not out.hit:
            self._mem.add_read(self._line)

    def run_plan(self, plan: "AccessPlan", npackets: int) -> "np.ndarray":
        """Execute a mixed core/device access plan as one LLC batch.

        Core accesses pay hit/miss latencies scaled by their segment's
        MLP and update this core's reference/miss counters; device
        (Tx DMA) reads never fill and charge no core cycles, only DRAM
        reads on miss.  Line order inside the plan — including the
        core/device interleaving — is exactly the order a scalar caller
        would have issued.  Returns per-packet charged cycles, indexed
        by the plan's packet slots (length ``npackets``).
        """
        tracer = current_tracer()
        prof = tracer.profiling
        t0 = tracer.clock() if prof else 0.0
        flat = plan.materialize()
        if flat is None:
            return np.zeros(npackets)
        addrs, write, mlp_inv, device, pkt = flat
        t1 = tracer.clock() if prof else 0.0
        # The way mask only governs fills and device lines never
        # allocate, so the core mask can be passed as a scalar for the
        # whole batch — bit-identical to a per-line masked vector.
        block = self.block
        if device is None:
            out = self._llc.access_batch(addrs, self._mask, write=write,
                                         owner=self.owner)
            hit = out.hit
            block.llc_references += addrs.shape[0]
            block.llc_misses += out.misses
        else:
            core = ~device
            out = self._llc.access_batch(addrs, self._mask, write=write,
                                         owner=self.owner, allocate=core)
            hit = out.hit
            block.llc_references += int(np.count_nonzero(core))
            block.llc_misses += int(np.count_nonzero(core & ~hit))
        if prof:
            t2 = tracer.clock()
            tracer.profile_add("engine.workloads.plan", t1 - t0)
            tracer.profile_add("engine.workloads.llc", t2 - t1)
        miss_total = out.misses
        if miss_total:
            self._mem.add_read(self._line * miss_total)
        writebacks = out.writebacks
        if writebacks:
            self._mem.add_write(self._line * writebacks)
        # Latency lands in a reused per-port buffer, fused to two kernels:
        # every line pays its MLP-scaled miss cost, then hits are patched
        # down to the MLP-scaled hit cost.  Element-for-element the same
        # float operations as np.where(hit, H, H + D) * mlp_inv — the
        # products commute bit-exactly — and device lines fall out at 0.0
        # automatically because their mlp_inv is staged as 0.0.
        buf = self._lat_buf
        n = addrs.shape[0]
        if buf.shape[0] < n:
            buf = self._lat_buf = np.empty(max(n, 1024))
        lat = buf[:n]
        np.multiply(mlp_inv, LLC_HIT_CYCLES + self._dram_cycles, out=lat)
        lat[hit] = mlp_inv[hit] * LLC_HIT_CYCLES
        # One approximate launch count for the execute stage (batch call
        # plus the latency/bincount kernels above).
        ENGINE_STATS.kernel_launches += 6
        return np.bincount(pkt, weights=lat, minlength=npackets)

    def charge(self, instructions: float, cycles: float) -> None:
        """Credit retired instructions and consumed cycles to the core."""
        self.block.credit(instructions=int(instructions), cycles=int(cycles))


class AccessPlan:
    """Builder for a batched memory-access sequence.

    Callers append *segments* — runs of consecutive-stride lines sharing
    one (write, mlp, device) profile and attributed to one packet slot —
    in exactly the order a scalar implementation would have issued the
    accesses.  :meth:`CorePort.run_plan` materializes the segments into
    flat per-line arrays and executes them as a single LLC batch.
    """

    __slots__ = ("_base", "_count", "_stride", "_write", "_mlp_inv",
                 "_device", "_pkt")

    def __init__(self) -> None:
        self._base: "list[int]" = []
        self._count: "list[int]" = []
        self._stride: "list[int]" = []
        self._write: "list[bool]" = []
        self._mlp_inv: "list[float]" = []
        self._device: "list[bool]" = []
        self._pkt: "list[int]" = []

    def add(self, base: int, count: int, *, stride: int = 64,
            write: bool = False, mlp: float = 1.0, pkt: int = 0) -> None:
        """Append ``count`` core accesses starting at ``base``."""
        if count <= 0:
            return
        self._base.append(base)
        self._count.append(count)
        self._stride.append(stride)
        self._write.append(write)
        self._mlp_inv.append(1.0 / mlp)
        self._device.append(False)
        self._pkt.append(pkt)

    def add_device(self, base: int, count: int, *, stride: int = 64,
                   pkt: int = 0) -> None:
        """Append ``count`` device (Tx DMA) reads starting at ``base``."""
        if count <= 0:
            return
        self._base.append(base)
        self._count.append(count)
        self._stride.append(stride)
        self._write.append(False)
        self._mlp_inv.append(0.0)
        self._device.append(True)
        self._pkt.append(pkt)

    def materialize(self):
        """Flatten segments to per-line arrays (None if the plan is empty).

        Returns ``(addrs, write, mlp_inv, device, pkt)``, line order
        preserved: segment-major, ascending stride within a segment.
        """
        if not self._count:
            return None
        count = np.asarray(self._count, dtype=np.int64)
        total = int(count.sum())
        starts = np.concatenate(([0], np.cumsum(count)[:-1]))
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, count)
        addrs = np.repeat(np.asarray(self._base, dtype=np.int64), count) \
            + within * np.repeat(np.asarray(self._stride, dtype=np.int64),
                                 count)
        write = np.repeat(np.asarray(self._write, dtype=bool), count)
        mlp_inv = np.repeat(np.asarray(self._mlp_inv), count)
        device = (np.repeat(np.asarray(self._device, dtype=bool), count)
                  if any(self._device) else None)
        pkt = np.repeat(np.asarray(self._pkt, dtype=np.int64), count)
        return addrs, write, mlp_inv, device, pkt


def seq_accumulate(initial: float, values: "np.ndarray") -> float:
    """Left-to-right sum of ``values`` onto ``initial``.

    ``np.cumsum`` is ``np.add.accumulate``: it must produce every
    intermediate prefix, so it applies the additions strictly
    sequentially and reproduces a scalar ``acc += v`` loop bit-for-bit
    for *any* float64 input — negative values, infinities, and NaNs
    included (``np.sum`` pairs terms and rounds differently, which is
    why it cannot be used here).  Earlier versions gated the cumsum on
    an all-non-negative pre-scan; the sign check was one extra kernel
    pass and never bought anything, so mixed-sign streams now take the
    same fast path.  Non-float64 inputs fall back to the explicit
    left-to-right loop, the defining semantics.
    """
    n = values.shape[0]
    if n == 0:
        return float(initial)
    if values.dtype == np.float64:
        tmp = np.empty(n + 1)
        tmp[0] = initial
        tmp[1:] = values
        return float(np.cumsum(tmp, out=tmp)[-1])
    acc = float(initial)
    for v in values.tolist():
        acc += v
    return acc


class EngineStats:
    """Process-wide chunk/speculation accounting (observability only).

    The vectorized ring drains record every executed chunk here: chunk
    sizes into a power-of-two histogram, speculative executions and
    rollbacks, and the approximate NumPy kernel-launch count of the
    plan pipeline.  The engine samples per-quantum deltas into the
    tracer and the metrics registry, ``repro trace`` prints the totals
    at exit, and the perf benchmarks read the means directly.  Like
    ``repro.obs.metrics.REGISTRY`` this is process-global state shared
    by every simulation in the process; simulation *results* never read
    it, so it cannot perturb determinism.
    """

    #: Upper bucket bounds (packets per chunk) of the size histogram.
    SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)

    __slots__ = ("chunks", "packets", "exec_packets", "spec_chunks",
                 "rollbacks", "wasted_packets", "kernel_launches",
                 "size_buckets")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.chunks = 0           # chunk executions (replays included)
        self.packets = 0          # packets admitted and committed
        self.exec_packets = 0     # packets executed (rolled back included)
        self.spec_chunks = 0      # chunks executed under a snapshot
        self.rollbacks = 0        # mispredicted admissions rolled back
        self.wasted_packets = 0   # packets executed and then rolled back
        self.kernel_launches = 0  # NumPy launches in the plan pipeline
        self.size_buckets = [0] * len(self.SIZE_BUCKETS)

    def record_chunk(self, k: int) -> None:
        """Account one executed chunk of ``k`` packets."""
        self.chunks += 1
        self.exec_packets += k
        buckets = self.size_buckets
        buckets[min((k - 1).bit_length(), len(buckets) - 1)] += 1

    # -- derived views ---------------------------------------------------
    def mean_chunk(self) -> float:
        return self.exec_packets / self.chunks if self.chunks else 0.0

    def rollback_rate(self) -> float:
        return self.rollbacks / self.spec_chunks if self.spec_chunks else 0.0

    def launches_per_chunk(self) -> float:
        return self.kernel_launches / self.chunks if self.chunks else 0.0

    def percentile_chunk(self, pct: float) -> float:
        """Approximate size percentile (upper bucket bound), from the
        power-of-two histogram."""
        if not self.chunks:
            return 0.0
        threshold = pct / 100.0 * self.chunks
        cum = 0
        for bound, count in zip(self.SIZE_BUCKETS, self.size_buckets):
            cum += count
            if cum >= threshold:
                return float(bound)
        return float(self.SIZE_BUCKETS[-1])

    def snapshot(self) -> dict:
        return {
            "chunks": self.chunks,
            "packets": self.packets,
            "exec_packets": self.exec_packets,
            "spec_chunks": self.spec_chunks,
            "rollbacks": self.rollbacks,
            "wasted_packets": self.wasted_packets,
            "kernel_launches": self.kernel_launches,
            "size_buckets": tuple(self.size_buckets),
        }


#: Process-wide singleton the drains, engine, CLI, and benches share.
ENGINE_STATS = EngineStats()


#: Canonical identity packet-id vector.  The vector drains pass
#: ``PKT_IOTA[:k]`` as their per-chunk packet ids; :class:`VectorPlan`
#: recognizes contiguous zero-based slices of this array as
#: ``arange(k)`` *structurally* — without inspecting their contents —
#: which is what lets chunks of different sizes share one cached stage
#: template (see :meth:`VectorPlan._layout_key`).
PKT_IOTA = np.arange(4096, dtype=np.int64)


class VectorPlan:
    """Array-native builder for a batched memory-access sequence.

    The vectorized drain builds one plan per chunk from whole-chunk
    arrays: each :meth:`add_batch` call appends one *stage* — a segment
    per packet, all sharing a (write, mlp, device) profile and a stage
    ``rank``.  Materialization orders lines packet-major, then by rank,
    then insertion order — exactly the per-packet interleave the scalar
    loop (buffer lines, app stages in order, transmit) would issue, so
    :meth:`CorePort.run_plan` sees the same line stream as an
    :class:`AccessPlan` built packet by packet.

    Ranks must stay below :data:`VectorPlan.MAX_RANK` (the sort key packs
    ``pkt * MAX_RANK + rank`` into one int64 argsort).

    Plans are reusable: call :meth:`reset` between chunks instead of
    constructing a fresh plan.  Materialization writes into persistent
    scratch arrays (grown geometrically) so a steady-state chunk
    allocates nothing; the returned arrays are *views* into that
    scratch (or cached layout arrays), valid only until the next
    :meth:`materialize` on the same plan — callers consume them within
    the chunk and must not mutate them.

    Steady-state chunks share their *stage layout*: the ranks, strides,
    per-packet line counts, and flag profiles repeat chunk after chunk
    while only the segment base addresses (and occasionally the packet
    ids) change.  Materialization therefore caches, per structural
    signature, the final line order as a gather recipe — ``src`` (which
    staged segment each line belongs to) and ``off`` (the line's
    stride offset within its segment) — together with the already
    permuted static ``write``/``mlp_inv``/``device``/``pkt`` arrays.  A
    layout hit rebuilds the address stream with three kernels
    (concatenate the stage bases, gather through ``src``, add ``off``)
    instead of the former per-stage sizing/fill cascade plus argsort;
    the sort itself is paid once per layout, not once per chunk.

    Layouts are cached at two levels.  When every stage covers every
    packet with a fixed line count and identity packet ids (contiguous
    zero-based :data:`PKT_IOTA` slices — the shape of every steady-state
    drain chunk), the per-packet line block is identical for all
    packets, so one *template* keyed only by the stage structure covers
    every chunk size; the concrete layout for a new ``k`` is stamped out
    of the template with a handful of tile/repeat kernels, no sort.
    Ragged or subset stages (e.g. megaflow probes over the EMC-miss
    packets) fall back to a fully keyed layout build.  All three caches
    — layouts, templates, and arange steps — are LRU-bounded
    (:data:`LAYOUT_CACHE_CAP` / :data:`TEMPLATE_CACHE_CAP` /
    :data:`STEP_CACHE_CAP`) so variable packet mixes cannot grow them
    without limit.
    """

    MAX_RANK = 128

    #: Max cached concrete stage layouts per plan (LRU-evicted).
    LAYOUT_CACHE_CAP = 128

    #: Max cached chunk-size-independent stage templates per plan.
    TEMPLATE_CACHE_CAP = 64

    #: Max cached ``arange(count) * stride`` vectors per plan.
    STEP_CACHE_CAP = 256

    __slots__ = ("_parts", "_cap", "_steps", "_layouts", "_templates",
                 "_addr")

    def __init__(self) -> None:
        # (rank, bases, counts, stride, write, mlp_inv, device, pkts,
        #  iota) — iota flags pkts recognized as arange(len(pkts)).
        self._parts: "list[tuple]" = []
        self._cap = 0
        self._steps: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._layouts: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._templates: "OrderedDict[tuple, tuple]" = OrderedDict()

    def reset(self) -> None:
        """Drop staged parts, keeping scratch arrays for the next chunk."""
        self._parts.clear()

    def add_batch(self, bases, counts, *, pkts, rank: int,
                  stride: int = 64, write: bool = False, mlp: float = 1.0,
                  device: bool = False) -> None:
        """Append one stage: per packet ``p`` in ``pkts``, ``counts[p]``
        lines starting at ``bases[p]``.  ``counts`` may be a scalar."""
        pkts = np.asarray(pkts, dtype=np.int64)
        # Structural arange detection: a C-contiguous zero-based slice
        # of the canonical PKT_IOTA vector *is* arange(len(pkts)), no
        # content scan needed.  Anything else (fancy-indexed subsets,
        # caller-built arrays) simply skips the template fast path.
        iota = pkts is PKT_IOTA or (
            pkts.base is PKT_IOTA and pkts.flags.c_contiguous
            and pkts.shape[0] > 0 and int(pkts[0]) == 0)
        self._parts.append((rank, np.asarray(bases, dtype=np.int64),
                            counts, stride, write,
                            0.0 if device else 1.0 / mlp, device,
                            pkts, iota))

    def _reserve(self, total: int) -> None:
        if total <= self._cap:
            return
        cap = max(total, 2 * self._cap, 1024)
        self._addr = np.empty(cap, dtype=np.int64)
        self._cap = cap

    def _step(self, count: int, stride: int) -> "np.ndarray":
        """Cached ``arange(count) * stride`` for fixed-count stages."""
        steps = self._steps
        key = (count, stride)
        step = steps.get(key)
        if step is None:
            step = np.arange(count, dtype=np.int64) * stride
            steps[key] = step
            if len(steps) > self.STEP_CACHE_CAP:
                steps.popitem(last=False)
        else:
            steps.move_to_end(key)
        return step

    def _layout_key(self) -> "tuple[tuple, tuple | None, int]":
        """Structural signature of the staged parts.

        Everything that determines the materialized line *order* and the
        static per-line arrays — ranks, strides, flag profiles, the line
        counts, and the packet-id vectors — goes into the key; the
        segment base addresses are deliberately excluded because the
        cached layout reconstructs addresses from them per chunk.

        Returns ``(key, tkey, k)``: ``key`` addresses the concrete
        layout cache; when every stage is a scalar-count identity
        (iota) stage over the same ``k`` packets, ``tkey`` is the
        chunk-size-independent template key (else ``None``).  Iota
        stages contribute no per-element bytes to either key — their
        packet vector is fully described by its length, carried once in
        the ``k`` suffix — so the steady-state key costs no array
        scans at all.
        """
        entries = []
        lens = []
        uniform = True
        k0 = -1
        for rank, bases, counts, stride, write, mlp_inv, device, pkts, \
                iota in self._parts:
            if isinstance(counts, np.ndarray):
                uniform = False
                entries.append((1, rank, counts.tobytes(), stride, write,
                                mlp_inv, device, pkts.tobytes()))
            elif iota:
                m = pkts.shape[0]
                lens.append(m)
                if k0 < 0:
                    k0 = m
                elif m != k0:
                    uniform = False
                entries.append((0, rank, counts, stride, write, mlp_inv,
                                device))
            else:
                uniform = False
                entries.append((2, rank, counts, stride, write, mlp_inv,
                                device, pkts.tobytes()))
        entries = tuple(entries)
        key = (entries, tuple(lens))
        if uniform and k0 > 0:
            return key, entries, k0
        return key, None, k0

    def _build_layout(self) -> tuple:
        """Build (and launch-account) the layout for the staged parts.

        Returns ``()`` when every stage is empty, else ``(grand,
        part_idx, src, off, write, mlp_inv, device, pkt)`` where ``src``
        indexes into the concatenation of the staged parts' base
        vectors and ``off`` carries each line's within-segment stride
        offset, both already permuted into the final (pkt, rank,
        insertion) order alongside the static arrays.
        """
        stats = ENGINE_STATS
        # Sizing pass: per-stage line totals (ragged cumsums cached for
        # the fill pass below).
        staged = []
        grand = 0
        for idx, part in enumerate(self._parts):
            counts = part[2]
            if isinstance(counts, np.ndarray):
                csum = np.cumsum(counts)
                total = int(csum[-1]) if csum.shape[0] else 0
                stats.kernel_launches += 1
            elif counts == 1:
                csum = None
                total = part[1].shape[0]
            else:
                csum = None
                total = part[1].shape[0] * counts
            if total:
                staged.append((idx, csum, total))
                grand += total
        if not staged:
            return ()
        multi = len(staged) > 1
        has_dev = any(self._parts[idx][6] for idx, _, _ in staged)
        srcs, offs, writes, mlps, devs, pkts_l, keys_l = \
            [], [], [], [], [], [], []
        boff = 0
        for idx, csum, total in staged:
            rank, bases, counts, stride, write, mlp_inv, device, pkts, \
                _ = self._parts[idx]
            m = bases.shape[0]
            seg = np.arange(boff, boff + m, dtype=np.int64)
            if csum is not None:
                starts = np.empty_like(csum)
                starts[0] = 0
                starts[1:] = csum[:-1]
                within = np.arange(total, dtype=np.int64)
                within -= np.repeat(starts, counts)
                np.multiply(within, stride, out=within)
                src = np.repeat(seg, counts)
                pkt_part = np.repeat(pkts, counts)
                stats.kernel_launches += 7
            elif counts == 1:
                within = np.zeros(m, dtype=np.int64)
                src = seg
                pkt_part = pkts.copy()
                stats.kernel_launches += 2
            else:
                within = np.tile(self._step(counts, stride), m)
                src = np.repeat(seg, counts)
                pkt_part = np.repeat(pkts, counts)
                stats.kernel_launches += 3
            srcs.append(src)
            offs.append(within)
            writes.append(np.full(total, write))
            mlps.append(np.full(total, mlp_inv))
            stats.kernel_launches += 2
            if has_dev:
                devs.append(np.full(total, device))
                stats.kernel_launches += 1
            pkts_l.append(pkt_part)
            if multi:
                keys_l.append(pkt_part * self.MAX_RANK + rank)
                stats.kernel_launches += 2
            boff += m
        part_idx = tuple(idx for idx, _, _ in staged)
        if not multi:
            # Single stage: already packet-major and rank-uniform.
            return (grand, part_idx, srcs[0], offs[0], writes[0],
                    mlps[0], devs[0] if has_dev else None, pkts_l[0])
        src = np.concatenate(srcs)
        off = np.concatenate(offs)
        write_a = np.concatenate(writes)
        mlp_a = np.concatenate(mlps)
        dev_a = np.concatenate(devs) if has_dev else None
        pkt_a = np.concatenate(pkts_l)
        order = np.argsort(np.concatenate(keys_l), kind="stable")
        stats.kernel_launches += 8
        src = src[order]
        off = off[order]
        write_a = write_a[order]
        mlp_a = mlp_a[order]
        pkt_a = pkt_a[order]
        stats.kernel_launches += 5
        if dev_a is not None:
            dev_a = dev_a[order]
            stats.kernel_launches += 1
        return (grand, part_idx, src, off, write_a, mlp_a, dev_a, pkt_a)

    def _build_template(self) -> tuple:
        """Chunk-size-independent per-packet line block for uniform
        (all scalar-count, all iota) stage lists.

        Every packet's lines are the same block: stages sorted by
        (rank, insertion order), each contributing its fixed line
        count in stride order.  Returns ``()`` when every stage is
        empty, else ``(part_idx, s_pat, off_pat, write_pat, mlp_pat,
        dev_pat)`` where ``s_pat`` names the staged-segment index of
        each block line (the concrete ``src`` for ``k`` packets is
        ``s_pat * k + p``).
        """
        parts = self._parts
        staged = [idx for idx, part in enumerate(parts) if part[2] > 0]
        if not staged:
            return ()
        stats = ENGINE_STATS
        has_dev = any(parts[idx][6] for idx in staged)
        s_pat_l: "list[int]" = []
        off_l = []
        write_l: "list[bool]" = []
        mlp_l: "list[float]" = []
        dev_l: "list[bool]" = []
        block = sorted(range(len(staged)),
                       key=lambda j: (parts[staged[j]][0], j))
        for j in block:
            rank, bases, counts, stride, write, mlp_inv, device, pkts, \
                _ = parts[staged[j]]
            c = int(counts)
            s_pat_l.extend([j] * c)
            off_l.append(self._step(c, stride))
            write_l.extend([write] * c)
            mlp_l.extend([mlp_inv] * c)
            dev_l.extend([device] * c)
        s_pat = np.asarray(s_pat_l, dtype=np.int64)
        off_pat = np.concatenate(off_l)
        write_pat = np.asarray(write_l, dtype=bool)
        mlp_pat = np.asarray(mlp_l)
        dev_pat = np.asarray(dev_l, dtype=bool) if has_dev else None
        stats.kernel_launches += 5 + (1 if has_dev else 0)
        return (tuple(staged), s_pat, off_pat, write_pat, mlp_pat,
                dev_pat)

    def _layout_from_template(self, template: tuple, k: int) -> tuple:
        """Stamp the concrete ``k``-packet layout out of a template.

        A few tile/repeat kernels replace the generic build's per-stage
        cascade and argsort: the block pattern already carries the final
        (rank, insertion) order, and packet-major replication preserves
        it exactly as the packed-key sort would.
        """
        if not template:
            return ()
        part_idx, s_pat, off_pat, write_pat, mlp_pat, dev_pat = template
        nlines = s_pat.shape[0]
        grand = nlines * k
        iota = PKT_IOTA[:k]
        src = (s_pat * k + iota[:, None]).reshape(-1)
        off = np.tile(off_pat, k)
        write = np.tile(write_pat, k)
        mlp = np.tile(mlp_pat, k)
        dev = np.tile(dev_pat, k) if dev_pat is not None else None
        pkt = np.repeat(iota, nlines)
        ENGINE_STATS.kernel_launches += 8 + (1 if dev is not None else 0)
        return (grand, part_idx, src, off, write, mlp, dev, pkt)

    def materialize(self):
        """Flatten stages to per-line arrays ordered (pkt, rank,
        insertion); same return contract as :meth:`AccessPlan.materialize`,
        but the address array is a scratch view and the static arrays
        belong to the cached layout (see class docstring).
        """
        if not self._parts:
            return None
        layouts = self._layouts
        key, tkey, k = self._layout_key()
        layout = layouts.get(key)
        if layout is None:
            if tkey is not None:
                templates = self._templates
                template = templates.get(tkey)
                if template is None:
                    template = self._build_template()
                    templates[tkey] = template
                    if len(templates) > self.TEMPLATE_CACHE_CAP:
                        templates.popitem(last=False)
                else:
                    templates.move_to_end(tkey)
                layout = self._layout_from_template(template, k)
            else:
                layout = self._build_layout()
            layouts[key] = layout
            if len(layouts) > self.LAYOUT_CACHE_CAP:
                layouts.popitem(last=False)
        else:
            layouts.move_to_end(key)
        if not layout:
            return None
        grand, part_idx, src, off, write, mlp_inv, dev, pkt = layout
        parts = self._parts
        stats = ENGINE_STATS
        if len(part_idx) == 1:
            cat = parts[part_idx[0]][1]
        else:
            cat = np.concatenate([parts[i][1] for i in part_idx])
            stats.kernel_launches += 1
        self._reserve(grand)
        addrs = self._addr[:grand]
        np.take(cat, src, out=addrs)
        np.add(addrs, off, out=addrs)
        stats.kernel_launches += 2
        return addrs, write, mlp_inv, dev, pkt


@dataclass
class WorkloadStats:
    """Cumulative application-level statistics for one workload."""

    ops: int = 0
    busy_cycles: float = 0.0
    latency_sum_cycles: float = 0.0
    #: Optional reservoir of per-op latencies for percentile reporting.
    latency_samples: "list[float]" = field(default_factory=list)

    def record_op(self, latency_cycles: float, *, sample: bool = False) -> None:
        self.ops += 1
        self.latency_sum_cycles += latency_cycles
        if sample:
            self.latency_samples.append(latency_cycles)

    @property
    def avg_latency_cycles(self) -> float:
        return self.latency_sum_cycles / self.ops if self.ops else 0.0

    def percentile_latency(self, pct: float) -> float:
        if not self.latency_samples:
            return 0.0
        return float(np.percentile(np.asarray(self.latency_samples), pct))


class Workload(ABC):
    """Base class: bound to one tenant's core ports, run each quantum.

    Subclasses implement :meth:`run_core`, consuming a per-core cycle
    budget.  ``l2_bytes`` sets the modelled private-cache capacity used
    for L2 hit-probability estimates.
    """

    #: Modelled per-core L2 capacity (Table I: 1 MB).
    l2_bytes: int = 1 << 20

    #: Execution mode for the hot loop: ``"vector"`` (whole-chunk array
    #: plans, the default), ``"batch"`` (per-packet plan building executed
    #: as LLC batches), or ``"scalar"`` (the per-access reference loop).
    #: All three produce identical simulation results; the engine
    #: propagates its own mode here at run time.
    exec_mode: str = "vector"

    def __init__(self, name: str) -> None:
        self.name = name
        self.ports: "list[CorePort]" = []
        self.rng: "np.random.Generator" = np.random.default_rng(0)
        self.region_base = 0
        self.stats = WorkloadStats()
        #: Rate scale of the hosting platform; the engine sets it at
        #: bind time.  One simulated second carries ``freq * time_scale``
        #: cycles, so waits measured in simulated seconds convert to
        #: cycles through this factor.
        self.time_scale = 1.0

    def bind(self, ports: "list[CorePort]", region_base: int,
             rng: "np.random.Generator") -> None:
        """Attach to core ports and a private address region."""
        if not ports:
            raise ValueError(f"workload {self.name!r} needs >= 1 core port")
        self.ports = ports
        self.region_base = region_base
        self.rng = rng
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses after binding (precompute tables etc.)."""

    def prefill(self) -> None:
        """Warm the workload's resident data into the cache at t=0.

        The simulator runs rates at ``time_scale`` of real time, which
        stretches cache-fill transients by the same factor; real
        machines reach steady state in (real) seconds, so experiments
        start from a warm cache.  Called by the engine after the
        controllers' initial LLC allocation and *before* counter
        baselines are primed, so the warm-up burst is invisible to both
        the metrics and the daemon.
        """

    def warm_region(self, base: int, nbytes: int, *,
                    write: bool = False) -> None:
        """Touch up to one LLC worth of a region through the first port."""
        if not self.ports or nbytes <= 0:
            return
        port = self.ports[0]
        port.begin_quantum()
        geometry_lines = port._llc.geometry.lines
        line = port._llc.geometry.line_size
        nlines = min(nbytes // line, geometry_lines)
        if nlines <= 0:
            return
        total_lines = max(1, nbytes // line)
        if total_lines > nlines:
            # Region exceeds the cache: warm a uniform random sample,
            # matching the steady-state resident set of a random pattern.
            addrs = base + self.rng.choice(total_lines, size=nlines,
                                           replace=False) * line
        else:
            addrs = base + np.arange(total_lines) * line
        port.access_batch(addrs, write=write)

    def begin_quantum(self, now: float) -> None:
        """Hook called once per quantum before any sub-step."""
        for port in self.ports:
            port.begin_quantum()

    def run(self, budget_cycles: float, now: float) -> None:
        """Execute one sub-step: ``budget_cycles`` per core."""
        for port in self.ports:
            self.run_core(port, budget_cycles, now)

    @abstractmethod
    def run_core(self, port: CorePort, budget_cycles: float,
                 now: float) -> None:
        """Consume up to ``budget_cycles`` on one core."""

    # -- helpers ---------------------------------------------------------
    def l2_hit_prob(self, working_set_bytes: int) -> float:
        """L2 hit probability for a uniform-random pattern over a set."""
        if working_set_bytes <= 0:
            return 1.0
        return min(1.0, self.l2_bytes / working_set_bytes)

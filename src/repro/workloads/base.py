"""Workload execution model: core ports, cycle accounting, latencies.

Workloads in this reproduction are *memory-behaviour models*: each one
issues a stream of LLC-level accesses (its post-L2 miss stream) into the
simulated cache through a :class:`CorePort`, paying per-access latencies
that in turn determine how many operations fit into a core's cycle
budget.  IPC, LLC reference/miss counts, throughput, and latency all
emerge from this loop — they are not scripted.

The latency constants approximate Skylake-SP: ~14 cycles L2 hit, ~44
cycles LLC hit, DRAM latency from the (utilization-aware) memory model.
``mlp`` expresses memory-level parallelism: independent misses overlap,
so the charged stall is ``dram_latency / mlp``; a dependent pointer
chase has ``mlp = 1``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..cache.cat import CatController
from ..cache.llc import SlicedLLC
from ..mem.dram import MemoryController
from ..perf.counters import CoreCounterBlock

#: Cycles for an access served by the (modelled) L2.
L2_HIT_CYCLES = 14.0

#: Cycles for an access served by the LLC.
LLC_HIT_CYCLES = 44.0


class CorePort:
    """One core's path into the memory hierarchy.

    Binds together the LLC (with the core's current CAT mask), the
    memory controller, and the core's counter block.  ``begin_quantum``
    caches the mask and the current DRAM latency so the per-access hot
    path stays cheap; controllers only reprogram masks between quanta,
    so this is exact.
    """

    __slots__ = ("core_id", "owner", "_llc", "_cat", "_mem", "_mba",
                 "block", "_mask", "_dram_cycles", "_line")

    def __init__(self, core_id: int, owner: int, llc: SlicedLLC,
                 cat: CatController, mem: MemoryController,
                 block: CoreCounterBlock, mba=None) -> None:
        self.core_id = core_id
        self.owner = owner
        self._llc = llc
        self._cat = cat
        self._mem = mem
        self._mba = mba
        self.block = block
        self._line = llc.geometry.line_size
        self._mask = cat.mask_of_core(core_id)
        self._dram_cycles = mem.spec.idle_latency_cycles

    def begin_quantum(self) -> None:
        """Refresh cached mask and DRAM latency at a quantum boundary."""
        self._mask = self._cat.mask_of_core(self.core_id)
        self._dram_cycles = self._mem.load_latency_cycles()
        if self._mba is not None:
            # MBA extension: a throttled class pays stretched DRAM time.
            cos = self._cat.cos_of(self.core_id)
            self._dram_cycles *= self._mba.delay_factor(cos)

    @property
    def mask(self) -> int:
        return self._mask

    def access(self, addr: int, *, write: bool = False,
               mlp: float = 1.0) -> float:
        """One LLC-level access; returns the charged latency in cycles.

        ``mlp`` models memory-level parallelism: independent or
        prefetched accesses (streaming a packet buffer, copying a value)
        overlap, so both the hit latency and the DRAM penalty are
        divided by it.  A dependent pointer chase passes ``mlp=1``.
        """
        out = self._llc.access(addr, self._mask, write=write,
                               owner=self.owner)
        block = self.block
        block.llc_references += 1
        if out.hit:
            return LLC_HIT_CYCLES / mlp
        block.llc_misses += 1
        line = self._line
        self._mem.add_read(line)
        if out.writeback:
            self._mem.add_write(line)
        return (LLC_HIT_CYCLES + self._dram_cycles) / mlp

    def read_line_for_device(self, addr: int) -> None:
        """Device-side read (Tx DMA): LLC if present, else DRAM; no fill."""
        out = self._llc.device_read(addr)
        if not out.hit:
            self._mem.add_read(self._line)

    def charge(self, instructions: float, cycles: float) -> None:
        """Credit retired instructions and consumed cycles to the core."""
        self.block.credit(instructions=int(instructions), cycles=int(cycles))


@dataclass
class WorkloadStats:
    """Cumulative application-level statistics for one workload."""

    ops: int = 0
    busy_cycles: float = 0.0
    latency_sum_cycles: float = 0.0
    #: Optional reservoir of per-op latencies for percentile reporting.
    latency_samples: "list[float]" = field(default_factory=list)

    def record_op(self, latency_cycles: float, *, sample: bool = False) -> None:
        self.ops += 1
        self.latency_sum_cycles += latency_cycles
        if sample:
            self.latency_samples.append(latency_cycles)

    @property
    def avg_latency_cycles(self) -> float:
        return self.latency_sum_cycles / self.ops if self.ops else 0.0

    def percentile_latency(self, pct: float) -> float:
        if not self.latency_samples:
            return 0.0
        return float(np.percentile(np.asarray(self.latency_samples), pct))


class Workload(ABC):
    """Base class: bound to one tenant's core ports, run each quantum.

    Subclasses implement :meth:`run_core`, consuming a per-core cycle
    budget.  ``l2_bytes`` sets the modelled private-cache capacity used
    for L2 hit-probability estimates.
    """

    #: Modelled per-core L2 capacity (Table I: 1 MB).
    l2_bytes: int = 1 << 20

    def __init__(self, name: str) -> None:
        self.name = name
        self.ports: "list[CorePort]" = []
        self.rng: "np.random.Generator" = np.random.default_rng(0)
        self.region_base = 0
        self.stats = WorkloadStats()
        #: Rate scale of the hosting platform; the engine sets it at
        #: bind time.  One simulated second carries ``freq * time_scale``
        #: cycles, so waits measured in simulated seconds convert to
        #: cycles through this factor.
        self.time_scale = 1.0

    def bind(self, ports: "list[CorePort]", region_base: int,
             rng: "np.random.Generator") -> None:
        """Attach to core ports and a private address region."""
        if not ports:
            raise ValueError(f"workload {self.name!r} needs >= 1 core port")
        self.ports = ports
        self.region_base = region_base
        self.rng = rng
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses after binding (precompute tables etc.)."""

    def prefill(self) -> None:
        """Warm the workload's resident data into the cache at t=0.

        The simulator runs rates at ``time_scale`` of real time, which
        stretches cache-fill transients by the same factor; real
        machines reach steady state in (real) seconds, so experiments
        start from a warm cache.  Called by the engine after the
        controllers' initial LLC allocation and *before* counter
        baselines are primed, so the warm-up burst is invisible to both
        the metrics and the daemon.
        """

    def warm_region(self, base: int, nbytes: int, *,
                    write: bool = False) -> None:
        """Touch up to one LLC worth of a region through the first port."""
        if not self.ports or nbytes <= 0:
            return
        port = self.ports[0]
        port.begin_quantum()
        geometry_lines = port._llc.geometry.lines
        line = port._llc.geometry.line_size
        nlines = min(nbytes // line, geometry_lines)
        if nlines <= 0:
            return
        total_lines = max(1, nbytes // line)
        if total_lines > nlines:
            # Region exceeds the cache: warm a uniform random sample,
            # matching the steady-state resident set of a random pattern.
            addrs = base + self.rng.choice(total_lines, size=nlines,
                                           replace=False) * line
        else:
            addrs = base + np.arange(total_lines) * line
        for addr in addrs.tolist():
            port.access(int(addr), write=write)

    def begin_quantum(self, now: float) -> None:
        """Hook called once per quantum before any sub-step."""
        for port in self.ports:
            port.begin_quantum()

    def run(self, budget_cycles: float, now: float) -> None:
        """Execute one sub-step: ``budget_cycles`` per core."""
        for port in self.ports:
            self.run_core(port, budget_cycles, now)

    @abstractmethod
    def run_core(self, port: CorePort, budget_cycles: float,
                 now: float) -> None:
        """Consume up to ``budget_cycles`` on one core."""

    # -- helpers ---------------------------------------------------------
    def l2_hit_prob(self, working_set_bytes: int) -> float:
        """L2 hit probability for a uniform-random pattern over a set."""
        if working_set_bytes <= 0:
            return 1.0
        return min(1.0, self.l2_bytes / working_set_bytes)

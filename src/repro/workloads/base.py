"""Workload execution model: core ports, cycle accounting, latencies.

Workloads in this reproduction are *memory-behaviour models*: each one
issues a stream of LLC-level accesses (its post-L2 miss stream) into the
simulated cache through a :class:`CorePort`, paying per-access latencies
that in turn determine how many operations fit into a core's cycle
budget.  IPC, LLC reference/miss counts, throughput, and latency all
emerge from this loop — they are not scripted.

The latency constants approximate Skylake-SP: ~14 cycles L2 hit, ~44
cycles LLC hit, DRAM latency from the (utilization-aware) memory model.
``mlp`` expresses memory-level parallelism: independent misses overlap,
so the charged stall is ``dram_latency / mlp``; a dependent pointer
chase has ``mlp = 1``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..cache.cat import CatController
from ..cache.llc import SlicedLLC
from ..mem.dram import MemoryController
from ..perf.counters import CoreCounterBlock

#: Cycles for an access served by the (modelled) L2.
L2_HIT_CYCLES = 14.0

#: Cycles for an access served by the LLC.
LLC_HIT_CYCLES = 44.0


class CorePort:
    """One core's path into the memory hierarchy.

    Binds together the LLC (with the core's current CAT mask), the
    memory controller, and the core's counter block.  ``begin_quantum``
    caches the mask and the current DRAM latency so the per-access hot
    path stays cheap; controllers only reprogram masks between quanta,
    so this is exact.
    """

    __slots__ = ("core_id", "owner", "_llc", "_cat", "_mem", "_mba",
                 "block", "_mask", "_dram_cycles", "_line")

    def __init__(self, core_id: int, owner: int, llc: SlicedLLC,
                 cat: CatController, mem: MemoryController,
                 block: CoreCounterBlock, mba=None) -> None:
        self.core_id = core_id
        self.owner = owner
        self._llc = llc
        self._cat = cat
        self._mem = mem
        self._mba = mba
        self.block = block
        self._line = llc.geometry.line_size
        self._mask = cat.mask_of_core(core_id)
        self._dram_cycles = mem.spec.idle_latency_cycles

    def begin_quantum(self) -> None:
        """Refresh cached mask and DRAM latency at a quantum boundary."""
        self._mask = self._cat.mask_of_core(self.core_id)
        self._dram_cycles = self._mem.load_latency_cycles()
        if self._mba is not None:
            # MBA extension: a throttled class pays stretched DRAM time.
            cos = self._cat.cos_of(self.core_id)
            self._dram_cycles *= self._mba.delay_factor(cos)

    @property
    def mask(self) -> int:
        return self._mask

    @property
    def dram_cycles(self) -> float:
        """Current per-miss DRAM penalty (refreshed by ``begin_quantum``).

        Batched callers use this to compute worst-case cycle bounds for
        budget-guarded chunking.
        """
        return self._dram_cycles

    def access(self, addr: int, *, write: bool = False,
               mlp: float = 1.0) -> float:
        """One LLC-level access; returns the charged latency in cycles.

        ``mlp`` models memory-level parallelism: independent or
        prefetched accesses (streaming a packet buffer, copying a value)
        overlap, so both the hit latency and the DRAM penalty are
        divided by it.  A dependent pointer chase passes ``mlp=1``.
        """
        out = self._llc.access(addr, self._mask, write=write,
                               owner=self.owner)
        block = self.block
        block.llc_references += 1
        if out.hit:
            return LLC_HIT_CYCLES / mlp
        block.llc_misses += 1
        line = self._line
        self._mem.add_read(line)
        if out.writeback:
            self._mem.add_write(line)
        return (LLC_HIT_CYCLES + self._dram_cycles) / mlp

    def access_batch(self, addrs, *, write: bool = False,
                     mlp: float = 1.0) -> "np.ndarray":
        """Issue an address vector in order; returns per-access cycles.

        Equivalent to calling :meth:`access` per address (same counter
        and memory-traffic accounting); the total charged cycles is the
        returned array's sum.  Works on either LLC backend — on the
        array backend the whole vector is one vectorized batch.
        """
        addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        n = addrs.shape[0]
        if n == 0:
            return np.zeros(0)
        out = self._llc.access_batch(addrs, self._mask, write=write,
                                     owner=self.owner)
        block = self.block
        block.llc_references += n
        misses = out.misses
        block.llc_misses += misses
        if misses:
            self._mem.add_read(self._line * misses)
        writebacks = out.writebacks
        if writebacks:
            self._mem.add_write(self._line * writebacks)
        return np.where(out.hit, LLC_HIT_CYCLES / mlp,
                        (LLC_HIT_CYCLES + self._dram_cycles) / mlp)

    def read_line_for_device(self, addr: int) -> None:
        """Device-side read (Tx DMA): LLC if present, else DRAM; no fill."""
        out = self._llc.device_read(addr)
        if not out.hit:
            self._mem.add_read(self._line)

    def run_plan(self, plan: "AccessPlan", npackets: int) -> "np.ndarray":
        """Execute a mixed core/device access plan as one LLC batch.

        Core accesses pay hit/miss latencies scaled by their segment's
        MLP and update this core's reference/miss counters; device
        (Tx DMA) reads never fill and charge no core cycles, only DRAM
        reads on miss.  Line order inside the plan — including the
        core/device interleaving — is exactly the order a scalar caller
        would have issued.  Returns per-packet charged cycles, indexed
        by the plan's packet slots (length ``npackets``).
        """
        flat = plan.materialize()
        if flat is None:
            return np.zeros(npackets)
        addrs, write, mlp_inv, device, pkt = flat
        # The way mask only governs fills and device lines never
        # allocate, so the core mask can be passed as a scalar for the
        # whole batch — bit-identical to a per-line masked vector.
        block = self.block
        if device is None:
            out = self._llc.access_batch(addrs, self._mask, write=write,
                                         owner=self.owner)
            hit = out.hit
            block.llc_references += addrs.shape[0]
            block.llc_misses += out.misses
        else:
            core = ~device
            out = self._llc.access_batch(addrs, self._mask, write=write,
                                         owner=self.owner, allocate=core)
            hit = out.hit
            block.llc_references += int(np.count_nonzero(core))
            block.llc_misses += int(np.count_nonzero(core & ~hit))
        miss_total = out.misses
        if miss_total:
            self._mem.add_read(self._line * miss_total)
        writebacks = out.writebacks
        if writebacks:
            self._mem.add_write(self._line * writebacks)
        lat = np.where(hit, LLC_HIT_CYCLES,
                       LLC_HIT_CYCLES + self._dram_cycles) * mlp_inv
        if device is not None:
            lat[device] = 0.0
        return np.bincount(pkt, weights=lat, minlength=npackets)

    def charge(self, instructions: float, cycles: float) -> None:
        """Credit retired instructions and consumed cycles to the core."""
        self.block.credit(instructions=int(instructions), cycles=int(cycles))


class AccessPlan:
    """Builder for a batched memory-access sequence.

    Callers append *segments* — runs of consecutive-stride lines sharing
    one (write, mlp, device) profile and attributed to one packet slot —
    in exactly the order a scalar implementation would have issued the
    accesses.  :meth:`CorePort.run_plan` materializes the segments into
    flat per-line arrays and executes them as a single LLC batch.
    """

    __slots__ = ("_base", "_count", "_stride", "_write", "_mlp_inv",
                 "_device", "_pkt")

    def __init__(self) -> None:
        self._base: "list[int]" = []
        self._count: "list[int]" = []
        self._stride: "list[int]" = []
        self._write: "list[bool]" = []
        self._mlp_inv: "list[float]" = []
        self._device: "list[bool]" = []
        self._pkt: "list[int]" = []

    def add(self, base: int, count: int, *, stride: int = 64,
            write: bool = False, mlp: float = 1.0, pkt: int = 0) -> None:
        """Append ``count`` core accesses starting at ``base``."""
        if count <= 0:
            return
        self._base.append(base)
        self._count.append(count)
        self._stride.append(stride)
        self._write.append(write)
        self._mlp_inv.append(1.0 / mlp)
        self._device.append(False)
        self._pkt.append(pkt)

    def add_device(self, base: int, count: int, *, stride: int = 64,
                   pkt: int = 0) -> None:
        """Append ``count`` device (Tx DMA) reads starting at ``base``."""
        if count <= 0:
            return
        self._base.append(base)
        self._count.append(count)
        self._stride.append(stride)
        self._write.append(False)
        self._mlp_inv.append(0.0)
        self._device.append(True)
        self._pkt.append(pkt)

    def materialize(self):
        """Flatten segments to per-line arrays (None if the plan is empty).

        Returns ``(addrs, write, mlp_inv, device, pkt)``, line order
        preserved: segment-major, ascending stride within a segment.
        """
        if not self._count:
            return None
        count = np.asarray(self._count, dtype=np.int64)
        total = int(count.sum())
        starts = np.concatenate(([0], np.cumsum(count)[:-1]))
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, count)
        addrs = np.repeat(np.asarray(self._base, dtype=np.int64), count) \
            + within * np.repeat(np.asarray(self._stride, dtype=np.int64),
                                 count)
        write = np.repeat(np.asarray(self._write, dtype=bool), count)
        mlp_inv = np.repeat(np.asarray(self._mlp_inv), count)
        device = (np.repeat(np.asarray(self._device, dtype=bool), count)
                  if any(self._device) else None)
        pkt = np.repeat(np.asarray(self._pkt, dtype=np.int64), count)
        return addrs, write, mlp_inv, device, pkt


def seq_accumulate(initial: float, values: "np.ndarray") -> float:
    """Left-to-right sum of ``values`` onto ``initial``.

    ``np.cumsum`` accumulates sequentially, so this reproduces a scalar
    ``acc += v`` loop bit-for-bit — which keeps the vectorized drains'
    cycle accounting exactly equal to the per-packet reference paths
    (``np.sum`` pairs terms and rounds differently).
    """
    tmp = np.empty(values.shape[0] + 1)
    tmp[0] = initial
    tmp[1:] = values
    return float(tmp.cumsum()[-1])


class VectorPlan:
    """Array-native builder for a batched memory-access sequence.

    The vectorized drain builds one plan per chunk from whole-chunk
    arrays: each :meth:`add_batch` call appends one *stage* — a segment
    per packet, all sharing a (write, mlp, device) profile and a stage
    ``rank``.  Materialization orders lines packet-major, then by rank,
    then insertion order — exactly the per-packet interleave the scalar
    loop (buffer lines, app stages in order, transmit) would issue, so
    :meth:`CorePort.run_plan` sees the same line stream as an
    :class:`AccessPlan` built packet by packet.

    Ranks must stay below :data:`VectorPlan.MAX_RANK` (the sort key packs
    ``pkt * MAX_RANK + rank`` into one int64 argsort).
    """

    MAX_RANK = 128

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        # (rank, bases, counts, stride, write, mlp_inv, device, pkts)
        self._parts: "list[tuple]" = []

    def add_batch(self, bases, counts, *, pkts, rank: int,
                  stride: int = 64, write: bool = False, mlp: float = 1.0,
                  device: bool = False) -> None:
        """Append one stage: per packet ``p`` in ``pkts``, ``counts[p]``
        lines starting at ``bases[p]``.  ``counts`` may be a scalar."""
        self._parts.append((rank, bases, counts, stride, write,
                            0.0 if device else 1.0 / mlp, device, pkts))

    def materialize(self):
        """Flatten stages to per-line arrays ordered (pkt, rank,
        insertion); same return contract as :meth:`AccessPlan.materialize`.
        """
        if not self._parts:
            return None
        addr_parts = []
        pkt_parts = []
        lens = []
        ranks = []
        writes = []
        mlps = []
        devs = []
        for rank, bases, counts, stride, write, mlp_inv, device, pkts \
                in self._parts:
            bases = np.asarray(bases, dtype=np.int64)
            if isinstance(counts, np.ndarray):
                total = int(counts.sum())
                if total == 0:
                    continue
                starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
                within = np.arange(total, dtype=np.int64) \
                    - np.repeat(starts, counts)
                addrs = np.repeat(bases, counts) + within * stride
                pkt = np.repeat(pkts, counts)
            elif counts == 1:
                total = bases.shape[0]
                if total == 0:
                    continue
                addrs = bases
                pkt = np.asarray(pkts, dtype=np.int64)
            else:
                m = bases.shape[0]
                total = m * counts
                if total == 0:
                    continue
                addrs = (bases[:, None]
                         + np.arange(counts, dtype=np.int64) * stride).ravel()
                pkt = np.repeat(pkts, counts)
            addr_parts.append(addrs)
            pkt_parts.append(pkt)
            lens.append(total)
            ranks.append(rank)
            writes.append(write)
            mlps.append(mlp_inv)
            devs.append(device)
        if not addr_parts:
            return None
        if len(addr_parts) == 1:
            # Single stage: already packet-major and rank-uniform.
            total = lens[0]
            return (addr_parts[0], np.full(total, writes[0], dtype=bool),
                    np.full(total, mlps[0]),
                    np.full(total, True, dtype=bool) if devs[0] else None,
                    pkt_parts[0])
        # Per-line stage metadata expands from one small per-stage array
        # per field (cheaper than a full-length fill per stage).
        lens = np.asarray(lens, dtype=np.int64)
        addrs = np.concatenate(addr_parts)
        pkt = np.concatenate(pkt_parts)
        rank = np.repeat(np.asarray(ranks, dtype=np.int64), lens)
        order = np.argsort(pkt * self.MAX_RANK + rank, kind="stable")
        return (addrs[order],
                np.repeat(np.asarray(writes, dtype=bool), lens)[order],
                np.repeat(np.asarray(mlps), lens)[order],
                np.repeat(np.asarray(devs, dtype=bool), lens)[order]
                if any(devs) else None,
                pkt[order])


@dataclass
class WorkloadStats:
    """Cumulative application-level statistics for one workload."""

    ops: int = 0
    busy_cycles: float = 0.0
    latency_sum_cycles: float = 0.0
    #: Optional reservoir of per-op latencies for percentile reporting.
    latency_samples: "list[float]" = field(default_factory=list)

    def record_op(self, latency_cycles: float, *, sample: bool = False) -> None:
        self.ops += 1
        self.latency_sum_cycles += latency_cycles
        if sample:
            self.latency_samples.append(latency_cycles)

    @property
    def avg_latency_cycles(self) -> float:
        return self.latency_sum_cycles / self.ops if self.ops else 0.0

    def percentile_latency(self, pct: float) -> float:
        if not self.latency_samples:
            return 0.0
        return float(np.percentile(np.asarray(self.latency_samples), pct))


class Workload(ABC):
    """Base class: bound to one tenant's core ports, run each quantum.

    Subclasses implement :meth:`run_core`, consuming a per-core cycle
    budget.  ``l2_bytes`` sets the modelled private-cache capacity used
    for L2 hit-probability estimates.
    """

    #: Modelled per-core L2 capacity (Table I: 1 MB).
    l2_bytes: int = 1 << 20

    #: Execution mode for the hot loop: ``"vector"`` (whole-chunk array
    #: plans, the default), ``"batch"`` (per-packet plan building executed
    #: as LLC batches), or ``"scalar"`` (the per-access reference loop).
    #: All three produce identical simulation results; the engine
    #: propagates its own mode here at run time.
    exec_mode: str = "vector"

    def __init__(self, name: str) -> None:
        self.name = name
        self.ports: "list[CorePort]" = []
        self.rng: "np.random.Generator" = np.random.default_rng(0)
        self.region_base = 0
        self.stats = WorkloadStats()
        #: Rate scale of the hosting platform; the engine sets it at
        #: bind time.  One simulated second carries ``freq * time_scale``
        #: cycles, so waits measured in simulated seconds convert to
        #: cycles through this factor.
        self.time_scale = 1.0

    def bind(self, ports: "list[CorePort]", region_base: int,
             rng: "np.random.Generator") -> None:
        """Attach to core ports and a private address region."""
        if not ports:
            raise ValueError(f"workload {self.name!r} needs >= 1 core port")
        self.ports = ports
        self.region_base = region_base
        self.rng = rng
        self.on_bind()

    def on_bind(self) -> None:
        """Hook for subclasses after binding (precompute tables etc.)."""

    def prefill(self) -> None:
        """Warm the workload's resident data into the cache at t=0.

        The simulator runs rates at ``time_scale`` of real time, which
        stretches cache-fill transients by the same factor; real
        machines reach steady state in (real) seconds, so experiments
        start from a warm cache.  Called by the engine after the
        controllers' initial LLC allocation and *before* counter
        baselines are primed, so the warm-up burst is invisible to both
        the metrics and the daemon.
        """

    def warm_region(self, base: int, nbytes: int, *,
                    write: bool = False) -> None:
        """Touch up to one LLC worth of a region through the first port."""
        if not self.ports or nbytes <= 0:
            return
        port = self.ports[0]
        port.begin_quantum()
        geometry_lines = port._llc.geometry.lines
        line = port._llc.geometry.line_size
        nlines = min(nbytes // line, geometry_lines)
        if nlines <= 0:
            return
        total_lines = max(1, nbytes // line)
        if total_lines > nlines:
            # Region exceeds the cache: warm a uniform random sample,
            # matching the steady-state resident set of a random pattern.
            addrs = base + self.rng.choice(total_lines, size=nlines,
                                           replace=False) * line
        else:
            addrs = base + np.arange(total_lines) * line
        port.access_batch(addrs, write=write)

    def begin_quantum(self, now: float) -> None:
        """Hook called once per quantum before any sub-step."""
        for port in self.ports:
            port.begin_quantum()

    def run(self, budget_cycles: float, now: float) -> None:
        """Execute one sub-step: ``budget_cycles`` per core."""
        for port in self.ports:
            self.run_core(port, budget_cycles, now)

    @abstractmethod
    def run_core(self, port: CorePort, budget_cycles: float,
                 now: float) -> None:
        """Consume up to ``budget_cycles`` on one core."""

    # -- helpers ---------------------------------------------------------
    def l2_hit_prob(self, working_set_bytes: int) -> float:
        """L2 hit probability for a uniform-random pattern over a set."""
        if working_set_bytes <= 0:
            return 1.0
        return min(1.0, self.l2_bytes / working_set_bytes)

"""X-Mem: the cloud memory-characterization microbenchmark (Gottscho et
al., ISPASS'16) used throughout the paper to emulate non-networking
tenants (Secs. III-B, VI-B, VI-C).

The paper always runs the *random-read* pattern over a configurable
working set (2-16 MB) "to emulate real applications' behavior", and
reports average access latency and throughput.  Each operation here is
one dependent load (``mlp = 1``) at a uniform-random line of the working
set; accesses that fall in the modelled L2 never reach the LLC.
"""

from __future__ import annotations

import numpy as np

from .base import CorePort, L2_HIT_CYCLES, LLC_HIT_CYCLES, Workload
from .streams import sequential_lines, uniform_lines

#: Loop overhead per access operation.
XMEM_INSTRUCTIONS_PER_OP = 8.0
XMEM_OVERHEAD_CYCLES = 4.0

_BATCH = 256


class XMem(Workload):
    """Random-read (default) or sequential-read memory prober."""

    def __init__(self, name: str, working_set_bytes: int, *,
                 pattern: str = "random_read",
                 core_freq_hz: float = 2.3e9) -> None:
        super().__init__(name)
        if working_set_bytes < 64:
            raise ValueError("working set must hold at least one line")
        if pattern not in ("random_read", "sequential_read"):
            raise ValueError(f"unknown X-Mem pattern {pattern!r}")
        self.working_set_bytes = working_set_bytes
        self.pattern = pattern
        self.core_freq_hz = core_freq_hz
        self._cursor = 0

    def prefill(self) -> None:
        self.warm_region(self.region_base, self.working_set_bytes)

    def set_working_set(self, working_set_bytes: int) -> None:
        """Phase change: resize the probed region (e.g. Fig. 10 at t=5s)."""
        if working_set_bytes < 64:
            raise ValueError("working set must hold at least one line")
        self.working_set_bytes = working_set_bytes

    def run_core(self, port: CorePort, budget_cycles: float,
                 now: float) -> None:
        used = 0.0
        ops = 0
        p_l2 = self.l2_hit_prob(self.working_set_bytes)
        stats = self.stats
        # Budget guard for vectorized segments: the cost of one op if it
        # went all the way to DRAM.
        worst = XMEM_OVERHEAD_CYCLES + LLC_HIT_CYCLES + port.dram_cycles
        random_read = self.pattern == "random_read"
        while used < budget_cycles:
            if random_read:
                addrs = uniform_lines(self.rng, self.region_base,
                                      self.working_set_bytes, _BATCH)
            else:
                addrs, self._cursor = sequential_lines(
                    self.region_base, self.working_set_bytes, self._cursor,
                    _BATCH)
            l2_hits = self.rng.random(_BATCH) < p_l2
            start = 0
            while start < _BATCH and used < budget_cycles:
                safe = int((budget_cycles - used) // worst)
                if safe < 1:
                    # Budget tail: one op at a time, so the final op
                    # count honours the exact budget crossing.
                    in_l2 = bool(l2_hits[start])
                    latency = L2_HIT_CYCLES if in_l2 \
                        else float(port.access_batch(addrs[start:start + 1])[0])
                    used += XMEM_OVERHEAD_CYCLES + latency
                    ops += 1
                    stats.record_op(latency)
                    start += 1
                    continue
                stop = min(_BATCH, start + safe)
                seg_l2 = l2_hits[start:stop]
                llc = ~seg_l2
                if llc.all():
                    # Working sets far beyond L2 (the paper's norm):
                    # every op reaches the LLC, no masking needed.
                    latencies = np.asarray(
                        port.access_batch(addrs[start:stop]), dtype=float)
                else:
                    latencies = np.full(stop - start, L2_HIT_CYCLES)
                    if llc.any():
                        latencies[llc] = port.access_batch(
                            addrs[start:stop][llc])
                seg_sum = float(latencies.sum())
                count = stop - start
                used += count * XMEM_OVERHEAD_CYCLES + seg_sum
                ops += count
                stats.ops += count
                stats.latency_sum_cycles += seg_sum
                start = stop
        port.charge(ops * XMEM_INSTRUCTIONS_PER_OP, used)

    # -- reporting ---------------------------------------------------------
    def avg_latency_ns(self) -> float:
        if self.stats.ops == 0:
            return 0.0
        return self.stats.avg_latency_cycles / self.core_freq_hz * 1e9

    def throughput_ops(self, elapsed_seconds: float,
                       time_scale: float = 1.0) -> float:
        """Achieved ops/second, unscaled back to real time."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.stats.ops / elapsed_seconds / time_scale

"""SPEC CPU2006 memory-behaviour models (paper Sec. VI-C).

The paper runs the memory-sensitive subset of SPEC2006 (per Jaleel's
characterization) with the ``ref`` input.  We model each benchmark as a
stationary access-stream profile: working-set size, read fraction,
pattern (random pointer-chasy vs. streaming), memory-level parallelism,
and instructions per LLC-level access.  The profiles below reproduce the
*relative* cache sensitivities the paper depends on: mcf/omnetpp/
xalancbmk are called out as the "heavy cache consumers" whose placement
against DDIO ways matters most (Fig. 14 discussion).

Execution-time degradation (Fig. 12) is measured as the inverse of the
achieved instruction rate versus a solo run, which equals normalized
execution time for a fixed-work benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import CorePort, L2_HIT_CYCLES, Workload
from .streams import sequential_lines, uniform_lines

_BATCH = 256


@dataclass(frozen=True)
class SpecProfile:
    """Stationary memory profile of one benchmark."""

    name: str
    working_set_bytes: int
    read_fraction: float = 0.85
    pattern: str = "random"        # "random" | "stream" | "mixed"
    mlp: float = 1.5
    instructions_per_access: float = 30.0
    base_cpi: float = 0.7

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.pattern not in ("random", "stream", "mixed"):
            raise ValueError(f"unknown pattern {self.pattern!r}")


def _mb(n: float) -> int:
    return int(n * (1 << 20))


#: Memory-sensitive SPEC2006 subset, parameters following the working-set
#: and intensity characterization in Jaleel (2010).  The paper highlights
#: mcf, omnetpp and xalancbmk as the heaviest cache consumers.
SPEC_PROFILES = {
    # mcf/omnetpp/xalancbmk sustain tens of millions of LLC misses per
    # second on real hardware (MPKI in the tens); their effective MLP is
    # well above a pure dependent chain, which is what makes them the
    # paper's "heavy cache consumers".
    "mcf": SpecProfile("mcf", _mb(64), 0.9, "random", 3.0, 10.0, 0.9),
    "omnetpp": SpecProfile("omnetpp", _mb(40), 0.85, "random", 2.2, 16.0, 0.8),
    "xalancbmk": SpecProfile("xalancbmk", _mb(30), 0.9, "random", 2.5, 20.0, 0.8),
    "soplex": SpecProfile("soplex", _mb(50), 0.8, "mixed", 2.2, 28.0, 0.7),
    "milc": SpecProfile("milc", _mb(64), 0.75, "stream", 4.0, 35.0, 0.7),
    "libquantum": SpecProfile("libquantum", _mb(32), 0.8, "stream", 6.0, 40.0, 0.6),
    "sphinx3": SpecProfile("sphinx3", _mb(20), 0.9, "mixed", 2.0, 45.0, 0.7),
    "lbm": SpecProfile("lbm", _mb(64), 0.55, "stream", 4.5, 32.0, 0.7),
    "gcc": SpecProfile("gcc", _mb(8), 0.8, "mixed", 2.0, 60.0, 0.8),
    "bzip2": SpecProfile("bzip2", _mb(6), 0.7, "mixed", 2.5, 80.0, 0.8),
}

#: The "heavy cache consumers" the paper names explicitly.
CACHE_HEAVY = ("mcf", "omnetpp", "xalancbmk")


class SpecWorkload(Workload):
    """Runs one SPEC profile; performance = achieved instruction rate."""

    def __init__(self, profile: SpecProfile, *,
                 core_freq_hz: float = 2.3e9) -> None:
        super().__init__(f"spec.{profile.name}")
        self.profile = profile
        self.core_freq_hz = core_freq_hz
        self.instructions_retired = 0.0
        self._cursor = 0

    def prefill(self) -> None:
        self.warm_region(self.region_base, self.profile.working_set_bytes)

    def _addresses(self, count: int):
        prof = self.profile
        if prof.pattern == "random":
            return uniform_lines(self.rng, self.region_base,
                                 prof.working_set_bytes, count)
        if prof.pattern == "stream":
            addrs, self._cursor = sequential_lines(
                self.region_base, prof.working_set_bytes, self._cursor, count)
            return addrs
        # mixed: half random, half streaming
        half = count // 2
        rand = uniform_lines(self.rng, self.region_base,
                             prof.working_set_bytes, count - half)
        seq, self._cursor = sequential_lines(
            self.region_base, prof.working_set_bytes, self._cursor, half)
        import numpy as np
        return np.concatenate([rand, seq])

    def run_core(self, port: CorePort, budget_cycles: float,
                 now: float) -> None:
        prof = self.profile
        used = 0.0
        accesses = 0
        # Streaming patterns have no L2 reuse; random patterns keep the
        # hot fraction in L2.
        p_l2 = (0.0 if prof.pattern == "stream"
                else self.l2_hit_prob(prof.working_set_bytes))
        compute = prof.instructions_per_access * prof.base_cpi
        while used < budget_cycles:
            addrs = self._addresses(_BATCH)
            l2_hits = self.rng.random(len(addrs)) < p_l2
            writes = self.rng.random(len(addrs)) >= prof.read_fraction
            for addr, in_l2, is_write in zip(addrs.tolist(), l2_hits.tolist(),
                                             writes.tolist()):
                if in_l2:
                    latency = L2_HIT_CYCLES
                else:
                    latency = port.access(int(addr), write=is_write,
                                          mlp=prof.mlp)
                used += compute + latency
                accesses += 1
                if used >= budget_cycles:
                    break
        instructions = accesses * prof.instructions_per_access
        self.instructions_retired += instructions
        port.charge(instructions, used)

    def instruction_rate(self, elapsed_seconds: float,
                         time_scale: float = 1.0) -> float:
        """Instructions/second (real-time equivalent)."""
        if elapsed_seconds <= 0:
            return 0.0
        return self.instructions_retired / elapsed_seconds / time_scale

"""RocksDB as configured in the paper: a pure-memtable key-value store.

Sec. VI-C: "To avoid any storage I/O operations, we only load 10K
records (1KB per record) so that all records are in RocksDB's memtable."
The memtable is a skiplist; a get/put walks ~log2(n) tower nodes
(dependent pointer chase) and then touches the 1 KB value (16 lines).
The whole structure is ~10 MB + node overhead — a classic LLC-sensitive
tenant, which is why inbound DDIO traffic evicting it hurts (Fig. 13).

Latency is reported per YCSB op type so the paper's *normalized weighted
average latency* can be computed (each type normalized to its solo-run
latency, then weighted by the mix).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import (CorePort, LLC_HIT_CYCLES, VectorPlan, Workload,
                   seq_accumulate)
from .streams import uniform_lines
from .ycsb import OpType, SCAN_LENGTH, YcsbMix, YcsbOpStream

#: Paper's load: 10K records of 1KB.
DEFAULT_RECORDS = 10_000
DEFAULT_VALUE_BYTES = 1024

#: Skiplist node size (key + tower pointers), one line.
NODE_BYTES = 64

#: Instruction cost per op (key compare loop, memtable bookkeeping).
ROCKSDB_INSTRUCTIONS_PER_OP = 900.0
ROCKSDB_OVERHEAD_CYCLES = 350.0

_BATCH = 64


@dataclass
class OpLatency:
    """Latency accumulator for one YCSB op type."""

    count: int = 0
    total_cycles: float = 0.0

    @property
    def avg(self) -> float:
        return self.total_cycles / self.count if self.count else 0.0


class RocksDb(Workload):
    """Memtable-only RocksDB driven by a YCSB op stream on its own core."""

    def __init__(self, name: str, mix: YcsbMix, *,
                 n_records: int = DEFAULT_RECORDS,
                 value_bytes: int = DEFAULT_VALUE_BYTES,
                 core_freq_hz: float = 2.3e9) -> None:
        super().__init__(name)
        self.mix = mix
        self.n_records = n_records
        self.value_bytes = value_bytes
        self.core_freq_hz = core_freq_hz
        self.skiplist_depth = max(1, int(math.log2(max(2, n_records))))
        self.per_op: "dict[OpType, OpLatency]" = {
            op: OpLatency() for op in OpType}
        self._stream: "YcsbOpStream | None" = None

    def on_bind(self) -> None:
        self._stream = YcsbOpStream(self.mix, self.n_records, self.rng)
        # Region layout: skiplist nodes first, then values.
        self._nodes_bytes = 2 * self.n_records * NODE_BYTES
        self._values_base = self.region_base + self._nodes_bytes

    def prefill(self) -> None:
        self.warm_region(self.region_base, self._nodes_bytes)
        self.warm_region(self._values_base,
                         self.n_records * self.value_bytes)

    def _value_addr(self, key: int) -> int:
        return self._values_base + (key % self.n_records) * self.value_bytes

    #: Streaming MLP of a contiguous 1 KB value copy.
    VALUE_MLP = 4.0

    def _touch_value(self, port: CorePort, key: int, *, write: bool) -> float:
        cycles = 0.0
        addr = self._value_addr(key)
        for _ in range(-(-self.value_bytes // 64)):
            cycles += port.access(addr, write=write, mlp=self.VALUE_MLP)
            addr += 64
        return cycles

    def _one_op(self, port: CorePort, op: OpType, key: int,
                walk_addrs: "np.ndarray") -> float:
        """One op against pre-drawn skiplist addresses.  Memory cycles
        accumulate from zero with the fixed overhead added last — the
        same float grouping the vectorized plan execution produces."""
        cycles = 0.0
        for addr in walk_addrs.tolist():
            cycles += port.access(int(addr))
        if op in (OpType.READ, OpType.SCAN):
            reads = SCAN_LENGTH if op is OpType.SCAN else 1
            for i in range(reads):
                cycles += self._touch_value(port, key + i, write=False)
        elif op in (OpType.UPDATE, OpType.INSERT):
            cycles += self._touch_value(port, key, write=True)
        else:  # read-modify-write
            cycles += self._touch_value(port, key, write=False)
            cycles += self._touch_value(port, key, write=True)
        return cycles + ROCKSDB_OVERHEAD_CYCLES

    #: Value passes per op type: (read passes, write passes).
    _OP_PASSES = {OpType.READ: (1, 0), OpType.SCAN: (SCAN_LENGTH, 0),
                  OpType.UPDATE: (0, 1), OpType.INSERT: (0, 1),
                  OpType.RMW: (1, 1)}

    def run_core(self, port: CorePort, budget_cycles: float,
                 now: float) -> None:
        if self.exec_mode == "vector":
            self._run_core_vector(port, budget_cycles, now)
            return
        used = 0.0
        ops = 0
        stream = self._stream
        op_types = stream.ops
        depth = self.skiplist_depth
        while used < budget_cycles:
            # Ops and skiplist walks are pre-drawn per batch in every
            # exec mode, so the RNG stream is mode-independent.
            op_idx, keys = stream.draw_arrays(_BATCH)
            walks = uniform_lines(self.rng, self.region_base,
                                  self._nodes_bytes, _BATCH * depth)
            for i in range(_BATCH):
                op = op_types[int(op_idx[i])]
                latency = self._one_op(
                    port, op, int(keys[i]),
                    walks[i * depth:(i + 1) * depth])
                used += latency
                ops += 1
                acc = self.per_op[op]
                acc.count += 1
                acc.total_cycles += latency
                self.stats.record_op(latency)
                if used >= budget_cycles:
                    break
        port.charge(ops * ROCKSDB_INSTRUCTIONS_PER_OP, used)

    def _run_core_vector(self, port: CorePort, budget_cycles: float,
                         now: float) -> None:
        """Vectorized twin of the scalar loop: identical draws, access
        order, and float accumulation, with budget-guarded chunk
        admission (first op unconditional; a worst-case cumulative bound
        decides the rest, so any op executed here has actual
        ``used-before < budget`` exactly like the scalar check)."""
        used = 0.0
        ops = 0
        stream = self._stream
        op_types = stream.ops
        depth = self.skiplist_depth
        value_lines = -(-self.value_bytes // 64)
        miss = LLC_HIT_CYCLES + port.dram_cycles
        passes = np.array([self._OP_PASSES[op] for op in op_types],
                          dtype=np.int64)
        stats = self.stats
        while used < budget_cycles:
            op_idx, keys = stream.draw_arrays(_BATCH)
            walks = uniform_lines(self.rng, self.region_base,
                                  self._nodes_bytes, _BATCH * depth)
            reads = passes[op_idx, 0]
            writes = passes[op_idx, 1]
            # +1.0 keeps the bound a true upper bound despite the
            # different rounding of the product form.
            worst = (ROCKSDB_OVERHEAD_CYCLES + depth * miss
                     + (reads + writes)
                     * (value_lines * miss / self.VALUE_MLP) + 1.0)
            start = 0
            while start < _BATCH and used < budget_cycles:
                remaining = _BATCH - start
                cum = np.empty(remaining + 1)
                cum[0] = used
                cum[1:] = worst[start:]
                np.cumsum(cum, out=cum)
                if remaining > 1:
                    k = 1 + int(np.searchsorted(cum[2:], budget_cycles,
                                                side="left"))
                else:
                    k = 1
                sl = slice(start, start + k)
                pkts = np.arange(k, dtype=np.int64)
                plan = VectorPlan()
                plan.add_batch(walks[start * depth:(start + k) * depth], 1,
                               pkts=np.repeat(pkts, depth), rank=0)
                chunk_keys = keys[sl]
                nrec = self.n_records
                read_counts = reads[sl]
                total_reads = int(read_counts.sum())
                if total_reads:
                    starts = np.cumsum(read_counts) - read_counts
                    within = np.arange(total_reads, dtype=np.int64) \
                        - np.repeat(starts, read_counts)
                    scan_keys = np.repeat(chunk_keys, read_counts) + within
                    plan.add_batch(self._values_base
                                   + (scan_keys % nrec) * self.value_bytes,
                                   value_lines,
                                   pkts=np.repeat(pkts, read_counts),
                                   rank=1, mlp=self.VALUE_MLP)
                writers = np.nonzero(writes[sl])[0]
                if writers.shape[0]:
                    plan.add_batch(self._values_base
                                   + (chunk_keys[writers] % nrec)
                                   * self.value_bytes,
                                   value_lines, pkts=writers, rank=2,
                                   write=True, mlp=self.VALUE_MLP)
                service = port.run_plan(plan, k) + ROCKSDB_OVERHEAD_CYCLES
                used = seq_accumulate(used, service)
                ops += k
                chunk_ops = op_idx[sl]
                for idx, op in enumerate(op_types):
                    mask = chunk_ops == idx
                    count = int(np.count_nonzero(mask))
                    if count:
                        acc = self.per_op[op]
                        acc.count += count
                        acc.total_cycles = seq_accumulate(
                            acc.total_cycles, service[mask])
                stats.ops += k
                stats.latency_sum_cycles = seq_accumulate(
                    stats.latency_sum_cycles, service)
                start += k
        port.charge(ops * ROCKSDB_INSTRUCTIONS_PER_OP, used)

    # -- reporting ---------------------------------------------------------
    def weighted_latency_vs(self, solo: "RocksDb") -> float:
        """Paper Fig. 13 metric: per-op-type latency normalized to a solo
        run, weighted by the mix proportions."""
        weighted = 0.0
        for op, share in self.mix.proportions.items():
            mine = self.per_op[op].avg
            theirs = solo.per_op[op].avg
            if theirs > 0:
                weighted += share * (mine / theirs)
            else:
                weighted += share
        return weighted

    def throughput_ops(self, elapsed_seconds: float,
                       time_scale: float = 1.0) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        return self.stats.ops / elapsed_seconds / time_scale

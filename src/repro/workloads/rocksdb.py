"""RocksDB as configured in the paper: a pure-memtable key-value store.

Sec. VI-C: "To avoid any storage I/O operations, we only load 10K
records (1KB per record) so that all records are in RocksDB's memtable."
The memtable is a skiplist; a get/put walks ~log2(n) tower nodes
(dependent pointer chase) and then touches the 1 KB value (16 lines).
The whole structure is ~10 MB + node overhead — a classic LLC-sensitive
tenant, which is why inbound DDIO traffic evicting it hurts (Fig. 13).

Latency is reported per YCSB op type so the paper's *normalized weighted
average latency* can be computed (each type normalized to its solo-run
latency, then weighted by the mix).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .base import CorePort, Workload
from .streams import uniform_lines
from .ycsb import OpType, SCAN_LENGTH, YcsbMix, YcsbOpStream

#: Paper's load: 10K records of 1KB.
DEFAULT_RECORDS = 10_000
DEFAULT_VALUE_BYTES = 1024

#: Skiplist node size (key + tower pointers), one line.
NODE_BYTES = 64

#: Instruction cost per op (key compare loop, memtable bookkeeping).
ROCKSDB_INSTRUCTIONS_PER_OP = 900.0
ROCKSDB_OVERHEAD_CYCLES = 350.0

_BATCH = 64


@dataclass
class OpLatency:
    """Latency accumulator for one YCSB op type."""

    count: int = 0
    total_cycles: float = 0.0

    @property
    def avg(self) -> float:
        return self.total_cycles / self.count if self.count else 0.0


class RocksDb(Workload):
    """Memtable-only RocksDB driven by a YCSB op stream on its own core."""

    def __init__(self, name: str, mix: YcsbMix, *,
                 n_records: int = DEFAULT_RECORDS,
                 value_bytes: int = DEFAULT_VALUE_BYTES,
                 core_freq_hz: float = 2.3e9) -> None:
        super().__init__(name)
        self.mix = mix
        self.n_records = n_records
        self.value_bytes = value_bytes
        self.core_freq_hz = core_freq_hz
        self.skiplist_depth = max(1, int(math.log2(max(2, n_records))))
        self.per_op: "dict[OpType, OpLatency]" = {
            op: OpLatency() for op in OpType}
        self._stream: "YcsbOpStream | None" = None

    def on_bind(self) -> None:
        self._stream = YcsbOpStream(self.mix, self.n_records, self.rng)
        # Region layout: skiplist nodes first, then values.
        self._nodes_bytes = 2 * self.n_records * NODE_BYTES
        self._values_base = self.region_base + self._nodes_bytes

    def prefill(self) -> None:
        self.warm_region(self.region_base, self._nodes_bytes)
        self.warm_region(self._values_base,
                         self.n_records * self.value_bytes)

    def _value_addr(self, key: int) -> int:
        return self._values_base + (key % self.n_records) * self.value_bytes

    def _walk_skiplist(self, port: CorePort) -> float:
        """Dependent pointer chase down the skiplist towers."""
        cycles = 0.0
        addrs = uniform_lines(self.rng, self.region_base, self._nodes_bytes,
                              self.skiplist_depth)
        for addr in addrs.tolist():
            cycles += port.access(int(addr))
        return cycles

    #: Streaming MLP of a contiguous 1 KB value copy.
    VALUE_MLP = 4.0

    def _touch_value(self, port: CorePort, key: int, *, write: bool) -> float:
        cycles = 0.0
        addr = self._value_addr(key)
        for _ in range(-(-self.value_bytes // 64)):
            cycles += port.access(addr, write=write, mlp=self.VALUE_MLP)
            addr += 64
        return cycles

    def _one_op(self, port: CorePort, op: OpType, key: int) -> float:
        cycles = ROCKSDB_OVERHEAD_CYCLES + self._walk_skiplist(port)
        if op in (OpType.READ, OpType.SCAN):
            reads = SCAN_LENGTH if op is OpType.SCAN else 1
            for i in range(reads):
                cycles += self._touch_value(port, key + i, write=False)
        elif op in (OpType.UPDATE, OpType.INSERT):
            cycles += self._touch_value(port, key, write=True)
        else:  # read-modify-write
            cycles += self._touch_value(port, key, write=False)
            cycles += self._touch_value(port, key, write=True)
        return cycles

    def run_core(self, port: CorePort, budget_cycles: float,
                 now: float) -> None:
        used = 0.0
        ops = 0
        while used < budget_cycles:
            for op, key in self._stream.draw(_BATCH):
                latency = self._one_op(port, op, key)
                used += latency
                ops += 1
                acc = self.per_op[op]
                acc.count += 1
                acc.total_cycles += latency
                self.stats.record_op(latency)
                if used >= budget_cycles:
                    break
        port.charge(ops * ROCKSDB_INSTRUCTIONS_PER_OP, used)

    # -- reporting ---------------------------------------------------------
    def weighted_latency_vs(self, solo: "RocksDb") -> float:
        """Paper Fig. 13 metric: per-op-type latency normalized to a solo
        run, weighted by the mix proportions."""
        weighted = 0.0
        for op, share in self.mix.proportions.items():
            mine = self.per_op[op].avg
            theirs = solo.per_op[op].avg
            if theirs > 0:
                weighted += share * (mine / theirs)
            else:
                weighted += share
        return weighted

    def throughput_ops(self, elapsed_seconds: float,
                       time_scale: float = 1.0) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        return self.stats.ops / elapsed_seconds / time_scale

"""DPDK *l3fwd*: routing against a flow table (paper Sec. III-A).

The paper's Fig. 3 experiment runs l3fwd on one core with a 1M-flow
table "to emulate real traffic": each packet's header is hashed and
looked up; a 1M-entry exact-match table at 64 B/entry is a 64 MB
structure, far larger than the LLC, so lookups are miss-heavy and the
core is the bottleneck for small packets — which is exactly what makes
shallow Rx rings overflow under small-packet traffic.
"""

from __future__ import annotations

import numpy as np

from ..pci.ring import DescRing, PacketRecord
from .base import AccessPlan, CorePort, VectorPlan
from .netbase import RingConsumer

#: Header parse + hash + route update per packet.
L3FWD_INSTRUCTIONS = 220.0
L3FWD_CYCLES = 90.0

#: Bytes per exact-match flow-table entry (one cacheline).
FLOW_ENTRY_BYTES = 64


class L3Fwd(RingConsumer):
    """Flow-table forwarder with a configurable flow population."""

    def __init__(self, name: str, rings: "list[DescRing]", *,
                 n_flows: int = 1_000_000, core_freq_hz: float = 2.3e9,
                 stall_period: float = 0.0,
                 stall_durations: "tuple[float, ...]" = (0.005, 0.02, 0.08)) -> None:
        super().__init__(name, rings, core_freq_hz=core_freq_hz,
                         stall_period=stall_period,
                         stall_durations=stall_durations)
        if n_flows < 1:
            raise ValueError("n_flows must be >= 1")
        self.n_flows = n_flows

    @property
    def table_bytes(self) -> int:
        return self.n_flows * FLOW_ENTRY_BYTES

    def prefill(self) -> None:
        # Warm the popular head of the flow table (Zipf puts the mass at
        # the low flow ids, which sit at the low table addresses).
        self.warm_region(self.region_base,
                         min(self.table_bytes, 8 << 20))

    def _entry_addr(self, flow_id: int) -> int:
        return self.region_base + (flow_id % self.n_flows) * FLOW_ENTRY_BYTES

    batchable = True

    def packet_cost(self, port: CorePort, record: PacketRecord,
                    now: float) -> "tuple[float, float]":
        lookup = port.access(self._entry_addr(record.flow_id))
        return L3FWD_INSTRUCTIONS, L3FWD_CYCLES + lookup

    def plan_packet(self, plan: AccessPlan, port: CorePort,
                    record: PacketRecord, ring_idx: int, pkt: int,
                    now: float) -> "tuple[float, float]":
        plan.add(self._entry_addr(record.flow_id), 1, pkt=pkt)
        return L3FWD_INSTRUCTIONS, L3FWD_CYCLES

    def worst_cost_cycles(self, record: PacketRecord,
                          miss_cycles: float) -> float:
        return L3FWD_CYCLES + miss_cycles

    supports_vector = True

    def plan_chunk(self, plan: VectorPlan, port: CorePort, pkts, sizes,
                   flows, addrs, arrivals, rings, now):
        k = pkts.shape[0]
        entries = self.region_base + (flows % self.n_flows) * FLOW_ENTRY_BYTES
        plan.add_batch(entries, 1, pkts=pkts, rank=1)
        return L3FWD_INSTRUCTIONS * k, np.full(k, L3FWD_CYCLES)

    def worst_cost_vec(self, sizes, nlines, miss_cycles):
        return L3FWD_CYCLES + miss_cycles

"""DPDK *testpmd*: the minimal forwarding app used in the paper's
microbenchmarks ("a simple program that bounces back the Rx traffic",
Sec. VI-B).

Per packet it only touches the buffer (handled by the base class) plus a
small fixed descriptor-handling cost, then bounces the packet out.
"""

from __future__ import annotations

import numpy as np

from ..pci.ring import PacketRecord
from .base import AccessPlan, CorePort, VectorPlan
from .netbase import RingConsumer

#: Fixed per-packet descriptor/mbuf handling cost.
TESTPMD_INSTRUCTIONS = 120.0
TESTPMD_CYCLES = 60.0


class TestPmd(RingConsumer):
    """Bounce-back forwarder: Rx, touch buffer, Tx."""

    #: Not a pytest class despite the DPDK-given name.
    __test__ = False

    batchable = True

    def packet_cost(self, port: CorePort, record: PacketRecord,
                    now: float) -> "tuple[float, float]":
        return TESTPMD_INSTRUCTIONS, TESTPMD_CYCLES

    def plan_packet(self, plan: AccessPlan, port: CorePort,
                    record: PacketRecord, ring_idx: int, pkt: int,
                    now: float) -> "tuple[float, float]":
        return TESTPMD_INSTRUCTIONS, TESTPMD_CYCLES

    def worst_cost_cycles(self, record: PacketRecord,
                          miss_cycles: float) -> float:
        return TESTPMD_CYCLES

    supports_vector = True

    def plan_chunk(self, plan: VectorPlan, port: CorePort, pkts, sizes,
                   flows, addrs, arrivals, rings, now):
        k = pkts.shape[0]
        return TESTPMD_INSTRUCTIONS * k, np.full(k, TESTPMD_CYCLES)

    def worst_cost_vec(self, sizes, nlines, miss_cycles):
        return TESTPMD_CYCLES

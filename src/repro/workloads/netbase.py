"""Shared machinery for packet-polling (DPDK-style) workloads.

A :class:`RingConsumer` busy-polls one or more descriptor rings; each
packet costs the lines of its buffer (read through the consumer's CAT
mask — this is where Leaky DMA bites: if the DDIO-written buffer was
evicted, these reads go to DRAM) plus an application-specific cost
implemented by the subclass.  Transmit is modelled as a device read of
the buffer lines (DDIO reads never allocate, Sec. II-B).

Per-packet latency samples combine queueing delay (time the packet sat
in the ring, from its arrival stamp) with the measured service cycles,
so tail latencies reflect backlog, not just cache misses.
"""

from __future__ import annotations

import numpy as np

from ..net.packet import lines_per_packet
from ..pci.ring import DescRing, PacketRecord
from .base import (AccessPlan, CorePort, ENGINE_STATS, LLC_HIT_CYCLES,
                   PKT_IOTA, VectorPlan, Workload, seq_accumulate)

#: Cycles burned per empty poll of a ring (tight DPDK rx_burst loop).
EMPTY_POLL_CYCLES = 40.0

#: Instructions retired per empty poll (the spin loop is instruction-dense).
EMPTY_POLL_INSTR = 60.0

#: Maximum empty polls simulated per sub-step before the consumer is
#: considered idle for the rest of the budget (keeps the loop cheap while
#: still charging spin cycles/instructions).
MAX_EMPTY_POLLS = 4

#: Memory-level parallelism of streaming a packet buffer: sequential
#: lines are prefetched and overlap, so the per-line charge is the
#: latency divided by this factor (a ~1.5 KB copy costs tens of cycles
#: when LLC-resident, hundreds when leaked to DRAM).
BUFFER_MLP = 8.0

#: Maximum packets per batched drain chunk (bounds plan array sizes).
CHUNK_PACKETS = 256

#: Shared 0..CHUNK_PACKETS-1 ramp; chunks slice read-only views of it.
#: A view of the canonical ``PKT_IOTA`` so VectorPlan recognizes chunk
#: packet ids structurally (enabling the stage-template fast path).
_PKT_ARANGE = PKT_IOTA[:CHUNK_PACKETS]

#: Speculative run-ahead switch for the vector drain.  Module-level so
#: benchmarks/tests can flip it to measure the worst-case-admission
#: reference; results are bit-identical either way (speculation only
#: changes how many packets execute per NumPy batch).
SPECULATION = True

#: Fraction of the EMA-predicted budget fit admitted per speculative
#: chunk.  Slightly under 1 so a well-predicted chunk *commits* and the
#: drain converges on the boundary with a couple of shrinking chunks;
#: rollback then only pays for genuine prediction error (cost spikes,
#: e.g. a leaked buffer turning buffer reads into DRAM misses).  Sweeping
#: 0.7–1.25 on the Fig. 8 workload: ≥1 rolls back ~10–50% of chunks and
#: re-executes up to ~60% of packets; 0.95 commits >99% of chunks at the
#: same wall time with the largest mean chunk of the no-waste settings.
SPEC_HEADROOM = 0.95

#: Speculative chunk size tried before any cost observation exists.
SPEC_BOOTSTRAP = 32

#: EMA smoothing factor for the observed mean per-packet service cost.
SPEC_ALPHA = 0.25


class RingConsumer(Workload):
    """Base for workloads that drain Rx rings under a cycle budget.

    ``stall_period``/``stall_durations`` model consumer scheduling
    jitter: every ``stall_period`` simulated seconds the consumer stops
    polling for the next duration in the cycle.  Because the simulator
    scales *rates* but not ring sizes, jitter durations are scaled UP by
    the same factor so the backlog in packets (rate x stall) matches the
    real machine — this is what makes shallow Rx rings overflow near
    saturation (paper Sec. III-A / Fig. 3).  Defaults to no jitter.
    """

    def __init__(self, name: str, rings: "list[DescRing]", *,
                 core_freq_hz: float = 2.3e9,
                 stall_period: float = 0.0,
                 stall_durations: "tuple[float, ...]" = (0.005, 0.02, 0.08)) -> None:
        super().__init__(name)
        if not rings:
            raise ValueError(f"{name}: need at least one ring to poll")
        self.rings = rings
        self.core_freq_hz = core_freq_hz
        self.stall_period = stall_period
        self.stall_durations = stall_durations
        self.packets_processed = 0
        self.tx_bytes = 0
        self._ring_cursor = 0
        self._next_stall = stall_period
        self._stalled_until = -1.0
        self._stall_index = 0
        #: 1-in-N latency sampling to bound memory.
        self.latency_sample_stride = 7
        # Vector-drain scratch: a reusable plan and the speculation
        # heuristic's running mean of per-packet service cycles (pure
        # chunk-sizing state — it never influences simulation results).
        self._vplan = VectorPlan()
        self._spec_ema = 0.0

    def begin_quantum(self, now: float) -> None:
        super().begin_quantum(now)
        if self.stall_period and now + 1e-12 >= self._next_stall:
            duration = self.stall_durations[
                self._stall_index % len(self.stall_durations)]
            self._stalled_until = now + duration
            self._stall_index += 1
            self._next_stall += self.stall_period

    # -- subclass interface ----------------------------------------------
    #: Subclasses whose per-packet accesses are address-deterministic
    #: (addresses never depend on a prior access's hit/miss outcome) opt
    #: in to the chunked batched drain by setting this True and
    #: implementing :meth:`plan_packet` / :meth:`worst_cost_cycles`.
    batchable = False

    #: Batchable subclasses whose per-chunk planning is itself expressible
    #: with array ops opt in to the fully vectorized drain by setting this
    #: True and implementing :meth:`plan_chunk` / :meth:`worst_cost_vec`.
    supports_vector = False

    #: Plan rank used for the Tx device reads (runs after all app stages).
    TX_RANK = VectorPlan.MAX_RANK - 1

    def packet_cost(self, port: CorePort, record: PacketRecord,
                    now: float) -> "tuple[float, float]":
        """App-specific work for one packet: ``(instructions, cycles)``.

        Called after the buffer lines have been read; implementations
        issue their own table accesses through ``port`` and return the
        incremental cost.
        """
        raise NotImplementedError

    def plan_packet(self, plan: AccessPlan, port: CorePort,
                    record: PacketRecord, ring_idx: int, pkt: int,
                    now: float) -> "tuple[float, float]":
        """Batched twin of :meth:`packet_cost`: append the packet's
        accesses to ``plan`` (slot ``pkt``) instead of issuing them, and
        return ``(instructions, fixed_cycles)`` — the memory-access
        cycles are attributed later by the plan execution.
        """
        raise NotImplementedError

    def worst_cost_cycles(self, record: PacketRecord,
                          miss_cycles: float) -> float:
        """Upper bound on :meth:`plan_packet` cycles if every access
        missed (``miss_cycles`` = LLC hit + current DRAM penalty)."""
        raise NotImplementedError

    def plan_chunk(self, plan: VectorPlan, port: CorePort,
                   pkts: "np.ndarray", sizes: "np.ndarray",
                   flows: "np.ndarray", addrs: "np.ndarray",
                   arrivals: "np.ndarray", rings: "np.ndarray | None",
                   now: float) -> "tuple[float, np.ndarray]":
        """Vectorized twin of :meth:`plan_packet` for a whole chunk.

        ``pkts`` is ``arange(k)``; ``rings`` is the per-packet source ring
        index, or None when the workload polls a single ring.  Append the
        chunk's app accesses to ``plan`` (buffer reads are already staged
        at rank 0) and return ``(instructions_total, fixed_cycles)`` with
        ``fixed_cycles`` a per-packet float array.
        """
        raise NotImplementedError

    def worst_cost_vec(self, sizes: "np.ndarray", nlines: "np.ndarray",
                       miss_cycles: float):
        """Vectorized twin of :meth:`worst_cost_cycles`: per-packet upper
        bound (array, or scalar to broadcast) using the *same* float
        expression so the chunk boundaries match the batched drain."""
        raise NotImplementedError

    def transmit(self, port: CorePort, record: PacketRecord) -> None:
        """Default Tx: NIC reads the buffer lines out of LLC/DRAM."""
        line = 64
        addr = record.buf_addr
        for _ in range(lines_per_packet(record.size, line)):
            port.read_line_for_device(addr)
            addr += line
        self.tx_bytes += record.size

    def plan_transmit(self, plan: AccessPlan, record: PacketRecord,
                      pkt: int) -> None:
        """Batched twin of :meth:`transmit` (device reads charge no
        core cycles, so only the plan entries are needed)."""
        plan.add_device(record.buf_addr, lines_per_packet(record.size),
                        pkt=pkt)
        self.tx_bytes += record.size

    def plan_transmit_chunk(self, plan: VectorPlan, pkts: "np.ndarray",
                            sizes: "np.ndarray", addrs: "np.ndarray",
                            nlines) -> None:
        """Vectorized twin of :meth:`plan_transmit` for a whole chunk
        (``nlines`` is per-packet buffer line counts, scalar or array)."""
        plan.add_batch(addrs, nlines, pkts=pkts, rank=self.TX_RANK,
                       device=True)
        self.tx_bytes += int(sizes.sum())

    # -- poll loop ---------------------------------------------------------
    def _next_packet(self) -> "PacketRecord | None":
        """Round-robin consume across this workload's rings."""
        for offset in range(len(self.rings)):
            ring = self.rings[(self._ring_cursor + offset) % len(self.rings)]
            record = ring.consume()
            if record is not None:
                self._ring_cursor = (self._ring_cursor + offset + 1) % len(self.rings)
                return record
        return None

    def _peek_packet(self) -> "tuple[PacketRecord, int] | None":
        """Next packet :meth:`_next_packet` would return, without
        consuming it; also returns its ring index."""
        for offset in range(len(self.rings)):
            idx = (self._ring_cursor + offset) % len(self.rings)
            record = self.rings[idx].peek()
            if record is not None:
                return record, idx
        return None

    def _accept_packet(self, ring_idx: int) -> PacketRecord:
        """Consume a just-peeked packet, advancing the round-robin
        cursor exactly as :meth:`_next_packet` would."""
        record = self.rings[ring_idx].consume()
        self._ring_cursor = (ring_idx + 1) % len(self.rings)
        return record

    def _worst_packet_cycles(self, port: CorePort,
                             record: PacketRecord) -> float:
        """Upper bound on one packet's charged cycles (every access a
        miss); used by the budget guard of the batched drain."""
        miss = LLC_HIT_CYCLES + port.dram_cycles
        return (lines_per_packet(record.size) * miss / BUFFER_MLP
                + self.worst_cost_cycles(record, miss))

    def run_core(self, port: CorePort, budget_cycles: float,
                 now: float) -> None:
        if now < self._stalled_until:
            # Scheduled out: the ring keeps filling while we're away.
            port.charge(0, budget_cycles)
            return
        if self.batchable and self.exec_mode != "scalar":
            if self.exec_mode == "vector" and self.supports_vector:
                self._run_core_vector(port, budget_cycles, now)
            else:
                self._run_core_batched(port, budget_cycles, now)
            return
        used = 0.0
        instructions = 0.0
        empty_polls = 0
        line = 64
        while used < budget_cycles:
            record = self._next_packet()
            if record is None:
                empty_polls += 1
                used += EMPTY_POLL_CYCLES
                instructions += EMPTY_POLL_INSTR
                if empty_polls >= MAX_EMPTY_POLLS:
                    # Idle-spin the rest of the budget at the poll loop's
                    # natural IPC without iterating packet-by-packet.
                    remaining = budget_cycles - used
                    if remaining > 0:
                        used = budget_cycles
                        instructions += (remaining / EMPTY_POLL_CYCLES
                                         * EMPTY_POLL_INSTR)
                    break
                continue
            empty_polls = 0
            service = 0.0
            addr = record.buf_addr
            for _ in range(lines_per_packet(record.size, line)):
                service += port.access(addr, mlp=BUFFER_MLP)
                addr += line
            instr, extra = self.packet_cost(port, record, now)
            service += extra
            instructions += instr
            self.transmit(port, record)
            used += service
            self.stats.busy_cycles += service
            self.packets_processed += 1
            # Queue wait in *elapsed cycles*: a simulated second carries
            # freq * time_scale cycles, so this is the real-equivalent
            # sojourn (ring sizes are unscaled, rates are scaled).
            queue_cycles = max(0.0, (now - record.arrival)
                               * self.core_freq_hz * self.time_scale)
            self.stats.record_op(
                queue_cycles + service,
                sample=self.stats.ops % self.latency_sample_stride == 0)
        port.charge(instructions, used)

    def _run_core_batched(self, port: CorePort, budget_cycles: float,
                          now: float) -> None:
        """Chunked drain: pop packets in scalar order, but execute their
        accesses as large LLC batches.

        Equivalence with the scalar loop: a packet is chunked only while
        the *worst-case* cumulative service (every access a miss) still
        fits the budget, so any packet batched here would also have been
        polled by the scalar loop; once the bound no longer fits, the
        drain degrades to one-packet chunks gated by the actual ``used <
        budget`` check — exactly the scalar condition.  Ring pops,
        empty-poll accounting, flow-table state updates and latency
        sampling all happen in the same order as the scalar loop.
        """
        used = 0.0
        instructions = 0.0
        empty_polls = 0
        stats = self.stats
        freq_scale = self.core_freq_hz * self.time_scale
        stride = self.latency_sample_stride
        while used < budget_cycles:
            # Gather a chunk under the worst-case budget guard.  The
            # first packet is unconditional, like the scalar loop.
            chunk: "list[tuple[PacketRecord, int]]" = []
            bound = used
            while len(chunk) < CHUNK_PACKETS:
                head = self._peek_packet()
                if head is None:
                    break
                record, ring_idx = head
                worst = self._worst_packet_cycles(port, record)
                if chunk and bound + worst >= budget_cycles:
                    break
                self._accept_packet(ring_idx)
                chunk.append((record, ring_idx))
                bound += worst
            if not chunk:
                empty_polls += 1
                used += EMPTY_POLL_CYCLES
                instructions += EMPTY_POLL_INSTR
                if empty_polls >= MAX_EMPTY_POLLS:
                    remaining = budget_cycles - used
                    if remaining > 0:
                        used = budget_cycles
                        instructions += (remaining / EMPTY_POLL_CYCLES
                                         * EMPTY_POLL_INSTR)
                    break
                continue
            empty_polls = 0
            plan = AccessPlan()
            fixed = np.zeros(len(chunk))
            for pkt, (record, ring_idx) in enumerate(chunk):
                plan.add(record.buf_addr, lines_per_packet(record.size),
                         mlp=BUFFER_MLP, pkt=pkt)
                instr, fixed_cycles = self.plan_packet(
                    plan, port, record, ring_idx, pkt, now)
                instructions += instr
                fixed[pkt] = fixed_cycles
                self.plan_transmit(plan, record, pkt)
            service = port.run_plan(plan, len(chunk)) + fixed
            self.packets_processed += len(chunk)
            for pkt, (record, _) in enumerate(chunk):
                cycles = float(service[pkt])
                used += cycles
                stats.busy_cycles += cycles
                queue_cycles = max(0.0, (now - record.arrival) * freq_scale)
                stats.record_op(queue_cycles + cycles,
                                sample=stats.ops % stride == 0)
        port.charge(instructions, used)

    # -- speculation support ---------------------------------------------
    # Subclasses whose ``plan_chunk`` mutates state beyond the base
    # checkpoint (rings, counters, WorkloadStats) override these three
    # hooks; see OvsDataplane for the EMC/destination-ring example.
    def _spec_state(self):
        """Extra state snapshot taken at a speculative checkpoint."""
        return None

    def _spec_restore(self, state) -> None:
        """Undo the extra state back to :meth:`_spec_state`'s snapshot."""

    def _spec_commit_extra(self) -> None:
        """Discard any extra journal after a committed speculation."""

    def _spec_checkpoint(self, port: CorePort):
        """Checkpoint everything a speculative chunk may mutate.

        The LLC itself journals copy-on-write (``SlicedLLC.snapshot``);
        everything else touched by ``_exec_chunk`` is a handful of
        scalars: core counters, memory-controller traffic, this
        workload's ring cursors/counters and stats.  Ring *slot* writes
        need no undo — slots past the restored count are rewritten
        before they ever become readable.
        """
        port._llc.snapshot()
        mem = port._mem
        block = port.block
        stats = self.stats
        return (
            (block.llc_references, block.llc_misses),
            (mem.read_bytes, mem.write_bytes,
             mem._window_read, mem._window_write),
            tuple((r._head, r._rd, r._count, r.enqueued, r.dequeued,
                   r.dropped) for r in self.rings),
            self._ring_cursor,
            (self.packets_processed, self.tx_bytes),
            (stats.ops, stats.busy_cycles, stats.latency_sum_cycles,
             len(stats.latency_samples)),
            self._spec_state(),
        )

    def _spec_rollback(self, port: CorePort, ckpt) -> None:
        """Restore every side effect since :meth:`_spec_checkpoint`."""
        port._llc.rollback()
        blk, memc, ring_states, cursor, pkts, st, extra = ckpt
        block = port.block
        block.llc_references, block.llc_misses = blk
        mem = port._mem
        (mem.read_bytes, mem.write_bytes,
         mem._window_read, mem._window_write) = memc
        for ring, s in zip(self.rings, ring_states):
            (ring._head, ring._rd, ring._count, ring.enqueued,
             ring.dequeued, ring.dropped) = s
        self._ring_cursor = cursor
        self.packets_processed, self.tx_bytes = pkts
        stats = self.stats
        stats.ops, stats.busy_cycles, stats.latency_sum_cycles, nsamp = st
        del stats.latency_samples[nsamp:]
        self._spec_restore(extra)

    def _spec_commit(self, port: CorePort) -> None:
        port._llc.commit()
        self._spec_commit_extra()

    def _exec_chunk(self, port: CorePort, start: int, k: int, sizes,
                    flows, addrs, arrivals, ring_idx, nlines,
                    now: float) -> "tuple[float, np.ndarray]":
        """Consume, plan, and execute packets ``[start, start + k)`` of
        the backlog snapshot; returns ``(instructions, service)`` with
        ``service`` the per-packet charged cycles.  Caller accounting
        (``used``, stats, sampling) stays outside so speculative
        executions can be discarded wholesale.
        """
        rings = self.rings
        nrings = len(rings)
        sl = slice(start, start + k)
        # Consume before planning, as the gather loop does (matters
        # only if an app stage posts back into a polled ring).
        if nrings == 1:
            rings[0].consume_batch(k)
            chunk_rings = None
        else:
            chunk_rings = ring_idx[sl]
            for r, cnt in enumerate(np.bincount(chunk_rings,
                                                minlength=nrings)):
                if cnt:
                    rings[r].consume_batch(int(cnt))
            self._ring_cursor = (int(chunk_rings[-1]) + 1) % nrings
        pkts = _PKT_ARANGE[:k]
        nl = nlines[sl]
        first = int(nl[0])
        counts = first if bool((nl == first).all()) else nl
        chunk_sizes = sizes[sl]
        chunk_addrs = addrs[sl]
        plan = self._vplan
        plan.reset()
        plan.add_batch(chunk_addrs, counts, pkts=pkts, rank=0,
                       mlp=BUFFER_MLP)
        instr, fixed = self.plan_chunk(
            plan, port, pkts, chunk_sizes, flows[sl], chunk_addrs,
            arrivals[sl], chunk_rings, now)
        self.plan_transmit_chunk(plan, pkts, chunk_sizes, chunk_addrs,
                                 counts)
        service = port.run_plan(plan, k) + fixed
        self.packets_processed += k
        ENGINE_STATS.record_chunk(k)
        return instr, service

    def _run_core_vector(self, port: CorePort, budget_cycles: float,
                         now: float) -> None:
        """Fully vectorized drain: snapshot the backlog once, then run
        budget-guarded chunks with no per-packet Python.

        Equivalent to :meth:`_run_core_batched` (and hence the scalar
        loop): nothing posts to this workload's rings while it runs, so
        the round-robin pop order over the whole drain is a pure function
        of the starting backlog — each ring's packets in FIFO order,
        ties at the same queue depth broken by ring distance from the
        cursor.  Empty polls then only ever happen as a trailing phase,
        exactly the order the per-packet loop produces.

        Admission is *speculative run-ahead* when the LLC backend can
        journal (:data:`SPECULATION`): a large chunk sized from the EMA
        of observed per-packet cost executes under a copy-on-write
        checkpoint, then the *actual* accumulated cost decides how many
        of its packets the scalar loop would have admitted (packet ``i``
        runs iff the cost before it is below the budget — exactly the
        scalar ``while used < budget`` test, which worst-case admission
        only approximated from below).  A fully admitted chunk commits;
        an overshoot rolls every side effect back and replays exactly
        the admitted prefix, which is bit-identical to its speculative
        execution because batched access is sequential-order exact.
        Either way the admitted set, execution order, and left-to-right
        float accounting match the scalar loop bit-for-bit; speculation
        only changes how many packets execute per NumPy batch.  Without
        a journaling backend the worst-case cumulative-bound guard
        (first packet unconditional) is used, as before.
        """
        rings = self.rings
        nrings = len(rings)
        if nrings == 1:
            sizes, flows, addrs, arrivals = rings[0].peek_batch()
            ring_idx = None
            backlog = sizes.shape[0]
        else:
            parts = [ring.peek_batch() for ring in rings]
            lens = [part[0].shape[0] for part in parts]
            backlog = sum(lens)
            sizes = np.concatenate([part[0] for part in parts])
            flows = np.concatenate([part[1] for part in parts])
            addrs = np.concatenate([part[2] for part in parts])
            arrivals = np.concatenate([part[3] for part in parts])
            ring_idx = np.repeat(np.arange(nrings, dtype=np.int64), lens)
            within = np.concatenate(
                [np.arange(n, dtype=np.int64) for n in lens])
            # Pop order: FIFO depth first, then ring distance from the
            # round-robin cursor (primary key is the *last* lexsort key).
            order = np.lexsort(
                ((ring_idx - self._ring_cursor) % nrings, within))
            sizes = sizes[order]
            flows = flows[order]
            addrs = addrs[order]
            arrivals = arrivals[order]
            ring_idx = ring_idx[order]
        used = 0.0
        instructions = 0.0
        stats = self.stats
        estats = ENGINE_STATS
        freq_scale = self.core_freq_hz * self.time_scale
        stride = self.latency_sample_stride
        speculate = SPECULATION and port._llc.can_snapshot
        start = 0
        if backlog:
            nlines = -(-sizes // 64)
            miss = LLC_HIT_CYCLES + port.dram_cycles
            queue_cycles = np.maximum(0.0, (now - arrivals) * freq_scale)
            if not speculate:
                # Same float expression, left to right, as
                # :meth:`_worst_packet_cycles` — bit-equal bounds give
                # bit-equal chunk boundaries.
                worst = (nlines * miss / BUFFER_MLP
                         + self.worst_cost_vec(sizes, nlines, miss))
        cum_buf = np.empty(CHUNK_PACKETS + 1)
        while used < budget_cycles and start < backlog:
            if speculate:
                ema = self._spec_ema
                guess = (int((budget_cycles - used) / ema * SPEC_HEADROOM)
                         + 1 if ema > 0.0 else SPEC_BOOTSTRAP)
                k_spec = min(guess, CHUNK_PACKETS, backlog - start)
                if k_spec > 1:
                    ckpt = self._spec_checkpoint(port)
                    estats.spec_chunks += 1
                    instr, service = self._exec_chunk(
                        port, start, k_spec, sizes, flows, addrs,
                        arrivals, ring_idx, nlines, now)
                    cum = cum_buf[:k_spec + 1]
                    cum[0] = used
                    cum[1:] = service
                    np.cumsum(cum, out=cum)
                    # Packet i admitted iff i == 0 or the actual cost
                    # before it is under budget — the scalar condition.
                    k = 1 + int(np.searchsorted(cum[1:k_spec],
                                                budget_cycles,
                                                side="left"))
                    mean = (float(cum[k_spec]) - used) / k_spec
                    self._spec_ema = (mean if self._spec_ema <= 0.0
                                      else self._spec_ema + SPEC_ALPHA
                                      * (mean - self._spec_ema))
                    if k < k_spec:
                        self._spec_rollback(port, ckpt)
                        estats.rollbacks += 1
                        estats.wasted_packets += k_spec
                        # Replay exactly the admitted prefix from the
                        # restored state — bit-identical to its
                        # speculative execution.
                        instr, service = self._exec_chunk(
                            port, start, k, sizes, flows, addrs,
                            arrivals, ring_idx, nlines, now)
                    else:
                        self._spec_commit(port)
                else:
                    # One packet is unconditionally admitted (the loop
                    # guard already holds) — nothing to roll back.
                    k = 1
                    instr, service = self._exec_chunk(
                        port, start, 1, sizes, flows, addrs, arrivals,
                        ring_idx, nlines, now)
            else:
                limit = min(backlog, start + CHUNK_PACKETS)
                seg = worst[start:limit]
                cum = cum_buf[:seg.shape[0] + 1]
                cum[0] = used
                cum[1:] = seg
                np.cumsum(cum, out=cum)
                # Relative packet i is admitted iff i == 0
                # (unconditional, like the scalar loop) or
                # bound-so-far + worst_i < budget.
                if seg.shape[0] > 1:
                    k = 1 + int(np.searchsorted(cum[2:], budget_cycles,
                                                side="left"))
                else:
                    k = 1
                instr, service = self._exec_chunk(
                    port, start, k, sizes, flows, addrs, arrivals,
                    ring_idx, nlines, now)
            instructions += instr
            estats.packets += k
            used = seq_accumulate(used, service)
            stats.busy_cycles = seq_accumulate(stats.busy_cycles, service)
            lat = queue_cycles[start:start + k] + service
            stats.latency_sum_cycles = seq_accumulate(
                stats.latency_sum_cycles, lat)
            # The next sampled op is a python-arithmetic question; build
            # the mask only for chunks that actually contain one.
            off = stats.ops % stride
            stats.ops += k
            if (stride - off) % stride < k:
                sample = (off + _PKT_ARANGE[:k]) % stride == 0
                stats.latency_samples.extend(lat[sample].tolist())
            start += k
        # Trailing empty polls, identical to the per-packet loop's.
        empty_polls = 0
        while used < budget_cycles:
            empty_polls += 1
            used += EMPTY_POLL_CYCLES
            instructions += EMPTY_POLL_INSTR
            if empty_polls >= MAX_EMPTY_POLLS:
                remaining = budget_cycles - used
                if remaining > 0:
                    used = budget_cycles
                    instructions += (remaining / EMPTY_POLL_CYCLES
                                     * EMPTY_POLL_INSTR)
                break
        port.charge(instructions, used)

    # -- reporting ---------------------------------------------------------
    @property
    def drops(self) -> int:
        return sum(ring.dropped for ring in self.rings)

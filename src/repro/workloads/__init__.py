"""Workload models: the paper's micro- and macro-benchmarks."""

from .base import CorePort, L2_HIT_CYCLES, LLC_HIT_CYCLES, Workload, WorkloadStats
from .l3fwd import L3Fwd
from .netbase import RingConsumer
from .nfv import NfvChain
from .redis import RedisServer
from .rocksdb import RocksDb
from .spec import CACHE_HEAVY, SPEC_PROFILES, SpecProfile, SpecWorkload
from .testpmd import TestPmd
from .xmem import XMem
from .ycsb import (ALL_WORKLOADS, DEFAULT_ZIPF_THETA, OpType, REDIS_WORKLOADS,
                   WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D, WORKLOAD_E,
                   WORKLOAD_F, YcsbMix, YcsbOpStream)

__all__ = [
    "ALL_WORKLOADS", "CACHE_HEAVY", "CorePort", "DEFAULT_ZIPF_THETA",
    "L2_HIT_CYCLES", "L3Fwd", "LLC_HIT_CYCLES", "NfvChain", "OpType",
    "REDIS_WORKLOADS", "RedisServer", "RingConsumer", "RocksDb",
    "SPEC_PROFILES", "SpecProfile", "SpecWorkload", "TestPmd", "WORKLOAD_A",
    "WORKLOAD_B", "WORKLOAD_C", "WORKLOAD_D", "WORKLOAD_E", "WORKLOAD_F",
    "Workload", "WorkloadStats", "XMem", "YcsbMix", "YcsbOpStream",
]

"""YCSB workload definitions (Cooper et al., SoCC'10).

The paper drives both RocksDB and Redis with YCSB using a 0.99 Zipfian
request distribution (Sec. VI-C).  This module captures the six core
workload mixes and a key-chooser; the KVS models consume ops from here.

Scans (workload E) are approximated as a short sequential run of key
reads, which preserves their cache footprint character.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .streams import ZipfKeyStream

#: YCSB's default request-distribution skew.
DEFAULT_ZIPF_THETA = 0.99

#: Keys read per scan operation (approximation of YCSB's scan length).
SCAN_LENGTH = 20


class OpType(enum.Enum):
    """YCSB operation types (scan approximated as a short key run)."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    RMW = "read-modify-write"


@dataclass(frozen=True)
class YcsbMix:
    """One YCSB workload: its letter and operation proportions."""

    letter: str
    proportions: "dict[OpType, float]"

    def __post_init__(self) -> None:
        total = sum(self.proportions.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload {self.letter}: mix sums to {total}")


#: The six core YCSB workloads.
WORKLOAD_A = YcsbMix("A", {OpType.READ: 0.5, OpType.UPDATE: 0.5})
WORKLOAD_B = YcsbMix("B", {OpType.READ: 0.95, OpType.UPDATE: 0.05})
WORKLOAD_C = YcsbMix("C", {OpType.READ: 1.0})
WORKLOAD_D = YcsbMix("D", {OpType.READ: 0.95, OpType.INSERT: 0.05})
WORKLOAD_E = YcsbMix("E", {OpType.SCAN: 0.95, OpType.INSERT: 0.05})
WORKLOAD_F = YcsbMix("F", {OpType.READ: 0.5, OpType.RMW: 0.5})

ALL_WORKLOADS = {m.letter: m for m in
                 (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D,
                  WORKLOAD_E, WORKLOAD_F)}

#: The subset the paper plots for Redis (read-heavy A/B/C highlighted).
REDIS_WORKLOADS = ("A", "B", "C", "D", "F")


@dataclass
class YcsbOpStream:
    """Draws (op type, key) pairs for one YCSB mix.

    Workload D uses a "latest" distribution: reads cluster near the most
    recently inserted keys; we model it as zipf over a rolling window.
    """

    mix: YcsbMix
    n_keys: int
    rng: "np.random.Generator"
    theta: float = DEFAULT_ZIPF_THETA
    _keys: "ZipfKeyStream | None" = field(default=None, repr=False)
    _ops: "list[OpType]" = field(default_factory=list, repr=False)
    _cum: "np.ndarray | None" = field(default=None, repr=False)
    _insert_count: int = 0

    def __post_init__(self) -> None:
        self._keys = ZipfKeyStream(self.n_keys, self.theta, self.rng)
        self._ops = list(self.mix.proportions.keys())
        self._cum = np.cumsum([self.mix.proportions[o] for o in self._ops])

    @property
    def ops(self) -> "list[OpType]":
        """The mix's op types, indexable by :meth:`draw_arrays` indices."""
        return self._ops

    def draw_arrays(self, count: int) -> "tuple[np.ndarray, np.ndarray]":
        """``(op_idx, keys)`` arrays for ``count`` ops.

        Bit-identical RNG consumption and key remapping to the tuple
        path: the sequential insert counter becomes an inclusive cumsum
        of the insert mask (an INSERT sees its own increment, a "latest"
        read sees only the inserts before it — the mask contributes 0).
        """
        if count == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        rolls = self.rng.random(count)
        op_idx = np.minimum(np.searchsorted(self._cum, rolls),
                            len(self._ops) - 1)
        keys = self._keys.draw(count).astype(np.int64, copy=False)
        try:
            insert_idx = self._ops.index(OpType.INSERT)
        except ValueError:
            insert_idx = -1
        wrap = 2 * self.n_keys
        if insert_idx >= 0:
            inserts = op_idx == insert_idx
            counts = self._insert_count + np.cumsum(inserts)
            if self.mix.letter == "D":
                # "Latest" flavour: bias reads toward recent inserts.
                keys = np.where(inserts, (self.n_keys + counts) % wrap,
                                (self.n_keys + counts - keys) % wrap)
            else:
                keys = np.where(inserts, (self.n_keys + counts) % wrap,
                                keys)
            self._insert_count += int(np.count_nonzero(inserts))
        elif self.mix.letter == "D":
            keys = (self.n_keys + self._insert_count - keys) % wrap
        return op_idx, keys

    def draw(self, count: int) -> "list[tuple[OpType, int]]":
        op_idx, keys = self.draw_arrays(count)
        ops = self._ops
        return [(ops[idx], key)
                for idx, key in zip(op_idx.tolist(), keys.tolist())]

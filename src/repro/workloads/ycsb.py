"""YCSB workload definitions (Cooper et al., SoCC'10).

The paper drives both RocksDB and Redis with YCSB using a 0.99 Zipfian
request distribution (Sec. VI-C).  This module captures the six core
workload mixes and a key-chooser; the KVS models consume ops from here.

Scans (workload E) are approximated as a short sequential run of key
reads, which preserves their cache footprint character.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .streams import ZipfKeyStream

#: YCSB's default request-distribution skew.
DEFAULT_ZIPF_THETA = 0.99

#: Keys read per scan operation (approximation of YCSB's scan length).
SCAN_LENGTH = 20


class OpType(enum.Enum):
    """YCSB operation types (scan approximated as a short key run)."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    RMW = "read-modify-write"


@dataclass(frozen=True)
class YcsbMix:
    """One YCSB workload: its letter and operation proportions."""

    letter: str
    proportions: "dict[OpType, float]"

    def __post_init__(self) -> None:
        total = sum(self.proportions.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload {self.letter}: mix sums to {total}")


#: The six core YCSB workloads.
WORKLOAD_A = YcsbMix("A", {OpType.READ: 0.5, OpType.UPDATE: 0.5})
WORKLOAD_B = YcsbMix("B", {OpType.READ: 0.95, OpType.UPDATE: 0.05})
WORKLOAD_C = YcsbMix("C", {OpType.READ: 1.0})
WORKLOAD_D = YcsbMix("D", {OpType.READ: 0.95, OpType.INSERT: 0.05})
WORKLOAD_E = YcsbMix("E", {OpType.SCAN: 0.95, OpType.INSERT: 0.05})
WORKLOAD_F = YcsbMix("F", {OpType.READ: 0.5, OpType.RMW: 0.5})

ALL_WORKLOADS = {m.letter: m for m in
                 (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C, WORKLOAD_D,
                  WORKLOAD_E, WORKLOAD_F)}

#: The subset the paper plots for Redis (read-heavy A/B/C highlighted).
REDIS_WORKLOADS = ("A", "B", "C", "D", "F")


@dataclass
class YcsbOpStream:
    """Draws (op type, key) pairs for one YCSB mix.

    Workload D uses a "latest" distribution: reads cluster near the most
    recently inserted keys; we model it as zipf over a rolling window.
    """

    mix: YcsbMix
    n_keys: int
    rng: "np.random.Generator"
    theta: float = DEFAULT_ZIPF_THETA
    _keys: "ZipfKeyStream | None" = field(default=None, repr=False)
    _ops: "list[OpType]" = field(default_factory=list, repr=False)
    _cum: "np.ndarray | None" = field(default=None, repr=False)
    _insert_count: int = 0

    def __post_init__(self) -> None:
        self._keys = ZipfKeyStream(self.n_keys, self.theta, self.rng)
        self._ops = list(self.mix.proportions.keys())
        self._cum = np.cumsum([self.mix.proportions[o] for o in self._ops])

    def draw(self, count: int) -> "list[tuple[OpType, int]]":
        if count == 0:
            return []
        rolls = self.rng.random(count)
        op_idx = np.searchsorted(self._cum, rolls)
        keys = self._keys.draw(count)
        out = []
        for idx, key in zip(op_idx.tolist(), keys.tolist()):
            op = self._ops[min(idx, len(self._ops) - 1)]
            if op is OpType.INSERT:
                self._insert_count += 1
                key = (self.n_keys + self._insert_count) % (2 * self.n_keys)
            elif self.mix.letter == "D":
                # "Latest" flavour: bias reads toward recent inserts.
                key = (self.n_keys + self._insert_count - key) % (2 * self.n_keys)
            out.append((op, key))
        return out

"""FastClick NFV service chain (paper Sec. VI-C).

The paper's chain has three stateful network functions, each container
processing one VLAN's traffic from its own SR-IOV VF:

1. a classifier-based **firewall** — linear rule evaluation over a small
   rule table,
2. **flow stats** (AggregateIPFlows) — one per-flow state record updated
   per packet, footprint grows with the live flow count,
3. **NAPT** — one translation-table entry per flow.

Each per-flow structure is one cacheline, so the chain's LLC footprint
scales with the flow population, and buffer reads dominate for MTU-sized
packets — which is why the paper's FastClick scenario stresses DDIO ways
harder than Redis does (Fig. 12 discussion).
"""

from __future__ import annotations

import numpy as np

from ..pci.ring import DescRing, PacketRecord
from .base import AccessPlan, CorePort, VectorPlan
from .netbase import RingConsumer

#: Firewall rules evaluated per packet (classifier walk).
DEFAULT_RULES = 64
RULE_BYTES = 64
#: Rules per cacheline worth of classifier program.
RULES_PER_LINE = 8

FLOW_ENTRY_BYTES = 64
NAPT_ENTRY_BYTES = 64

#: Per-packet instruction cost of the three-NF chain.
NFV_INSTRUCTIONS = 600.0
NFV_CYCLES = 240.0


class NfvChain(RingConsumer):
    """Firewall -> flow-stats -> NAPT over one VF's traffic."""

    def __init__(self, name: str, rings: "list[DescRing]", *,
                 n_flows: int = 4096, n_rules: int = DEFAULT_RULES,
                 core_freq_hz: float = 2.3e9) -> None:
        super().__init__(name, rings, core_freq_hz=core_freq_hz)
        if n_flows < 1 or n_rules < 1:
            raise ValueError("need at least one flow and one rule")
        self.n_flows = n_flows
        self.n_rules = n_rules

    batchable = True

    def on_bind(self) -> None:
        rule_lines = -(-self.n_rules // RULES_PER_LINE)
        self._rules_base = self.region_base
        self._flows_base = self.region_base + rule_lines * 64
        self._napt_base = self._flows_base + self.n_flows * FLOW_ENTRY_BYTES
        # Firewall: scan half the rule lines on average.
        self._scan_lines = max(1, rule_lines // 2)

    def packet_cost(self, port: CorePort, record: PacketRecord,
                    now: float) -> "tuple[float, float]":
        cycles = NFV_CYCLES
        addr = self._rules_base
        for _ in range(self._scan_lines):
            cycles += port.access(addr)
            addr += 64
        flow = record.flow_id % self.n_flows
        # Flow stats: read-modify-write the per-flow record.
        cycles += port.access(self._flows_base + flow * FLOW_ENTRY_BYTES,
                              write=True)
        # NAPT: translation lookup.
        cycles += port.access(self._napt_base + flow * NAPT_ENTRY_BYTES)
        return NFV_INSTRUCTIONS, cycles

    def plan_packet(self, plan: AccessPlan, port: CorePort,
                    record: PacketRecord, ring_idx: int, pkt: int,
                    now: float) -> "tuple[float, float]":
        plan.add(self._rules_base, self._scan_lines, pkt=pkt)
        flow = record.flow_id % self.n_flows
        plan.add(self._flows_base + flow * FLOW_ENTRY_BYTES, 1, write=True,
                 pkt=pkt)
        plan.add(self._napt_base + flow * NAPT_ENTRY_BYTES, 1, pkt=pkt)
        return NFV_INSTRUCTIONS, NFV_CYCLES

    def worst_cost_cycles(self, record: PacketRecord,
                          miss_cycles: float) -> float:
        return NFV_CYCLES + (self._scan_lines + 2) * miss_cycles

    supports_vector = True

    def plan_chunk(self, plan: VectorPlan, port: CorePort, pkts, sizes,
                   flows, addrs, arrivals, rings, now):
        k = pkts.shape[0]
        plan.add_batch(np.full(k, self._rules_base, dtype=np.int64),
                       self._scan_lines, pkts=pkts, rank=1)
        flow = flows % self.n_flows
        plan.add_batch(self._flows_base + flow * FLOW_ENTRY_BYTES, 1,
                       pkts=pkts, rank=2, write=True)
        plan.add_batch(self._napt_base + flow * NAPT_ENTRY_BYTES, 1,
                       pkts=pkts, rank=3)
        return NFV_INSTRUCTIONS * k, np.full(k, NFV_CYCLES)

    def worst_cost_vec(self, sizes, nlines, miss_cycles):
        return NFV_CYCLES + (self._scan_lines + 2) * miss_cycles

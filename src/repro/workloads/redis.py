"""Redis: network-attached in-memory KVS (paper Sec. VI-C).

The paper runs two Redis containers behind OVS and drives them with YCSB
from traffic-generator machines (1M preloaded records of 1 KB).  Here a
Redis server is a :class:`RingConsumer` whose "packets" are YCSB
requests: the request's flow id selects the key (the traffic generator
draws flow ids Zipf(0.99), matching YCSB's distribution), the op type is
drawn from the workload mix, and the served value is read/written from a
1 GB dataset region — of which only the hot Zipfian head is
LLC-resident.  Responses are transmitted by device read, so a value that
has been evicted by inbound DDIO traffic costs both a core miss and a
DRAM read on the way out — the mechanism behind Fig. 14's latency tail.
"""

from __future__ import annotations

import numpy as np

from ..pci.ring import DescRing, PacketRecord
from .base import AccessPlan, CorePort, VectorPlan
from .netbase import RingConsumer
from .ycsb import OpType, YcsbMix

#: Paper's preload: 1M records, 1KB each.
DEFAULT_RECORDS = 1_000_000
DEFAULT_VALUE_BYTES = 1024

#: Protocol parse + hashtable probe + reply build per request.  With the
#: DPDK-ANS stack of the paper's setup there are no kernel crossings, so
#: the per-op core cost is small and the OVS datapath — not Redis — is
#: the serving bottleneck.
REDIS_INSTRUCTIONS_PER_OP = 400.0
REDIS_OVERHEAD_CYCLES = 140.0

#: Bytes per hashtable bucket entry (one line).
BUCKET_BYTES = 64

#: Streaming MLP of a contiguous 1 KB value copy.
VALUE_MLP = 8.0


class RedisServer(RingConsumer):
    """Single-threaded Redis event loop serving YCSB requests from rings."""

    def __init__(self, name: str, rings: "list[DescRing]", mix: YcsbMix, *,
                 n_records: int = DEFAULT_RECORDS,
                 value_bytes: int = DEFAULT_VALUE_BYTES,
                 core_freq_hz: float = 2.3e9) -> None:
        super().__init__(name, rings, core_freq_hz=core_freq_hz)
        self.mix = mix
        self.n_records = n_records
        self.value_bytes = value_bytes

    def on_bind(self) -> None:
        self._buckets_bytes = self.n_records * BUCKET_BYTES
        self._values_base = self.region_base + self._buckets_bytes

    def prefill(self) -> None:
        # Warm the bucket array head and the hottest values (Zipf mass
        # sits at the low key ids).
        self.warm_region(self.region_base, min(self._buckets_bytes, 4 << 20))
        self.warm_region(self._values_base,
                         min(self.n_records * self.value_bytes, 8 << 20))

    #: Requests larger than this carry a value payload (a SET); smaller
    #: ones are GETs.  The traffic generator encodes the YCSB mix's
    #: write share in the packet-size split (see
    #: ``experiments.common.kvs_scenario``).
    WRITE_REQUEST_THRESHOLD = 512

    def _op_for(self, record: PacketRecord) -> OpType:
        if record.size > self.WRITE_REQUEST_THRESHOLD:
            return OpType.UPDATE
        return OpType.READ

    def _value_addr(self, key: int) -> int:
        return self._values_base + (key % self.n_records) * self.value_bytes

    def packet_cost(self, port: CorePort, record: PacketRecord,
                    now: float) -> "tuple[float, float]":
        key = record.flow_id % self.n_records
        op = self._op_for(record)
        cycles = REDIS_OVERHEAD_CYCLES
        # Hashtable probe: one bucket line.
        cycles += port.access(self.region_base + key * BUCKET_BYTES)
        write = op in (OpType.UPDATE, OpType.INSERT, OpType.RMW)
        read = op in (OpType.READ, OpType.SCAN, OpType.RMW) or not write
        addr = self._value_addr(key)
        nlines = -(-self.value_bytes // 64)
        if read:
            scan = addr
            for _ in range(nlines):
                cycles += port.access(scan, mlp=VALUE_MLP)
                scan += 64
        if write:
            scan = addr
            for _ in range(nlines):
                cycles += port.access(scan, write=True, mlp=VALUE_MLP)
                scan += 64
        return REDIS_INSTRUCTIONS_PER_OP, cycles

    def transmit(self, port: CorePort, record: PacketRecord) -> None:
        """Reply Tx: the NIC pulls the response (header-sized here; the
        value bytes were already touched during service)."""
        port.read_line_for_device(record.buf_addr)
        self.tx_bytes += self.value_bytes

    # -- batched/vector drains --------------------------------------------
    batchable = True
    supports_vector = True

    def plan_packet(self, plan: AccessPlan, port: CorePort,
                    record: PacketRecord, ring_idx: int, pkt: int,
                    now: float) -> "tuple[float, float]":
        key = record.flow_id % self.n_records
        plan.add(self.region_base + key * BUCKET_BYTES, 1, pkt=pkt)
        nlines = -(-self.value_bytes // 64)
        addr = self._value_addr(key)
        if self._op_for(record) is OpType.READ:
            plan.add(addr, nlines, mlp=VALUE_MLP, pkt=pkt)
        else:
            plan.add(addr, nlines, write=True, mlp=VALUE_MLP, pkt=pkt)
        return REDIS_INSTRUCTIONS_PER_OP, REDIS_OVERHEAD_CYCLES

    def worst_cost_cycles(self, record: PacketRecord,
                          miss_cycles: float) -> float:
        nlines = -(-self.value_bytes // 64)
        return (REDIS_OVERHEAD_CYCLES + miss_cycles
                + nlines * miss_cycles / VALUE_MLP)

    def plan_transmit(self, plan: AccessPlan, record: PacketRecord,
                      pkt: int) -> None:
        plan.add_device(record.buf_addr, 1, pkt=pkt)
        self.tx_bytes += self.value_bytes

    def plan_chunk(self, plan: VectorPlan, port: CorePort, pkts, sizes,
                   flows, addrs, arrivals, rings, now):
        k = pkts.shape[0]
        keys = flows % self.n_records
        plan.add_batch(self.region_base + keys * BUCKET_BYTES, 1,
                       pkts=pkts, rank=1)
        nlines = -(-self.value_bytes // 64)
        vaddrs = self._values_base + keys * self.value_bytes
        is_write = sizes > self.WRITE_REQUEST_THRESHOLD
        reads = np.nonzero(~is_write)[0]
        if reads.shape[0]:
            plan.add_batch(vaddrs[reads], nlines, pkts=pkts[reads],
                           rank=2, mlp=VALUE_MLP)
        writes = np.nonzero(is_write)[0]
        if writes.shape[0]:
            plan.add_batch(vaddrs[writes], nlines, pkts=pkts[writes],
                           rank=3, write=True, mlp=VALUE_MLP)
        return REDIS_INSTRUCTIONS_PER_OP * k, np.full(
            k, REDIS_OVERHEAD_CYCLES)

    def worst_cost_vec(self, sizes, nlines, miss_cycles):
        value_lines = -(-self.value_bytes // 64)
        return (REDIS_OVERHEAD_CYCLES + miss_cycles
                + value_lines * miss_cycles / VALUE_MLP)

    def plan_transmit_chunk(self, plan: VectorPlan, pkts, sizes, addrs,
                            nlines) -> None:
        plan.add_batch(addrs, 1, pkts=pkts, rank=self.TX_RANK,
                       device=True)
        self.tx_bytes += self.value_bytes * pkts.shape[0]

    # -- reporting ---------------------------------------------------------
    def throughput_ops(self, elapsed_seconds: float,
                       time_scale: float = 1.0) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        return self.stats.ops / elapsed_seconds / time_scale

    def avg_latency_us(self) -> float:
        if self.stats.ops == 0:
            return 0.0
        return self.stats.avg_latency_cycles / self.core_freq_hz * 1e6

    def p99_latency_us(self) -> float:
        return self.stats.percentile_latency(99.0) / self.core_freq_hz * 1e6

"""Address-stream generators used by the workload models.

All generators produce *byte addresses of cachelines* inside a workload's
private region, in numpy batches so the Python-level per-access loop only
pays for the cache access itself.
"""

from __future__ import annotations

import numpy as np

from ..net.traffic import zipf_weights

LINE = 64


def uniform_lines(rng: "np.random.Generator", base: int, ws_bytes: int,
                  count: int, line: int = LINE) -> "np.ndarray":
    """``count`` uniform-random line addresses over a working set."""
    nlines = max(1, ws_bytes // line)
    return base + rng.integers(0, nlines, size=count) * line


def sequential_lines(base: int, ws_bytes: int, start_line: int, count: int,
                     line: int = LINE) -> "tuple[np.ndarray, int]":
    """``count`` streaming line addresses, wrapping over the working set.

    Returns the addresses and the next start line, so callers can keep a
    cursor across batches.
    """
    nlines = max(1, ws_bytes // line)
    idx = (start_line + np.arange(count)) % nlines
    return base + idx * line, (start_line + count) % nlines


class ZipfSampler:
    """Weighted index sampler with a cached CDF.

    Draws are bit-identical to ``rng.choice(n, size, p=weights)`` (NumPy
    implements weighted choice as ``cdf.searchsorted(rng.random(size))``
    with the same normalisation), but the O(n) cumulative sum is paid once
    at construction instead of on every draw — which matters when the flow
    population is large (Fig. 9 runs 1M flows) and draws happen per quantum.
    """

    def __init__(self, weights: "np.ndarray") -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        cdf = weights.cumsum()
        cdf /= cdf[-1]
        self._cdf = cdf
        self.n = weights.size

    def draw(self, rng: "np.random.Generator", count: int) -> "np.ndarray":
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return self._cdf.searchsorted(rng.random(count), side="right")


class ZipfKeyStream:
    """Zipf-distributed key indices (YCSB-style popularity skew)."""

    def __init__(self, n_keys: int, theta: float,
                 rng: "np.random.Generator") -> None:
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.n_keys = n_keys
        self.theta = theta
        self._rng = rng
        self._weights = zipf_weights(n_keys, theta)
        self._sampler = ZipfSampler(self._weights)

    def draw(self, count: int) -> "np.ndarray":
        return self._sampler.draw(self._rng, count)

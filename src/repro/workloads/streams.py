"""Address-stream generators used by the workload models.

All generators produce *byte addresses of cachelines* inside a workload's
private region, in numpy batches so the Python-level per-access loop only
pays for the cache access itself.
"""

from __future__ import annotations

import numpy as np

from ..net.traffic import zipf_weights

LINE = 64


def uniform_lines(rng: "np.random.Generator", base: int, ws_bytes: int,
                  count: int, line: int = LINE) -> "np.ndarray":
    """``count`` uniform-random line addresses over a working set."""
    nlines = max(1, ws_bytes // line)
    return base + rng.integers(0, nlines, size=count) * line


def sequential_lines(base: int, ws_bytes: int, start_line: int, count: int,
                     line: int = LINE) -> "tuple[np.ndarray, int]":
    """``count`` streaming line addresses, wrapping over the working set.

    Returns the addresses and the next start line, so callers can keep a
    cursor across batches.
    """
    nlines = max(1, ws_bytes // line)
    idx = (start_line + np.arange(count)) % nlines
    return base + idx * line, (start_line + count) % nlines


class ZipfKeyStream:
    """Zipf-distributed key indices (YCSB-style popularity skew)."""

    def __init__(self, n_keys: int, theta: float,
                 rng: "np.random.Generator") -> None:
        if n_keys < 1:
            raise ValueError("need at least one key")
        self.n_keys = n_keys
        self.theta = theta
        self._rng = rng
        self._weights = zipf_weights(n_keys, theta)

    def draw(self, count: int) -> "np.ndarray":
        if count == 0:
            return np.empty(0, dtype=np.int64)
        return self._rng.choice(self.n_keys, size=count, p=self._weights)

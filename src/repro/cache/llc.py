"""Way-partitioned, sliced, LRU last-level cache simulator.

This is the substrate for everything in the reproduction.  It implements
the two hardware behaviours the paper's mechanics depend on:

* **CAT semantics** (paper footnote 1): an agent may only *allocate*
  (fill) lines into the ways its class-of-service mask selects, but a
  lookup *hits* in any way.
* **DDIO semantics** (paper Sec. II-B): an inbound device write performs an
  LLC lookup; if the line is present it is updated in place (*write
  update*, counted as a DDIO hit); if absent it is allocated into the DDIO
  way mask (*write allocate*, counted as a DDIO miss), evicting an LRU
  victim from those ways.  A device read never allocates.

The replacement policy is true LRU within the permitted ways, with
eviction preferring invalid ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .geometry import CacheGeometry

#: Sentinel tag marking an invalid (empty) way.
EMPTY = -1

#: Owner id used for lines brought in by DDIO.
DDIO_OWNER = -2


@lru_cache(maxsize=4096)
def _ways_of_mask(mask: int) -> "tuple[int, ...]":
    """Way indices selected by a bitmask, cached per distinct mask."""
    return tuple(i for i in range(mask.bit_length()) if mask >> i & 1)


@dataclass(frozen=True)
class AccessOutcome:
    """Result of a single cache access.

    ``hit``          the line was present.
    ``fill``         a line was allocated (miss with allocation).
    ``evicted``      a valid line was displaced to make room.
    ``writeback``    the displaced line was dirty (memory write needed).
    ``victim_owner`` owner id of the displaced line (or ``None``).
    """

    hit: bool
    fill: bool = False
    evicted: bool = False
    writeback: bool = False
    victim_owner: "int | None" = None


#: Shared immutable outcome for the common hit case (avoids allocation
#: in the hot loop).
HIT = AccessOutcome(hit=True)


class SlicedLLC:
    """Cacheline-accurate sliced LLC with per-way owner tracking.

    Owners are small integers identifying the agent (tenant id or
    ``DDIO_OWNER``) that allocated each line; they feed occupancy
    introspection (used by tests and the Fig. 11 timeline) and victim
    attribution.

    ``policy`` selects the replacement policy within the permitted
    ways: ``"lru"`` (default, what the paper's analysis assumes) or
    ``"random"`` (a cheaper hardware policy, available for ablations —
    real Skylake LLCs use an adaptive policy between the two).
    """

    def __init__(self, geometry: CacheGeometry, *,
                 policy: str = "lru", seed: int = 11) -> None:
        if policy not in ("lru", "random"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.geometry = geometry
        self.policy = policy
        nsets, nways = geometry.total_sets, geometry.ways
        # One flat list per set keeps the per-access work at a C-speed
        # ``list.index`` plus a tiny scan of <= `ways` entries.
        self._tags = [[EMPTY] * nways for _ in range(nsets)]
        self._stamp = [[0] * nways for _ in range(nsets)]
        self._dirty = [[False] * nways for _ in range(nsets)]
        self._owner = [[0] * nways for _ in range(nsets)]
        self._clock = 0
        # Cheap deterministic LCG for the random policy (avoids numpy
        # overhead in the per-access hot path).
        self._rand_state = seed or 1

    # ------------------------------------------------------------------
    # Core access paths
    # ------------------------------------------------------------------
    def access(self, addr: int, mask: int, *, write: bool = False,
               owner: int = 0, allocate: bool = True) -> AccessOutcome:
        """Access one cacheline address on behalf of ``owner``.

        ``mask`` is the CAT way mask governing *allocation*; hits are
        honoured in any way.  With ``allocate=False`` a miss does not fill
        (used for device reads).
        """
        index, tag = self.geometry.frame_index(addr)
        tags = self._tags[index]
        self._clock += 1
        try:
            way = tags.index(tag)
        except ValueError:
            way = -1
        if way >= 0:
            self._stamp[index][way] = self._clock
            if write:
                self._dirty[index][way] = True
            return HIT
        if not allocate:
            return AccessOutcome(hit=False)
        return self._fill(index, tag, mask, write=write, owner=owner)

    def ddio_write(self, addr: int, ddio_mask: int) -> AccessOutcome:
        """Inbound device write: write update on hit, else write allocate.

        Returns an outcome whose ``hit`` flag distinguishes the two DDIO
        counter events (hit = write update, miss = write allocate).
        """
        return self.access(addr, ddio_mask, write=True, owner=DDIO_OWNER)

    def device_read(self, addr: int) -> AccessOutcome:
        """Outbound device read: served from LLC if present, never fills."""
        return self.access(addr, 0, allocate=False)

    # ------------------------------------------------------------------
    # Fill / eviction
    # ------------------------------------------------------------------
    def _fill(self, index: int, tag: int, mask: int, *, write: bool,
              owner: int) -> AccessOutcome:
        if mask == 0:
            raise ValueError("cannot allocate with an empty way mask")
        allowed = _ways_of_mask(mask & self.geometry.full_mask)
        if not allowed:
            raise ValueError("way mask selects no ways within geometry")
        tags = self._tags[index]
        stamps = self._stamp[index]
        victim = -1
        victim_stamp = None
        for way in allowed:
            if tags[way] == EMPTY:
                victim = way
                victim_stamp = None
                break
            if victim_stamp is None or stamps[way] < victim_stamp:
                victim = way
                victim_stamp = stamps[way]
        if victim_stamp is not None and self.policy == "random":
            # No invalid way: pick uniformly among the permitted ways.
            # Use the LCG's high bits — its low bits cycle with a tiny
            # period and would degenerate into round-robin.
            self._rand_state = (self._rand_state * 1103515245 + 12345) \
                & 0x7FFFFFFF
            victim = allowed[(self._rand_state >> 16) % len(allowed)]
        evicted = tags[victim] != EMPTY
        writeback = evicted and self._dirty[index][victim]
        victim_owner = self._owner[index][victim] if evicted else None
        tags[victim] = tag
        stamps[victim] = self._clock
        self._dirty[index][victim] = write
        self._owner[index][victim] = owner
        return AccessOutcome(hit=False, fill=True, evicted=evicted,
                             writeback=writeback, victim_owner=victim_owner)

    # ------------------------------------------------------------------
    # Introspection (tests, Fig. 11 timeline, debugging)
    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        index, tag = self.geometry.frame_index(addr)
        return tag in self._tags[index]

    def way_of(self, addr: int) -> "int | None":
        index, tag = self.geometry.frame_index(addr)
        try:
            return self._tags[index].index(tag)
        except ValueError:
            return None

    def occupancy_by_owner(self) -> "dict[int, int]":
        """Valid-line counts per owner id across the whole cache."""
        counts: "dict[int, int]" = {}
        for tags, owners in zip(self._tags, self._owner):
            for tag, owner in zip(tags, owners):
                if tag != EMPTY:
                    counts[owner] = counts.get(owner, 0) + 1
        return counts

    def valid_lines(self) -> int:
        return sum(1 for tags in self._tags for tag in tags if tag != EMPTY)

    def flush(self) -> None:
        """Invalidate every line (no writeback accounting)."""
        nways = self.geometry.ways
        for index in range(len(self._tags)):
            self._tags[index] = [EMPTY] * nways
            self._dirty[index] = [False] * nways
        self._clock = 0

"""Way-partitioned, sliced, LRU last-level cache simulator.

This is the substrate for everything in the reproduction.  It implements
the two hardware behaviours the paper's mechanics depend on:

* **CAT semantics** (paper footnote 1): an agent may only *allocate*
  (fill) lines into the ways its class-of-service mask selects, but a
  lookup *hits* in any way.
* **DDIO semantics** (paper Sec. II-B): an inbound device write performs an
  LLC lookup; if the line is present it is updated in place (*write
  update*, counted as a DDIO hit); if absent it is allocated into the DDIO
  way mask (*write allocate*, counted as a DDIO miss), evicting an LRU
  victim from those ways.  A device read never allocates.

The replacement policy is true LRU within the permitted ways, with
eviction preferring invalid ways.

Two interchangeable storage backends implement the same semantics:

* ``backend="scalar"`` — per-set Python lists, the reference
  implementation.  Fastest for one-at-a-time accesses.
* ``backend="array"``  — NumPy structure-of-arrays state with a
  vectorized :meth:`SlicedLLC.access_batch` engine that processes an
  entire address vector per call.  Outcomes are bit-identical to the
  scalar backend for the same access sequence (the equivalence suite in
  ``tests/test_llc_batch_equiv.py`` fuzzes this).

Batch ordering guarantee: ``access_batch`` behaves exactly as if its
addresses were issued one at a time in vector order.  Recency stamps are
pre-assigned from the batch position, and accesses mapping to the same
set are applied in vector order; accesses to different sets are
independent under LRU, so the engine may process them concurrently.
Under the ``"random"`` policy the replacement LCG is global state, so
batches degrade to an in-order loop to keep seed-for-seed equivalence.

The array backend additionally supports cheap speculation via a
copy-on-write journal: :meth:`SlicedLLC.snapshot` arms per-cell
pre-image logging at every mutation site, :meth:`SlicedLLC.rollback`
replays the journal in reverse and restores the scalar state
(clock/occupancy/cumulative stats/LCG), and :meth:`SlicedLLC.commit`
drops the journal.  The vectorized drains use this for optimistic
run-ahead chunk admission (execute a large chunk, roll back on budget
overshoot) — journal cost is proportional to the cells *touched*, not
to cache size.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..obs import tracer as _obs
from .geometry import CacheGeometry

#: Sentinel tag marking an invalid (empty) way.
EMPTY = -1

#: Owner id used for lines brought in by DDIO.
DDIO_OWNER = -2

#: ``victim_owner`` placeholder in batched outcomes when nothing was
#: evicted (owner ids are >= DDIO_OWNER, so this value never collides).
NO_VICTIM = -3

#: Large stamp sentinels for vectorized victim selection: invalid ways
#: sort below every real stamp, disallowed ways above.  Real stamps are
#: access counts and stay far below 2**62.
_STAMP_LO = -(1 << 62)
_STAMP_HI = 1 << 62

#: Batches smaller than this are processed with the per-access loop even
#: on the array backend — NumPy kernel-launch overhead dominates under it.
_VECTOR_MIN = 8

#: Same-set follower groups smaller than this are applied with the
#: per-access loop instead of further vectorized rounds.
_SEQ_MAX = 24

#: A vectorized follower round must cover at least this many distinct
#: sets to be worth a kernel launch; below it the whole remainder drains
#: through the per-access loop (a tiny round means a few sets carry deep
#: same-set chains, which would otherwise decay into one near-empty
#: round per chain link).
_ROUND_MIN = 12

#: Journal entry kinds: a recency/dirty update (hit path) or a full
#: cell replacement (fill path).  Entries store flat-slot pre-images.
_J_TOUCH = 0
_J_FILL = 1


@lru_cache(maxsize=4096)
def _ways_of_mask(mask: int) -> "tuple[int, ...]":
    """Way indices selected by a bitmask, cached per distinct mask."""
    return tuple(i for i in range(mask.bit_length()) if mask >> i & 1)


@dataclass(frozen=True)
class AccessOutcome:
    """Result of a single cache access.

    ``hit``          the line was present.
    ``fill``         a line was allocated (miss with allocation).
    ``evicted``      a valid line was displaced to make room.
    ``writeback``    the displaced line was dirty (memory write needed).
    ``victim_owner`` owner id of the displaced line (or ``None``).
    """

    hit: bool
    fill: bool = False
    evicted: bool = False
    writeback: bool = False
    victim_owner: "int | None" = None


#: Shared immutable outcomes for the two allocation-free cases (avoids a
#: dataclass allocation per access in the hot loops).
HIT = AccessOutcome(hit=True)
MISS = AccessOutcome(hit=False)


@dataclass
class BatchOutcome:
    """Struct-of-arrays result of one :meth:`SlicedLLC.access_batch`.

    Element ``i`` describes the outcome of address ``i`` of the batch,
    with the same meaning as the :class:`AccessOutcome` fields;
    ``victim_owner`` holds :data:`NO_VICTIM` where nothing was evicted.
    """

    hit: "np.ndarray"           # bool
    fill: "np.ndarray"          # bool
    evicted: "np.ndarray"       # bool
    writeback: "np.ndarray"     # bool
    victim_owner: "np.ndarray"  # int64, NO_VICTIM where not evicted

    def __len__(self) -> int:
        return len(self.hit)

    # -- aggregates (what the batched callers actually consume) ----------
    @property
    def hits(self) -> int:
        return int(np.count_nonzero(self.hit))

    @property
    def misses(self) -> int:
        return len(self.hit) - self.hits

    @property
    def fills(self) -> int:
        return int(np.count_nonzero(self.fill))

    @property
    def evictions(self) -> int:
        return int(np.count_nonzero(self.evicted))

    @property
    def writebacks(self) -> int:
        return int(np.count_nonzero(self.writeback))

    def victim_owner_counts(self) -> "dict[int, int]":
        """Evicted-line counts per owner id (empty if no evictions)."""
        owners = self.victim_owner[self.evicted]
        if owners.size == 0:
            return {}
        vals, counts = np.unique(owners, return_counts=True)
        return dict(zip(vals.tolist(), counts.tolist()))

    def outcome_at(self, i: int) -> AccessOutcome:
        """Element ``i`` as a scalar :class:`AccessOutcome` (tests)."""
        evicted = bool(self.evicted[i])
        return AccessOutcome(
            hit=bool(self.hit[i]), fill=bool(self.fill[i]), evicted=evicted,
            writeback=bool(self.writeback[i]),
            victim_owner=int(self.victim_owner[i]) if evicted else None)


def _empty_batch(n: int) -> BatchOutcome:
    return BatchOutcome(hit=np.zeros(n, dtype=bool),
                        fill=np.zeros(n, dtype=bool),
                        evicted=np.zeros(n, dtype=bool),
                        writeback=np.zeros(n, dtype=bool),
                        victim_owner=np.full(n, NO_VICTIM, dtype=np.int64))


def _as_element_array(value, n: int, dtype) -> "np.ndarray":
    """Broadcast a scalar or per-element sequence to shape ``(n,)``."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 0:
        return np.broadcast_to(arr, (n,))
    if arr.shape != (n,):
        raise ValueError(f"per-element argument has shape {arr.shape}, "
                         f"expected ({n},)")
    return arr


def _scalar_or_array(value, n: int, dtype):
    """Pass a scalar through; validate a per-element array's shape.

    The vector engine branches on scalar-vs-array instead of
    broadcasting — ``np.broadcast_to`` costs several microseconds per
    call, which dominates small batches.
    """
    if isinstance(value, np.ndarray) and value.ndim:
        if value.shape != (n,):
            raise ValueError(f"per-element argument has shape "
                             f"{value.shape}, expected ({n},)")
        if value.dtype != dtype:
            value = value.astype(dtype)
        return value
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim:
        if arr.shape != (n,):
            raise ValueError(f"per-element argument has shape {arr.shape}, "
                             f"expected ({n},)")
        return arr
    return arr.item()


def _pick(value, idx):
    """Index a per-element array, or pass a scalar through."""
    return value[idx] if isinstance(value, np.ndarray) else value


def _element_list(value, n: int, dtype) -> list:
    """Per-element python list of length ``n`` (scalar replicated)."""
    arr = np.asarray(value, dtype=dtype)
    if arr.ndim == 0:
        return [arr.item()] * n
    if arr.shape != (n,):
        raise ValueError(f"per-element argument has shape {arr.shape}, "
                         f"expected ({n},)")
    return arr.tolist()


class SlicedLLC:
    """Cacheline-accurate sliced LLC with per-way owner tracking.

    Owners are small integers identifying the agent (tenant id or
    ``DDIO_OWNER``) that allocated each line; they feed occupancy
    introspection (used by tests and the Fig. 11 timeline) and victim
    attribution.  Per-owner valid-line counts are maintained
    incrementally, so :meth:`occupancy_by_owner` and :meth:`valid_lines`
    are O(owners), not O(lines).

    ``policy`` selects the replacement policy within the permitted
    ways: ``"lru"`` (default, what the paper's analysis assumes) or
    ``"random"`` (a cheaper hardware policy, available for ablations —
    real Skylake LLCs use an adaptive policy between the two).

    ``backend`` selects the storage engine (see module docstring):
    ``"scalar"`` Python lists or ``"array"`` NumPy arrays with the
    vectorized batch path.
    """

    def __init__(self, geometry: CacheGeometry, *,
                 policy: str = "lru", seed: int = 11,
                 backend: str = "scalar") -> None:
        if policy not in ("lru", "random"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        if backend not in ("scalar", "array"):
            raise ValueError(f"unknown LLC backend {backend!r}")
        self.geometry = geometry
        self.policy = policy
        self.backend = backend
        nsets, nways = geometry.total_sets, geometry.ways
        if backend == "scalar":
            # One flat list per set keeps the per-access work at a C-speed
            # ``list.index`` plus a tiny scan of <= `ways` entries.
            self._tags = [[EMPTY] * nways for _ in range(nsets)]
            self._stamp = [[0] * nways for _ in range(nsets)]
            self._dirty = [[False] * nways for _ in range(nsets)]
            self._owner = [[0] * nways for _ in range(nsets)]
        else:
            self._tags = np.full((nsets, nways), EMPTY, dtype=np.int64)
            self._stamp = np.zeros((nsets, nways), dtype=np.int64)
            self._dirty = np.zeros((nsets, nways), dtype=bool)
            self._owner = np.zeros((nsets, nways), dtype=np.int64)
            self._way_range = np.arange(nways, dtype=np.int64)
            # Flat views over the (sets, ways) state: the batch engine
            # addresses cells as ``set * ways + way`` with single-index
            # fancy operations, which are cheaper than index pairs.
            self._nways = nways
            self._tags_flat = self._tags.reshape(-1)
            self._stamp_flat = self._stamp.reshape(-1)
            self._dirty_flat = self._dirty.reshape(-1)
            self._owner_flat = self._owner.reshape(-1)
            self._invalid_key = _STAMP_LO + self._way_range
            self._total_lines = nsets * nways
            # Per-mask cache of the (ways,) allowed-way row used by the
            # batch victim key (way masks are a handful of CLOS values).
            self._allowed_rows: "dict[int, np.ndarray]" = {}
            # Per-set scratch for the batch engine's sort-free
            # first-occurrence scatter (contents are never read beyond
            # the cells a batch writes, so no init needed).
            self._first_scratch = np.empty(nsets, dtype=np.int64)
        self._clock = 0
        # Cheap deterministic LCG for the random policy (avoids numpy
        # overhead in the per-access hot path).
        self._rand_state = seed or 1
        # Copy-on-write journal: None when inactive; a list of
        # (_J_TOUCH/_J_FILL, slots, pre-images...) entries while a
        # snapshot is armed.  Mutation sites append pre-images before
        # writing, so rollback replays them in reverse.
        self._journal: "list[tuple] | None" = None
        self._snap: "tuple | None" = None
        # Incremental occupancy accounting: owner id -> valid lines.
        self._occ: "dict[int, int]" = {}
        self._valid = 0
        # Cumulative event counters (cheap ints, identical across
        # backends); the engine samples per-quantum deltas for tracing.
        self.stat_fills = 0
        self.stat_evictions = 0
        self.stat_writebacks = 0
        self.stat_ddio_hits = 0
        self.stat_ddio_misses = 0

    # ------------------------------------------------------------------
    # Speculation: copy-on-write snapshot / rollback
    # ------------------------------------------------------------------
    @property
    def can_snapshot(self) -> bool:
        """Whether this backend supports :meth:`snapshot` (array only)."""
        return self.backend == "array"

    def snapshot(self) -> None:
        """Arm copy-on-write journaling of every subsequent mutation.

        Only the array backend supports snapshots (the journal stores
        flat-slot pre-images of the structure-of-arrays state).  Exactly
        one snapshot may be active at a time; close it with
        :meth:`rollback` or :meth:`commit`.
        """
        if self.backend != "array":
            raise RuntimeError("snapshot() requires the array backend")
        if self._journal is not None:
            raise RuntimeError("a snapshot is already active")
        self._journal = []
        self._snap = (self._clock, self._valid, dict(self._occ),
                      self.stat_fills, self.stat_evictions,
                      self.stat_writebacks, self.stat_ddio_hits,
                      self.stat_ddio_misses, self._rand_state)

    def rollback(self) -> None:
        """Restore the state captured by the active :meth:`snapshot`.

        Cell pre-images are replayed newest-first; duplicate slots in
        one entry are safe because every pre-image was read before any
        write of its site, so duplicates carry identical values.
        """
        journal = self._journal
        if journal is None:
            raise RuntimeError("rollback() without an active snapshot")
        tags = self._tags_flat
        stamps = self._stamp_flat
        dirty = self._dirty_flat
        owner = self._owner_flat
        for entry in reversed(journal):
            if entry[0] == _J_TOUCH:
                _, slots, spre, dpre = entry
                stamps[slots] = spre
                dirty[slots] = dpre
            else:
                _, slots, tpre, spre, dpre, opre = entry
                tags[slots] = tpre
                stamps[slots] = spre
                dirty[slots] = dpre
                owner[slots] = opre
        (self._clock, self._valid, occ, self.stat_fills,
         self.stat_evictions, self.stat_writebacks, self.stat_ddio_hits,
         self.stat_ddio_misses, self._rand_state) = self._snap
        self._occ = occ
        self._journal = None
        self._snap = None

    def commit(self) -> None:
        """Drop the active snapshot's journal, keeping all mutations."""
        if self._journal is None:
            raise RuntimeError("commit() without an active snapshot")
        self._journal = None
        self._snap = None

    # ------------------------------------------------------------------
    # Core access paths
    # ------------------------------------------------------------------
    def access(self, addr: int, mask: int, *, write: bool = False,
               owner: int = 0, allocate: bool = True) -> AccessOutcome:
        """Access one cacheline address on behalf of ``owner``.

        ``mask`` is the CAT way mask governing *allocation*; hits are
        honoured in any way.  With ``allocate=False`` a miss does not fill
        (used for device reads).
        """
        index, tag = self.geometry.frame_index(addr)
        self._clock += 1
        if self.backend == "scalar":
            tags = self._tags[index]
            try:
                way = tags.index(tag)
            except ValueError:
                way = -1
            if way >= 0:
                self._stamp[index][way] = self._clock
                if write:
                    self._dirty[index][way] = True
                return HIT
        else:
            tags = self._tags[index].tolist()
            try:
                way = tags.index(tag)
            except ValueError:
                way = -1
            if way >= 0:
                journal = self._journal
                if journal is not None:
                    slot = index * self._nways + way
                    journal.append((_J_TOUCH, slot,
                                    int(self._stamp_flat[slot]),
                                    bool(self._dirty_flat[slot])))
                self._stamp[index, way] = self._clock
                if write:
                    self._dirty[index, way] = True
                return HIT
        if not allocate:
            return MISS
        return self._fill(index, tag, mask, write=write, owner=owner)

    def ddio_write(self, addr: int, ddio_mask: int) -> AccessOutcome:
        """Inbound device write: write update on hit, else write allocate.

        Returns an outcome whose ``hit`` flag distinguishes the two DDIO
        counter events (hit = write update, miss = write allocate).
        """
        outcome = self.access(addr, ddio_mask, write=True, owner=DDIO_OWNER)
        if outcome.hit:
            self.stat_ddio_hits += 1
        else:
            self.stat_ddio_misses += 1
        return outcome

    def device_read(self, addr: int) -> AccessOutcome:
        """Outbound device read: served from LLC if present, never fills."""
        return self.access(addr, 0, allocate=False)

    # ------------------------------------------------------------------
    # Batched access paths
    # ------------------------------------------------------------------
    def access_batch(self, addrs, mask, *, write=False, owner=0,
                     allocate=True) -> BatchOutcome:
        """Access a vector of cacheline addresses in vector order.

        ``mask``, ``write``, ``owner`` and ``allocate`` may each be a
        scalar (applied to every element) or a per-element array.
        Outcomes are bit-identical to issuing the same sequence through
        :meth:`access` one address at a time, on either backend (see the
        module docstring for the ordering guarantee).
        """
        addrs = np.ascontiguousarray(addrs, dtype=np.int64)
        n = addrs.shape[0]
        if n == 0:
            return _empty_batch(0)
        if (self.backend == "array" and self.policy == "lru"
                and n >= _VECTOR_MIN):
            return self._access_batch_vector(addrs, mask, write, owner,
                                             allocate)
        return self._access_batch_loop(addrs, mask, write, owner, allocate)

    def ddio_write_batch(self, addrs, ddio_mask: int) -> BatchOutcome:
        """Batched :meth:`ddio_write` over an address vector."""
        out = self.access_batch(addrs, ddio_mask, write=True,
                                owner=DDIO_OWNER)
        hits = out.hits
        self.stat_ddio_hits += hits
        self.stat_ddio_misses += len(out) - hits
        return out

    def device_read_batch(self, addrs) -> BatchOutcome:
        """Batched :meth:`device_read` over an address vector."""
        return self.access_batch(addrs, 0, allocate=False)

    def _access_batch_loop(self, addrs, mask, write, owner,
                           allocate) -> BatchOutcome:
        """Reference batch path: per-access loop in vector order."""
        n = addrs.shape[0]
        out = _empty_batch(n)
        mask = _element_list(mask, n, np.int64)
        write = _element_list(write, n, bool)
        owner = _element_list(owner, n, np.int64)
        allocate = _element_list(allocate, n, bool)
        hit = out.hit
        fill = out.fill
        evicted = out.evicted
        writeback = out.writeback
        victim_owner = out.victim_owner
        for i, addr in enumerate(addrs.tolist()):
            o = self.access(addr, mask[i], write=write[i], owner=owner[i],
                            allocate=allocate[i])
            if o.hit:
                hit[i] = True
            elif o.fill:
                fill[i] = True
                if o.evicted:
                    evicted[i] = True
                    victim_owner[i] = o.victim_owner
                    if o.writeback:
                        writeback[i] = True
        return out

    def _access_batch_vector(self, addrs, mask, write, owner,
                             allocate) -> BatchOutcome:
        """Vectorized set-grouped batch engine (array backend, LRU)."""
        n = addrs.shape[0]
        geom = self.geometry
        index, tag = geom.frame_index_batch(addrs)
        clk0 = self._clock
        self._clock = clk0 + n
        clk = np.arange(clk0 + 1, clk0 + n + 1, dtype=np.int64)
        mask = _scalar_or_array(mask, n, np.int64)
        write = _scalar_or_array(write, n, bool)
        owner = _scalar_or_array(owner, n, np.int64)
        allocate = _scalar_or_array(allocate, n, bool)
        ways = self._nways

        # One snapshot lookup answers every access whose set has not
        # been filled earlier in the batch: hits never modify the tag
        # array, so if the whole batch hits we are done after updating
        # recency, and otherwise the snapshot still resolves the first
        # access to each set (the bulk of every realistic stream).  The
        # (n, ways) compare is consumed immediately into the per-access
        # hit/way vectors shared by every branch below — later passes
        # work on 1-D gathers of these instead of re-deriving (or
        # fancy-indexing) the 2-D equality matrix.
        row_tags = self._tags[index]
        eq = row_tags == tag[:, None]
        # ``any(axis=1)`` over 11-wide rows costs more than argmax plus
        # a flat re-check (axis reductions over short rows are slow), so
        # derive the hit vector from the winning way instead.
        way0 = eq.argmax(axis=1)
        pos = np.arange(n, dtype=np.int64)
        hit0 = row_tags.reshape(-1)[pos * ways + way0] == tag
        if hit0.all():
            out = _empty_batch(n)
            slot = index * ways + way0
            journal = self._journal
            if journal is not None:
                # Duplicate slots gather the same (pre-batch) pre-image
                # for every occurrence; reverse replay lands it last, so
                # rollback is exact without deduplication.
                journal.append((_J_TOUCH, slot, self._stamp_flat[slot],
                                self._dirty_flat[slot]))
            # Fancy assignment keeps the *last* value per repeated index
            # (documented indexing semantics), which is exactly the
            # stamp the scalar loop would leave on duplicate slots.
            self._stamp_flat[slot] = clk
            self._set_dirty(slot, write)
            out.hit[:] = True
            return out

        # Group by set, without sorting: scatter each access's batch
        # position into a per-set cell in *reverse* batch order — fancy
        # assignment keeps the last value written per repeated index,
        # so after the reversed pass each touched cell holds its set's
        # earliest position.  An access is its set's first touch iff
        # the cell holds its own position.  First touches are distinct
        # sets, hence one conflict-free vectorized round; followers
        # apply afterwards in batch order, so same-set accesses land in
        # vector order (cross-set order is irrelevant under LRU because
        # the pre-assigned clocks already encode batch position).
        alloc_mask = mask & geom.full_mask
        fpos = self._first_scratch
        fpos[index[::-1]] = pos[::-1]
        fsel = fpos[index]
        first = fsel == pos
        out = _empty_batch(n)
        if first.all():
            self._apply_round(None, index, way0, hit0, tag, clk,
                              alloc_mask, mask, write, owner, allocate,
                              out, row_tags=row_tags)
            return out
        sel0 = np.flatnonzero(first)
        self._apply_round(sel0, index[sel0], way0[sel0],
                          hit0[sel0], tag, clk, alloc_mask, mask, write,
                          owner, allocate, out, row_tags=row_tags[sel0])
        rest = np.flatnonzero(~first)
        rrow = index[rest]
        # Same-address chains (e.g. one hot flow hammering its EMC
        # line): when every follower repeats its set's first tag and
        # that first access left the line resident (hit or fill), every
        # follower is a guaranteed hit on that line — no other tag
        # touches these sets inside the batch, so nothing can evict it
        # mid-chain.  One vectorized touch replaces the per-access
        # drain; duplicate slots take the latest stamp via last-wins
        # fancy assignment, matching the scalar loop.
        fsel_r = fsel[rest]
        if bool((tag[rest] == tag[fsel_r]).all()) and \
                bool((out.hit[fsel_r] | out.fill[fsel_r]).all()):
            eq_r = self._tags[rrow] == tag[rest][:, None]
            slot = rrow * ways + eq_r.argmax(axis=1)
            journal = self._journal
            if journal is not None:
                # Pre-images are post-first-round values; reverse replay
                # restores them before the first round's own entries, so
                # per-slot chronology is preserved.
                journal.append((_J_TOUCH, slot, self._stamp_flat[slot],
                                self._dirty_flat[slot]))
            self._stamp_flat[slot] = clk[rest]
            self._set_dirty(slot, _pick(write, rest))
            out.hit[rest] = True
            return out
        if rest.size < _SEQ_MAX:
            self._apply_sequential(rest.tolist(), index, tag, clk,
                                   alloc_mask, mask, write, owner,
                                   allocate, out)
            return out
        # Mixed-tag collision load: rank rounds over the remainder only
        # (entries with rank r are the (r+2)-th access to their set).
        # Once the remainder shrinks below the vectorization payoff —
        # or a round itself is too small to amortize a kernel launch —
        # the rest is applied one access at a time in its set-major,
        # batch-position order, which preserves per-set access order.
        ro = rest[np.argsort(rrow, kind="stable")]
        si = index[ro]
        newset = np.empty(ro.size, dtype=bool)
        newset[0] = True
        np.not_equal(si[1:], si[:-1], out=newset[1:])
        pos_r = np.arange(ro.size, dtype=np.int64)
        rank = pos_r - pos_r[newset][np.cumsum(newset) - 1]
        rest = ro
        r = 0
        while rest.size:
            if rest.size < _SEQ_MAX:
                self._apply_sequential(rest.tolist(), index, tag, clk,
                                       alloc_mask, mask, write, owner,
                                       allocate, out)
                break
            head = rank == r
            sel = rest[head]
            if sel.shape[0] < _ROUND_MIN:
                # A tiny round means a few sets carry long chains: the
                # whole remainder drains faster access-at-a-time than
                # as dozens of near-empty vectorized rounds.
                self._apply_sequential(rest.tolist(), index, tag, clk,
                                       alloc_mask, mask, write, owner,
                                       allocate, out)
                break
            rows = index[sel]
            eq_r = self._tags[rows] == tag[sel][:, None]
            self._apply_round(sel, rows, eq_r.argmax(axis=1),
                              eq_r.any(axis=1), tag, clk, alloc_mask,
                              mask, write, owner, allocate, out)
            keep = ~head
            rest = rest[keep]
            rank = rank[keep]
            r += 1
        return out

    def _set_dirty(self, slot, write) -> None:
        """Mark ``slot`` cells dirty where ``write`` (scalar-aware)."""
        if isinstance(write, np.ndarray):
            if write.any():
                self._dirty_flat[slot[write]] = True
        elif write:
            self._dirty_flat[slot] = True

    def _apply_sequential(self, sel, index, tag, clk, alloc_mask, raw_mask,
                          write, owner, allocate, out) -> None:
        """Apply the set-colliding remainder of a batch in order (LRU)."""
        tags_m = self._tags
        stamp_m = self._stamp
        dirty_m = self._dirty
        owner_m = self._owner
        occ = self._occ
        journal = self._journal
        ways = self._nways
        for i in sel:
            row = int(index[i])
            tg = int(tag[i])
            row_tags = tags_m[row].tolist()
            try:
                way = row_tags.index(tg)
            except ValueError:
                way = -1
            if way >= 0:
                if journal is not None:
                    journal.append((_J_TOUCH, row * ways + way,
                                    int(stamp_m[row, way]),
                                    bool(dirty_m[row, way])))
                stamp_m[row, way] = clk[i]
                if _pick(write, i):
                    dirty_m[row, way] = True
                out.hit[i] = True
                continue
            if not _pick(allocate, i):
                continue
            m = int(_pick(alloc_mask, i))
            if m == 0:
                if int(_pick(raw_mask, i)) == 0:
                    raise ValueError("cannot allocate with an empty way mask")
                raise ValueError("way mask selects no ways within geometry")
            allowed = _ways_of_mask(m)
            stamps = stamp_m[row].tolist()
            victim = -1
            victim_stamp = None
            for w in allowed:
                if row_tags[w] == EMPTY:
                    victim = w
                    victim_stamp = None
                    break
                if victim_stamp is None or stamps[w] < victim_stamp:
                    victim = w
                    victim_stamp = stamps[w]
            evicted = row_tags[victim] != EMPTY
            new_owner = int(_pick(owner, i))
            out.fill[i] = True
            self.stat_fills += 1
            if evicted:
                out.evicted[i] = True
                self.stat_evictions += 1
                victim_owner = int(owner_m[row, victim])
                out.victim_owner[i] = victim_owner
                if dirty_m[row, victim]:
                    out.writeback[i] = True
                    self.stat_writebacks += 1
                left = occ[victim_owner] - 1
                if left:
                    occ[victim_owner] = left
                else:
                    del occ[victim_owner]
            else:
                self._valid += 1
            occ[new_owner] = occ.get(new_owner, 0) + 1
            if journal is not None:
                journal.append((_J_FILL, row * ways + victim,
                                row_tags[victim], stamps[victim],
                                bool(dirty_m[row, victim]),
                                int(owner_m[row, victim])))
            tags_m[row, victim] = tg
            stamp_m[row, victim] = clk[i]
            dirty_m[row, victim] = bool(_pick(write, i))
            owner_m[row, victim] = new_owner

    def _apply_round(self, sel, rows, way, hit, tag, clk,
                     alloc_mask, raw_mask, write, owner, allocate,
                     out, row_tags=None) -> None:
        """Apply one conflict-free (distinct-set) group of accesses.

        ``sel`` holds the group's batch positions (``None`` meaning the
        whole batch in position order); ``rows`` the set indices, and
        ``way``/``hit`` the group's resolved lookup (callers compute
        them from the batch-entry snapshot for first-touch rounds, or
        from current state for later rounds).  ``way`` may be ``None``
        when the group has no hits (it is only consumed on the hit
        paths).  ``row_tags``, when given, is the group's already
        gathered ``self._tags[rows]`` — valid for first-touch rounds,
        where no earlier fill has modified these sets — and spares the
        miss path a second random gather of the tag table.  Stamps are
        gathered here for the group's *misses* only — a round that
        mostly hits never touches the 2-D state at all.
        """
        ways = self._nways
        m = rows.shape[0]
        nhit = int(np.count_nonzero(hit))
        journal = self._journal
        if nhit:
            if nhit == m:
                slot = rows * ways + way
                if journal is not None:
                    journal.append((_J_TOUCH, slot, self._stamp_flat[slot],
                                    self._dirty_flat[slot]))
                self._stamp_flat[slot] = clk if sel is None else clk[sel]
                self._set_dirty(slot, _pick(write, sel)
                                if sel is not None else write)
                if sel is None:
                    out.hit[:] = True
                else:
                    out.hit[sel] = True
                return
            hit_sel = np.flatnonzero(hit) if sel is None else sel[hit]
            slot = rows[hit] * ways + way[hit]
            if journal is not None:
                journal.append((_J_TOUCH, slot, self._stamp_flat[slot],
                                self._dirty_flat[slot]))
            self._stamp_flat[slot] = clk[hit_sel]
            self._set_dirty(slot, _pick(write, hit_sel))
            out.hit[hit_sel] = True
        miss = ~hit
        if isinstance(allocate, np.ndarray):
            miss &= allocate if sel is None else allocate[sel]
        elif not allocate:
            return
        miss_sel = np.flatnonzero(miss) if sel is None else sel[miss]
        k = miss_sel.shape[0]
        if k == 0:
            return
        miss_rows = rows if k == m else rows[miss]
        amask = _pick(alloc_mask, miss_sel)
        if isinstance(amask, np.ndarray):
            a0 = amask[0]
            uniform = bool((amask == a0).all())
        else:
            a0 = amask
            uniform = True
        if uniform:
            a0 = int(a0)
            if a0 == 0:
                self._raise_mask_error(_pick(raw_mask, miss_sel))
            # (ways,)-shaped row; ufunc broadcasting against the
            # (k, ways) stamps below is free.
            cached = self._allowed_rows.get(a0)
            if cached is None:
                allowed = (a0 >> self._way_range) & 1 != 0
                # Disallowed ways as an OR-able sentinel row: stamps are
                # non-negative, so ``stamp | _STAMP_HI`` always exceeds
                # every allowed key (which stays below the sentinel bit).
                cached = (allowed, np.where(allowed, 0, _STAMP_HI),
                          tuple(int(w) for w in np.flatnonzero(allowed)))
                self._allowed_rows[a0] = cached
            allowed, dis_row, aw = cached
        else:
            allowed = (amask[:, None] >> self._way_range) & 1 != 0
            dis_row = aw = None
            if not allowed.any(axis=1).all():
                self._raise_mask_error(_pick(raw_mask, miss_sel))
        # Victim selection: invalid allowed ways sort first (lowest way
        # index wins), then LRU stamp among allowed ways; first-match
        # tie-breaks mirror the scalar scan order.  Narrow uniform masks
        # (e.g. the two DDIO ways) scan their allowed columns with flat
        # 1-D gathers — short-axis ``argmin`` over (k, ways) costs far
        # more than a handful of length-k passes, and the per-way tag
        # and stamp rows are never materialized.  Wide masks build the
        # per-way key and let ``argmin`` pick; a full cache (no invalid
        # ways anywhere) skips the tag comparison entirely.
        full = self._valid == self._total_lines
        base = miss_rows * ways
        tags_flat = self._tags_flat
        if aw is not None and len(aw) <= 4:
            stamp_flat = self._stamp_flat
            w = aw[0]
            fslot = base + w
            if full:
                best = stamp_flat[fslot]
                for w in aw[1:]:
                    col = base + w
                    cand = stamp_flat[col]
                    better = cand < best
                    best = np.where(better, cand, best)
                    fslot = np.where(better, col, fslot)
            else:
                best = np.where(tags_flat[fslot] == EMPTY,
                                _STAMP_LO + w, stamp_flat[fslot])
                for w in aw[1:]:
                    col = base + w
                    cand = np.where(tags_flat[col] == EMPTY,
                                    _STAMP_LO + w, stamp_flat[col])
                    better = cand < best
                    best = np.where(better, cand, best)
                    fslot = np.where(better, col, fslot)
        else:
            stamps = self._stamp[miss_rows]
            if full:
                key = stamps | dis_row if dis_row is not None else \
                    np.where(allowed, stamps, _STAMP_HI)
            else:
                if row_tags is None:
                    # Later rounds: tags may have changed since batch
                    # entry.
                    mtags = self._tags[miss_rows]
                else:
                    mtags = row_tags if k == m else row_tags[miss]
                key = np.where(mtags == EMPTY, self._invalid_key, stamps)
                if aw is None or len(aw) != ways:
                    # Partial mask: push disallowed ways past every
                    # valid key (the key can be negative, so the OR
                    # trick does not apply here).
                    key = np.where(allowed, key, _STAMP_HI)
            fslot = base + key.argmin(axis=1)
        tags_flat = self._tags_flat
        dirty_flat = self._dirty_flat
        dirty_pre = dirty_flat[fslot]
        victim_owner = self._owner_flat[fslot]
        new_owner = _pick(owner, miss_sel)
        if journal is not None or not full:
            victim_tags = tags_flat[fslot]
        if journal is not None:
            # Flat-slot gathers of the pre-write state (written below).
            journal.append((_J_FILL, fslot, victim_tags,
                            self._stamp_flat[fslot], dirty_pre,
                            victim_owner))
        if not full:
            evicted = victim_tags != EMPTY
        tags_flat[fslot] = tag[miss_sel]
        self._stamp_flat[fslot] = clk[miss_sel]
        dirty_flat[fslot] = _pick(write, miss_sel)
        self._owner_flat[fslot] = new_owner
        out.fill[miss_sel] = True
        self.stat_fills += k
        if full:
            # Every fill evicts: no per-element valid/evicted masking.
            out.evicted[miss_sel] = True
            out.writeback[miss_sel] = dirty_pre
            out.victim_owner[miss_sel] = victim_owner
            self.stat_evictions += k
            self.stat_writebacks += int(np.count_nonzero(dirty_pre))
            self._occ_update(new_owner, k, victim_owner)
            return
        writeback = evicted & dirty_pre
        out.evicted[miss_sel] = evicted
        out.writeback[miss_sel] = writeback
        ev_owner = victim_owner[evicted]
        out.victim_owner[miss_sel[evicted]] = ev_owner
        n_evicted = int(np.count_nonzero(evicted))
        self.stat_evictions += n_evicted
        self.stat_writebacks += int(np.count_nonzero(writeback))
        # Occupancy bookkeeping.
        self._valid += k - n_evicted
        self._occ_update(new_owner, k, ev_owner)

    def _raise_mask_error(self, raw_masks) -> None:
        empty = (bool((raw_masks == 0).any())
                 if isinstance(raw_masks, np.ndarray) else raw_masks == 0)
        if empty:
            raise ValueError("cannot allocate with an empty way mask")
        raise ValueError("way mask selects no ways within geometry")

    def _occ_update(self, filled_owners, n_filled, evicted_owners) -> None:
        occ = self._occ
        if not isinstance(filled_owners, np.ndarray):
            f0 = int(filled_owners)
            occ[f0] = occ.get(f0, 0) + n_filled
        else:
            f0 = int(filled_owners[0])
            if bool((filled_owners == f0).all()):
                occ[f0] = occ.get(f0, 0) + n_filled
            else:
                vals, counts = np.unique(filled_owners, return_counts=True)
                for o, c in zip(vals.tolist(), counts.tolist()):
                    occ[o] = occ.get(o, 0) + c
        if evicted_owners.size:
            e0 = int(evicted_owners[0])
            if bool((evicted_owners == e0).all()):
                left = occ[e0] - evicted_owners.shape[0]
                if left:
                    occ[e0] = left
                else:
                    del occ[e0]
                return
            vals, counts = np.unique(evicted_owners, return_counts=True)
            for o, c in zip(vals.tolist(), counts.tolist()):
                left = occ[o] - c
                if left:
                    occ[o] = left
                else:
                    del occ[o]

    # ------------------------------------------------------------------
    # Fill / eviction
    # ------------------------------------------------------------------
    def _fill(self, index: int, tag: int, mask: int, *, write: bool,
              owner: int) -> AccessOutcome:
        if mask == 0:
            raise ValueError("cannot allocate with an empty way mask")
        allowed = _ways_of_mask(mask & self.geometry.full_mask)
        if not allowed:
            raise ValueError("way mask selects no ways within geometry")
        scalar = self.backend == "scalar"
        if scalar:
            tags = self._tags[index]
            stamps = self._stamp[index]
        else:
            tags = self._tags[index].tolist()
            stamps = self._stamp[index].tolist()
        victim = -1
        victim_stamp = None
        for way in allowed:
            if tags[way] == EMPTY:
                victim = way
                victim_stamp = None
                break
            if victim_stamp is None or stamps[way] < victim_stamp:
                victim = way
                victim_stamp = stamps[way]
        if victim_stamp is not None and self.policy == "random":
            # No invalid way: pick uniformly among the permitted ways.
            # Use the LCG's high bits — its low bits cycle with a tiny
            # period and would degenerate into round-robin.
            self._rand_state = (self._rand_state * 1103515245 + 12345) \
                & 0x7FFFFFFF
            victim = allowed[(self._rand_state >> 16) % len(allowed)]
        evicted = tags[victim] != EMPTY
        if scalar:
            writeback = evicted and self._dirty[index][victim]
            victim_owner = self._owner[index][victim] if evicted else None
            tags[victim] = tag
            stamps[victim] = self._clock
            self._dirty[index][victim] = write
            self._owner[index][victim] = owner
        else:
            writeback = evicted and bool(self._dirty[index, victim])
            victim_owner = int(self._owner[index, victim]) if evicted \
                else None
            journal = self._journal
            if journal is not None:
                journal.append((_J_FILL, index * self._nways + victim,
                                tags[victim], stamps[victim],
                                bool(self._dirty[index, victim]),
                                int(self._owner[index, victim])))
            self._tags[index, victim] = tag
            self._stamp[index, victim] = self._clock
            self._dirty[index, victim] = write
            self._owner[index, victim] = owner
        # Occupancy bookkeeping.
        if evicted:
            left = self._occ[victim_owner] - 1
            if left:
                self._occ[victim_owner] = left
            else:
                del self._occ[victim_owner]
        else:
            self._valid += 1
        self._occ[owner] = self._occ.get(owner, 0) + 1
        self.stat_fills += 1
        if evicted:
            self.stat_evictions += 1
            if writeback:
                self.stat_writebacks += 1
        return AccessOutcome(hit=False, fill=True, evicted=evicted,
                             writeback=writeback, victim_owner=victim_owner)

    # ------------------------------------------------------------------
    # Introspection (tests, Fig. 11 timeline, debugging)
    # ------------------------------------------------------------------
    def contains(self, addr: int) -> bool:
        index, tag = self.geometry.frame_index(addr)
        if self.backend == "scalar":
            return tag in self._tags[index]
        return bool((self._tags[index] == tag).any())

    def way_of(self, addr: int) -> "int | None":
        index, tag = self.geometry.frame_index(addr)
        if self.backend == "scalar":
            tags = self._tags[index]
        else:
            tags = self._tags[index].tolist()
        try:
            return tags.index(tag)
        except ValueError:
            return None

    def occupancy_by_owner(self) -> "dict[int, int]":
        """Valid-line counts per owner id across the whole cache.

        O(owners): served from the incrementally maintained counters.
        """
        return dict(self._occ)

    def valid_lines(self) -> int:
        return self._valid

    def stats(self) -> "dict[str, int]":
        """Cumulative event counters (identical on both backends).

        Counters survive :meth:`flush` — they describe the access
        history, not the current contents.  Consumers wanting a rate
        sample the deltas (see ``Simulation._trace_quantum``).
        """
        return {"fills": self.stat_fills,
                "evictions": self.stat_evictions,
                "writebacks": self.stat_writebacks,
                "ddio_hits": self.stat_ddio_hits,
                "ddio_misses": self.stat_ddio_misses}

    def flush(self) -> None:
        """Invalidate every line (no writeback accounting)."""
        if self._journal is not None:
            raise RuntimeError("flush() during an active snapshot")
        # A cold site on no hot loop: the module trampoline is a no-op
        # unless a tracer is installed and live.
        _obs.instant_hook("llc", "flush", valid_lines=self._valid)
        if self.backend == "scalar":
            nways = self.geometry.ways
            for index in range(len(self._tags)):
                self._tags[index] = [EMPTY] * nways
                self._dirty[index] = [False] * nways
        else:
            self._tags.fill(EMPTY)
            self._dirty.fill(False)
        self._clock = 0
        self._occ = {}
        self._valid = 0

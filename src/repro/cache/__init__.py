"""Sliced, way-partitioned LLC simulator with CAT and DDIO semantics."""

from .cat import (CatController, CatError, ClassOfService, is_contiguous,
                  mask_span, mask_ways, ways_to_mask)
from .ddio import (DEFAULT_DDIO_WAYS, IIO_LLC_WAYS_MSR, DdioConfig,
                   ddio_mask_for_ways, default_ddio_mask)
from .geometry import TINY_LLC, XEON_6140_LLC, CacheGeometry
from .llc import DDIO_OWNER, EMPTY, AccessOutcome, SlicedLLC

__all__ = [
    "AccessOutcome", "CacheGeometry", "CatController", "CatError",
    "ClassOfService", "DdioConfig", "DDIO_OWNER", "DEFAULT_DDIO_WAYS",
    "EMPTY", "IIO_LLC_WAYS_MSR", "SlicedLLC", "TINY_LLC", "XEON_6140_LLC",
    "ddio_mask_for_ways", "default_ddio_mask", "is_contiguous", "mask_span",
    "mask_ways", "ways_to_mask",
]

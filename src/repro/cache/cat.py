"""Cache Allocation Technology (CAT) model: classes of service and masks.

Intel RDT exposes LLC partitioning through *classes of service* (CLOS):
each CLOS holds a capacity bitmask (CBM) of LLC ways, and each core is
associated with one CLOS.  Hardware enforces two rules this module
validates (paper Sec. II-A and footnote 1):

* a CBM must select at least one way, and
* the selected ways must be consecutive.

The paper additionally notes that a core restricted to a CBM can still
*hit* in any way — that behaviour lives in :mod:`repro.cache.llc`; this
module is pure bookkeeping, mirroring what the pqos library does on real
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def ways_to_mask(first_way: int, count: int) -> int:
    """Bitmask selecting ``count`` consecutive ways starting at ``first_way``."""
    if first_way < 0 or count < 1:
        raise ValueError("need first_way >= 0 and count >= 1")
    return ((1 << count) - 1) << first_way


def mask_ways(mask: int) -> "list[int]":
    """Way indices selected by ``mask``, ascending."""
    return [i for i in range(mask.bit_length()) if mask >> i & 1]


def is_contiguous(mask: int) -> bool:
    """True if the set bits of ``mask`` form one consecutive run."""
    if mask <= 0:
        return False
    shifted = mask >> (mask & -mask).bit_length() - 1
    return (shifted & (shifted + 1)) == 0


def mask_span(mask: int) -> "tuple[int, int]":
    """``(lowest_way, way_count)`` of a contiguous mask."""
    if not is_contiguous(mask):
        raise ValueError(f"mask {mask:#x} is not contiguous")
    low = (mask & -mask).bit_length() - 1
    return low, bin(mask).count("1")


class CatError(ValueError):
    """Raised for CBM or association violations."""


@dataclass
class ClassOfService:
    """One CLOS: an id and its current capacity bitmask."""

    cos_id: int
    mask: int


@dataclass
class CatController:
    """Software model of the CAT MSR surface.

    Tracks CLOS masks and core->CLOS association, enforcing the hardware
    CBM rules.  ``num_ways`` bounds every mask.  CLOS 0 is the default
    class every core starts in, with the full mask — matching RDT reset
    state.
    """

    num_ways: int
    num_cos: int = 16
    _cos: "dict[int, ClassOfService]" = field(default_factory=dict)
    _assoc: "dict[int, int]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_ways < 1:
            raise CatError("num_ways must be >= 1")
        full = (1 << self.num_ways) - 1
        for cos_id in range(self.num_cos):
            self._cos[cos_id] = ClassOfService(cos_id, full)

    # -- CBM programming ------------------------------------------------
    def set_mask(self, cos_id: int, mask: int) -> None:
        self._check_cos(cos_id)
        self.validate_mask(mask)
        self._cos[cos_id].mask = mask

    def get_mask(self, cos_id: int) -> int:
        self._check_cos(cos_id)
        return self._cos[cos_id].mask

    def validate_mask(self, mask: int) -> None:
        if mask == 0:
            raise CatError("CBM must select at least one way")
        if mask >> self.num_ways:
            raise CatError(
                f"CBM {mask:#x} exceeds the {self.num_ways}-way cache")
        if not is_contiguous(mask):
            raise CatError(f"CBM {mask:#x} must be contiguous")

    # -- Core association -----------------------------------------------
    def associate(self, core: int, cos_id: int) -> None:
        self._check_cos(cos_id)
        if core < 0:
            raise CatError("core ids are non-negative")
        self._assoc[core] = cos_id

    def cos_of(self, core: int) -> int:
        return self._assoc.get(core, 0)

    def mask_of_core(self, core: int) -> int:
        return self._cos[self.cos_of(core)].mask

    def reset(self) -> None:
        """Return every CLOS to the full mask and clear associations."""
        full = (1 << self.num_ways) - 1
        for cos in self._cos.values():
            cos.mask = full
        self._assoc.clear()

    def _check_cos(self, cos_id: int) -> None:
        if cos_id not in self._cos:
            raise CatError(f"CLOS {cos_id} out of range (have {self.num_cos})")

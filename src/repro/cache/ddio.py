"""DDIO way-mask configuration (the ``IIO_LLC_WAYS`` register model).

On real Skylake-SP hardware, the set of LLC ways DDIO may *write
allocate* into is a bitmask in an undocumented MSR (0xC8B, per the
released iat-pqos artifact).  By default the top two ways are enabled.
IAT resizes this mask at runtime.

This module keeps the mask semantics in one place: the default mask,
validation (contiguous, within geometry, at least one way), and helpers
to grow/shrink the mask from the top of the cache downward — matching
how hardware anchors the DDIO ways at the high way indices (paper
Fig. 1: Way N-1 and Way N).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cat import is_contiguous, mask_span, ways_to_mask
from .geometry import CacheGeometry

#: MSR number of the DDIO way mask on Skylake-SP (from the iat-pqos fork).
IIO_LLC_WAYS_MSR = 0xC8B

#: Number of ways DDIO uses out of the box.
DEFAULT_DDIO_WAYS = 2


def default_ddio_mask(geometry: CacheGeometry) -> int:
    """Factory-default DDIO mask: the top two ways."""
    return ddio_mask_for_ways(geometry, DEFAULT_DDIO_WAYS)


def ddio_mask_for_ways(geometry: CacheGeometry, count: int) -> int:
    """Mask of ``count`` ways anchored at the top of the cache."""
    if not 1 <= count <= geometry.ways:
        raise ValueError(
            f"DDIO way count {count} outside 1..{geometry.ways}")
    return ways_to_mask(geometry.ways - count, count)


@dataclass
class DdioConfig:
    """Mutable DDIO state shared between the MSR model and the LLC users."""

    geometry: CacheGeometry
    mask: int = 0

    def __post_init__(self) -> None:
        if self.mask == 0:
            self.mask = default_ddio_mask(self.geometry)
        self.validate(self.mask)

    def validate(self, mask: int) -> None:
        if mask == 0:
            raise ValueError("DDIO mask must select at least one way")
        if mask >> self.geometry.ways:
            raise ValueError("DDIO mask exceeds cache geometry")
        if not is_contiguous(mask):
            raise ValueError("DDIO mask must be contiguous")

    @property
    def way_count(self) -> int:
        return bin(self.mask).count("1")

    def set_ways(self, count: int) -> None:
        """Program the mask to ``count`` top-anchored ways."""
        self.mask = ddio_mask_for_ways(self.geometry, count)

    def set_mask(self, mask: int) -> None:
        self.validate(mask)
        self.mask = mask

    def span(self) -> "tuple[int, int]":
        """``(lowest_way, count)`` of the current mask."""
        return mask_span(self.mask)

"""Cache geometry: ways, sets, slices, and address decomposition.

Modern Intel server CPUs physically split the LLC into per-core *slices*
(NUCA) and hash physical addresses across them so traffic from both cores
and DDIO spreads evenly (paper Sec. V, "Profiling and monitoring").  The
geometry object owns the address -> (slice, set, tag) decomposition used by
the LLC simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _mix64(value: int) -> int:
    """Cheap 64-bit integer mixer (splitmix64 finalizer).

    Used as a stand-in for Intel's undocumented slice-hash function
    (reverse-engineered in Maurice et al., RAID'15).  What matters for the
    reproduction is the *property* the paper relies on: lines are spread
    evenly across slices, so sampling one slice's CHA counters and
    multiplying by the slice count recovers chip-wide DDIO statistics.
    """
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _mix64_batch(values: "np.ndarray") -> "np.ndarray":
    """Vectorized :func:`_mix64` over a uint64 array (wrapping mod 2^64)."""
    v = values.astype(np.uint64, copy=True)
    v ^= v >> np.uint64(30)
    v *= np.uint64(0xBF58476D1CE4E5B9)
    v ^= v >> np.uint64(27)
    v *= np.uint64(0x94D049BB133111EB)
    v ^= v >> np.uint64(31)
    return v


@dataclass(frozen=True)
class CacheGeometry:
    """Immutable description of a sliced, set-associative cache.

    Defaults correspond to the paper's Xeon Gold 6140 LLC (Table I):
    11-way, 24.75 MB, non-inclusive, split into 18 slices.
    """

    ways: int = 11
    sets_per_slice: int = 2048
    slices: int = 18
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.ways < 1:
            raise ValueError("a cache needs at least one way")
        if self.sets_per_slice < 1 or self.slices < 1:
            raise ValueError("sets_per_slice and slices must be positive")
        if self.line_size < 1 or self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a positive power of two")

    @property
    def total_sets(self) -> int:
        return self.sets_per_slice * self.slices

    @property
    def lines(self) -> int:
        return self.total_sets * self.ways

    @property
    def capacity_bytes(self) -> int:
        return self.lines * self.line_size

    @property
    def way_capacity_bytes(self) -> int:
        """Bytes held by a single way across all slices."""
        return self.total_sets * self.line_size

    @property
    def full_mask(self) -> int:
        """Bitmask selecting every way."""
        return (1 << self.ways) - 1

    def line_of(self, addr: int) -> int:
        """Cacheline number containing byte address ``addr``."""
        return addr // self.line_size

    def locate(self, addr: int) -> "tuple[int, int, int]":
        """Decompose a byte address into ``(slice_id, set_id, tag)``.

        Both the slice and the set index are derived from a hash of the
        line address.  Hashing the slice models Intel's slice-selection
        hash; hashing the set index models the physical-page scattering
        of virtually-contiguous buffers (without it, structures with a
        power-of-two stride — e.g. 2 KB mbufs — would collapse onto a
        handful of sets, which real systems do not exhibit).  The tag is
        the full line number, so residency checks stay exact.
        """
        line = addr // self.line_size
        mixed = _mix64(line)
        slice_id = mixed % self.slices
        set_id = (mixed // self.slices) % self.sets_per_slice
        return slice_id, set_id, line

    def frame_index(self, addr: int) -> "tuple[int, int]":
        """Map an address to ``(flat_set_index, tag)``.

        The flat index combines slice and set so the LLC can keep one
        linear array of sets.
        """
        slice_id, set_id, tag = self.locate(addr)
        return slice_id * self.sets_per_slice + set_id, tag

    # -- batched decomposition (the array LLC backend's hot path) --------
    def frame_index_batch(self, addrs: "np.ndarray") -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized :meth:`frame_index` over an int64 address array.

        Returns ``(flat_set_index, tag)`` arrays, element-wise identical
        to calling :meth:`frame_index` per address.
        """
        # line_size is a power of two and addresses are non-negative, so
        # the division is a shift; the flat index stays far below 2^63,
        # so the uint64 view back to int64 is value-preserving and free.
        lines = np.asarray(addrs, dtype=np.int64) >> (
            self.line_size.bit_length() - 1)
        mixed = _mix64_batch(lines)
        slices = np.uint64(self.slices)
        sets = self.sets_per_slice
        # One division instead of three: derive the remainder from the
        # quotient, and reduce modulo ``sets_per_slice`` with a bitmask
        # when it is a power of two (the default geometry).
        quot = mixed // slices
        slice_id = mixed - quot * slices
        if sets & (sets - 1) == 0:
            set_id = quot & np.uint64(sets - 1)
        else:
            set_id = quot % np.uint64(sets)
        index = (slice_id * np.uint64(sets) + set_id)
        return index.view(np.int64), lines

    def slice_of_batch(self, addrs: "np.ndarray") -> "np.ndarray":
        """Vectorized slice ids (first element of :meth:`locate`)."""
        lines = np.asarray(addrs, dtype=np.int64) // self.line_size
        return (_mix64_batch(lines) % np.uint64(self.slices)).astype(np.int64)


#: LLC geometry of the paper's testbed CPU (Table I).
XEON_6140_LLC = CacheGeometry(ways=11, sets_per_slice=2048, slices=18, line_size=64)

#: A proportionally shrunken geometry for fast unit tests: same 11 ways
#: (way-allocation behaviour identical) but far fewer sets.
TINY_LLC = CacheGeometry(ways=11, sets_per_slice=64, slices=4, line_size=64)

"""Main-memory bandwidth/latency model, plus the MBA extension."""

from .dram import MemoryController, MemorySpec
from .mba import MBA_STEPS, MbaController, MbaError

__all__ = ["MBA_STEPS", "MbaController", "MbaError", "MemoryController",
           "MemorySpec"]

"""Memory Bandwidth Allocation (MBA) model — an RDT companion to CAT.

The paper notes (Sec. VI-C) that part of the residual degradation under
IAT comes from memory-bandwidth contention, and that "applying Intel
Memory Bandwidth Allocation (MBA) can solve this problem, which is out
of the scope of this paper".  This module provides that out-of-scope
piece as an extension, so the combination can be studied.

Real MBA inserts programmable delays between a core's L2 and the ring,
exposed as a per-CLOS *throttle* percentage (0 = unthrottled, 90 = max
throttling) in steps of 10.  We model the documented first-order
effect: a throttled core's DRAM accesses are stretched by
``1 / (1 - throttle)``, which both reduces the bandwidth it can consume
and raises its own effective memory latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Valid MBA throttle values (percent), per the RDT documentation.
MBA_STEPS = tuple(range(0, 91, 10))


class MbaError(ValueError):
    """Raised for invalid throttle values or CLOS ids."""


@dataclass
class MbaController:
    """Per-CLOS memory-bandwidth throttles (IA32_L2_QOS_EXT_BW MSRs)."""

    num_cos: int = 16
    _throttle: "dict[int, int]" = field(default_factory=dict)

    def set_throttle(self, cos_id: int, percent: int) -> None:
        if not 0 <= cos_id < self.num_cos:
            raise MbaError(f"CLOS {cos_id} out of range")
        if percent not in MBA_STEPS:
            raise MbaError(f"throttle {percent} not a valid MBA step "
                           f"{MBA_STEPS}")
        self._throttle[cos_id] = percent

    def get_throttle(self, cos_id: int) -> int:
        if not 0 <= cos_id < self.num_cos:
            raise MbaError(f"CLOS {cos_id} out of range")
        return self._throttle.get(cos_id, 0)

    def delay_factor(self, cos_id: int) -> float:
        """Multiplier applied to a throttled core's DRAM access time."""
        throttle = self.get_throttle(cos_id)
        return 1.0 / (1.0 - throttle / 100.0)

    def reset(self) -> None:
        self._throttle.clear()

"""DRAM model: bandwidth accounting and utilization-aware latency.

The paper motivates DDIO with memory-bandwidth arithmetic (Sec. II-B:
100 Gb inbound traffic written once and read once costs ~25 GB/s) and
evaluates memory throughput directly (Fig. 8c).  We therefore track read
and write bytes precisely and expose per-window bandwidth.

Latency uses a standard closed-form queueing approximation: the loaded
latency grows superlinearly as utilization approaches the channel limit.
This is enough to reproduce the *relative* latency effects the paper
reports (X-Mem average latency in Figs. 4/10, RocksDB/Redis latencies in
Figs. 13/14) without a full DRAM timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemorySpec:
    """Capacity-independent parameters of the memory subsystem.

    Defaults approximate the paper's six DDR4-2666 channels (Table I):
    ~128 GB/s peak, ~80 ns idle load-to-use, expressed in core cycles at
    2.3 GHz.
    """

    peak_bytes_per_sec: float = 128e9
    idle_latency_cycles: float = 190.0
    #: Latency multiplier shape: lat = idle * (1 + alpha * util**beta).
    contention_alpha: float = 2.5
    contention_beta: float = 3.0


@dataclass
class MemoryController:
    """Accumulates memory traffic and reports bandwidth/latency.

    The simulation engine calls :meth:`begin_window` each quantum; loads
    and stores land via :meth:`add_read` / :meth:`add_write` (in bytes).
    """

    spec: MemorySpec = field(default_factory=MemorySpec)
    time_scale: float = 1.0
    read_bytes: int = 0
    write_bytes: int = 0
    _window_read: int = 0
    _window_write: int = 0
    _window_seconds: float = 0.0
    _last_util: float = 0.0

    def begin_window(self, seconds: float) -> None:
        """Start a new accounting window of ``seconds`` simulated time."""
        if seconds <= 0:
            raise ValueError("window must have positive duration")
        self._window_read = 0
        self._window_write = 0
        self._window_seconds = seconds

    def add_read(self, nbytes: int) -> None:
        self.read_bytes += nbytes
        self._window_read += nbytes

    def add_write(self, nbytes: int) -> None:
        self.write_bytes += nbytes
        self._window_write += nbytes

    # ------------------------------------------------------------------
    @property
    def window_bytes(self) -> int:
        return self._window_read + self._window_write

    def window_bandwidth(self) -> float:
        """Bytes/second over the current window, unscaled back to real time.

        The simulator runs at ``time_scale`` of real rates (see
        DESIGN.md); dividing by the scale reports real-equivalent
        bandwidth so numbers are comparable to the paper's GB/s.
        """
        if self._window_seconds == 0:
            return 0.0
        return self.window_bytes / self._window_seconds / self.time_scale

    def utilization(self) -> float:
        """Fraction of peak bandwidth consumed in the current window."""
        if self._window_seconds == 0:
            return self._last_util
        util = self.window_bandwidth() / self.spec.peak_bytes_per_sec
        self._last_util = min(util, 0.98)
        return self._last_util

    def load_latency_cycles(self) -> float:
        """Current expected DRAM load latency in core cycles."""
        util = self._last_util
        shape = 1.0 + self.spec.contention_alpha * util ** self.spec.contention_beta
        return self.spec.idle_latency_cycles * shape

    def end_window(self) -> "tuple[int, int]":
        """Close the window; returns ``(read_bytes, write_bytes)`` seen."""
        self.utilization()
        result = (self._window_read, self._window_write)
        return result

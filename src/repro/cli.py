"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Four subcommands:

* ``repro figures`` — list the reproducible figures.
* ``repro figure <id> [--fast]`` — regenerate one figure's table
  (``--fast`` shrinks sweeps/durations for a quick look).
* ``repro trace <id> [--fast] [--out FILE] [--format perfetto|jsonl]``
  — run a figure with the tracing subsystem enabled (see
  ``docs/observability.md``) and export the event stream; the default
  ``perfetto`` format loads directly into https://ui.perfetto.dev.
  Also prints the self-profiling per-subsystem time shares.
* ``repro daemon --tenants FILE [--backend sim|linux]`` — run the IAT
  daemon against a tenant affiliation file.  The ``linux`` backend
  drives real MSRs (root + the msr module required — untested here, see
  DESIGN.md); the default ``sim`` backend runs a self-contained demo
  scenario so the daemon's decisions can be observed anywhere.
  ``--trace-out FILE`` captures a Perfetto trace of the run;
  ``--log-level`` controls stdlib logging verbosity.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (ext_ddio, fig03_ring_size, fig04_latent_contender,
                          fig08_leaky_dma, fig09_flow_scaling, fig10_shuffle,
                          fig11_timeline, fig12_exec_time,
                          fig13_rocksdb_latency, fig14_redis_ycsb,
                          fig15_overhead, sensitivity)

#: figure id -> (description, full runner, fast runner)
FIGURES = {
    "fig3": ("RFC2544 zero-loss throughput vs Rx ring size",
             lambda: fig03_ring_size.format_table(fig03_ring_size.run()),
             lambda: fig03_ring_size.format_table(fig03_ring_size.run(
                 ring_sizes=(64, 1024), packet_sizes=(64,),
                 measure_s=2.2, warmup_s=0.4, max_trials=5))),
    "fig4": ("X-Mem vs DDIO way overlap (Latent Contender)",
             lambda: fig04_latent_contender.format_table(
                 fig04_latent_contender.run()),
             lambda: fig04_latent_contender.format_table(
                 fig04_latent_contender.run(working_sets_mb=(4, 16),
                                            warmup_s=1.0, measure_s=1.5))),
    "fig8": ("Leaky DMA: DDIO hit/miss, memory BW, OVS IPC/CPP",
             lambda: fig08_leaky_dma.format_table(fig08_leaky_dma.run()),
             lambda: fig08_leaky_dma.format_table(fig08_leaky_dma.run(
                 packet_sizes=(64, 1500), duration_s=6.0, warmup_s=3.0))),
    "fig9": ("OVS under growing flow counts (Core Demand)",
             lambda: fig09_flow_scaling.format_table(
                 fig09_flow_scaling.run()),
             lambda: fig09_flow_scaling.format_table(fig09_flow_scaling.run(
                 flow_counts=(1, 1_000_000), duration_s=6.0,
                 warmup_s=3.0))),
    "fig10": ("Four-policy Latent Contender comparison",
              lambda: fig10_shuffle.format_table(fig10_shuffle.run()),
              lambda: fig10_shuffle.format_table(fig10_shuffle.run(
                  packet_sizes=(1500,)))),
    "fig11": ("LLC allocation timeline with IAT",
              lambda: fig11_timeline.format_timeline(fig11_timeline.run()),
              lambda: fig11_timeline.format_timeline(fig11_timeline.run(
                  t_grow=2.0, t_ddio=6.0, t_end=9.0))),
    "fig12": ("App slowdown co-run with Redis/FastClick",
              lambda: fig12_exec_time.format_table(fig12_exec_time.run()),
              lambda: fig12_exec_time.format_table(fig12_exec_time.run(
                  scenarios=("kvs",), apps=("mcf", "gcc"), seeds=(0, 1),
                  warmup_s=1.0, measure_s=1.5))),
    "fig13": ("RocksDB normalized weighted latency",
              lambda: fig13_rocksdb_latency.format_table(
                  fig13_rocksdb_latency.run()),
              lambda: fig13_rocksdb_latency.format_table(
                  fig13_rocksdb_latency.run(scenarios=("kvs",),
                                            letters=("C",), seeds=(0, 1),
                                            warmup_s=1.0, measure_s=1.5))),
    "fig14": ("Redis YCSB degradation",
              lambda: fig14_redis_ycsb.format_table(fig14_redis_ycsb.run()),
              lambda: fig14_redis_ycsb.format_table(fig14_redis_ycsb.run(
                  letters=("C",), seeds=(0, 1), warmup_s=1.0,
                  measure_s=1.5))),
    "fig15": ("IAT daemon per-iteration cost",
              lambda: fig15_overhead.format_table(fig15_overhead.run()),
              lambda: fig15_overhead.format_table(fig15_overhead.run(
                  one_core_counts=(1, 4, 16), two_core_counts=(2,),
                  iterations=20))),
    "ext-ddio": ("Sec. VII extension: device-/app-aware DDIO",
                 lambda: ext_ddio.format_table(ext_ddio.run()),
                 lambda: ext_ddio.format_table(ext_ddio.run(
                     duration_s=4.0, warmup_s=2.0))),
    "sensitivity": ("IAT parameter-sensitivity sweep (Sec. VI-A remark)",
                    lambda: sensitivity.format_table(sensitivity.run()),
                    lambda: sensitivity.format_table(sensitivity.run(
                        sweeps={"threshold_stable": (0.03, 0.10)},
                        duration_s=6.0, warmup_s=3.0))),
}


def _cmd_figures(_args) -> int:
    width = max(len(name) for name in FIGURES)
    for name, (description, _, _) in FIGURES.items():
        print(f"{name:<{width}}  {description}")
    return 0


def _cmd_figure(args) -> int:
    entry = FIGURES.get(args.id)
    if entry is None:
        print(f"unknown figure {args.id!r}; try 'repro figures'",
              file=sys.stderr)
        return 2
    _, full, fast = entry
    print((fast if args.fast else full)())
    return 0


def _cmd_trace(args) -> int:
    from .obs import (JsonlSink, PerfettoSink, RingBufferSink, Tracer,
                      tracing)

    entry = FIGURES.get(args.id)
    if entry is None:
        print(f"unknown figure {args.id!r}; try 'repro figures'",
              file=sys.stderr)
        return 2
    _, full, fast = entry
    suffix = "jsonl" if args.format == "jsonl" else "json"
    out = args.out or f"trace_{args.id}.{suffix}"
    tracer = Tracer(profiling=True)
    ring = tracer.add_sink(RingBufferSink(capacity=None))
    tracer.add_sink(JsonlSink(out) if args.format == "jsonl"
                    else PerfettoSink(out))
    with tracing(tracer):
        table = (fast if args.fast else full)()
    tracer.close()
    print(table)
    print(f"trace: {len(ring)} events -> {out}")
    shares = tracer.profile_shares()
    if shares:
        top = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)
        print("profile: " + ", ".join(f"{key} {share:.1%}"
                                      for key, share in top[:6]))
    return 0


def _daemon_summary(daemon) -> str:
    """One-line exit summary of a daemon run."""
    history = daemon.history
    changes = sum(1 for a, b in zip(history, history[1:])
                  if a.state is not b.state)
    masks = {}
    if daemon.layout is not None:
        masks = {group: f"0x{mask:x}" for group, mask
                 in sorted(daemon.layout.group_masks.items())}
    return (f"daemon: {len(history)} iterations, {changes} state changes, "
            f"final state {daemon.state.value}, "
            f"ddio_ways={daemon.allocator.ddio_ways}, masks={masks}")


def _cmd_daemon(args) -> int:
    import logging

    logging.basicConfig(level=getattr(logging, args.log_level.upper()),
                        format="%(asctime)s %(name)s %(levelname)s "
                               "%(message)s")
    tracer = None
    if args.trace_out:
        from .obs import PerfettoSink, Tracer, install_tracer
        tracer = Tracer()
        tracer.add_sink(PerfettoSink(args.trace_out))
        install_tracer(tracer)
    try:
        return _run_daemon(args)
    finally:
        if tracer is not None:
            from .obs import install_tracer
            install_tracer(None)
            tracer.close()
            print(f"trace -> {args.trace_out}")


def _run_daemon(args) -> int:
    from .core import ControlPlane, IATDaemon, IATParams
    from .tenants.registry import TenantRegistry

    registry = TenantRegistry(args.tenants)
    tenants = registry.load()
    params = IATParams(interval_s=args.interval)

    if args.backend == "linux":
        from .perf.hw import HwPqos
        from .perf.msr import LinuxMsr
        msrs = {core: LinuxMsr(core) for core in tenants.all_cores}
        pqos = HwPqos(msr_of=msrs)
        control = ControlPlane(pqos, tenants, time_scale=1.0,
                               registry=registry)
        daemon = IATDaemon(control, params)
        daemon.on_start(0.0)
        import time as _time
        print(f"IAT daemon on real MSRs, interval {args.interval}s; ^C "
              "to stop")
        iteration = 0
        try:
            while args.iterations == 0 or iteration < args.iterations:
                _time.sleep(args.interval)
                iteration += 1
                daemon.on_interval(iteration * args.interval)
                entry = daemon.history[-1]
                print(f"[{iteration}] {entry.state.value} "
                      f"ddio={entry.ddio_ways} {entry.action}")
        except KeyboardInterrupt:
            pass
        print(_daemon_summary(daemon))
        return 0

    # Simulated backend: demo scenario driven by the tenants file's I/O
    # tenants (each gets a line-rate VF) with the daemon attached.
    from .net import TrafficSpec
    from .sim import Platform, Simulation, XEON_6140
    from .workloads import TestPmd, XMem

    platform = Platform(XEON_6140)
    sim = Simulation(platform)
    nic = platform.add_nic("nic0", 40.0)
    for tenant in tenants:
        if tenant.is_io or tenant.is_stack:
            vf = nic.add_vf(name=f"{tenant.name}.vf")
            sim.add_tenant(tenant, TestPmd(tenant.name, [vf.rx_ring]))
            sim.attach_traffic(nic, vf, TrafficSpec.line_rate(
                40.0, args.packet_size, scale=platform.spec.time_scale))
        else:
            sim.add_tenant(tenant, XMem(tenant.name, 8 << 20))
    control = ControlPlane(platform.pqos, sim.tenant_set(),
                           time_scale=platform.spec.time_scale)
    daemon = IATDaemon(control, params)
    sim.add_controller(daemon)
    sim.run(args.duration)
    for entry in daemon.history:
        print(f"t={entry.time:6.1f}s {entry.state.value:12s} "
              f"ddio={entry.ddio_ways} ways={entry.group_ways} "
              f"{entry.action}")
    print(_daemon_summary(daemon))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IAT (ISCA 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list reproducible figures") \
        .set_defaults(func=_cmd_figures)

    figure = sub.add_parser("figure", help="regenerate one figure")
    figure.add_argument("id", help="figure id (see 'repro figures')")
    figure.add_argument("--fast", action="store_true",
                        help="reduced sweep for a quick look")
    figure.set_defaults(func=_cmd_figure)

    trace = sub.add_parser("trace",
                           help="run a figure with tracing enabled")
    trace.add_argument("id", help="figure id (see 'repro figures')")
    trace.add_argument("--fast", action="store_true",
                       help="reduced sweep for a quick look")
    trace.add_argument("--out", default=None,
                       help="output path (default trace_<id>.<ext>)")
    trace.add_argument("--format", choices=("perfetto", "jsonl"),
                       default="perfetto",
                       help="perfetto trace_event JSON or raw JSONL")
    trace.set_defaults(func=_cmd_trace)

    daemon = sub.add_parser("daemon", help="run the IAT daemon")
    daemon.add_argument("--tenants", required=True,
                        help="tenant affiliation file (see Sec. V format)")
    daemon.add_argument("--backend", choices=("sim", "linux"),
                        default="sim")
    daemon.add_argument("--interval", type=float, default=1.0,
                        help="sleep interval seconds (Table II: 1.0)")
    daemon.add_argument("--duration", type=float, default=10.0,
                        help="simulated seconds (sim backend)")
    daemon.add_argument("--packet-size", type=int, default=1500,
                        help="traffic packet size (sim backend)")
    daemon.add_argument("--iterations", type=int, default=0,
                        help="stop after N intervals (linux backend; "
                             "0 = run until ^C)")
    daemon.add_argument("--log-level", default="warning",
                        choices=("debug", "info", "warning", "error"),
                        help="stdlib logging verbosity")
    daemon.add_argument("--trace-out", default=None,
                        help="write a Perfetto trace of the run here")
    daemon.set_defaults(func=_cmd_daemon)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Seven subcommands:

* ``repro figures`` — list the reproducible figures.
* ``repro policies`` — list the registered controller policies with
  their tunable parameters (see ``docs/policies.md``).
* ``repro compare [--policies A,B] [--scenarios X,Y] [--seeds 0,1]
  [--json FILE] [sweep flags]`` — race the selected policies across the
  tournament scenarios through the sweep engine and print a ranked
  report (throughput, p99 latency, Jain fairness); ``--json`` also
  writes the full report as JSON.
* ``repro figure <id> [--fast] [--jobs N] [--no-cache] [--duration S]
  [--warmup S] [--trace-out FILE]`` — regenerate one figure's table.
  ``--fast`` shrinks sweeps/durations for a quick look; sweep points
  fan out across ``--jobs`` worker processes (default: all cores) and
  completed points replay from the on-disk result cache (see
  ``docs/experiments.md``) unless ``--no-cache`` is given.
  ``--duration``/``--warmup`` override the harness's measurement window
  where it supports one.  ``--trace-out`` records every computed sweep
  point as a per-worker trace shard and merges them into one Perfetto
  file — tracing no longer forces serial execution.
* ``repro suite [--fast] [--jobs N] [--trace-out FILE]`` — run every
  figure back to back through one shared worker pool.
* ``repro trace <id> [--fast] [--out FILE] [--format perfetto|jsonl]
  [--sample N] [--seed S] [--capacity N] [--metrics-out FILE]`` — run a
  figure with the in-process tracing subsystem enabled (see
  ``docs/observability.md``) and export the event stream; the default
  ``perfetto`` format loads directly into https://ui.perfetto.dev.
  ``--sample N`` traces 1-in-N quanta (deterministic in ``--seed``);
  ``--capacity`` bounds the ring to the most recent N events;
  ``--metrics-out`` additionally exports the metrics registry in the
  Prometheus text format.  Prints the self-profiling per-subsystem time
  shares plus per-category event counts and the dropped-event total.
  In-process tracing forces serial, uncached execution so every event
  is observed (use ``figure --trace-out`` for parallel tracing).
* ``repro daemon --tenants FILE [--backend sim|linux]`` — run the IAT
  daemon against a tenant affiliation file.  The ``linux`` backend
  drives real MSRs (root + the msr module required — untested here, see
  DESIGN.md); the default ``sim`` backend runs a self-contained demo
  scenario so the daemon's decisions can be observed anywhere.
  ``--trace-out FILE`` captures a Perfetto trace of the run;
  ``--log-level`` controls stdlib logging verbosity.
"""

from __future__ import annotations

import argparse
import inspect
import re
import sys
import tempfile
import time
from contextlib import ExitStack
from dataclasses import dataclass, field

from .core import available_policies
from .exec import ParallelRunner, ResultCache
from .exec.runner import TraceFanout
from .experiments import (compare, ext_ddio, fig03_ring_size,
                          fig04_latent_contender, fig08_leaky_dma,
                          fig09_flow_scaling, fig10_shuffle, fig11_timeline,
                          fig12_exec_time, fig13_rocksdb_latency,
                          fig14_redis_ycsb, fig15_overhead, sensitivity)


@dataclass(frozen=True)
class FigureEntry:
    """One reproducible figure: how to run it and how to print it."""

    description: str
    run: object                    # run(**kwargs) -> result
    format: object                 # format(result) -> str
    fast_kwargs: dict = field(default_factory=dict)


FIGURES = {
    "fig3": FigureEntry(
        "RFC2544 zero-loss throughput vs Rx ring size",
        fig03_ring_size.run, fig03_ring_size.format_table,
        dict(ring_sizes=(64, 1024), packet_sizes=(64,), measure_s=2.2,
             warmup_s=0.4, max_trials=5)),
    "fig4": FigureEntry(
        "X-Mem vs DDIO way overlap (Latent Contender)",
        fig04_latent_contender.run, fig04_latent_contender.format_table,
        dict(working_sets_mb=(4, 16), warmup_s=1.0, measure_s=1.5)),
    "fig8": FigureEntry(
        "Leaky DMA: DDIO hit/miss, memory BW, OVS IPC/CPP",
        fig08_leaky_dma.run, fig08_leaky_dma.format_table,
        dict(packet_sizes=(64, 1500), duration_s=6.0, warmup_s=3.0)),
    "fig9": FigureEntry(
        "OVS under growing flow counts (Core Demand)",
        fig09_flow_scaling.run, fig09_flow_scaling.format_table,
        dict(flow_counts=(1, 1_000_000), duration_s=6.0, warmup_s=3.0)),
    "fig10": FigureEntry(
        "Four-policy Latent Contender comparison",
        fig10_shuffle.run, fig10_shuffle.format_table,
        dict(packet_sizes=(1500,))),
    "fig11": FigureEntry(
        "LLC allocation timeline with IAT",
        fig11_timeline.run, fig11_timeline.format_timeline,
        dict(t_grow=2.0, t_ddio=6.0, t_end=9.0)),
    "fig12": FigureEntry(
        "App slowdown co-run with Redis/FastClick",
        fig12_exec_time.run, fig12_exec_time.format_table,
        dict(scenarios=("kvs",), apps=("mcf", "gcc"), seeds=(0, 1),
             warmup_s=1.0, measure_s=1.5)),
    "fig13": FigureEntry(
        "RocksDB normalized weighted latency",
        fig13_rocksdb_latency.run, fig13_rocksdb_latency.format_table,
        dict(scenarios=("kvs",), letters=("C",), seeds=(0, 1),
             warmup_s=1.0, measure_s=1.5)),
    "fig14": FigureEntry(
        "Redis YCSB degradation",
        fig14_redis_ycsb.run, fig14_redis_ycsb.format_table,
        dict(letters=("C",), seeds=(0, 1), warmup_s=1.0, measure_s=1.5)),
    "fig15": FigureEntry(
        "IAT daemon per-iteration cost",
        fig15_overhead.run, fig15_overhead.format_table,
        dict(one_core_counts=(1, 4, 16), two_core_counts=(2,),
             iterations=20)),
    "ext-ddio": FigureEntry(
        "Sec. VII extension: device-/app-aware DDIO",
        ext_ddio.run, ext_ddio.format_table,
        dict(duration_s=4.0, warmup_s=2.0)),
    "sensitivity": FigureEntry(
        "IAT parameter-sensitivity sweep (Sec. VI-A remark)",
        sensitivity.run, sensitivity.format_table,
        dict(sweeps={"threshold_stable": (0.03, 0.10)}, duration_s=6.0,
             warmup_s=3.0)),
}


def _natural_key(name: str) -> list:
    """fig3 < fig4 < fig8 < fig10 — digits compare numerically."""
    return [int(part) if part.isdigit() else part
            for part in re.split(r"(\d+)", name)]


def sorted_figures() -> "list[str]":
    """Figure ids in stable (natural-sorted) order, independent of the
    registry's insertion order."""
    return sorted(FIGURES, key=_natural_key)


def _make_runner(args, trace_dir: "str | None" = None) -> ParallelRunner:
    """A runner configured from the shared sweep CLI flags."""
    cache = None
    if not getattr(args, "no_cache", False):
        cache = ResultCache(getattr(args, "cache_dir", None))
    trace = None
    if trace_dir is not None:
        trace = TraceFanout(trace_dir,
                            sample=getattr(args, "trace_sample", None))
    return ParallelRunner(jobs=args.jobs, cache=cache,
                          echo=sys.stderr.isatty(), trace=trace)


def _traced_runner(args, stack: ExitStack) -> ParallelRunner:
    """A runner honouring ``--trace-out``: shards land in a temporary
    directory that outlives the runs just long enough to merge."""
    trace_dir = None
    if getattr(args, "trace_out", None):
        trace_dir = stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-trace-"))
    return stack.enter_context(_make_runner(args, trace_dir))


def _finish_trace(runner: ParallelRunner, args) -> None:
    """Merge the run's trace shards into ``--trace-out`` and report."""
    out = getattr(args, "trace_out", None)
    if not out:
        return
    summary = runner.write_merged_trace(out)
    if summary is None:
        print("trace: no sweep points were traced (figure without a "
              "runner-driven sweep?); nothing written", file=sys.stderr)
        return
    line = (f"trace: merged {summary['shards']} shards, "
            f"{summary['events']} events -> {out}")
    if summary["dropped"]:
        line += f" ({summary['dropped']} dropped)"
    if summary["incomplete"]:
        line += f" [{summary['incomplete']} incomplete shards]"
    print(line)


def _run_entry(entry: FigureEntry, *, fast: bool,
               runner: "ParallelRunner | None" = None,
               duration: "float | None" = None,
               warmup: "float | None" = None) -> str:
    """Run one figure, plumbing runner and window overrides through the
    harness's own ``run(**kwargs)`` signature."""
    kwargs = dict(entry.fast_kwargs) if fast else {}
    params = inspect.signature(entry.run).parameters
    if "runner" in params and runner is not None:
        kwargs["runner"] = runner
    if duration is not None:
        for name in ("duration_s", "measure_s"):
            if name in params:
                kwargs[name] = duration
                break
        else:
            print("note: this figure does not take --duration; ignored",
                  file=sys.stderr)
    if warmup is not None:
        if "warmup_s" in params:
            kwargs["warmup_s"] = warmup
        else:
            print("note: this figure does not take --warmup; ignored",
                  file=sys.stderr)
    return entry.format(entry.run(**kwargs))


def _cmd_figures(_args) -> int:
    width = max(len(name) for name in FIGURES)
    for name in sorted_figures():
        print(f"{name:<{width}}  {FIGURES[name].description}")
    return 0


def _cmd_policies(_args) -> int:
    infos = available_policies()
    width = max(len(info.name) for info in infos)
    for info in infos:
        print(f"{info.name:<{width}}  {info.summary}")
        for pname, default in info.tunables():
            print(f"{'':<{width}}    {pname} = {default}")
    return 0


def _split_csv(text: str) -> "tuple[str, ...]":
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _cmd_compare(args) -> int:
    policies = (_split_csv(args.policies) if args.policies
                else compare.DEFAULT_POLICIES)
    scenarios = (_split_csv(args.scenarios) if args.scenarios
                 else compare.DEFAULT_SCENARIOS)
    seeds = (tuple(int(s) for s in _split_csv(args.seeds))
             if args.seeds else (0,))
    kwargs = {}
    if args.fast:
        kwargs.update(duration=4.0, warmup=1.0)
    if args.duration is not None:
        kwargs["duration"] = args.duration
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    with ExitStack() as stack:
        runner = _traced_runner(args, stack)
        try:
            result = compare.run(policies=policies, scenarios=scenarios,
                                 seeds=seeds, runner=runner, **kwargs)
        except KeyError as exc:
            print(f"compare: {exc.args[0]}", file=sys.stderr)
            return 2
        print(compare.format_table(result))
        _finish_trace(runner, args)
    if args.json:
        import json
        with open(args.json, "w") as handle:
            json.dump(result.to_json_dict(), handle, indent=1)
        print(f"report -> {args.json}")
    return 0


def _cmd_figure(args) -> int:
    entry = FIGURES.get(args.id)
    if entry is None:
        print(f"unknown figure {args.id!r}; try 'repro figures'",
              file=sys.stderr)
        return 2
    if getattr(args, "profile", False):
        # Profiling wants the sweep in *this* process and actually
        # computed: force the serial in-process path and skip the
        # result cache, else cProfile sees pool plumbing or a cache
        # hit instead of simulation work.
        import cProfile
        import pstats

        args.jobs = 1
        args.no_cache = True
        profiler = cProfile.Profile()
        with ExitStack() as stack:
            runner = _traced_runner(args, stack)
            profiler.enable()
            try:
                text = _run_entry(entry, fast=args.fast, runner=runner,
                                  duration=args.duration,
                                  warmup=args.warmup)
            finally:
                profiler.disable()
            print(text)
            _finish_trace(runner, args)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print(f"profile: top 20 by cumulative time ({args.id})",
              file=sys.stderr)
        stats.print_stats(20)
        return 0
    with ExitStack() as stack:
        runner = _traced_runner(args, stack)
        print(_run_entry(entry, fast=args.fast, runner=runner,
                         duration=args.duration, warmup=args.warmup))
        _finish_trace(runner, args)
    return 0


def _cmd_suite(args) -> int:
    start = time.perf_counter()
    with ExitStack() as stack:
        runner = _traced_runner(args, stack)
        for name in sorted_figures():
            entry = FIGURES[name]
            print(f"=== {name} — {entry.description} ===")
            print(_run_entry(entry, fast=args.fast, runner=runner,
                             duration=args.duration, warmup=args.warmup))
            print()
        _finish_trace(runner, args)
    elapsed = time.perf_counter() - start
    hits = runner.cache.hits if runner.cache is not None else 0
    print(f"suite: {len(FIGURES)} figures in {elapsed:.1f}s "
          f"(jobs={runner.effective_jobs()}, cache hits={hits})")
    return 0


def _cmd_trace(args) -> int:
    from .obs import (JsonlSink, PerfettoSink, RingBufferSink, Tracer,
                      tracing)
    from .workloads.base import ENGINE_STATS

    entry = FIGURES.get(args.id)
    if entry is None:
        print(f"unknown figure {args.id!r}; try 'repro figures'",
              file=sys.stderr)
        return 2
    suffix = "jsonl" if args.format == "jsonl" else "json"
    out = args.out or f"trace_{args.id}.{suffix}"
    tracer = Tracer(profiling=True, sample=args.sample, seed=args.seed,
                    capacity=args.capacity)
    ring = tracer.add_sink(RingBufferSink(capacity=None))
    tracer.add_sink(JsonlSink(out) if args.format == "jsonl"
                    else PerfettoSink(out))
    if args.metrics_out:
        from .obs.metrics import REGISTRY
        REGISTRY.clear()
        REGISTRY.enabled = True
    ENGINE_STATS.reset()
    try:
        with tracing(tracer):
            # No runner: serial, uncached — a cache hit would skip the
            # simulation entirely and record no events.
            table = _run_entry(entry, fast=args.fast)
    finally:
        if args.metrics_out:
            REGISTRY.enabled = False
    tracer.close()
    print(table)
    print(f"trace: {len(ring)} events -> {out}")
    counts = tracer.category_counts()
    if counts:
        print("events: "
              + ", ".join(f"{category} {count}" for category, count
                          in sorted(counts.items()))
              + f"; dropped {tracer.dropped}")
    shares = tracer.profile_shares()
    if shares:
        top = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)
        print("profile: " + ", ".join(f"{key} {share:.1%}"
                                      for key, share in top[:6]))
    es = ENGINE_STATS
    if es.chunks:
        print(f"chunks: {es.chunks} executed, "
              f"size mean {es.mean_chunk():.1f} "
              f"p50 {es.percentile_chunk(50):.0f} "
              f"p99 {es.percentile_chunk(99):.0f} packets; "
              f"speculative {es.spec_chunks}, rollbacks {es.rollbacks} "
              f"({es.rollback_rate():.1%}), "
              f"wasted {es.wasted_packets} packets, "
              f"{es.launches_per_chunk():.0f} kernel launches/chunk")
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            handle.write(REGISTRY.to_prometheus())
        print(f"metrics -> {args.metrics_out}")
    return 0


def _daemon_summary(daemon) -> str:
    """One-line exit summary of a daemon run."""
    history = daemon.history
    changes = sum(1 for a, b in zip(history, history[1:])
                  if a.state is not b.state)
    masks = {}
    if daemon.layout is not None:
        masks = {group: f"0x{mask:x}" for group, mask
                 in sorted(daemon.layout.group_masks.items())}
    return (f"daemon: {len(history)} iterations, {changes} state changes, "
            f"final state {daemon.state.value}, "
            f"ddio_ways={daemon.allocator.ddio_ways}, masks={masks}")


def _cmd_daemon(args) -> int:
    import logging

    logging.basicConfig(level=getattr(logging, args.log_level.upper()),
                        format="%(asctime)s %(name)s %(levelname)s "
                               "%(message)s")
    tracer = None
    if args.trace_out:
        from .obs import PerfettoSink, Tracer, install_tracer
        tracer = Tracer()
        tracer.add_sink(PerfettoSink(args.trace_out))
        install_tracer(tracer)
    try:
        return _run_daemon(args)
    finally:
        if tracer is not None:
            from .obs import install_tracer
            install_tracer(None)
            tracer.close()
            print(f"trace -> {args.trace_out}")


def _run_daemon(args) -> int:
    from .core import ControlPlane, IATDaemon, IATParams
    from .tenants.registry import TenantRegistry

    registry = TenantRegistry(args.tenants)
    tenants = registry.load()
    params = IATParams(interval_s=args.interval)

    if args.backend == "linux":
        from .perf.hw import HwPqos
        from .perf.msr import LinuxMsr
        msrs = {core: LinuxMsr(core) for core in tenants.all_cores}
        pqos = HwPqos(msr_of=msrs)
        control = ControlPlane(pqos, tenants, time_scale=1.0,
                               registry=registry)
        daemon = IATDaemon(control, params)
        daemon.on_start(0.0)
        import time as _time
        print(f"IAT daemon on real MSRs, interval {args.interval}s; ^C "
              "to stop")
        iteration = 0
        try:
            while args.iterations == 0 or iteration < args.iterations:
                _time.sleep(args.interval)
                iteration += 1
                daemon.on_interval(iteration * args.interval)
                entry = daemon.history[-1]
                print(f"[{iteration}] {entry.state.value} "
                      f"ddio={entry.ddio_ways} {entry.action}")
        except KeyboardInterrupt:
            pass
        print(_daemon_summary(daemon))
        return 0

    # Simulated backend: demo scenario driven by the tenants file's I/O
    # tenants (each gets a line-rate VF) with the daemon attached.
    from .net import TrafficSpec
    from .sim import Platform, Simulation, XEON_6140
    from .workloads import TestPmd, XMem

    platform = Platform(XEON_6140)
    sim = Simulation(platform)
    nic = platform.add_nic("nic0", 40.0)
    for tenant in tenants:
        if tenant.is_io or tenant.is_stack:
            vf = nic.add_vf(name=f"{tenant.name}.vf")
            sim.add_tenant(tenant, TestPmd(tenant.name, [vf.rx_ring]))
            sim.attach_traffic(nic, vf, TrafficSpec.line_rate(
                40.0, args.packet_size, scale=platform.spec.time_scale))
        else:
            sim.add_tenant(tenant, XMem(tenant.name, 8 << 20))
    control = ControlPlane(platform.pqos, sim.tenant_set(),
                           time_scale=platform.spec.time_scale)
    daemon = IATDaemon(control, params)
    sim.add_controller(daemon)
    sim.run(args.duration)
    for entry in daemon.history:
        print(f"t={entry.time:6.1f}s {entry.state.value:12s} "
              f"ddio={entry.ddio_ways} ways={entry.group_ways} "
              f"{entry.action}")
    print(_daemon_summary(daemon))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IAT (ISCA 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="list reproducible figures") \
        .set_defaults(func=_cmd_figures)

    def add_sweep_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--fast", action="store_true",
                       help="reduced sweep for a quick look")
        p.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes (default: all cores)")
        p.add_argument("--no-cache", action="store_true",
                       help="recompute every point, bypass the result "
                            "cache")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result cache root (default ~/.cache/repro "
                            "or $REPRO_CACHE_DIR)")
        p.add_argument("--duration", type=float, default=None, metavar="S",
                       help="override the measurement window (seconds)")
        p.add_argument("--warmup", type=float, default=None, metavar="S",
                       help="override the warmup window (seconds)")
        p.add_argument("--trace-out", default=None, metavar="FILE",
                       help="record every computed sweep point as a "
                            "trace shard (works with --jobs N) and "
                            "merge them into one Perfetto file here")
        p.add_argument("--trace-sample", type=int, default=None,
                       metavar="N",
                       help="with --trace-out: trace 1-in-N quanta per "
                            "point instead of full fidelity")

    sub.add_parser("policies",
                   help="list registered controller policies and their "
                        "tunable parameters") \
        .set_defaults(func=_cmd_policies)

    cmp_p = sub.add_parser("compare",
                           help="policy x scenario tournament with a "
                                "ranked report")
    cmp_p.add_argument("--policies", default=None, metavar="A,B",
                       help="comma-separated policy names (default: "
                            + ",".join(compare.DEFAULT_POLICIES) + ")")
    cmp_p.add_argument("--scenarios", default=None, metavar="X,Y",
                       help="comma-separated scenario names (default: "
                            + ",".join(compare.DEFAULT_SCENARIOS) + ")")
    cmp_p.add_argument("--seeds", default=None, metavar="0,1",
                       help="comma-separated seeds (default: 0)")
    cmp_p.add_argument("--json", default=None, metavar="FILE",
                       help="also write the full report as JSON here")
    add_sweep_flags(cmp_p)
    cmp_p.set_defaults(func=_cmd_compare)

    figure = sub.add_parser("figure", help="regenerate one figure")
    figure.add_argument("id", help="figure id (see 'repro figures')")
    figure.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top-20 "
                             "functions by cumulative time (forces the "
                             "in-process serial path so the profile sees "
                             "the sweep, not worker plumbing)")
    add_sweep_flags(figure)
    figure.set_defaults(func=_cmd_figure)

    suite = sub.add_parser("suite",
                           help="run every figure through one shared "
                                "worker pool")
    add_sweep_flags(suite)
    suite.set_defaults(func=_cmd_suite)

    trace = sub.add_parser("trace",
                           help="run a figure with tracing enabled")
    trace.add_argument("id", help="figure id (see 'repro figures')")
    trace.add_argument("--fast", action="store_true",
                       help="reduced sweep for a quick look")
    trace.add_argument("--out", default=None,
                       help="output path (default trace_<id>.<ext>)")
    trace.add_argument("--format", choices=("perfetto", "jsonl"),
                       default="perfetto",
                       help="perfetto trace_event JSON or raw JSONL")
    trace.add_argument("--sample", type=int, default=None, metavar="N",
                       help="trace 1-in-N simulation quanta "
                            "(deterministic in --seed)")
    trace.add_argument("--seed", type=int, default=0,
                       help="sampling seed (default 0)")
    trace.add_argument("--capacity", type=int, default=None, metavar="N",
                       help="bound the ring to the most recent N events "
                            "(overflow is counted, not silent)")
    trace.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="also export the metrics registry here "
                            "(Prometheus text format)")
    trace.set_defaults(func=_cmd_trace)

    daemon = sub.add_parser("daemon", help="run the IAT daemon")
    daemon.add_argument("--tenants", required=True,
                        help="tenant affiliation file (see Sec. V format)")
    daemon.add_argument("--backend", choices=("sim", "linux"),
                        default="sim")
    daemon.add_argument("--interval", type=float, default=1.0,
                        help="sleep interval seconds (Table II: 1.0)")
    daemon.add_argument("--duration", type=float, default=10.0,
                        help="simulated seconds (sim backend)")
    daemon.add_argument("--packet-size", type=int, default=1500,
                        help="traffic packet size (sim backend)")
    daemon.add_argument("--iterations", type=int, default=0,
                        help="stop after N intervals (linux backend; "
                             "0 = run until ^C)")
    daemon.add_argument("--log-level", default="warning",
                        choices=("debug", "info", "warning", "error"),
                        help="stdlib logging verbosity")
    daemon.add_argument("--trace-out", default=None,
                        help="write a Perfetto trace of the run here")
    daemon.set_defaults(func=_cmd_daemon)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Plain-text rendering helpers for experiment results.

Terminal-friendly bar charts and sparklines used by the examples and
the Fig. 11 timeline, so results are readable without a plotting stack
(the repository deliberately has no matplotlib dependency).
"""

from __future__ import annotations

from typing import Sequence

#: Eight-level block characters for sparklines.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def bar(value: float, maximum: float, *, width: int = 40,
        fill: str = "#") -> str:
    """A horizontal bar scaled so ``maximum`` fills ``width`` chars."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if maximum <= 0:
        return ""
    filled = int(round(min(max(value, 0.0), maximum) / maximum * width))
    return fill * filled


def bar_chart(rows: "Sequence[tuple[str, float]]", *, width: int = 40,
              unit: str = "") -> str:
    """Labelled horizontal bar chart; one row per (label, value)."""
    if not rows:
        return "(no data)"
    label_width = max(len(label) for label, _ in rows)
    maximum = max(value for _, value in rows)
    lines = []
    for label, value in rows:
        lines.append(f"{label:>{label_width}} | "
                     f"{bar(value, maximum, width=width):<{width}} "
                     f"{value:g}{unit}")
    return "\n".join(lines)


def sparkline(values: "Sequence[float]") -> str:
    """A one-line unicode sparkline of a series."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return _SPARK_LEVELS[4] * len(values)
    scale = (len(_SPARK_LEVELS) - 1) / (hi - lo)
    return "".join(_SPARK_LEVELS[int((v - lo) * scale)] for v in values)


def mask_diagram(mask: int, num_ways: int, *, symbol: str = "X") -> str:
    """Render a way mask as a fixed-width cell diagram, way 0 first.

    >>> mask_diagram(0b110, 4)
    '[.XX.]'
    """
    cells = [symbol if mask >> way & 1 else "." for way in range(num_ways)]
    return "[" + "".join(cells) + "]"


def layout_diagram(group_masks: "dict[str, int]", ddio_mask: int,
                   num_ways: int) -> str:
    """Multi-line diagram of a full LLC layout, one row per group."""
    rows = [f"{'way':>12}  " + "".join(str(w % 10)
                                       for w in range(num_ways))]
    for name, mask in group_masks.items():
        rows.append(f"{name:>12}  "
                    + mask_diagram(mask, num_ways)[1:-1])
    rows.append(f"{'DDIO':>12}  " + mask_diagram(ddio_mask, num_ways,
                                                 symbol="D")[1:-1])
    return "\n".join(rows)

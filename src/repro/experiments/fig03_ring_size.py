"""Fig. 3: RFC 2544 zero-loss throughput of l3fwd vs. Rx ring size.

Paper Sec. III-A: single-core DPDK l3fwd with a 1M-flow table; a traffic
generator runs the RFC 2544 search for the maximum zero-drop rate, for
small (64 B) and large (1.5 KB) packets, across Rx ring sizes.

Expected shape: the 64 B series collapses as the ring shrinks (−13% at
512 entries, <10% of peak at 64) because the core is the bottleneck and
a shallow ring absorbs no scheduling jitter; the 1.5 KB series stays
flat until very small rings because the core has slack.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec import ParallelRunner, SweepSpec, run_sweep
from ..net.rfc2544 import TrialResult, find_zero_loss_rate
from ..pci.nic import line_rate_pps
from ..sim.config import PlatformSpec
from .common import l3fwd_scenario

DEFAULT_RING_SIZES = (64, 128, 256, 512, 1024)
DEFAULT_PACKET_SIZES = (64, 1500)

#: Fine-grained interleaving so a sub-step's arrival batch stays well
#: below the smallest ring (otherwise batching itself overflows it),
#: with short quanta to keep wall time in check.
from ..sim.config import PlatformSpec as _PlatformSpec  # noqa: E402

RFC2544_SPEC = _PlatformSpec(name="rfc2544", cores=4,
                             quantum_s=0.02, subquanta=40)

#: Consumer scheduling jitter: every STALL_PERIOD the DUT stops polling
#: for the next duration in the cycle (see RingConsumer).  This is the
#: "skew leading to producer-consumer imbalance" of Sec. III-A; the
#: longest stall bounds the rate each ring size can take loss-free
#: (ring_entries / max_stall), which is what carves Fig. 3a's shape.
STALL_PERIOD = 0.7

#: Generator micro-burstiness (log-normal sigma); mild, the consumer
#: jitter dominates.
BURSTINESS = 0.0


@dataclass
class Fig3Result:
    """Zero-loss throughput (real-equivalent pps) per (packet, ring)."""

    packet_sizes: "tuple[int, ...]"
    ring_sizes: "tuple[int, ...]"
    max_pps: "dict[tuple[int, int], float]"

    def relative(self, packet_size: int, ring_size: int) -> float:
        """Throughput relative to the largest ring for that packet size."""
        reference = self.max_pps[(packet_size, max(self.ring_sizes))]
        if reference == 0:
            return 0.0
        return self.max_pps[(packet_size, ring_size)] / reference


def _make_trial(packet_size: int, ring_entries: int, *,
                measure_s: float, warmup_s: float,
                spec: "PlatformSpec | None", time_scale_hint: float):
    def trial(offered_pps: float) -> TrialResult:
        scenario = l3fwd_scenario(ring_entries=ring_entries,
                                  stall_period=STALL_PERIOD,
                                  spec=spec or RFC2544_SPEC)
        platform = scenario.platform
        vf = scenario.vfs["vf0"]
        from ..net.traffic import TrafficSpec
        traffic = TrafficSpec(pps=offered_pps * platform.spec.time_scale,
                              packet_size=packet_size, n_flows=1_000_000,
                              zipf_theta=0.5, burstiness=BURSTINESS)
        scenario.sim.attach_traffic(scenario.nics[0], vf, traffic)
        scenario.sim.run(warmup_s)
        vf.rx_ring.reset_counters()
        processed_before = scenario.workloads["l3fwd"].packets_processed
        scenario.sim.run(measure_s)
        delivered = (scenario.workloads["l3fwd"].packets_processed
                     - processed_before)
        return TrialResult(
            offered_pps=offered_pps,
            delivered_pps=delivered / measure_s / platform.spec.time_scale,
            dropped=vf.rx_ring.dropped)

    return trial


def run_point(packet_size: int, ring_entries: int, *,
              measure_s: float = 2.2, warmup_s: float = 0.4,
              resolution: float = 0.08, max_trials: int = 14,
              spec: "PlatformSpec | None" = None) -> float:
    """One sweep point: the RFC 2544 zero-loss rate for one
    (packet size, ring size) cell — the binary search and all of its
    trials run inside the point, so points stay independent."""
    ceiling = line_rate_pps(40.0, packet_size)
    trial = _make_trial(packet_size, ring_entries, measure_s=measure_s,
                        warmup_s=warmup_s, spec=spec, time_scale_hint=1.0)
    result = find_zero_loss_rate(trial, ceiling, resolution=resolution,
                                 max_trials=max_trials)
    return result.max_loss_free_pps


def sweep(*, ring_sizes=DEFAULT_RING_SIZES,
          packet_sizes=DEFAULT_PACKET_SIZES, measure_s: float = 2.2,
          warmup_s: float = 0.4, resolution: float = 0.08,
          max_trials: int = 14,
          spec: "PlatformSpec | None" = None) -> SweepSpec:
    return SweepSpec.from_product(
        "fig3", run_point,
        axes={"packet_size": packet_sizes, "ring_entries": ring_sizes},
        common=dict(measure_s=measure_s, warmup_s=warmup_s,
                    resolution=resolution, max_trials=max_trials,
                    spec=spec))


def run(*, ring_sizes=DEFAULT_RING_SIZES, packet_sizes=DEFAULT_PACKET_SIZES,
        measure_s: float = 2.2, warmup_s: float = 0.4,
        resolution: float = 0.08, max_trials: int = 14,
        spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> Fig3Result:
    """Run the full Fig. 3 sweep."""
    rates = run_sweep(sweep(ring_sizes=ring_sizes,
                            packet_sizes=packet_sizes, measure_s=measure_s,
                            warmup_s=warmup_s, resolution=resolution,
                            max_trials=max_trials, spec=spec), runner)
    cells = [(packet_size, ring) for packet_size in packet_sizes
             for ring in ring_sizes]
    max_pps = dict(zip(cells, rates))
    return Fig3Result(tuple(packet_sizes), tuple(ring_sizes), max_pps)


def format_table(result: Fig3Result) -> str:
    lines = ["Fig. 3 — RFC2544 zero-loss throughput vs Rx ring size",
             f"{'ring':>6} | " + " | ".join(
                 f"{p}B pps (rel)".rjust(20) for p in result.packet_sizes)]
    lines.append("-" * len(lines[-1]))
    for ring in result.ring_sizes:
        cells = []
        for packet in result.packet_sizes:
            pps = result.max_pps[(packet, ring)]
            rel = result.relative(packet, ring)
            cells.append(f"{pps / 1e6:8.2f}M ({rel * 100:5.1f}%)".rjust(20))
        lines.append(f"{ring:>6} | " + " | ".join(cells))
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Fig. 14: Redis YCSB performance when non-networking tenants contend,
baseline vs IAT.

Paper Sec. VI-C: the *networking* application also suffers when a
cache-hungry non-networking container happens to share LLC ways with
DDIO — the inbound request/response buffers get evicted.  Reported per
YCSB workload: throughput, average latency and p99 latency, normalized
to the Redis solo run.

Expected shape: baseline 7.1-24.5% throughput loss, 7.9-26.5% higher
average latency, 10.1-20.4% higher tail latency (worst with read-heavy
A/B/C); IAT restricts these to 2.8-5.6% / 2.9-8.9% / 2.8-8.7%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec import ParallelRunner, SweepSpec, canonical_params, run_sweep
from ..sim.config import PlatformSpec
from .appbench import corun, solo_net_run

DEFAULT_LETTERS = ("A", "B", "C")
DEFAULT_SEEDS = (0, 1, 2, 3)
#: The cache-hungry co-runner (the paper names mcf/omnetpp/xalancbmk/
#: X-Mem-10MB/RocksDB as the aggressors).
DEFAULT_APP = "mcf"


@dataclass
class Fig14Cell:
    letter: str
    metric: str                  # "throughput" | "avg" | "p99"
    baseline_worst: float        # worst relative degradation over seeds
    baseline_best: float
    iat: float


@dataclass
class Fig14Result:
    cells: "list[Fig14Cell]"

    def cell(self, letter: str, metric: str) -> Fig14Cell:
        for c in self.cells:
            if c.letter == letter and c.metric == metric:
                return c
        raise KeyError((letter, metric))


def _degradations(metrics, solo) -> "dict[str, float]":
    return {
        "throughput": (1.0 - metrics.redis_tput / solo.redis_tput
                       if solo.redis_tput else 0.0),
        "avg": (metrics.redis_avg_us / solo.redis_avg_us - 1.0
                if solo.redis_avg_us else 0.0),
        "p99": (metrics.redis_p99_us / solo.redis_p99_us - 1.0
                if solo.redis_p99_us else 0.0),
    }


def sweeps(*, letters=DEFAULT_LETTERS, seeds=DEFAULT_SEEDS,
           app: str = DEFAULT_APP, warmup_s: float = 2.0,
           measure_s: float = 4.0, spec: "PlatformSpec | None" = None
           ) -> "tuple[SweepSpec, SweepSpec]":
    timing = dict(warmup_s=warmup_s, measure_s=measure_s, spec=spec)
    solo = SweepSpec.from_points(
        "fig14/solo", solo_net_run,
        [dict(kind="kvs", ycsb_letter=letter, **timing)
         for letter in letters])
    points = []
    for letter in letters:
        for seed in seeds:
            points.append(dict(kind="kvs", app=app, mode="baseline",
                               ycsb_letter=letter, seed=seed, **timing))
        points.append(dict(kind="kvs", app=app, mode="iat",
                           ycsb_letter=letter, **timing))
    return solo, SweepSpec.from_points("fig14/corun", corun, points)


def run(*, letters=DEFAULT_LETTERS, seeds=DEFAULT_SEEDS,
        app: str = DEFAULT_APP, warmup_s: float = 2.0,
        measure_s: float = 4.0, spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> Fig14Result:
    solo_spec, corun_spec = sweeps(letters=letters, seeds=seeds, app=app,
                                   warmup_s=warmup_s, measure_s=measure_s,
                                   spec=spec)
    solos = dict(zip(letters, run_sweep(solo_spec, runner)))
    corun_metrics = dict(zip((p.key() for p in corun_spec.points),
                             run_sweep(corun_spec, runner)))
    timing = dict(warmup_s=warmup_s, measure_s=measure_s, spec=spec)

    def metrics_of(letter, **params):
        return corun_metrics[canonical_params(
            dict(kind="kvs", app=app, ycsb_letter=letter, **params,
                 **timing))]

    cells = []
    for letter in letters:
        solo = solos[letter]
        per_seed = [_degradations(metrics_of(letter, mode="baseline",
                                             seed=seed), solo)
                    for seed in seeds]
        iat_deg = _degradations(metrics_of(letter, mode="iat"), solo)
        for metric in ("throughput", "avg", "p99"):
            values = [d[metric] for d in per_seed]
            cells.append(Fig14Cell(letter, metric, max(values), min(values),
                                   iat_deg[metric]))
    return Fig14Result(cells)


def format_table(result: Fig14Result) -> str:
    lines = ["Fig. 14 — Redis degradation vs solo run",
             f"{'YCSB':>5} {'metric':>11} {'base best':>10} "
             f"{'base worst':>11} {'IAT':>8}"]
    for c in result.cells:
        lines.append(f"{c.letter:>5} {c.metric:>11} "
                     f"{c.baseline_best * 100:>9.1f}% "
                     f"{c.baseline_worst * 100:>10.1f}% "
                     f"{c.iat * 100:>7.1f}%")
    lines.append("paper: baseline 7.1~24.5% tput / 7.9~26.5% avg / "
                 "10.1~20.4% p99; IAT 2.8~5.6% / 2.9~8.9% / 2.8~8.7%")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

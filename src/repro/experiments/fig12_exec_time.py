"""Fig. 12: non-networking application slowdown when co-run with a
networking workload, baseline vs IAT.

Paper Sec. VI-C: SPEC2006 memory-sensitive benchmarks and RocksDB co-run
with (a) Redis behind OVS and (b) the FastClick NFV chain.  Execution
time is normalized to a solo run; the baseline is repeated with random
initial placements (its min-max range reflects whether the app landed
on DDIO's ways), IAT shuffles the layout to keep the app isolated.

Normalized execution time for a fixed-work benchmark equals
``solo_rate / corun_rate``; we measure achieved progress rates.

Expected shape: baseline max degradation 2.5-14.8% (Redis) /
3.5-24.9% (FastClick); with IAT at most ~5%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec import ParallelRunner, SweepSpec, canonical_params, run_sweep
from ..sim.config import PlatformSpec
from .appbench import corun, solo_app_run

DEFAULT_APPS = ("mcf", "omnetpp", "xalancbmk", "milc", "gcc", "rocksdb")
DEFAULT_SEEDS = (0, 1, 2, 3)


@dataclass
class Fig12Cell:
    scenario: str
    app: str
    baseline_min: float   # normalized execution time (1.0 = solo)
    baseline_max: float
    iat: float


@dataclass
class Fig12Result:
    cells: "list[Fig12Cell]"

    def cell(self, scenario: str, app: str) -> Fig12Cell:
        for c in self.cells:
            if c.scenario == scenario and c.app == app:
                return c
        raise KeyError((scenario, app))


def sweeps(*, scenarios=("kvs", "nfv"), apps=DEFAULT_APPS,
           seeds=DEFAULT_SEEDS, ycsb_letter: str = "A",
           warmup_s: float = 2.0, measure_s: float = 4.0,
           spec: "PlatformSpec | None" = None
           ) -> "tuple[SweepSpec, SweepSpec]":
    """(solo sweep, co-run sweep) — the point functions live in
    :mod:`repro.experiments.appbench`."""
    common = dict(ycsb_letter=ycsb_letter, warmup_s=warmup_s,
                  measure_s=measure_s, spec=spec)
    solo = SweepSpec.from_product("fig12/solo", solo_app_run,
                                  axes={"app": apps}, common=common)
    points = []
    for scenario in scenarios:
        for app in apps:
            for seed in seeds:
                points.append(dict(kind=scenario, app=app,
                                   mode="baseline", seed=seed, **common))
            points.append(dict(kind=scenario, app=app, mode="iat",
                               **common))
    return solo, SweepSpec.from_points("fig12/corun", corun, points)


def run(*, scenarios=("kvs", "nfv"), apps=DEFAULT_APPS,
        seeds=DEFAULT_SEEDS, ycsb_letter: str = "A",
        warmup_s: float = 2.0, measure_s: float = 4.0,
        spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> Fig12Result:
    """YCSB-A (50 % updates) drives the Redis side by default: update
    requests carry the 1 KB value inbound, which is what makes the
    networking co-runner press the DDIO ways."""
    solo_spec, corun_spec = sweeps(scenarios=scenarios, apps=apps,
                                   seeds=seeds, ycsb_letter=ycsb_letter,
                                   warmup_s=warmup_s, measure_s=measure_s,
                                   spec=spec)
    solo_rates = dict(zip(apps, (m.app_rate
                                 for m in run_sweep(solo_spec, runner))))
    corun_metrics = dict(zip((p.key() for p in corun_spec.points),
                             run_sweep(corun_spec, runner)))

    def norm_of(point_params) -> float:
        metrics = corun_metrics[canonical_params(point_params)]
        solo = solo_rates[point_params["app"]]
        return solo / metrics.app_rate if metrics.app_rate else float("inf")

    common = dict(ycsb_letter=ycsb_letter, warmup_s=warmup_s,
                  measure_s=measure_s, spec=spec)
    cells = []
    for scenario in scenarios:
        for app in apps:
            norm = [norm_of(dict(kind=scenario, app=app, mode="baseline",
                                 seed=seed, **common)) for seed in seeds]
            iat_norm = norm_of(dict(kind=scenario, app=app, mode="iat",
                                    **common))
            cells.append(Fig12Cell(scenario, app, min(norm), max(norm),
                                   iat_norm))
    return Fig12Result(cells)


def format_table(result: Fig12Result) -> str:
    lines = ["Fig. 12 — normalized execution time vs solo (1.00 = solo)",
             f"{'scenario':>9} {'app':>10} {'base min':>9} {'base max':>9} "
             f"{'IAT':>7}"]
    for c in result.cells:
        lines.append(f"{c.scenario:>9} {c.app:>10} {c.baseline_min:>9.3f} "
                     f"{c.baseline_max:>9.3f} {c.iat:>7.3f}")
    lines.append("paper: baseline up to 1.148 (Redis) / 1.249 (FastClick); "
                 "IAT at most ~1.05")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Parameter-sensitivity study (paper Sec. VI-A: "They can be tuned for
various QoS requirements and hardware.  The parameter sensitivity is
similar to dCAT").

The paper does not plot this; we provide the sweep the sentence implies:
the Fig. 8 microbenchmark at MTU size under IAT while varying one knob
at a time around Table II's defaults —

* ``THRESHOLD_STABLE`` (1-10 %): how eagerly changes are acted on,
* ``THRESHOLD_MISS_LOW`` (0.2-5 M/s): when traffic counts as intensive,
* the sleep interval (0.5-2 s): agility vs. overhead.

Reported per setting: the steady DDIO miss rate (lower = the controller
found a good width), the mean DDIO way count (resource cost), and the
number of mask reprogrammings (stability — dCAT-like mechanisms should
not thrash).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core import IATParams
from ..exec import ParallelRunner, SweepSpec, run_sweep
from ..sim.config import PlatformSpec
from .common import leaky_dma_scenario
from .measure import ddio_rates, steady_window


@dataclass
class SensitivityPoint:
    knob: str
    value: float
    ddio_miss_per_s: float
    mean_ddio_ways: float
    reallocations: int


@dataclass
class SensitivityResult:
    points: "list[SensitivityPoint]"

    def for_knob(self, knob: str) -> "list[SensitivityPoint]":
        return [p for p in self.points if p.knob == knob]


def run_one(knob: str, value: float, *, duration_s: float = 10.0,
            warmup_s: float = 4.0,
            spec: "PlatformSpec | None" = None) -> SensitivityPoint:
    params = IATParams()
    if knob == "threshold_stable":
        params = replace(params, threshold_stable=value)
    elif knob == "threshold_miss_low":
        params = replace(params, threshold_miss_low_per_s=value)
    elif knob == "interval":
        params = replace(params, interval_s=value)
    else:
        raise ValueError(f"unknown knob {knob!r}")

    scenario = leaky_dma_scenario(packet_size=1500, spec=spec)
    daemon = scenario.attach_controller("iat", params=params)
    scenario.sim.run(duration_s)
    records = steady_window(scenario.sim.metrics, warmup_s)
    _, misses = ddio_rates(records, scenario.platform.spec.quantum_s,
                           scenario.time_scale)
    ways = [h.ddio_ways for h in daemon.history]
    reallocs = sum(1 for a, b in zip(ways, ways[1:]) if a != b)
    return SensitivityPoint(
        knob=knob, value=value, ddio_miss_per_s=misses,
        mean_ddio_ways=sum(ways) / len(ways) if ways else 0.0,
        reallocations=reallocs)


DEFAULT_SWEEPS = {
    "threshold_stable": (0.01, 0.03, 0.10),
    "threshold_miss_low": (2e5, 1e6, 5e6),
    "interval": (0.5, 1.0, 2.0),
}


def sweep(*, sweeps=None, duration_s: float = 10.0, warmup_s: float = 4.0,
          spec: "PlatformSpec | None" = None) -> SweepSpec:
    sweeps = sweeps or DEFAULT_SWEEPS
    return SweepSpec.from_points(
        "sensitivity", run_one,
        [dict(knob=knob, value=value, duration_s=duration_s,
              warmup_s=warmup_s, spec=spec)
         for knob, values in sweeps.items() for value in values])


def run(*, sweeps=None, duration_s: float = 10.0, warmup_s: float = 4.0,
        spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> SensitivityResult:
    points = run_sweep(sweep(sweeps=sweeps, duration_s=duration_s,
                             warmup_s=warmup_s, spec=spec), runner)
    return SensitivityResult(points)


def format_table(result: SensitivityResult) -> str:
    lines = ["Sensitivity — IAT knobs around Table II defaults "
             "(Fig. 8 scenario, 1.5KB)",
             f"{'knob':>20} {'value':>10} {'DDIO miss/s':>12} "
             f"{'mean ways':>10} {'reallocs':>9}"]
    for p in result.points:
        lines.append(f"{p.knob:>20} {p.value:>10g} "
                     f"{p.ddio_miss_per_s / 1e6:>10.2f}M "
                     f"{p.mean_ddio_ways:>10.2f} {p.reallocations:>9}")
    lines.append("expected: mild sensitivity (as dCAT); tighter stability "
                 "thresholds react more but should not thrash")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

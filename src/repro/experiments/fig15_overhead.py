"""Fig. 15: IAT daemon per-iteration execution time vs tenant count.

Paper Sec. VI-D: the daemon runs on a dedicated core while 1-16 tenants
(one core each) or 1-8 tenants (two cores each) are registered; the
mean iteration time is reported for *Stable* iterations (Poll Prof Data
only) and *Unstable* ones (poll + State Transition + LLC Re-alloc).

We report the modelled cost (MSR reads at ~1 us each plus per-group
overhead — comparable to the paper's absolute numbers, which are
dominated by ring-0 context switches) and also record the Python
wall-clock time.  No workload simulation is needed: stable iterations
poll unchanging counters; unstable ones are forced by perturbing the
counters between polls.

Expected shape: poll dominates; cost grows with core count but
sub-linearly (fewer tenants for the same cores poll faster); unstable
adds only a handful of register writes; everything stays well under a
millisecond.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import ControlPlane, IATDaemon, IATParams
from ..exec import ParallelRunner, SweepSpec, run_sweep
from ..sim.config import PlatformSpec, XEON_6140
from ..sim.platform import Platform
from ..tenants.tenant import Priority, Tenant, TenantSet

DEFAULT_ONE_CORE_COUNTS = (1, 2, 4, 8, 16)
DEFAULT_TWO_CORE_COUNTS = (1, 2, 4, 8)


@dataclass
class Fig15Point:
    tenants: int
    cores_per_tenant: int
    stable_us: float
    unstable_us: float
    stable_wall_us: float
    unstable_wall_us: float


@dataclass
class Fig15Result:
    points: "list[Fig15Point]" = field(default_factory=list)

    def point(self, tenants: int, cores_per_tenant: int) -> Fig15Point:
        for p in self.points:
            if p.tenants == tenants and p.cores_per_tenant == cores_per_tenant:
                return p
        raise KeyError((tenants, cores_per_tenant))

    def max_cost_us(self) -> float:
        return max(max(p.stable_us, p.unstable_us) for p in self.points)


def _build(n_tenants: int, cores_per_tenant: int):
    cores_needed = n_tenants * cores_per_tenant
    spec = PlatformSpec(name="overhead", cores=max(cores_needed, 1),
                        llc=XEON_6140.llc)
    platform = Platform(spec)
    tenants = []
    for i in range(n_tenants):
        cores = tuple(range(i * cores_per_tenant,
                            (i + 1) * cores_per_tenant))
        tenant = Tenant(f"t{i}", cores=cores,
                        priority=Priority.BE if i % 2 else Priority.PC,
                        is_io=(i == 0), initial_ways=1)
        tenant.cos_id = i + 1
        for core in cores:
            platform.cat.associate(core, tenant.cos_id)
        tenants.append(tenant)
    control = ControlPlane(platform.pqos, TenantSet(tenants),
                           time_scale=1.0)
    return platform, control


def _perturb(platform: Platform, iteration: int) -> None:
    """Poke counters so the next poll looks unstable (drives the FSM)."""
    grow = 1_000_000 * (iteration + 2)
    for block in platform.counters.cores:
        block.credit(instructions=grow, cycles=grow,
                     llc_references=grow // 2, llc_misses=grow // 8)
    for slice_id in range(platform.spec.llc.slices):
        platform.uncore.hits[slice_id] += grow // 4
        platform.uncore.misses[slice_id] += grow // 2


def run_one(n_tenants: int, cores_per_tenant: int, *,
            iterations: int = 50) -> Fig15Point:
    platform, control = _build(n_tenants, cores_per_tenant)
    params = IATParams(ddio_ways_max=min(6, platform.spec.llc.ways - 1))
    daemon = IATDaemon(control, params)
    daemon.on_start(0.0)
    # Stable phase: nothing changes between polls.
    for i in range(iterations):
        daemon.on_interval(float(i + 1))
    stable = daemon.mean_timing_us(stable=True)
    stable_wall = daemon.mean_timing_us(stable=True, modelled=False)
    daemon.timings.clear()
    # Unstable phase: force counter movement every interval.
    for i in range(iterations):
        _perturb(platform, i)
        daemon.on_interval(float(iterations + i + 1))
    unstable = daemon.mean_timing_us(stable=False)
    unstable_wall = daemon.mean_timing_us(stable=False, modelled=False)
    return Fig15Point(n_tenants, cores_per_tenant, stable, unstable,
                      stable_wall, unstable_wall)


def sweep(*, one_core_counts=DEFAULT_ONE_CORE_COUNTS,
          two_core_counts=DEFAULT_TWO_CORE_COUNTS,
          iterations: int = 50) -> SweepSpec:
    points = ([dict(n_tenants=count, cores_per_tenant=1,
                    iterations=iterations) for count in one_core_counts]
              + [dict(n_tenants=count, cores_per_tenant=2,
                      iterations=iterations) for count in two_core_counts])
    return SweepSpec.from_points("fig15", run_one, points)


def run(*, one_core_counts=DEFAULT_ONE_CORE_COUNTS,
        two_core_counts=DEFAULT_TWO_CORE_COUNTS,
        iterations: int = 50,
        runner: "ParallelRunner | None" = None) -> Fig15Result:
    points = run_sweep(sweep(one_core_counts=one_core_counts,
                             two_core_counts=two_core_counts,
                             iterations=iterations), runner)
    return Fig15Result(points)


def format_table(result: Fig15Result) -> str:
    lines = ["Fig. 15 — IAT iteration cost (modelled us; wall us in parens)",
             f"{'tenants':>8} {'cores/t':>8} {'stable':>14} {'unstable':>16}"]
    for p in result.points:
        lines.append(f"{p.tenants:>8} {p.cores_per_tenant:>8} "
                     f"{p.stable_us:>7.1f} ({p.stable_wall_us:5.0f}) "
                     f"{p.unstable_us:>8.1f} ({p.unstable_wall_us:5.0f})")
    lines.append("paper: poll dominates; sub-linear in cores; < 800 us")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Fig. 9: Core Demand detection — OVS under growing flow counts.

Paper Sec. VI-B, second microbenchmark: 64 B traffic fixed at line rate
while the number of flows grows.  A bigger flow population blows up
OVS's EMC/megaflow tables; a static allocation leaves OVS thrashing its
two LLC ways (LLC misses up, IPC down past ~1k flows), while IAT
detects the core-side demand and grants OVS more ways (paper: up to
11.4% higher IPC).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec import ParallelRunner, SweepSpec, run_sweep
from ..sim.config import PlatformSpec
from .common import leaky_dma_scenario
from .measure import mean_tenant_ipc, steady_window, sum_tenant_misses

DEFAULT_FLOW_COUNTS = (1, 100, 1_000, 10_000, 100_000, 1_000_000)
MODES = ("baseline", "iat")


@dataclass
class Fig9Point:
    n_flows: int
    mode: str
    ovs_ipc: float
    ovs_llc_misses_per_s: float
    ovs_ways_final: int


@dataclass
class Fig9Result:
    points: "list[Fig9Point]"

    def point(self, n_flows: int, mode: str) -> Fig9Point:
        for p in self.points:
            if p.n_flows == n_flows and p.mode == mode:
                return p
        raise KeyError((n_flows, mode))

    def ipc_gain(self, n_flows: int) -> float:
        base = self.point(n_flows, "baseline").ovs_ipc
        iat = self.point(n_flows, "iat").ovs_ipc
        return iat / base - 1.0 if base else 0.0


def run_one(n_flows: int, mode: str, *, duration_s: float = 12.0,
            warmup_s: float = 6.0, flow_jump_s: float = 2.0,
            rate_fraction: float = 0.6,
            spec: "PlatformSpec | None" = None) -> Fig9Point:
    """One cell of Fig. 9.

    As in the paper, the traffic *starts* from a single flow and the
    population grows mid-run (at ``flow_jump_s``) — IAT detects the
    resulting DDIO-hit drop / OVS miss-rate jump and walks into Core
    Demand; a static flow count from t=0 would present no change to
    detect.  Measurement covers the post-jump steady state.
    """
    scenario = leaky_dma_scenario(packet_size=64, n_flows=1,
                                  rate_fraction=rate_fraction, spec=spec)
    scenario.attach_controller(mode)
    if n_flows > 1:
        from dataclasses import replace

        def grow_flows() -> None:
            for binding in scenario.sim.traffic:
                binding.gen.set_spec(replace(binding.gen.spec,
                                             n_flows=n_flows,
                                             zipf_theta=0.3))

        scenario.sim.at(flow_jump_s, grow_flows)
    scenario.sim.run(duration_s)
    records = steady_window(scenario.sim.metrics, warmup_s)
    seconds = max(1, len(records)) * scenario.platform.spec.quantum_s \
        * scenario.time_scale
    controller = scenario.controller
    ways = 2
    if hasattr(controller, "allocator") and controller.allocator is not None:
        ways = controller.allocator.group_ways.get("ovs", 2)
    return Fig9Point(
        n_flows=n_flows, mode=mode,
        ovs_ipc=mean_tenant_ipc(records, "ovs"),
        ovs_llc_misses_per_s=sum_tenant_misses(records, "ovs") / seconds,
        ovs_ways_final=ways)


def sweep(*, flow_counts=DEFAULT_FLOW_COUNTS, duration_s: float = 10.0,
          warmup_s: float = 4.0,
          spec: "PlatformSpec | None" = None) -> SweepSpec:
    return SweepSpec.from_product(
        "fig9", run_one,
        axes={"n_flows": flow_counts, "mode": MODES},
        common=dict(duration_s=duration_s, warmup_s=warmup_s, spec=spec))


def run(*, flow_counts=DEFAULT_FLOW_COUNTS, duration_s: float = 10.0,
        warmup_s: float = 4.0, spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> Fig9Result:
    points = run_sweep(sweep(flow_counts=flow_counts,
                             duration_s=duration_s, warmup_s=warmup_s,
                             spec=spec), runner)
    return Fig9Result(points)


def format_table(result: Fig9Result) -> str:
    lines = ["Fig. 9 — OVS IPC / LLC miss vs flow count (64B line rate)",
             f"{'flows':>9} {'mode':>9} {'OVS IPC':>8} {'LLCmiss/s':>12} "
             f"{'OVS ways':>9}"]
    for n_flows in sorted({p.n_flows for p in result.points}):
        for mode in ("baseline", "iat"):
            p = result.point(n_flows, mode)
            lines.append(f"{n_flows:>9} {mode:>9} {p.ovs_ipc:>8.3f} "
                         f"{p.ovs_llc_misses_per_s / 1e6:>10.2f}M "
                         f"{p.ovs_ways_final:>9}")
        lines.append(f"       -> IPC gain "
                     f"{result.ipc_gain(n_flows) * 100:+5.1f}%")
    lines.append("paper: IAT up to +11.4% OVS IPC past 1k flows")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Fig. 8: solving the Leaky DMA problem — system metrics vs packet size.

Paper Sec. VI-B: two NICs at single-flow line rate into OVS, forwarding
to two testpmd containers.  Packet size sweeps 64 B -> 1.5 KB.  Four
panels: (a) DDIO hit count, (b) DDIO miss count, (c) memory bandwidth,
(d) OVS IPC and cycles-per-packet — each for baseline (static CAT,
default 2-way DDIO) vs IAT.

Expected shape: at large packet sizes the in-flight buffer footprint
outgrows the default DDIO ways, so baseline misses climb; IAT moves to
I/O Demand, grows the DDIO mask, converts misses back to hits and cuts
memory bandwidth (paper: up to 15.6%) while OVS IPC improves ~5%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec import ParallelRunner, SweepSpec, run_sweep
from ..net.packet import PACKET_SIZE_LADDER
from ..sim.config import PlatformSpec
from .common import leaky_dma_scenario
from .measure import (StatsWindow, ddio_rates, mean_mem_bandwidth,
                      mean_tenant_ipc, steady_window)

MODES = ("baseline", "iat")


@dataclass
class Fig8Point:
    packet_size: int
    mode: str
    ddio_hits_per_s: float
    ddio_misses_per_s: float
    mem_bw_bytes_per_s: float
    ovs_ipc: float
    ovs_cpp: float
    ddio_ways_final: int


@dataclass
class Fig8Result:
    points: "list[Fig8Point]"

    def point(self, packet_size: int, mode: str) -> Fig8Point:
        for p in self.points:
            if p.packet_size == packet_size and p.mode == mode:
                return p
        raise KeyError((packet_size, mode))

    def mem_bw_reduction(self, packet_size: int) -> float:
        base = self.point(packet_size, "baseline").mem_bw_bytes_per_s
        iat = self.point(packet_size, "iat").mem_bw_bytes_per_s
        return 1.0 - iat / base if base else 0.0

    def ipc_gain(self, packet_size: int) -> float:
        base = self.point(packet_size, "baseline").ovs_ipc
        iat = self.point(packet_size, "iat").ovs_ipc
        return iat / base - 1.0 if base else 0.0


def run_one(packet_size: int, mode: str, *, duration_s: float = 10.0,
            warmup_s: float = 4.0, n_flows: int = 1,
            spec: "PlatformSpec | None" = None) -> Fig8Point:
    scenario = leaky_dma_scenario(packet_size=packet_size, n_flows=n_flows,
                                  spec=spec)
    scenario.attach_controller(mode)
    ovs = scenario.workloads["ovs"]
    window = StatsWindow(ovs)
    scenario.sim.run(warmup_s)
    window.open(scenario.sim.now)
    scenario.sim.run(duration_s - warmup_s)
    ovs_window = window.close(scenario.sim.now)
    quantum = scenario.platform.spec.quantum_s
    scale = scenario.time_scale
    records = steady_window(scenario.sim.metrics, warmup_s)
    hits, misses = ddio_rates(records, quantum, scale)
    packets = ovs_window.ops
    cpp = ovs_window.busy_cycles / packets if packets else 0.0
    return Fig8Point(
        packet_size=packet_size, mode=mode,
        ddio_hits_per_s=hits, ddio_misses_per_s=misses,
        mem_bw_bytes_per_s=mean_mem_bandwidth(records, quantum, scale),
        ovs_ipc=mean_tenant_ipc(records, "ovs"),
        ovs_cpp=cpp,
        ddio_ways_final=bin(scenario.platform.ddio.mask).count("1"))


def sweep(*, packet_sizes=PACKET_SIZE_LADDER, duration_s: float = 10.0,
          warmup_s: float = 4.0,
          spec: "PlatformSpec | None" = None) -> SweepSpec:
    """The figure's cross-product, declaratively (see repro.exec)."""
    return SweepSpec.from_product(
        "fig8", run_one,
        axes={"packet_size": packet_sizes, "mode": MODES},
        common=dict(duration_s=duration_s, warmup_s=warmup_s, spec=spec))


def run(*, packet_sizes=PACKET_SIZE_LADDER, duration_s: float = 10.0,
        warmup_s: float = 4.0, spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> Fig8Result:
    points = run_sweep(sweep(packet_sizes=packet_sizes,
                             duration_s=duration_s, warmup_s=warmup_s,
                             spec=spec), runner)
    return Fig8Result(points)


def format_table(result: Fig8Result) -> str:
    lines = ["Fig. 8 — Leaky DMA microbenchmark (baseline vs IAT)",
             f"{'pkt':>5} {'mode':>9} {'DDIO hit/s':>12} {'DDIO miss/s':>12} "
             f"{'mem GB/s':>9} {'OVS IPC':>8} {'CPP':>8} {'ddioW':>6}"]
    sizes = sorted({p.packet_size for p in result.points})
    for size in sizes:
        for mode in ("baseline", "iat"):
            p = result.point(size, mode)
            lines.append(
                f"{size:>5} {mode:>9} {p.ddio_hits_per_s / 1e6:>10.2f}M "
                f"{p.ddio_misses_per_s / 1e6:>10.2f}M "
                f"{p.mem_bw_bytes_per_s / 1e9:>9.2f} {p.ovs_ipc:>8.3f} "
                f"{p.ovs_cpp:>8.1f} {p.ddio_ways_final:>6}")
        lines.append(f"      -> mem BW reduction "
                     f"{result.mem_bw_reduction(size) * 100:5.1f}%, "
                     f"IPC gain {result.ipc_gain(size) * 100:+5.1f}%")
    lines.append("paper: mem BW reduced by up to 15.6%, OVS IPC ~+5% at "
                 "large packets")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Fig. 4: the Latent Contender problem — X-Mem vs. DDIO way overlap.

Paper Sec. III-B: one container runs l3fwd at 40 Gb on two LLC ways
(ways 0-1); another runs X-Mem random-read with a 4-16 MB working set,
bound either to two *dedicated* ways or to the two *DDIO* ways.  Even
though the containers share no ways from the core's point of view, the
DDIO overlap degrades X-Mem by up to ~26% throughput / ~32% latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec import ParallelRunner, SweepSpec, run_sweep
from ..sim.config import PlatformSpec
from .common import latent_contender_scenario
from .measure import StatsWindow

DEFAULT_WORKING_SETS_MB = (4, 8, 12, 16)


@dataclass
class Fig4Point:
    working_set_mb: int
    throughput_dedicated: float
    throughput_overlap: float
    latency_dedicated_ns: float
    latency_overlap_ns: float

    @property
    def throughput_loss(self) -> float:
        """Relative throughput drop caused by DDIO overlap."""
        if self.throughput_dedicated == 0:
            return 0.0
        return 1.0 - self.throughput_overlap / self.throughput_dedicated

    @property
    def latency_gain(self) -> float:
        """Relative average-latency increase caused by DDIO overlap."""
        if self.latency_dedicated_ns == 0:
            return 0.0
        return self.latency_overlap_ns / self.latency_dedicated_ns - 1.0


@dataclass
class Fig4Result:
    points: "list[Fig4Point]"

    def worst_throughput_loss(self) -> float:
        return max(p.throughput_loss for p in self.points)

    def worst_latency_gain(self) -> float:
        return max(p.latency_gain for p in self.points)


def run_case(ws_mb: int, overlap: bool, *, warmup_s: float = 3.0,
             measure_s: float = 3.0, packet_size: int = 1024,
             spec: "PlatformSpec | None" = None) -> "tuple[float, float]":
    """One sweep point: X-Mem ``(throughput ops/s, avg latency ns)`` for
    a working set either on dedicated or on DDIO-overlapped ways."""
    scenario = latent_contender_scenario(
        xmem_ws_bytes=ws_mb << 20, overlap_ddio=overlap,
        packet_size=packet_size, spec=spec)
    xmem = scenario.workloads["xmem"]
    window = StatsWindow(xmem)
    scenario.sim.run(warmup_s)
    window.open(scenario.sim.now)
    scenario.sim.run(measure_s)
    result = window.close(scenario.sim.now)
    freq = scenario.platform.spec.freq_hz
    latency_ns = result.avg_latency_cycles / freq * 1e9
    return result.ops_per_sec(scenario.time_scale), latency_ns


def sweep(*, working_sets_mb=DEFAULT_WORKING_SETS_MB,
          packet_size: int = 1024, warmup_s: float = 3.0,
          measure_s: float = 3.0,
          spec: "PlatformSpec | None" = None) -> SweepSpec:
    return SweepSpec.from_product(
        "fig4", run_case,
        axes={"ws_mb": working_sets_mb, "overlap": (False, True)},
        common=dict(warmup_s=warmup_s, measure_s=measure_s,
                    packet_size=packet_size, spec=spec))


def run(*, working_sets_mb=DEFAULT_WORKING_SETS_MB, packet_size: int = 1024,
        warmup_s: float = 3.0, measure_s: float = 3.0,
        spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> Fig4Result:
    cases = run_sweep(sweep(working_sets_mb=working_sets_mb,
                            packet_size=packet_size, warmup_s=warmup_s,
                            measure_s=measure_s, spec=spec), runner)
    points = []
    for ws_mb, ((tput_ded, lat_ded), (tput_ovl, lat_ovl)) in zip(
            working_sets_mb, zip(cases[::2], cases[1::2])):
        points.append(Fig4Point(ws_mb, tput_ded, tput_ovl, lat_ded, lat_ovl))
    return Fig4Result(points)


def format_table(result: Fig4Result) -> str:
    lines = ["Fig. 4 — X-Mem with dedicated vs DDIO-overlapped LLC ways",
             f"{'WS (MB)':>8} {'tput ded':>12} {'tput ovl':>12} "
             f"{'loss':>7} {'lat ded':>9} {'lat ovl':>9} {'worse':>7}"]
    for p in result.points:
        lines.append(
            f"{p.working_set_mb:>8} {p.throughput_dedicated / 1e6:>10.2f}M "
            f"{p.throughput_overlap / 1e6:>10.2f}M "
            f"{p.throughput_loss * 100:>6.1f}% "
            f"{p.latency_dedicated_ns:>7.1f}ns {p.latency_overlap_ns:>7.1f}ns "
            f"{p.latency_gain * 100:>6.1f}%")
    lines.append(f"worst: throughput -{result.worst_throughput_loss() * 100:.1f}%"
                 f", latency +{result.worst_latency_gain() * 100:.1f}%"
                 f"  (paper: up to -26.0% / +32.0%)")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

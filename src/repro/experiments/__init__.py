"""Experiment harnesses: one module per figure of the paper's evaluation.

| Module                  | Paper figure | Content |
|-------------------------|--------------|---------|
| fig03_ring_size         | Fig. 3  | RFC2544 throughput vs Rx ring size |
| fig04_latent_contender  | Fig. 4  | X-Mem vs DDIO way overlap |
| fig08_leaky_dma         | Fig. 8  | DDIO hit/miss, mem BW, OVS IPC/CPP |
| fig09_flow_scaling      | Fig. 9  | OVS under growing flow counts |
| fig10_shuffle           | Fig. 10 | four-policy comparison |
| fig11_timeline          | Fig. 11 | allocation timeline with IAT |
| fig12_exec_time         | Fig. 12 | app slowdown, baseline vs IAT |
| fig13_rocksdb_latency   | Fig. 13 | RocksDB weighted latency |
| fig14_redis_ycsb        | Fig. 14 | Redis tput/avg/p99 degradation |
| fig15_overhead          | Fig. 15 | daemon iteration cost |

Beyond the figures, :mod:`.compare` is the ``repro compare`` policy
tournament: the registered controller policies raced across scenarios
(including the device-diversity ``mixed-nic`` / ``dma-streams`` setups
in :mod:`.common`) with a ranked throughput/p99/fairness report.
"""

from . import (appbench, common, compare, ext_ddio, fig03_ring_size,
               fig04_latent_contender, fig08_leaky_dma, fig09_flow_scaling,
               fig10_shuffle, fig11_timeline, fig12_exec_time,
               fig13_rocksdb_latency, fig14_redis_ycsb, fig15_overhead,
               measure, report, sensitivity)
from .common import (Scenario, dma_stream_scenario, kvs_scenario,
                     l3fwd_scenario, latent_contender_scenario,
                     leaky_dma_scenario, make_platform, mixed_nic_scenario,
                     nfv_scenario, shuffle_scenario)

__all__ = [
    "Scenario", "appbench", "common", "compare", "dma_stream_scenario",
    "ext_ddio", "fig03_ring_size", "fig04_latent_contender",
    "fig08_leaky_dma", "fig09_flow_scaling", "fig10_shuffle",
    "fig11_timeline", "fig12_exec_time", "fig13_rocksdb_latency",
    "fig14_redis_ycsb", "fig15_overhead", "kvs_scenario",
    "l3fwd_scenario", "latent_contender_scenario", "leaky_dma_scenario",
    "make_platform", "measure", "mixed_nic_scenario", "nfv_scenario",
    "report", "sensitivity", "shuffle_scenario",
]

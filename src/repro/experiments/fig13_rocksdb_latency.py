"""Fig. 13: RocksDB normalized weighted average latency, baseline vs IAT.

Paper Sec. VI-C: for each YCSB workload, every operation type's average
latency is normalized to the solo run and the normalized values are
combined with the mix's weights ("normalized weighted latency").
Co-runners: Redis behind OVS, or the FastClick chain.

Expected shape: baseline up to 1.141 (Redis) / 1.197 (FastClick); IAT
at most ~1.064 / ~1.099.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exec import ParallelRunner, SweepSpec, canonical_params, run_sweep
from ..sim.config import PlatformSpec
from ..workloads.ycsb import ALL_WORKLOADS
from .appbench import corun, solo_app_run

DEFAULT_LETTERS = ("A", "B", "C", "F")
DEFAULT_SEEDS = (0, 1, 2, 3)


def weighted_latency(per_op_corun, per_op_solo, mix) -> float:
    """The paper's metric: per-type normalized latency, mix-weighted."""
    total = 0.0
    for op, share in mix.proportions.items():
        solo = per_op_solo.get(op, 0.0)
        mine = per_op_corun.get(op, 0.0)
        total += share * (mine / solo if solo else 1.0)
    return total


@dataclass
class Fig13Cell:
    scenario: str
    letter: str
    baseline_min: float
    baseline_max: float
    iat: float


@dataclass
class Fig13Result:
    cells: "list[Fig13Cell]"

    def cell(self, scenario: str, letter: str) -> Fig13Cell:
        for c in self.cells:
            if c.scenario == scenario and c.letter == letter:
                return c
        raise KeyError((scenario, letter))


def sweeps(*, scenarios=("kvs", "nfv"), letters=DEFAULT_LETTERS,
           seeds=DEFAULT_SEEDS, warmup_s: float = 2.0,
           measure_s: float = 4.0, spec: "PlatformSpec | None" = None
           ) -> "tuple[SweepSpec, SweepSpec]":
    timing = dict(warmup_s=warmup_s, measure_s=measure_s, spec=spec)
    solo = SweepSpec.from_points(
        "fig13/solo", solo_app_run,
        [dict(app="rocksdb", ycsb_letter=letter, **timing)
         for letter in letters])
    points = []
    for letter in letters:
        for scenario in scenarios:
            for seed in seeds:
                points.append(dict(kind=scenario, app="rocksdb",
                                   mode="baseline", ycsb_letter=letter,
                                   seed=seed, **timing))
            points.append(dict(kind=scenario, app="rocksdb", mode="iat",
                               ycsb_letter=letter, **timing))
    return solo, SweepSpec.from_points("fig13/corun", corun, points)


def run(*, scenarios=("kvs", "nfv"), letters=DEFAULT_LETTERS,
        seeds=DEFAULT_SEEDS, warmup_s: float = 2.0, measure_s: float = 4.0,
        spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> Fig13Result:
    solo_spec, corun_spec = sweeps(scenarios=scenarios, letters=letters,
                                   seeds=seeds, warmup_s=warmup_s,
                                   measure_s=measure_s, spec=spec)
    solos = dict(zip(letters, run_sweep(solo_spec, runner)))
    corun_metrics = dict(zip((p.key() for p in corun_spec.points),
                             run_sweep(corun_spec, runner)))
    timing = dict(warmup_s=warmup_s, measure_s=measure_s, spec=spec)

    def value_of(letter, **params) -> float:
        metrics = corun_metrics[canonical_params(
            dict(app="rocksdb", ycsb_letter=letter, **params, **timing))]
        return weighted_latency(metrics.rocksdb_per_op,
                                solos[letter].rocksdb_per_op,
                                ALL_WORKLOADS[letter])

    cells = []
    for letter in letters:
        for scenario in scenarios:
            values = [value_of(letter, kind=scenario, mode="baseline",
                               seed=seed) for seed in seeds]
            iat_value = value_of(letter, kind=scenario, mode="iat")
            cells.append(Fig13Cell(scenario, letter, min(values),
                                   max(values), iat_value))
    return Fig13Result(cells)


def format_table(result: Fig13Result) -> str:
    lines = ["Fig. 13 — RocksDB normalized weighted latency (1.00 = solo)",
             f"{'scenario':>9} {'YCSB':>5} {'base min':>9} {'base max':>9} "
             f"{'IAT':>7}"]
    for c in result.cells:
        lines.append(f"{c.scenario:>9} {c.letter:>5} {c.baseline_min:>9.3f} "
                     f"{c.baseline_max:>9.3f} {c.iat:>7.3f}")
    lines.append("paper: baseline up to 1.141/1.197; IAT at most 1.064/1.099")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Fig. 13: RocksDB normalized weighted average latency, baseline vs IAT.

Paper Sec. VI-C: for each YCSB workload, every operation type's average
latency is normalized to the solo run and the normalized values are
combined with the mix's weights ("normalized weighted latency").
Co-runners: Redis behind OVS, or the FastClick chain.

Expected shape: baseline up to 1.141 (Redis) / 1.197 (FastClick); IAT
at most ~1.064 / ~1.099.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import PlatformSpec
from ..workloads.ycsb import ALL_WORKLOADS
from .appbench import corun, solo_app_run

DEFAULT_LETTERS = ("A", "B", "C", "F")
DEFAULT_SEEDS = (0, 1, 2, 3)


def weighted_latency(per_op_corun, per_op_solo, mix) -> float:
    """The paper's metric: per-type normalized latency, mix-weighted."""
    total = 0.0
    for op, share in mix.proportions.items():
        solo = per_op_solo.get(op, 0.0)
        mine = per_op_corun.get(op, 0.0)
        total += share * (mine / solo if solo else 1.0)
    return total


@dataclass
class Fig13Cell:
    scenario: str
    letter: str
    baseline_min: float
    baseline_max: float
    iat: float


@dataclass
class Fig13Result:
    cells: "list[Fig13Cell]"

    def cell(self, scenario: str, letter: str) -> Fig13Cell:
        for c in self.cells:
            if c.scenario == scenario and c.letter == letter:
                return c
        raise KeyError((scenario, letter))


def run(*, scenarios=("kvs", "nfv"), letters=DEFAULT_LETTERS,
        seeds=DEFAULT_SEEDS, warmup_s: float = 2.0, measure_s: float = 4.0,
        spec: "PlatformSpec | None" = None) -> Fig13Result:
    cells = []
    for letter in letters:
        mix = ALL_WORKLOADS[letter]
        solo = solo_app_run("rocksdb", letter, warmup_s=warmup_s,
                            measure_s=measure_s, spec=spec)
        for scenario in scenarios:
            values = []
            for seed in seeds:
                metrics = corun(scenario, "rocksdb", "baseline",
                                ycsb_letter=letter, seed=seed,
                                warmup_s=warmup_s, measure_s=measure_s,
                                spec=spec)
                values.append(weighted_latency(metrics.rocksdb_per_op,
                                               solo.rocksdb_per_op, mix))
            iat_metrics = corun(scenario, "rocksdb", "iat",
                                ycsb_letter=letter, warmup_s=warmup_s,
                                measure_s=measure_s, spec=spec)
            iat_value = weighted_latency(iat_metrics.rocksdb_per_op,
                                         solo.rocksdb_per_op, mix)
            cells.append(Fig13Cell(scenario, letter, min(values),
                                   max(values), iat_value))
    return Fig13Result(cells)


def format_table(result: Fig13Result) -> str:
    lines = ["Fig. 13 — RocksDB normalized weighted latency (1.00 = solo)",
             f"{'scenario':>9} {'YCSB':>5} {'base min':>9} {'base max':>9} "
             f"{'IAT':>7}"]
    for c in result.cells:
        lines.append(f"{c.scenario:>9} {c.letter:>5} {c.baseline_min:>9.3f} "
                     f"{c.baseline_max:>9.3f} {c.iat:>7.3f}")
    lines.append("paper: baseline up to 1.141/1.197; IAT at most 1.064/1.099")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

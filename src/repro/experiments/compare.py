"""``repro compare``: the policy × scenario tournament harness.

Races every requested controller policy (from the
:mod:`repro.core.policies` registry) across a set of scenarios through
the standard sweep engine — each (policy, scenario, seed) cell is one
pure point function evaluated in parallel and cached like any figure
point.  The report ranks policies on three axes:

* **throughput** — summed steady-window ops/s of the
  performance-critical workloads;
* **p99 latency** — 99th percentile of the PC workloads' sampled
  per-op latencies over the measure window;
* **fairness** — Jain's index over per-tenant slowdowns (best observed
  IPC over steady-window IPC), the LFOC-style metric from
  :mod:`repro.core.monitor`.

Scenario-local scores normalize each axis against the best policy in
that scenario (so a hard scenario cannot drown an easy one) and the
overall ranking averages the per-cell scores.  Beyond the paper's
figures, two device-diversity scenarios (multiple NIC classes, DMA
streams on one fast device) probe where I/O-awareness actually pays.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.monitor import SLOWDOWN_CAP, jain_fairness
from ..core.policies import get_policy
from ..exec import ParallelRunner, SweepSpec, run_sweep
from ..sim.config import PlatformSpec
from ..tenants.tenant import Priority
from .common import (Scenario, dma_stream_scenario, leaky_dma_scenario,
                     mixed_nic_scenario, shuffle_scenario)
from .measure import StatsWindow, steady_window

#: Tournament scenario registry: name -> (builder, kwargs, description).
#: Builders take ``seed`` and ``spec``; fixed kwargs pin the shape.
SCENARIOS: "dict[str, tuple]" = {
    "mixed-nic": (mixed_nic_scenario, {},
                  "three NIC classes (100/40/10 GbE) + PC/BE X-Mem"),
    "dma-streams": (dma_stream_scenario, {},
                    "three DMA streams on one 100 GbE device + PC/BE "
                    "X-Mem"),
    "shuffle": (shuffle_scenario, {"packet_size": 1500},
                "Fig. 10/11 slicing setup: 2 testpmd PC + 3 X-Mem"),
    "leaky-dma": (leaky_dma_scenario, {"packet_size": 1024},
                  "Fig. 8 aggregation setup: OVS + 2 testpmd"),
}

#: Default tournament line-ups.
DEFAULT_POLICIES = ("iat", "ioca", "lfoc", "static")
DEFAULT_SCENARIOS = ("mixed-nic", "dma-streams", "shuffle")


def build_scenario(name: str, *, seed: int = 0,
                   spec: "PlatformSpec | None" = None) -> Scenario:
    """Instantiate one tournament scenario by registry name."""
    try:
        builder, kwargs, _ = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") \
            from None
    return builder(seed=seed, spec=spec, **kwargs)


@dataclass
class ComparePoint:
    """One (policy, scenario, seed) cell of the tournament."""

    policy: str
    scenario: str
    seed: int
    #: Summed PC-workload throughput over the measure window (ops/s,
    #: real-time equivalent).
    throughput: float
    #: 99th-percentile sampled PC op latency over the window (us); 0.0
    #: when no workload samples latencies in the scenario.
    p99_latency_us: float
    #: Jain fairness index over per-tenant slowdowns (1.0 = fair).
    fairness: float
    #: Per-tenant slowdown estimates behind the fairness index.
    slowdowns: "dict[str, float]" = field(default_factory=dict)
    #: Daemon decisions taken (unstable iterations), for the report.
    decisions: int = 0


def _pc_names(scenario: Scenario) -> "list[str]":
    return [t.name for t in scenario.sim.tenant_set()
            if t.priority is Priority.PC]


def _tenant_slowdowns(metrics, warmup: float) -> "dict[str, float]":
    """Slowdown per tenant: peak IPC anywhere vs mean steady IPC."""
    steady = steady_window(metrics, warmup)
    if not steady:
        steady = metrics.records
    out: "dict[str, float]" = {}
    names = sorted({name for r in metrics.records for name in r.tenants})
    for name in names:
        series = [r.tenants[name].ipc for r in metrics.records
                  if name in r.tenants]
        steady_series = [r.tenants[name].ipc for r in steady
                         if name in r.tenants]
        peak = max(series, default=0.0)
        mean = (sum(steady_series) / len(steady_series)
                if steady_series else 0.0)
        if peak <= 0.0:
            out[name] = 1.0
        elif mean <= peak / SLOWDOWN_CAP:
            out[name] = SLOWDOWN_CAP
        else:
            out[name] = peak / mean
    return out


def run_point(policy: str, scenario: str, *, seed: int = 0,
              duration: float = 12.0, warmup: float = 3.0,
              policy_params: "dict | None" = None,
              spec: "PlatformSpec | None" = None) -> ComparePoint:
    """Run one tournament cell: build, attach, measure, score.

    ``policy`` and ``policy_params`` are part of the sweep point's
    parameters on purpose: they flow into the result-cache key, so two
    policies (or two parameterizations of one) on the same scenario
    never collide in the cache.
    """
    sc = build_scenario(scenario, seed=seed, spec=spec)
    daemon = sc.attach_policy(policy, policy_params)
    sim = sc.sim
    freq = sc.platform.spec.freq_hz

    pc = [name for name in _pc_names(sc) if name in sc.workloads]
    windows = {name: StatsWindow(sc.workloads[name]) for name in pc}
    sample_base: "dict[str, int]" = {}

    def open_windows() -> None:
        for name, window in windows.items():
            window.open(sim.now)
            sample_base[name] = len(
                sc.workloads[name].stats.latency_samples)

    sim.at(warmup, open_windows)
    metrics = sim.run(duration)

    throughput = 0.0
    samples: "list[np.ndarray]" = []
    for name, window in windows.items():
        result = window.close(sim.now)
        throughput += result.ops_per_sec(sc.time_scale)
        tail = sc.workloads[name].stats.latency_samples[
            sample_base.get(name, 0):]
        if tail:
            samples.append(np.asarray(tail, dtype=float))
    if samples:
        p99_cycles = float(np.percentile(np.concatenate(samples), 99.0))
        p99_us = p99_cycles / freq * 1e6
    else:
        p99_us = 0.0

    slowdowns = _tenant_slowdowns(metrics, warmup)
    decisions = sum(1 for t in daemon.timings if not t.stable)
    return ComparePoint(
        policy=policy, scenario=scenario, seed=seed,
        throughput=throughput, p99_latency_us=p99_us,
        fairness=jain_fairness(slowdowns.values()),
        slowdowns=slowdowns, decisions=decisions)


@dataclass
class CompareResult:
    """All tournament cells plus the derived ranking."""

    points: "list[ComparePoint]"

    def policies(self) -> "list[str]":
        seen: "list[str]" = []
        for p in self.points:
            if p.policy not in seen:
                seen.append(p.policy)
        return seen

    def scenarios(self) -> "list[str]":
        seen: "list[str]" = []
        for p in self.points:
            if p.scenario not in seen:
                seen.append(p.scenario)
        return seen

    def cell_scores(self) -> "dict[tuple[str, str, int], float]":
        """Per-cell score in [0, 1]: mean of the three axes, each
        normalized against the best policy in the same (scenario, seed)
        cell group."""
        groups: "dict[tuple[str, int], list[ComparePoint]]" = {}
        for p in self.points:
            groups.setdefault((p.scenario, p.seed), []).append(p)
        scores: "dict[tuple[str, str, int], float]" = {}
        for (scenario, seed), cells in groups.items():
            best_tput = max(c.throughput for c in cells)
            with_lat = [c.p99_latency_us for c in cells
                        if c.p99_latency_us > 0]
            best_p99 = min(with_lat) if with_lat else 0.0
            best_fair = max(c.fairness for c in cells)
            for c in cells:
                axes = []
                axes.append(c.throughput / best_tput if best_tput else 1.0)
                if best_p99 and c.p99_latency_us > 0:
                    axes.append(best_p99 / c.p99_latency_us)
                axes.append(c.fairness / best_fair if best_fair else 1.0)
                scores[(c.policy, scenario, seed)] = \
                    sum(axes) / len(axes)
        return scores

    def ranking(self) -> "list[tuple[str, float]]":
        """(policy, mean score) pairs, best first; ties break by name."""
        scores = self.cell_scores()
        totals: "dict[str, list[float]]" = {}
        for (policy, _, _), score in scores.items():
            totals.setdefault(policy, []).append(score)
        means = {policy: sum(vals) / len(vals)
                 for policy, vals in totals.items()}
        return sorted(means.items(), key=lambda kv: (-kv[1], kv[0]))

    def to_json_dict(self) -> dict:
        """JSON-ready report: ranking plus every cell's raw metrics."""
        return {
            "ranking": [{"policy": policy, "score": score}
                        for policy, score in self.ranking()],
            "points": [asdict(p) for p in self.points],
        }


def sweep(*, policies=DEFAULT_POLICIES, scenarios=DEFAULT_SCENARIOS,
          seeds=(0,), duration: float = 12.0, warmup: float = 3.0,
          policy_params: "dict | None" = None,
          spec: "PlatformSpec | None" = None) -> SweepSpec:
    unknown = [s for s in scenarios if s not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenarios {unknown!r} "
                       f"(known: {', '.join(sorted(SCENARIOS))})")
    for policy in policies:      # fail fast, not inside a worker
        get_policy(policy)
    return SweepSpec.from_product(
        "compare", run_point,
        axes={"scenario": tuple(scenarios), "policy": tuple(policies),
              "seed": tuple(seeds)},
        common=dict(duration=duration, warmup=warmup,
                    policy_params=policy_params, spec=spec))


def run(*, policies=DEFAULT_POLICIES, scenarios=DEFAULT_SCENARIOS,
        seeds=(0,), duration: float = 12.0, warmup: float = 3.0,
        policy_params: "dict | None" = None,
        spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> CompareResult:
    points = run_sweep(sweep(policies=policies, scenarios=scenarios,
                             seeds=seeds, duration=duration, warmup=warmup,
                             policy_params=policy_params, spec=spec),
                       runner)
    return CompareResult(points)


def format_table(result: CompareResult) -> str:
    """Ranked report plus the per-scenario metric table."""
    lines = ["Compare — policy tournament "
             f"({len(result.policies())} policies x "
             f"{len(result.scenarios())} scenarios)"]
    lines.append(f"{'rank':>4} {'policy':>10} {'score':>7}")
    for rank, (policy, score) in enumerate(result.ranking(), start=1):
        lines.append(f"{rank:>4} {policy:>10} {score:>7.3f}")
    lines.append("")
    lines.append(f"{'scenario':>12} {'policy':>10} {'seed':>4} "
                 f"{'tput':>10} {'p99':>10} {'fairness':>8} {'dec':>4}")
    for p in result.points:
        p99 = f"{p.p99_latency_us:>8.2f}us" if p.p99_latency_us else \
            f"{'-':>10}"
        lines.append(
            f"{p.scenario:>12} {p.policy:>10} {p.seed:>4} "
            f"{p.throughput / 1e6:>9.2f}M {p99} {p.fairness:>8.3f} "
            f"{p.decisions:>4}")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Fig. 11: LLC allocation and container-4 LLC misses over time with IAT.

Same scenario and phase script as Fig. 10, 1.5 KB packets, IAT active
(DDIO way management frozen per footnote 3).  The paper plots the
per-tenant way allocation and container 4's LLC miss count sampled at
0.1 s by an independent pqos process; our metrics recorder plays that
role.  Expected: IAT reacts within its sleep interval to the working-set
jump at 5 s (grants container 4 ways, shuffles container 3 next to
DDIO) and to the DDIO widening at 15 s (reshuffles to restore
isolation), visible as a drop in container 4's miss rate after each
reaction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cache.cat import mask_ways
from ..cache.ddio import ddio_mask_for_ways
from ..exec import ParallelRunner, SweepSpec, run_sweep
from ..sim.config import PlatformSpec
from .common import shuffle_scenario


@dataclass
class Fig11Result:
    times: "np.ndarray"
    c4_misses: "np.ndarray"
    masks: "dict[str, list[int]]"     # per-tenant mask series
    ddio_masks: "list[int]"
    daemon_history: list

    def mask_at(self, name: str, t: float) -> int:
        idx = int(np.searchsorted(self.times, t))
        idx = min(idx, len(self.masks[name]) - 1)
        return self.masks[name][idx]

    def reaction_delay(self, event_t: float, *,
                       window: float = 3.0) -> "float | None":
        """Seconds until c4's mask changed after an event (None = never)."""
        before = self.mask_at("c4", event_t)
        for t, mask in zip(self.times, self.masks["c4"]):
            if event_t < t <= event_t + window and mask != before:
                return t - event_t
        return None


def run_point(packet_size: int = 1500, *, t_grow: float = 5.0,
              t_ddio: float = 15.0, t_end: float = 20.0,
              seed: int = 10,
              spec: "PlatformSpec | None" = None) -> Fig11Result:
    """The timeline is a single sweep point (one traced run)."""
    scenario = shuffle_scenario(packet_size=packet_size, spec=spec,
                                seed=seed)
    daemon = scenario.attach_controller("iat", manage_ddio=False)
    sim = scenario.sim
    platform = scenario.platform
    c4 = scenario.workloads["c4"]
    sim.at(t_grow, lambda: c4.set_working_set(10 << 20))
    sim.at(t_ddio, lambda: platform.ddio.set_mask(
        ddio_mask_for_ways(platform.spec.llc, 4)))
    metrics = sim.run(t_end)

    names = list(scenario.workloads)
    masks = {name: [r.tenants[name].mask for r in metrics.records]
             for name in names}
    return Fig11Result(
        times=metrics.times(),
        c4_misses=metrics.tenant_series("c4", "llc_misses"),
        masks=masks,
        ddio_masks=[r.ddio_mask for r in metrics.records],
        daemon_history=daemon.history)


def sweep(*, packet_size: int = 1500, t_grow: float = 5.0,
          t_ddio: float = 15.0, t_end: float = 20.0, seed: int = 10,
          spec: "PlatformSpec | None" = None) -> SweepSpec:
    return SweepSpec.from_points(
        "fig11", run_point,
        [dict(packet_size=packet_size, t_grow=t_grow, t_ddio=t_ddio,
              t_end=t_end, seed=seed, spec=spec)])


def run(*, packet_size: int = 1500, t_grow: float = 5.0,
        t_ddio: float = 15.0, t_end: float = 20.0, seed: int = 10,
        spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> Fig11Result:
    return run_sweep(sweep(packet_size=packet_size, t_grow=t_grow,
                           t_ddio=t_ddio, t_end=t_end, seed=seed,
                           spec=spec),
                     runner)[0]


def format_timeline(result: Fig11Result, *, stride: int = 10) -> str:
    lines = ["Fig. 11 — way allocation & c4 LLC misses over time (IAT)",
             f"{'t':>6} {'c4 miss':>9} {'c4 ways':>12} {'ddio ways':>12} "
             f"{'shared-with-ddio':>18}"]
    for i in range(0, len(result.times), stride):
        t = result.times[i]
        ddio = result.ddio_masks[i]
        shared = [name for name, series in result.masks.items()
                  if series[i] & ddio]
        lines.append(
            f"{t:>6.1f} {int(result.c4_misses[i]):>9} "
            f"{str(mask_ways(result.masks['c4'][i])):>12} "
            f"{str(mask_ways(ddio)):>12} {','.join(shared) or '-':>18}")
    return "\n".join(lines)


def main() -> None:
    print(format_timeline(run()))


if __name__ == "__main__":
    main()

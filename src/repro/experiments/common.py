"""Scenario builders shared by the per-figure experiment harnesses.

Each builder assembles the exact tenant/core/way topology of one of the
paper's evaluation setups (Sec. VI) on a fresh platform and returns a
:class:`Scenario` handle.  Controllers are attached by name so each
experiment can run the same scenario under baseline / Core-only /
I/O-iso / IAT:

* ``"baseline"``      — static allocation, default 2-way DDIO.
* ``"baseline-rand"`` — static allocation at a random placement
  (Figs. 12-14's "randomly shuffled" initial state); needs ``seed``.
* ``"core-only"``     — I/O-unaware dynamic policy (Fig. 10).
* ``"io-iso"``        — DDIO ways excluded from the core pool (Fig. 10).
* ``"iat"``           — the full daemon; feature flags per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import (ControllerDaemon, ControlPlane, CoreOnlyPolicy,
                    IATDaemon, IATParams, IOIsoPolicy, StaticPolicy,
                    create_policy)
from ..net.traffic import TrafficSpec
from ..pci.nic import Nic, VirtualFunction
from ..pci.ring import DescRing
from ..sim.config import XEON_6140, PlatformSpec
from ..sim.engine import Simulation
from ..sim.platform import Platform
from ..tenants.tenant import Priority, Tenant
from ..vswitch.ovs import OvsDataplane
from ..workloads import (L3Fwd, NfvChain, RedisServer, RocksDb, SpecWorkload,
                         TestPmd, Workload, XMem)
from ..workloads.spec import SPEC_PROFILES
from ..workloads.ycsb import ALL_WORKLOADS, YcsbMix

#: Virtio rings between OVS and tenants (aggregation model).
VIRTIO_ENTRIES = 1024


@dataclass
class Scenario:
    """A built scenario, ready to run."""

    platform: Platform
    sim: Simulation
    workloads: "dict[str, Workload]" = field(default_factory=dict)
    vfs: "dict[str, VirtualFunction]" = field(default_factory=dict)
    nics: "list[Nic]" = field(default_factory=list)
    controller: object = None

    @property
    def time_scale(self) -> float:
        return self.platform.spec.time_scale

    def control_plane(self) -> ControlPlane:
        return ControlPlane(self.platform.pqos, self.sim.tenant_set(),
                            time_scale=self.time_scale)

    def attach_controller(self, name: str, *, seed: "int | None" = None,
                          params: "IATParams | None" = None,
                          manage_ddio: bool = True,
                          manage_tenant_ways: bool = True,
                          shuffle: bool = True) -> object:
        control = self.control_plane()
        if name == "baseline":
            controller = StaticPolicy(control)
        elif name == "baseline-rand":
            if seed is None:
                raise ValueError("baseline-rand needs a seed")
            controller = StaticPolicy(control, shuffle_seed=seed)
        elif name == "core-only":
            controller = CoreOnlyPolicy(control, params)
        elif name == "io-iso":
            controller = IOIsoPolicy(control, params)
        elif name == "iat":
            controller = IATDaemon(control, params,
                                   manage_ddio=manage_ddio,
                                   manage_tenant_ways=manage_tenant_ways,
                                   shuffle=shuffle)
        else:
            raise ValueError(f"unknown controller {name!r}")
        self.sim.add_controller(controller)
        self.controller = controller
        return controller

    def attach_policy(self, name: str,
                      params: "dict | None" = None) -> ControllerDaemon:
        """Attach any *registered* policy behind a ControllerDaemon.

        Where :meth:`attach_controller` wires the figure harnesses'
        historical controller spellings, this is the registry path the
        ``repro compare`` tournament uses: ``name`` and ``params`` go
        through :func:`repro.core.create_policy`, and the resulting
        policy is driven by a generic daemon (so every policy gets an
        iteration history and Fig. 15-style timings for free).
        """
        daemon = ControllerDaemon(self.control_plane(),
                                  create_policy(name, params))
        self.sim.add_controller(daemon)
        self.controller = daemon
        return daemon


def make_platform(spec: "PlatformSpec | None" = None) -> Platform:
    return Platform(spec or XEON_6140)


def line_rate(platform: Platform, gbps: float, packet_size: int, *,
              n_flows: int = 1, zipf_theta: float = 0.0,
              fraction: float = 1.0) -> TrafficSpec:
    """Line-rate traffic spec pre-scaled to the platform's time scale."""
    return TrafficSpec.line_rate(gbps * fraction, packet_size,
                                 scale=platform.spec.time_scale,
                                 n_flows=n_flows, zipf_theta=zipf_theta)


# ---------------------------------------------------------------------------
# Fig. 3: single-core l3fwd behind one NIC (RFC 2544 device under test)
# ---------------------------------------------------------------------------
def l3fwd_scenario(*, ring_entries: int = 1024, n_flows: int = 1_000_000,
                   stall_period: float = 0.0,
                   spec: "PlatformSpec | None" = None,
                   seed: int = 3) -> Scenario:
    """Paper Sec. III-A: DPDK l3fwd on a single core, one 40GbE NIC.

    ``stall_period`` > 0 enables the consumer scheduling-jitter model
    (see :class:`repro.workloads.RingConsumer`), which Fig. 3 needs.
    """
    platform = make_platform(spec)
    nic = platform.add_nic("nic0", 40.0)
    vf = nic.add_vf(entries=ring_entries, name="vf0")
    sim = Simulation(platform, seed=seed)
    tenant = Tenant("l3fwd", cores=(0,), priority=Priority.PC, is_io=True,
                    initial_ways=2)
    workload = L3Fwd("l3fwd", [vf.rx_ring], n_flows=n_flows,
                     core_freq_hz=platform.spec.freq_hz,
                     stall_period=stall_period)
    sim.add_tenant(tenant, workload)
    return Scenario(platform, sim, workloads={"l3fwd": workload},
                    vfs={"vf0": vf}, nics=[nic])


# ---------------------------------------------------------------------------
# Fig. 4: slicing-model l3fwd + X-Mem, dedicated vs DDIO-overlapped ways
# ---------------------------------------------------------------------------
def latent_contender_scenario(*, xmem_ws_bytes: int, overlap_ddio: bool,
                              packet_size: int = 1024,
                              spec: "PlatformSpec | None" = None,
                              seed: int = 4) -> Scenario:
    """Paper Sec. III-B: X-Mem either on dedicated ways or on DDIO's."""
    platform = make_platform(spec)
    nic = platform.add_nic("nic0", 40.0)
    vf = nic.add_vf(name="l3fwd-vf")
    sim = Simulation(platform, seed=seed)

    fwd_tenant = Tenant("l3fwd", cores=(0,), priority=Priority.PC,
                        is_io=True, initial_ways=2)
    fwd = L3Fwd("l3fwd", [vf.rx_ring], n_flows=1_000_000,
                core_freq_hz=platform.spec.freq_hz)
    sim.add_tenant(fwd_tenant, fwd)

    xmem_tenant = Tenant("xmem", cores=(1,), priority=Priority.PC,
                         initial_ways=2)
    xmem = XMem("xmem", xmem_ws_bytes, core_freq_hz=platform.spec.freq_hz)
    sim.add_tenant(xmem_tenant, xmem)

    ways = platform.spec.llc.ways
    masks = {"l3fwd": 0b11}  # ways 0-1, never overlapping DDIO
    if overlap_ddio:
        # X-Mem bound to the two DDIO ways (top of the cache).
        masks["xmem"] = 0b11 << (ways - 2)
    else:
        masks["xmem"] = 0b11 << 2  # dedicated ways 2-3
    control = ControlPlane(platform.pqos, sim.tenant_set(),
                           time_scale=platform.spec.time_scale)
    sim.add_controller(StaticPolicy(control, explicit_masks=masks))

    sim.attach_traffic(nic, vf, line_rate(platform, 40.0, packet_size,
                                          n_flows=1_000_000, zipf_theta=0.5))
    return Scenario(platform, sim, workloads={"l3fwd": fwd, "xmem": xmem},
                    vfs={"l3fwd-vf": vf}, nics=[nic])


# ---------------------------------------------------------------------------
# Figs. 8/9: aggregation microbenchmark — OVS + two testpmd containers
# ---------------------------------------------------------------------------
def leaky_dma_scenario(*, packet_size: int, n_flows: int = 1,
                       ring_entries: int = 1024,
                       rate_fraction: float = 1.0,
                       n_containers: int = 2,
                       spec: "PlatformSpec | None" = None,
                       seed: int = 8) -> Scenario:
    """Paper Sec. VI-B: two NICs -> OVS (2 cores, 2 ways) -> testpmd
    containers (2 cores, 1 way each), single-flow line rate.

    ``n_containers`` defaults to the paper's two; Sec. VI-B also repeats
    the experiment with three to five, splitting each port's traffic
    over the containers bound to it.
    """
    if n_containers < 1:
        raise ValueError("need at least one container")
    platform = make_platform(spec)
    sim = Simulation(platform, seed=seed)
    nic0 = platform.add_nic("nic0", 40.0)
    nic1 = platform.add_nic("nic1", 40.0)
    vf0 = nic0.add_vf(entries=ring_entries, name="nic0.rx")
    vf1 = nic1.add_vf(entries=ring_entries, name="nic1.rx")

    # One virtio ring per container; containers alternate between ports.
    virtio = [DescRing(VIRTIO_ENTRIES,
                       base_addr=platform.alloc_region(VIRTIO_ENTRIES * 2048))
              for _ in range(n_containers)]
    routes = {0: [r for i, r in enumerate(virtio) if i % 2 == 0],
              1: [r for i, r in enumerate(virtio) if i % 2 == 1]}
    if not routes[1]:          # single container: both ports feed it
        routes[1] = routes[0]

    ovs_tenant = Tenant("ovs", cores=(0, 1), priority=Priority.STACK,
                        is_io=True, initial_ways=2)
    ovs = OvsDataplane("ovs", [vf0.rx_ring, vf1.rx_ring], routes=routes,
                       core_freq_hz=platform.spec.freq_hz)
    sim.add_tenant(ovs_tenant, ovs)

    pmd_workloads = {}
    for i, ring in enumerate(virtio):
        tenant = Tenant(f"pmd{i}", cores=(2 + 2 * i, 3 + 2 * i),
                        priority=Priority.PC, is_io=True, initial_ways=1)
        pmd = TestPmd(f"pmd{i}", [ring],
                      core_freq_hz=platform.spec.freq_hz)
        sim.add_tenant(tenant, pmd)
        pmd_workloads[f"pmd{i}"] = pmd

    traffic = line_rate(platform, 40.0, packet_size, n_flows=n_flows,
                        fraction=rate_fraction)
    sim.attach_traffic(nic0, vf0, traffic)
    sim.attach_traffic(nic1, vf1, traffic)
    return Scenario(platform, sim,
                    workloads={"ovs": ovs, **pmd_workloads},
                    vfs={"nic0.rx": vf0, "nic1.rx": vf1},
                    nics=[nic0, nic1])


# ---------------------------------------------------------------------------
# Figs. 10/11: slicing model — two testpmd PC + three X-Mem containers
# ---------------------------------------------------------------------------
def shuffle_scenario(*, packet_size: int,
                     spec: "PlatformSpec | None" = None,
                     seed: int = 10) -> Scenario:
    """Paper Sec. VI-B "Latent Contender" macro setup.

    Containers 0/1 (PC) run testpmd on one core each and share three
    ways; containers 2/3 (BE) and 4 (PC) run X-Mem with two dedicated
    ways each.  Phase script (applied by the experiment):
    t=5 s container 4's working set grows 2 MB -> 10 MB; t=15 s DDIO is
    manually widened from two to four ways.
    """
    platform = make_platform(spec)
    sim = Simulation(platform, seed=seed)
    nic0 = platform.add_nic("nic0", 40.0)
    nic1 = platform.add_nic("nic1", 40.0)
    vf0 = nic0.add_vf(name="c0.vf")
    vf1 = nic1.add_vf(name="c1.vf")

    workloads: "dict[str, Workload]" = {}
    for i, vf in enumerate((vf0, vf1)):
        tenant = Tenant(f"c{i}", cores=(i,), priority=Priority.PC,
                        is_io=True, initial_ways=3, share_group="pmd")
        pmd = TestPmd(f"c{i}", [vf.rx_ring],
                      core_freq_hz=platform.spec.freq_hz)
        sim.add_tenant(tenant, pmd)
        workloads[f"c{i}"] = pmd

    for i, priority in ((2, Priority.BE), (3, Priority.BE), (4, Priority.PC)):
        tenant = Tenant(f"c{i}", cores=(i,), priority=priority,
                        initial_ways=2)
        xmem = XMem(f"c{i}", 2 << 20, core_freq_hz=platform.spec.freq_hz)
        sim.add_tenant(tenant, xmem)
        workloads[f"c{i}"] = xmem

    traffic = line_rate(platform, 40.0, packet_size)
    sim.attach_traffic(nic0, vf0, traffic)
    sim.attach_traffic(nic1, vf1, traffic)
    return Scenario(platform, sim, workloads=workloads,
                    vfs={"c0.vf": vf0, "c1.vf": vf1}, nics=[nic0, nic1])


# ---------------------------------------------------------------------------
# Device-diversity scenarios (A4-style; used by the compare tournament)
# ---------------------------------------------------------------------------
def mixed_nic_scenario(*, packet_size: int = 1024,
                       spec: "PlatformSpec | None" = None,
                       seed: int = 21) -> Scenario:
    """Three NIC classes — 100/40/10 GbE — each feeding its own
    forwarding container, next to a cache-hungry PC X-Mem and a
    streaming BE X-Mem.

    The A4-style device-diversity case: the fast NIC's inline DMA
    dominates the DDIO ways while the slow NICs barely register, so an
    I/O-aware policy must size the I/O partition for the *aggregate*
    pressure and keep the cache-sensitive app clear of it.
    """
    platform = make_platform(spec)
    sim = Simulation(platform, seed=seed)
    freq = platform.spec.freq_hz
    workloads: "dict[str, Workload]" = {}
    vfs: "dict[str, VirtualFunction]" = {}
    nics: "list[Nic]" = []
    for i, gbps in enumerate((100.0, 40.0, 10.0)):
        nic = platform.add_nic(f"nic{i}", gbps)
        vf = nic.add_vf(name=f"fwd{i}.vf")
        pmd = TestPmd(f"fwd{i}", [vf.rx_ring], core_freq_hz=freq)
        sim.add_tenant(Tenant(f"fwd{i}", cores=(i,), priority=Priority.PC,
                              is_io=True, initial_ways=2), pmd)
        workloads[f"fwd{i}"] = pmd
        vfs[f"fwd{i}.vf"] = vf
        nics.append(nic)
        sim.attach_traffic(nic, vf, line_rate(platform, gbps, packet_size))
    app = XMem("app", 8 << 20, core_freq_hz=freq)
    sim.add_tenant(Tenant("app", cores=(3,), priority=Priority.PC,
                          initial_ways=2), app)
    workloads["app"] = app
    be = XMem("be0", 32 << 20, core_freq_hz=freq)
    sim.add_tenant(Tenant("be0", cores=(4,), priority=Priority.BE,
                          initial_ways=1), be)
    workloads["be0"] = be
    return Scenario(platform, sim, workloads=workloads, vfs=vfs, nics=nics)


def dma_stream_scenario(*, n_streams: int = 3, packet_size: int = 1500,
                        spec: "PlatformSpec | None" = None,
                        seed: int = 22) -> Scenario:
    """One 100 GbE device hosting ``n_streams`` virtual functions, each
    streaming large frames into its own lightweight consumer — the
    stand-in for accelerator/xmem-style DMA streams — plus a
    cache-sensitive PC X-Mem and a BE streamer.

    Maximum inline-DMA byte pressure per delivered packet: the scenario
    that separates policies which *size* the DDIO partition (IAT, IOCA)
    from ones that ignore it (core-only, LFOC).
    """
    if n_streams < 1:
        raise ValueError("need at least one DMA stream")
    platform = make_platform(spec)
    sim = Simulation(platform, seed=seed)
    freq = platform.spec.freq_hz
    nic = platform.add_nic("nic0", 100.0)
    workloads: "dict[str, Workload]" = {}
    vfs: "dict[str, VirtualFunction]" = {}
    for i in range(n_streams):
        vf = nic.add_vf(name=f"dma{i}.vf")
        pmd = TestPmd(f"dma{i}", [vf.rx_ring], core_freq_hz=freq)
        sim.add_tenant(Tenant(f"dma{i}", cores=(i,), priority=Priority.PC,
                              is_io=True, initial_ways=1), pmd)
        workloads[f"dma{i}"] = pmd
        vfs[f"dma{i}.vf"] = vf
        sim.attach_traffic(nic, vf,
                           line_rate(platform, 100.0 / n_streams,
                                     packet_size))
    app = XMem("app", 6 << 20, core_freq_hz=freq)
    sim.add_tenant(Tenant("app", cores=(n_streams,), priority=Priority.PC,
                          initial_ways=2), app)
    workloads["app"] = app
    be = XMem("be0", 24 << 20, core_freq_hz=freq)
    sim.add_tenant(Tenant("be0", cores=(n_streams + 1,),
                          priority=Priority.BE, initial_ways=1), be)
    workloads["be0"] = be
    return Scenario(platform, sim, workloads=workloads, vfs=vfs,
                    nics=[nic])


# ---------------------------------------------------------------------------
# Figs. 12-14: application scenarios (aggregation KVS and slicing NFV)
# ---------------------------------------------------------------------------
def _add_non_networking(sim: Simulation, platform: Platform, app: str,
                        ycsb: "YcsbMix | None",
                        workloads: "dict[str, Workload]",
                        first_core: int) -> None:
    """The PC app container + two BE X-Mem containers (Sec. VI-C)."""
    freq = platform.spec.freq_hz
    if app == "rocksdb":
        if ycsb is None:
            raise ValueError("rocksdb app needs a YCSB mix")
        work: Workload = RocksDb("app", ycsb, core_freq_hz=freq)
    elif app in SPEC_PROFILES:
        work = SpecWorkload(SPEC_PROFILES[app], core_freq_hz=freq)
        work.name = "app"
    else:
        raise ValueError(f"unknown app {app!r}")
    sim.add_tenant(Tenant("app", cores=(first_core,), priority=Priority.PC,
                          initial_ways=2), work)
    workloads["app"] = work
    for i, ws in enumerate((1 << 20, 10 << 20)):
        name = f"be{i}"
        xmem = XMem(name, ws, core_freq_hz=freq)
        sim.add_tenant(Tenant(name, cores=(first_core + 1 + i,),
                              priority=Priority.BE, initial_ways=2), xmem)
        workloads[name] = xmem


#: Read-request and write-request wire sizes: GETs are small; SETs carry
#: the 1 KB value inbound (the real DDIO pressure in the KVS scenario).
READ_REQUEST_BYTES = 128
WRITE_REQUEST_BYTES = 1124


def ycsb_write_share(mix: YcsbMix) -> float:
    """Fraction of requests whose packet carries a value payload."""
    from ..workloads.ycsb import OpType
    share = mix.proportions.get(OpType.UPDATE, 0.0)
    share += mix.proportions.get(OpType.INSERT, 0.0)
    share += 0.5 * mix.proportions.get(OpType.RMW, 0.0)
    return share


def kvs_scenario(*, app: str, ycsb_letter: str = "C",
                 offered_pps: float = 5.5e6,
                 spec: "PlatformSpec | None" = None,
                 seed: int = 12) -> Scenario:
    """Paper Sec. VI-C in-memory KVS setup: OVS + two Redis containers
    (sharing three ways) plus the non-networking trio.

    ``offered_pps`` is the real-equivalent request rate per NIC, split
    into a small-GET stream and a value-carrying SET stream according
    to the YCSB mix; the default sits near (not past) the service
    capacity so contention shows up as latency/throughput loss rather
    than saturation noise.
    """
    platform = make_platform(spec)
    sim = Simulation(platform, seed=seed)
    mix = ALL_WORKLOADS[ycsb_letter]
    nic0 = platform.add_nic("nic0", 40.0)
    nic1 = platform.add_nic("nic1", 40.0)
    vf0 = nic0.add_vf(name="nic0.rx")
    vf1 = nic1.add_vf(name="nic1.rx")
    virtio0 = DescRing(VIRTIO_ENTRIES,
                       base_addr=platform.alloc_region(VIRTIO_ENTRIES * 2048))
    virtio1 = DescRing(VIRTIO_ENTRIES,
                       base_addr=platform.alloc_region(VIRTIO_ENTRIES * 2048))

    workloads: "dict[str, Workload]" = {}
    ovs = OvsDataplane("ovs", [vf0.rx_ring, vf1.rx_ring],
                       routes={0: virtio0, 1: virtio1},
                       core_freq_hz=platform.spec.freq_hz)
    sim.add_tenant(Tenant("ovs", cores=(0, 1), priority=Priority.STACK,
                          is_io=True, initial_ways=3, share_group="net"), ovs)
    workloads["ovs"] = ovs
    for i, ring in enumerate((virtio0, virtio1)):
        redis = RedisServer(f"redis{i}", [ring], mix,
                            core_freq_hz=platform.spec.freq_hz)
        sim.add_tenant(Tenant(f"redis{i}", cores=(2 + 2 * i, 3 + 2 * i),
                              priority=Priority.PC, is_io=True,
                              initial_ways=3, share_group="net"), redis)
        workloads[f"redis{i}"] = redis

    _add_non_networking(sim, platform, app,
                        ALL_WORKLOADS.get(ycsb_letter), workloads,
                        first_core=6)

    # YCSB requests: keys = flow ids, Zipf(0.99).  Writes carry the
    # value inbound, so the write share of the mix determines the DDIO
    # byte pressure (read-heavy C is light, update-heavy A is heavy).
    write_share = ycsb_write_share(mix)
    scale = platform.spec.time_scale
    for nic, vf in ((nic0, vf0), (nic1, vf1)):
        read_pps = offered_pps * (1.0 - write_share) * scale
        if read_pps > 0:
            sim.attach_traffic(nic, vf, TrafficSpec(
                pps=read_pps, packet_size=READ_REQUEST_BYTES,
                n_flows=100_000, zipf_theta=0.99))
        write_pps = offered_pps * write_share * scale
        if write_pps > 0:
            sim.attach_traffic(nic, vf, TrafficSpec(
                pps=write_pps, packet_size=WRITE_REQUEST_BYTES,
                n_flows=100_000, zipf_theta=0.99))
    return Scenario(platform, sim, workloads=workloads,
                    vfs={"nic0.rx": vf0, "nic1.rx": vf1},
                    nics=[nic0, nic1])


def nfv_scenario(*, app: str, ycsb_letter: str = "C",
                 gbps_per_vlan: float = 20.0,
                 spec: "PlatformSpec | None" = None,
                 seed: int = 13) -> Scenario:
    """Paper Sec. VI-C NFV setup: four FastClick chains on SR-IOV VFs
    (sharing three ways) plus the non-networking trio; 1.5 KB packets."""
    platform = make_platform(spec)
    sim = Simulation(platform, seed=seed)
    nic0 = platform.add_nic("nic0", 40.0)
    nic1 = platform.add_nic("nic1", 40.0)

    workloads: "dict[str, Workload]" = {}
    vfs: "dict[str, VirtualFunction]" = {}
    for i in range(4):
        nic = nic0 if i < 2 else nic1
        vf = nic.add_vf(name=f"vlan{i}.vf")
        vfs[f"vlan{i}.vf"] = vf
        chain = NfvChain(f"nf{i}", [vf.rx_ring], n_flows=4096,
                         core_freq_hz=platform.spec.freq_hz)
        sim.add_tenant(Tenant(f"nf{i}", cores=(i,), priority=Priority.PC,
                              is_io=True, initial_ways=3,
                              share_group="net"), chain)
        workloads[f"nf{i}"] = chain
        sim.attach_traffic(nic, vf,
                           line_rate(platform, gbps_per_vlan, 1500,
                                     n_flows=4096, zipf_theta=0.3))

    _add_non_networking(sim, platform, app,
                        ALL_WORKLOADS.get(ycsb_letter), workloads,
                        first_core=4)
    return Scenario(platform, sim, workloads=workloads, vfs=vfs,
                    nics=[nic0, nic1])

"""Extension study: device-aware and application-aware DDIO (Sec. VII).

The paper's "Future DDIO consideration": today every PCIe device shares
the same DDIO ways, so "a BE batch application with heavy inbound
traffic may evict the data of other PC applications from DDIO's LLC
ways".  The authors propose two hardware evolutions, both implemented
in this reproduction's NIC model:

* **device-aware DDIO** — per-device way masks
  (``VirtualFunction.ddio_mask_override``), CAT-style;
* **application-aware DDIO** — header-only injection
  (``VirtualFunction.header_only_ddio``): payload lines bypass the LLC.

This experiment builds that exact scenario: a latency-sensitive PC
forwarder and a bandwidth-hungry BE bulk stream on separate VFs, then
compares three DDIO configurations.  The victim metric is the PC
tenant's LLC miss rate on its packet buffers (evicted buffers must be
re-fetched from DRAM) and its average packet latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cache.cat import ways_to_mask
from ..core import ControlPlane, StaticPolicy
from ..exec import ParallelRunner, SweepSpec, run_sweep
from ..net.traffic import TrafficSpec
from ..sim.config import PlatformSpec
from ..sim.engine import Simulation
from ..tenants.tenant import Priority, Tenant
from ..workloads.l3fwd import L3Fwd
from ..workloads.testpmd import TestPmd
from .common import make_platform
from .measure import mean_mem_bandwidth, steady_window

MODES = ("shared", "device-aware", "header-only")


@dataclass
class ExtPoint:
    mode: str
    #: The victim metric: the PC device's DDIO hit rate.  A write
    #: allocate on a recycled mbuf means the bulk device evicted the
    #: PC device's pool from the shared ways since the last cycle.
    pc_ddio_hit_rate: float
    pc_miss_rate: float
    pc_latency_us: float
    mem_gbps: float


@dataclass
class ExtResult:
    points: "list[ExtPoint]"

    def point(self, mode: str) -> ExtPoint:
        for p in self.points:
            if p.mode == mode:
                return p
        raise KeyError(mode)


def run_one(mode: str, *, duration_s: float = 8.0, warmup_s: float = 3.0,
            spec: "PlatformSpec | None" = None, seed: int = 7) -> ExtPoint:
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}")
    platform = make_platform(spec)
    ways = platform.spec.llc.ways
    # Shared and header-only run on the hardware-default two DDIO ways;
    # device-aware widens to four so each device can own two — giving
    # devices their own ways is exactly the hardware evolution the
    # paper proposes.
    platform.ddio.set_ways(4 if mode == "device-aware" else 2)
    sim = Simulation(platform, seed=seed)
    nic = platform.add_nic("nic0", 40.0)
    pc_vf = nic.add_vf(entries=512, name="pc.vf")
    # The bulk device's mbuf pool (4096 x 2 x 24 lines at MTU) exceeds
    # even four DDIO ways, so under the shared default its churn evicts
    # the PC device's buffers — the Sec. VII motivating situation.
    be_vf = nic.add_vf(entries=4096, name="be.vf")

    if mode == "device-aware":
        pc_vf.ddio_mask_override = ways_to_mask(ways - 2, 2)   # top two
        be_vf.ddio_mask_override = ways_to_mask(ways - 4, 2)   # next two
    elif mode == "header-only":
        be_vf.header_only_ddio = True

    # The PC tenant forwards against a large flow table, so its own CAT
    # ways churn with table entries (as a real latency-critical NF's
    # would with application state) — evicted rx buffers cannot park in
    # its ways for long, and the DDIO hit rate honestly reflects
    # whether the bulk device pushed its pool out of the shared ways.
    pc = L3Fwd("pc", [pc_vf.rx_ring], n_flows=1_000_000,
               core_freq_hz=platform.spec.freq_hz)
    sim.add_tenant(Tenant("pc", cores=(0,), priority=Priority.PC,
                          is_io=True, initial_ways=2), pc)
    be = TestPmd("be", [be_vf.rx_ring],
                 core_freq_hz=platform.spec.freq_hz)
    sim.add_tenant(Tenant("be", cores=(1, 2), priority=Priority.BE,
                          is_io=True, initial_ways=2), be)
    control = ControlPlane(platform.pqos, sim.tenant_set(),
                           time_scale=platform.spec.time_scale)
    sim.add_controller(StaticPolicy(control))

    scale = platform.spec.time_scale
    # PC: modest latency-critical traffic; BE: bulk MTU at line rate.
    sim.attach_traffic(nic, pc_vf, TrafficSpec.line_rate(
        10.0, 256, scale=scale, n_flows=1_000_000, zipf_theta=0.5))
    sim.attach_traffic(nic, be_vf, TrafficSpec.line_rate(
        40.0, 1500, scale=scale))
    sim.run(duration_s)

    records = steady_window(sim.metrics, warmup_s)
    refs = sum(r.tenants["pc"].llc_references for r in records)
    misses = sum(r.tenants["pc"].llc_misses for r in records)
    quantum = platform.spec.quantum_s
    return ExtPoint(
        mode=mode,
        pc_ddio_hit_rate=pc_vf.ddio_hit_rate,
        pc_miss_rate=misses / refs if refs else 0.0,
        pc_latency_us=(pc.stats.avg_latency_cycles
                       / platform.spec.freq_hz * 1e6),
        mem_gbps=mean_mem_bandwidth(records, quantum, scale) / 1e9)


def sweep(*, duration_s: float = 8.0, warmup_s: float = 3.0,
          spec: "PlatformSpec | None" = None) -> SweepSpec:
    return SweepSpec.from_product(
        "ext-ddio", run_one, axes={"mode": MODES},
        common=dict(duration_s=duration_s, warmup_s=warmup_s, spec=spec))


def run(*, duration_s: float = 8.0, warmup_s: float = 3.0,
        spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> ExtResult:
    return ExtResult(run_sweep(sweep(duration_s=duration_s,
                                     warmup_s=warmup_s, spec=spec),
                               runner))


def format_table(result: ExtResult) -> str:
    lines = ["Extension — device-/application-aware DDIO (Sec. VII)",
             f"{'mode':>14} {'PC DDIO hit':>12} {'PC miss rate':>13} "
             f"{'PC latency':>12} {'mem GB/s':>9}"]
    for p in result.points:
        lines.append(f"{p.mode:>14} {p.pc_ddio_hit_rate * 100:>11.1f}% "
                     f"{p.pc_miss_rate * 100:>12.1f}% "
                     f"{p.pc_latency_us:>10.2f}us {p.mem_gbps:>9.2f}")
    lines.append("expected: isolating the BE device (either way) keeps the "
                 "PC device's pool LLC-resident")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

"""Windowed measurement helpers for the experiment harnesses.

Workload statistics are monotonic accumulators; experiments need rates
and averages over a *measurement window* that excludes warm-up (cache
fill, ring priming, controller convergence).  :class:`StatsWindow`
snapshots a workload at window start and reports deltas at the end.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.metrics import MetricsRecorder
from ..workloads.base import Workload


@dataclass
class WindowResult:
    """Deltas over one measurement window."""

    seconds: float
    ops: int
    latency_sum_cycles: float
    busy_cycles: float

    @property
    def avg_latency_cycles(self) -> float:
        """Mean latency over the window; 0.0 for an empty window."""
        if self.ops <= 0:
            return 0.0
        return self.latency_sum_cycles / self.ops

    def ops_per_sec(self, time_scale: float = 1.0) -> float:
        """Throughput over the window; 0.0 for a zero-length window."""
        if self.seconds <= 0 or self.ops <= 0:
            return 0.0
        return self.ops / self.seconds / time_scale


class StatsWindow:
    """Snapshot/delta view over one workload's statistics."""

    def __init__(self, workload: Workload) -> None:
        self.workload = workload
        self._ops = 0
        self._latency = 0.0
        self._busy = 0.0
        self._start_time = 0.0

    def open(self, now: float) -> None:
        stats = self.workload.stats
        self._ops = stats.ops
        self._latency = stats.latency_sum_cycles
        self._busy = stats.busy_cycles
        self._start_time = now

    def close(self, now: float) -> WindowResult:
        stats = self.workload.stats
        return WindowResult(
            seconds=now - self._start_time,
            ops=stats.ops - self._ops,
            latency_sum_cycles=stats.latency_sum_cycles - self._latency,
            busy_cycles=stats.busy_cycles - self._busy)


def steady_window(metrics: MetricsRecorder, warmup_s: float):
    """Records after the warm-up boundary."""
    if not metrics.records:
        return []
    end = metrics.records[-1].time
    return metrics.window(warmup_s, end + 1.0)


def mean_tenant_ipc(records, name: str) -> float:
    values = [r.tenants[name].ipc for r in records if name in r.tenants]
    return sum(values) / len(values) if values else 0.0


def sum_tenant_misses(records, name: str) -> int:
    return sum(r.tenants[name].llc_misses for r in records)


def mean_mem_bandwidth(records, quantum_s: float,
                       time_scale: float) -> float:
    """Mean memory bandwidth over records, bytes/s real-time equivalent."""
    if not records:
        return 0.0
    total = sum(r.mem_read_bytes + r.mem_write_bytes for r in records)
    return total / (len(records) * quantum_s) / time_scale


def ddio_rates(records, quantum_s: float, time_scale: float):
    """(hits/s, misses/s) real-time equivalent over the records."""
    if not records:
        return 0.0, 0.0
    seconds = len(records) * quantum_s * time_scale
    hits = sum(r.ddio_hits for r in records)
    misses = sum(r.ddio_misses for r in records)
    return hits / seconds, misses / seconds

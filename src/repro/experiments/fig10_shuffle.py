"""Fig. 10: solving the Latent Contender problem — policy comparison.

Paper Sec. VI-B (slicing model): containers 0/1 (PC) run testpmd on
line-rate VFs sharing three ways; containers 2/3 (BE) and 4 (PC) run
X-Mem with two ways each.  Script: at t=5 s container 4's working set
jumps 2 MB -> 10 MB; at t=15 s DDIO is *manually* widened from two to
four ways.  Policies: baseline (static), Core-only (dynamic but
I/O-unaware), I/O-iso (DDIO ways excluded), IAT (DDIO way management
frozen per footnote 3 — this experiment isolates way-shuffling).

Reported: container 4's stabilized throughput and average latency in
phase 2 (5-15 s) and phase 3 (after 15 s).

Expected shape: IAT highest throughput / lowest latency in both phases
(it grants container 4 more ways AND shuffles a low-footprint BE next
to DDIO); Core-only helps with small packets but degrades at large ones
(its "idle" ways are really DDIO's); I/O-iso matches IAT in phase 2 but
collapses in phase 3 when DDIO takes 4 of its 9 usable ways.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.ddio import ddio_mask_for_ways
from ..exec import ParallelRunner, SweepSpec, run_sweep
from ..sim.config import PlatformSpec
from .common import shuffle_scenario
from .measure import StatsWindow, WindowResult

MODES = ("baseline", "core-only", "io-iso", "iat")


@dataclass
class Fig10Point:
    mode: str
    packet_size: int
    phase2_throughput: float
    phase2_latency_ns: float
    phase3_throughput: float
    phase3_latency_ns: float
    #: The controller's per-interval history (IAT only; empty for the
    #: comparison policies, which keep no iteration log).  Serialized as
    #: ``IterationLog`` dataclasses — the daemon-equivalence tests pin
    #: these field-for-field against pre-refactor goldens.
    daemon_history: list = field(default_factory=list)


@dataclass
class Fig10Result:
    points: "list[Fig10Point]"

    def point(self, mode: str, packet_size: int) -> Fig10Point:
        for p in self.points:
            if p.mode == mode and p.packet_size == packet_size:
                return p
        raise KeyError((mode, packet_size))

    def gain_vs(self, mode: str, reference: str, packet_size: int, *,
                phase: int = 2) -> float:
        """Throughput gain of ``mode`` over ``reference``."""
        attr = f"phase{phase}_throughput"
        mine = getattr(self.point(mode, packet_size), attr)
        theirs = getattr(self.point(reference, packet_size), attr)
        return mine / theirs - 1.0 if theirs else 0.0


def run_one(mode: str, packet_size: int, *,
            t_grow: float = 5.0, t_ddio: float = 15.0, t_end: float = 25.0,
            settle_s: float = 5.0, seed: int = 10,
            spec: "PlatformSpec | None" = None) -> Fig10Point:
    scenario = shuffle_scenario(packet_size=packet_size, spec=spec,
                                seed=seed)
    if mode == "iat":
        scenario.attach_controller("iat", manage_ddio=False)
    else:
        scenario.attach_controller(mode)
    sim = scenario.sim
    platform = scenario.platform
    c4 = scenario.workloads["c4"]
    window = StatsWindow(c4)
    results: "dict[int, WindowResult]" = {}

    sim.at(t_grow, lambda: c4.set_working_set(10 << 20))
    sim.at(t_grow + settle_s, lambda: window.open(sim.now))

    def widen_ddio() -> None:
        results[2] = window.close(sim.now)
        platform.ddio.set_mask(ddio_mask_for_ways(platform.spec.llc, 4))

    sim.at(t_ddio, widen_ddio)
    sim.at(t_ddio + settle_s, lambda: window.open(sim.now))
    sim.run(t_end)
    results[3] = window.close(sim.now)

    freq = platform.spec.freq_hz
    return Fig10Point(
        mode=mode, packet_size=packet_size,
        phase2_throughput=results[2].ops_per_sec(scenario.time_scale),
        phase2_latency_ns=results[2].avg_latency_cycles / freq * 1e9,
        phase3_throughput=results[3].ops_per_sec(scenario.time_scale),
        phase3_latency_ns=results[3].avg_latency_cycles / freq * 1e9,
        daemon_history=list(getattr(scenario.controller, "history", [])))


def sweep(*, packet_sizes=(64, 256, 1024, 1500), modes=MODES,
          spec: "PlatformSpec | None" = None) -> SweepSpec:
    return SweepSpec.from_product(
        "fig10", run_one,
        axes={"packet_size": packet_sizes, "mode": modes},
        common=dict(spec=spec))


def run(*, packet_sizes=(64, 256, 1024, 1500), modes=MODES,
        spec: "PlatformSpec | None" = None,
        runner: "ParallelRunner | None" = None) -> Fig10Result:
    points = run_sweep(sweep(packet_sizes=packet_sizes, modes=modes,
                             spec=spec), runner)
    return Fig10Result(points)


def format_table(result: Fig10Result) -> str:
    lines = ["Fig. 10 — X-Mem (container 4, PC) under four policies",
             f"{'pkt':>5} {'mode':>10} {'ph2 tput':>12} {'ph2 lat':>9} "
             f"{'ph3 tput':>12} {'ph3 lat':>9}"]
    for size in sorted({p.packet_size for p in result.points}):
        for mode in MODES:
            try:
                p = result.point(mode, size)
            except KeyError:
                continue
            lines.append(
                f"{size:>5} {mode:>10} {p.phase2_throughput / 1e6:>10.2f}M "
                f"{p.phase2_latency_ns:>7.1f}ns "
                f"{p.phase3_throughput / 1e6:>10.2f}M "
                f"{p.phase3_latency_ns:>7.1f}ns")
        try:
            gain_base = result.gain_vs("iat", "baseline", size, phase=2)
            gain_core = result.gain_vs("iat", "core-only", size, phase=2)
            lines.append(f"      -> IAT vs baseline {gain_base * 100:+.1f}%, "
                         f"vs core-only {gain_core * 100:+.1f}% (phase 2)")
        except KeyError:
            pass
    lines.append("paper: IAT +53.6~111.5% vs baseline, +1.4~56.0% vs "
                 "Core-only; latency 34.5~52.2% below baseline")
    return "\n".join(lines)


def main() -> None:
    print(format_table(run()))


if __name__ == "__main__":
    main()

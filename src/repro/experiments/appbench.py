"""Shared runner for the application co-location study (Figs. 12-14).

Paper Sec. VI-C protocol:

1. Run each application **solo** for its isolated performance.
2. Co-run it with a networking workload (Redis behind OVS, or the
   FastClick NFV chain) under the baseline (random initial placement,
   no DDIO awareness) and under IAT (tenant-way management disabled,
   shuffling active), ten times each.
3. Report degradation vs. the solo run; the baseline's min-max range
   comes from where the random shuffle happened to place the
   cache-hungry containers relative to DDIO.

This module runs one (scenario, app, mode, seed) cell and returns every
metric the three figures need, so the per-figure modules are thin
aggregations.  :func:`solo_app_run`, :func:`solo_net_run` and
:func:`corun` are module-level pure functions of picklable arguments on
purpose: they are the *point functions* of the Fig. 12-14 sweeps
(:mod:`repro.exec`), dispatched to worker processes and keyed into the
result cache by their argument lists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import ControlPlane, StaticPolicy
from ..sim.config import PlatformSpec, XEON_6140
from ..sim.engine import Simulation
from ..sim.platform import Platform
from ..tenants.tenant import Priority, Tenant
from ..workloads import RocksDb, SpecWorkload
from ..workloads.spec import SPEC_PROFILES
from ..workloads.ycsb import ALL_WORKLOADS, OpType
from .common import Scenario, kvs_scenario, nfv_scenario
from .measure import StatsWindow


@dataclass
class AppMetrics:
    """Everything measured for one run."""

    #: Application progress rate: SPEC instructions/s or RocksDB ops/s.
    app_rate: float
    #: RocksDB per-op-type average latency (cycles), if the app is RocksDB.
    rocksdb_per_op: "dict[OpType, float] | None" = None
    #: Aggregate Redis metrics (None for the NFV scenario / solo app runs).
    redis_tput: "float | None" = None
    redis_avg_us: "float | None" = None
    redis_p99_us: "float | None" = None


def _app_rate(workload, seconds: float, time_scale: float,
              start_instr: float, start_ops: int) -> float:
    if isinstance(workload, SpecWorkload):
        return (workload.instructions_retired - start_instr) \
            / seconds / time_scale
    return (workload.stats.ops - start_ops) / seconds / time_scale


def _rocksdb_window(workload: RocksDb, start):
    out = {}
    for op, acc in workload.per_op.items():
        count = acc.count - start[op][0]
        total = acc.total_cycles - start[op][1]
        out[op] = total / count if count else 0.0
    return out


def measure_scenario(scenario: Scenario, *, warmup_s: float,
                     measure_s: float) -> AppMetrics:
    """Warm up, then measure the app (and Redis, if present)."""
    sim = scenario.sim
    platform = scenario.platform
    app = scenario.workloads.get("app")
    redis = [w for name, w in scenario.workloads.items()
             if name.startswith("redis")]
    sim.run(warmup_s)
    now0 = sim.now
    app_instr0 = getattr(app, "instructions_retired", 0.0) if app else 0.0
    app_ops0 = app.stats.ops if app else 0
    rocks0 = ({op: (acc.count, acc.total_cycles)
               for op, acc in app.per_op.items()}
              if isinstance(app, RocksDb) else None)
    redis_windows = [StatsWindow(r) for r in redis]
    redis_sample0 = [len(r.stats.latency_samples) for r in redis]
    for w in redis_windows:
        w.open(now0)
    sim.run(measure_s)
    elapsed = sim.now - now0
    scale = scenario.time_scale
    freq = platform.spec.freq_hz

    metrics = AppMetrics(app_rate=_app_rate(app, elapsed, scale,
                                            app_instr0, app_ops0)
                         if app else 0.0)
    if rocks0 is not None:
        metrics.rocksdb_per_op = _rocksdb_window(app, rocks0)
    if redis:
        results = [w.close(sim.now) for w in redis_windows]
        metrics.redis_tput = sum(r.ops_per_sec(scale) for r in results)
        total_ops = sum(r.ops for r in results)
        total_lat = sum(r.latency_sum_cycles for r in results)
        metrics.redis_avg_us = (total_lat / total_ops / freq * 1e6
                                if total_ops else 0.0)
        samples = np.concatenate([
            np.asarray(r.stats.latency_samples[s0:])
            for r, s0 in zip(redis, redis_sample0)
            if len(r.stats.latency_samples) > s0] or [np.zeros(1)])
        metrics.redis_p99_us = float(np.percentile(samples, 99)) / freq * 1e6
    return metrics


# ---------------------------------------------------------------------------
# Solo runs
# ---------------------------------------------------------------------------
def solo_app_run(app: str, ycsb_letter: str = "C", *,
                 warmup_s: float = 2.0, measure_s: float = 4.0,
                 spec: "PlatformSpec | None" = None,
                 seed: int = 99) -> AppMetrics:
    """The app alone on the machine, on its two ways (Sec. VI-C solo)."""
    platform = Platform(spec or XEON_6140)
    sim = Simulation(platform, seed=seed)
    freq = platform.spec.freq_hz
    if app == "rocksdb":
        workload = RocksDb("app", ALL_WORKLOADS[ycsb_letter],
                           core_freq_hz=freq)
    else:
        workload = SpecWorkload(SPEC_PROFILES[app], core_freq_hz=freq)
        workload.name = "app"
    sim.add_tenant(Tenant("app", cores=(0,), priority=Priority.PC,
                          initial_ways=2), workload)
    control = ControlPlane(platform.pqos, sim.tenant_set(),
                           time_scale=platform.spec.time_scale)
    sim.add_controller(StaticPolicy(control))
    scenario = Scenario(platform, sim, workloads={"app": workload})
    return measure_scenario(scenario, warmup_s=warmup_s,
                            measure_s=measure_s)


def solo_net_run(kind: str, ycsb_letter: str = "C", *,
                 warmup_s: float = 2.0, measure_s: float = 4.0,
                 spec: "PlatformSpec | None" = None) -> AppMetrics:
    """The networking side alone (for Fig. 14's Redis solo baseline)."""
    scenario = build_corun(kind, app=None, ycsb_letter=ycsb_letter,
                           spec=spec)
    scenario.attach_controller("baseline")
    return measure_scenario(scenario, warmup_s=warmup_s,
                            measure_s=measure_s)


# ---------------------------------------------------------------------------
# Co-run
# ---------------------------------------------------------------------------
def build_corun(kind: str, app: "str | None", ycsb_letter: str = "C", *,
                spec: "PlatformSpec | None" = None,
                seed: int = 12) -> Scenario:
    if kind == "kvs":
        scenario = kvs_scenario(app=app or "gcc", ycsb_letter=ycsb_letter,
                                spec=spec, seed=seed)
    elif kind == "nfv":
        scenario = nfv_scenario(app=app or "gcc", ycsb_letter=ycsb_letter,
                                spec=spec, seed=seed)
    else:
        raise ValueError(f"unknown scenario kind {kind!r}")
    if app is None:
        # Solo-networking variant: silence the non-networking containers
        # by removing their bindings before the run starts.
        scenario.sim.bindings = [
            b for b in scenario.sim.bindings
            if b.tenant.name not in ("app", "be0", "be1")]
        for name in ("app", "be0", "be1"):
            scenario.workloads.pop(name, None)
    return scenario


def corun(kind: str, app: str, mode: str, *, ycsb_letter: str = "C",
          seed: int = 0, warmup_s: float = 2.0, measure_s: float = 4.0,
          spec: "PlatformSpec | None" = None) -> AppMetrics:
    """One co-located run under ``mode`` ('baseline' uses random placement
    seeded by ``seed``; 'iat' runs with tenant-way management disabled,
    per Sec. VI-C)."""
    scenario = build_corun(kind, app, ycsb_letter, spec=spec,
                           seed=1000 + seed)
    if mode == "baseline":
        scenario.attach_controller("baseline-rand", seed=seed)
    elif mode == "iat":
        scenario.attach_controller("iat", manage_tenant_ways=False)
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return measure_scenario(scenario, warmup_s=warmup_s,
                            measure_s=measure_s)

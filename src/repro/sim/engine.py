"""The discrete-time simulation engine.

Time advances in quanta (default 0.1 s simulated).  Each quantum is
split into sub-steps that interleave the producer (NIC DMA through
DDIO) with the consumers (workloads draining rings / issuing memory
accesses), which is what lets ring backlog, Leaky DMA evictions and
packet drops emerge rather than being scripted.

Controllers (the IAT daemon, or the baseline policies of
:mod:`repro.core.policies`) are invoked on their own interval — 1 s for
IAT, per Table II — mirroring the daemon's sleep loop.  Scheduled
events support the paper's phase scripts ("at t1 a large number of
flows appear...", Fig. 7).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Protocol

import numpy as np

from ..core.monitor import SlowdownTracker
from ..net.traffic import PhasedTraffic, TrafficGen, TrafficSpec
from ..obs.metrics import REGISTRY
from ..obs.tracer import current_tracer
from ..pci.nic import Nic, VirtualFunction
from ..tenants.tenant import Tenant, TenantSet
from ..workloads.base import (CorePort, ENGINE_STATS, EngineStats,
                              Workload)
from .metrics import MetricsRecorder, QuantumRecord, TenantSnapshot
from .platform import Platform


class Controller(Protocol):
    """A control-plane agent invoked periodically by the engine."""

    interval_s: float

    def on_start(self, now: float) -> None: ...

    def on_interval(self, now: float) -> None: ...


@dataclass
class TenantBinding:
    """A tenant together with its workload and core ports."""

    tenant: Tenant
    workload: Workload
    ports: "list[CorePort]"
    owner_id: int


@dataclass
class TrafficBinding:
    """Traffic offered to one VF, possibly phase-scripted."""

    nic: Nic
    vf: VirtualFunction
    gen: TrafficGen
    phased: "PhasedTraffic | None" = None


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: "Callable[[], None]" = field(compare=False)


#: Valid workload execution modes (see :attr:`Workload.exec_mode`):
#: ``vector`` is the fully array-native pipeline, ``batch`` the chunked
#: per-packet-planned drain, ``scalar`` the per-packet reference loop.
EXEC_MODES = ("vector", "batch", "scalar")


class Simulation:
    """Builds and runs one multi-tenant scenario on a platform.

    ``exec_mode`` selects how workloads execute each sub-quantum; all
    modes simulate the same machine and are kept equivalent by the
    engine-level equivalence suite (``tests/test_engine_batch_equiv``).
    """

    def __init__(self, platform: Platform, *, seed: int = 2021,
                 exec_mode: str = "vector") -> None:
        if exec_mode not in EXEC_MODES:
            raise ValueError(f"exec_mode must be one of {EXEC_MODES}")
        self.exec_mode = exec_mode
        self.platform = platform
        self.bindings: "list[TenantBinding]" = []
        self.traffic: "list[TrafficBinding]" = []
        self.controllers: "list[Controller]" = []
        self._controller_due: "list[float]" = []
        self._events: "list[_Event]" = []
        self._event_seq = 0
        self.metrics = MetricsRecorder()
        self.now = 0.0
        self._seed_seq = np.random.SeedSequence(seed)
        self._counter_last: "dict[str, tuple[int, int, int, int]]" = {}
        self._ddio_last = (0, 0)
        self._vf_last: "dict[str, tuple[int, int]]" = {}
        self._llc_stats_last: "dict[str, int]" = {}
        self._quantum_seq = 0
        # Chunk/speculation accounting: baseline of the process-wide
        # ENGINE_STATS so per-quantum deltas belong to this simulation.
        self._engine_last = ENGINE_STATS.snapshot()
        self._engine_delta: "dict | None" = None
        # Fairness export: per-tenant slowdown estimates fed to the
        # metrics registry each quantum (LFOC-style, peak-IPC proxy).
        self._slowdowns = SlowdownTracker()

    # ------------------------------------------------------------------
    # Scenario construction
    # ------------------------------------------------------------------
    def _spawn_rng(self) -> "np.random.Generator":
        return np.random.default_rng(self._seed_seq.spawn(1)[0])

    def add_tenant(self, tenant: Tenant, workload: Workload, *,
                   region_bytes: int = 1 << 30) -> TenantBinding:
        """Register a tenant: assign a CLOS, ports, and a memory region."""
        owner_id = len(self.bindings) + 1
        tenant.cos_id = owner_id
        for core in tenant.cores:
            self.platform.cat.associate(core, tenant.cos_id)
        ports = [self.platform.core_port(core, owner_id)
                 for core in tenant.cores]
        workload.time_scale = self.platform.spec.time_scale
        workload.bind(ports, self.platform.alloc_region(region_bytes),
                      self._spawn_rng())
        binding = TenantBinding(tenant, workload, ports, owner_id)
        self.bindings.append(binding)
        return binding

    def tenant_set(self) -> TenantSet:
        return TenantSet([b.tenant for b in self.bindings])

    def attach_traffic(self, nic: Nic, vf: VirtualFunction,
                       traffic: "TrafficSpec | PhasedTraffic") -> TrafficBinding:
        """Offer traffic to a VF (rates already time-scaled by caller)."""
        phased = traffic if isinstance(traffic, PhasedTraffic) else None
        spec = phased.spec_at(0.0) if phased else traffic
        binding = TrafficBinding(nic, vf, TrafficGen(spec, self._spawn_rng()),
                                 phased)
        self.traffic.append(binding)
        return binding

    def add_controller(self, controller: Controller) -> None:
        self.controllers.append(controller)
        self._controller_due.append(controller.interval_s)

    def at(self, time: float, action: "Callable[[], None]") -> None:
        """Schedule a phase-change callback at simulated ``time``."""
        heapq.heappush(self._events, _Event(time, self._event_seq, action))
        self._event_seq += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration_s: float) -> MetricsRecorder:
        """Advance the simulation by ``duration_s`` simulated seconds."""
        spec = self.platform.spec
        for binding in self.bindings:
            binding.workload.exec_mode = self.exec_mode
        if self.now == 0.0:
            for controller in self.controllers:
                controller.on_start(0.0)
            for binding in self.bindings:
                binding.workload.prefill()
            self._prime_counter_baselines()
        end = self.now + duration_s
        dt = spec.quantum_s
        while self.now < end - 1e-12:
            self._run_quantum(dt)
        return self.metrics

    def _run_quantum(self, dt: float) -> None:
        tracer = current_tracer()
        index = self._quantum_seq
        self._quantum_seq = index + 1
        if tracer.begin_quantum(index):
            self._run_quantum_traced(tracer, dt)
            return
        metrics_on = REGISTRY.enabled
        t0 = time.perf_counter() if metrics_on else 0.0
        spec = self.platform.spec
        self._fire_events()
        self.platform.mem.begin_window(dt)
        for binding in self.bindings:
            binding.workload.begin_quantum(self.now)
        sub_dt = dt / spec.subquanta
        budget = spec.cycles_per_quantum / spec.subquanta
        bundles = self._sample_traffic(sub_dt, spec.subquanta)
        platform = self.platform
        bindings = self.bindings
        for sub in range(spec.subquanta):
            sub_now = self.now + sub * sub_dt
            for binding, bundle in bundles:
                lo = bundle.offsets[sub]
                hi = bundle.offsets[sub + 1]
                if hi > lo:
                    binding.nic.dma_burst(
                        binding.vf, bundle.sizes[lo:hi],
                        bundle.flows[lo:hi], platform.llc,
                        platform.ddio.mask, platform.mem,
                        platform.uncore, sub_now, tracer=tracer)
            for binding in bindings:
                binding.workload.run(budget, sub_now)
        window_bytes = platform.mem.end_window()
        self.now += dt
        record = self._record_quantum(window_bytes, tracer)
        if metrics_on:
            self._export_metrics(record, time.perf_counter() - t0)
        self._run_controllers()

    def _run_quantum_traced(self, tracer, dt: float) -> None:
        """Instrumented twin of :meth:`_run_quantum`: one span per
        quantum plus per-subsystem wall-time shares (self-profiling).
        Simulation outcomes are identical to the fast path — only
        clock reads and event emission are added."""
        spec = self.platform.spec
        clock = tracer.clock
        t0 = clock()
        tracer.set_sim_time(self.now)
        self._fire_events()
        self.platform.mem.begin_window(dt)
        for binding in self.bindings:
            binding.workload.begin_quantum(self.now)
        sub_dt = dt / spec.subquanta
        budget = spec.cycles_per_quantum / spec.subquanta
        t1 = clock()
        bundles = self._sample_traffic(sub_dt, spec.subquanta)
        traffic_s = clock() - t1
        workload_s = 0.0
        platform = self.platform
        for sub in range(spec.subquanta):
            sub_now = self.now + sub * sub_dt
            t1 = clock()
            for binding, bundle in bundles:
                lo = bundle.offsets[sub]
                hi = bundle.offsets[sub + 1]
                if hi > lo:
                    binding.nic.dma_burst(
                        binding.vf, bundle.sizes[lo:hi],
                        bundle.flows[lo:hi], platform.llc,
                        platform.ddio.mask, platform.mem,
                        platform.uncore, sub_now, tracer=tracer)
            t2 = clock()
            for binding in self.bindings:
                binding.workload.run(budget, sub_now)
            traffic_s += t2 - t1
            workload_s += clock() - t2
        window_bytes = self.platform.mem.end_window()
        self.now += dt
        t3 = clock()
        record = self._record_quantum(window_bytes, tracer)
        t4 = clock()
        self._run_controllers()
        t5 = clock()
        tracer.profile_add("engine.traffic", traffic_s)
        tracer.profile_add("engine.workloads", workload_s)
        tracer.profile_add("engine.record", t4 - t3)
        tracer.profile_add("engine.controllers", t5 - t4)
        tracer.complete("sim", "quantum", t5 - t0, t=self.now)
        if REGISTRY.enabled:
            self._export_metrics(record, t5 - t0)

    def _fire_events(self) -> None:
        while self._events and self._events[0].time <= self.now + 1e-12:
            heapq.heappop(self._events).action()

    def _sample_traffic(self, sub_dt: float, subquanta: int):
        """Pre-sample every stream's arrivals for the coming quantum as
        one array bundle per stream (phase scripts are honoured at
        sub-step granularity inside ``sample_quantum``)."""
        return [(binding,
                 binding.gen.sample_quantum(sub_dt, subquanta, self.now,
                                            binding.phased))
                for binding in self.traffic]

    def _run_controllers(self) -> None:
        for i, controller in enumerate(self.controllers):
            if self.now + 1e-9 >= self._controller_due[i]:
                controller.on_interval(self.now)
                self._controller_due[i] += controller.interval_s

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _prime_counter_baselines(self) -> None:
        for binding in self.bindings:
            block = self.platform.counters.aggregate(binding.tenant.cores)
            self._counter_last[binding.tenant.name] = (
                block.instructions, block.cycles,
                block.llc_references, block.llc_misses)
        exact = self.platform.uncore.exact()
        self._ddio_last = (exact.hits, exact.misses)
        for traffic in self.traffic:
            self._vf_last[traffic.vf.name] = (traffic.vf.delivered,
                                              traffic.vf.drops)

    def _record_quantum(self, window_bytes: "tuple[int, int]",
                        tracer=None) -> QuantumRecord:
        if tracer is None:
            tracer = current_tracer()
        tenants: "dict[str, TenantSnapshot]" = {}
        for binding in self.bindings:
            name = binding.tenant.name
            block = self.platform.counters.aggregate(binding.tenant.cores)
            last = self._counter_last.get(name, (0, 0, 0, 0))
            d_instr = block.instructions - last[0]
            d_cycles = block.cycles - last[1]
            tenants[name] = TenantSnapshot(
                ipc=d_instr / d_cycles if d_cycles else 0.0,
                llc_references=block.llc_references - last[2],
                llc_misses=block.llc_misses - last[3],
                mask=self.platform.cat.get_mask(binding.tenant.cos_id))
            self._counter_last[name] = (block.instructions, block.cycles,
                                        block.llc_references,
                                        block.llc_misses)
        exact = self.platform.uncore.exact()
        d_hits = exact.hits - self._ddio_last[0]
        d_misses = exact.misses - self._ddio_last[1]
        self._ddio_last = (exact.hits, exact.misses)
        read_bytes, write_bytes = window_bytes
        record = QuantumRecord(time=self.now, tenants=tenants,
                               ddio_hits=d_hits, ddio_misses=d_misses,
                               ddio_mask=self.platform.ddio.mask,
                               mem_read_bytes=read_bytes,
                               mem_write_bytes=write_bytes)
        for traffic in self.traffic:
            name = traffic.vf.name
            last = self._vf_last.get(name, (0, 0))
            record.vf_delivered[name] = traffic.vf.delivered - last[0]
            record.vf_dropped[name] = traffic.vf.drops - last[1]
            self._vf_last[name] = (traffic.vf.delivered, traffic.vf.drops)
        self.metrics.append(record)
        self._engine_delta = None
        if tracer.enabled or REGISTRY.enabled:
            self._engine_delta = self._engine_stats_delta()
        if tracer.enabled:
            self._trace_quantum(tracer, record)
        return record

    def _engine_stats_delta(self) -> dict:
        """Advance the ENGINE_STATS baseline; returns this quantum's
        chunk/speculation deltas (observability only)."""
        snap = ENGINE_STATS.snapshot()
        last = self._engine_last
        delta = {key: value - last[key] for key, value in snap.items()
                 if key != "size_buckets"}
        delta["size_buckets"] = tuple(
            v - p for v, p in zip(snap["size_buckets"],
                                  last["size_buckets"]))
        self._engine_last = snap
        return delta

    def _trace_quantum(self, tracer, record: QuantumRecord) -> None:
        """Emit one quantum's telemetry: the full record (the
        ``metrics`` view's source of truth), per-track counters, and
        the sampled LLC event-counter deltas."""
        tracer.set_sim_time(record.time)
        tracer.instant("metrics", "quantum", **asdict(record))
        tracer.counter("ddio", "events", hits=record.ddio_hits,
                       misses=record.ddio_misses, mask=record.ddio_mask)
        tracer.counter("mem", "bytes", read=record.mem_read_bytes,
                       write=record.mem_write_bytes)
        for name, snap in record.tenants.items():
            tracer.counter("tenant", name, ipc=snap.ipc,
                           llc_references=snap.llc_references,
                           llc_misses=snap.llc_misses, mask=snap.mask)
        stats = self.platform.llc.stats()
        last = self._llc_stats_last
        tracer.counter("llc", "events",
                       **{key: value - last.get(key, 0)
                          for key, value in stats.items()})
        self._llc_stats_last = stats
        delta = self._engine_delta
        if delta is not None and delta["chunks"]:
            tracer.counter("engine", "chunks",
                           chunks=delta["chunks"],
                           packets=delta["packets"],
                           exec_packets=delta["exec_packets"],
                           spec_chunks=delta["spec_chunks"],
                           rollbacks=delta["rollbacks"],
                           wasted_packets=delta["wasted_packets"],
                           kernel_launches=delta["kernel_launches"])

    def _export_metrics(self, record: QuantumRecord, wall_s: float) -> None:
        """Feed the process-wide metrics registry from one quantum's
        record (callers gate on ``REGISTRY.enabled``)."""
        reg = REGISTRY
        reg.gauge("repro_sim_time_seconds",
                  "Simulated time").set(record.time)
        reg.histogram("repro_quantum_wall_seconds",
                      "Wall-clock time per simulation quantum"
                      ).observe(wall_s)
        ipc = reg.gauge("repro_tenant_ipc",
                        "Per-tenant IPC over the last quantum")
        misses = reg.counter("repro_tenant_llc_misses_total",
                             "Per-tenant LLC misses")
        for name, snap in record.tenants.items():
            ipc.labels(tenant=name).set(snap.ipc)
            misses.labels(tenant=name).inc(snap.llc_misses)
        slowdowns = self._slowdowns.update(
            {name: snap.ipc for name, snap in record.tenants.items()})
        slow = reg.gauge("repro_tenant_slowdown",
                         "Estimated slowdown (best observed IPC over "
                         "current IPC, LFOC-style)")
        for name, value in slowdowns.items():
            slow.labels(tenant=name).set(value)
        reg.gauge("repro_fairness_index",
                  "Jain fairness index over per-tenant slowdowns "
                  "(1.0 = perfectly fair)").set(
            self._slowdowns.fairness_index())
        ddio_total = record.ddio_hits + record.ddio_misses
        reg.gauge("repro_ddio_hit_rate",
                  "DDIO hit fraction over the last quantum").set(
            record.ddio_hits / ddio_total if ddio_total else 0.0)
        reg.counter("repro_ddio_hits_total",
                    "DDIO (inline DMA) LLC hits").inc(record.ddio_hits)
        reg.counter("repro_ddio_misses_total",
                    "DDIO (inline DMA) LLC misses").inc(record.ddio_misses)
        mem = reg.counter("repro_mem_bytes_total",
                          "Memory controller traffic in bytes")
        mem.labels(dir="read").inc(record.mem_read_bytes)
        mem.labels(dir="write").inc(record.mem_write_bytes)
        delivered = reg.counter("repro_vf_delivered_total",
                                "Packets delivered per virtual function")
        dropped = reg.counter("repro_vf_dropped_total",
                              "Packets dropped per virtual function")
        total_delivered = 0
        total_dropped = 0
        for name, count in record.vf_delivered.items():
            drops = record.vf_dropped.get(name, 0)
            delivered.labels(vf=name).inc(count)
            dropped.labels(vf=name).inc(drops)
            total_delivered += count
            total_dropped += drops
        offered = total_delivered + total_dropped
        reg.gauge("repro_vf_drop_rate",
                  "Packet drop fraction over the last quantum").set(
            total_dropped / offered if offered else 0.0)
        delta = self._engine_delta
        if delta is None:
            delta = self._engine_stats_delta()
        if delta["chunks"]:
            reg.counter("repro_engine_chunks_total",
                        "Executed vector-drain chunks").inc(delta["chunks"])
            reg.counter("repro_engine_packets_total",
                        "Packets committed by the vector drains"
                        ).inc(delta["packets"])
            reg.counter("repro_spec_chunks_total",
                        "Chunks executed under a speculative snapshot"
                        ).inc(delta["spec_chunks"])
            reg.counter("repro_spec_rollbacks_total",
                        "Speculative chunks rolled back on budget "
                        "overshoot").inc(delta["rollbacks"])
            reg.counter("repro_spec_wasted_packets_total",
                        "Packets executed and then rolled back"
                        ).inc(delta["wasted_packets"])
            spec = delta["spec_chunks"]
            reg.gauge("repro_spec_rollback_rate",
                      "Rollback fraction of speculative chunks over the "
                      "last quantum").set(
                delta["rollbacks"] / spec if spec else 0.0)
            reg.gauge("repro_engine_kernel_launches_per_chunk",
                      "Plan-pipeline NumPy launches per chunk over the "
                      "last quantum").set(
                delta["kernel_launches"] / delta["chunks"])
            reg.histogram("repro_chunk_size_packets",
                          "Packets per executed chunk",
                          buckets=EngineStats.SIZE_BUCKETS).add_counts(
                delta["size_buckets"], delta["chunks"],
                delta["exec_packets"])

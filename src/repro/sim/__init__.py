"""Simulation engine: platform assembly, quantum loop, metrics."""

from .config import TINY_PLATFORM, XEON_6140, PlatformSpec
from .engine import Simulation, TenantBinding, TrafficBinding
from .metrics import MetricsRecorder, QuantumRecord, TenantSnapshot
from .platform import Platform

__all__ = [
    "MetricsRecorder", "Platform", "PlatformSpec", "QuantumRecord",
    "Simulation", "TINY_PLATFORM", "TenantBinding", "TenantSnapshot",
    "TrafficBinding", "XEON_6140",
]

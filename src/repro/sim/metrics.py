"""Per-quantum time-series recording.

The recorder is the reproduction's "independent pqos process" (the paper
runs one to plot Fig. 11): it snapshots ground-truth counters every
quantum, independent of the IAT daemon's own delta polling, and exposes
numpy series for the experiment harnesses.  Runs can be exported to
JSON (lossless round trip) or CSV (for external plotting).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, field, fields

import numpy as np


@dataclass
class TenantSnapshot:
    """One tenant's activity during one quantum (deltas, not totals)."""

    ipc: float
    llc_references: int
    llc_misses: int
    mask: int


@dataclass
class QuantumRecord:
    """Everything recorded for one quantum."""

    time: float
    tenants: "dict[str, TenantSnapshot]"
    ddio_hits: int
    ddio_misses: int
    ddio_mask: int
    mem_read_bytes: int
    mem_write_bytes: int
    vf_delivered: "dict[str, int]" = field(default_factory=dict)
    vf_dropped: "dict[str, int]" = field(default_factory=dict)


#: Field-name sets for strict decoding: an unknown key in serialized
#: input raises a ValueError naming the offenders instead of a bare
#: TypeError from ``**kwargs`` (or, worse, being dropped silently).
_RECORD_FIELDS = frozenset(f.name for f in fields(QuantumRecord))
_SNAPSHOT_FIELDS = frozenset(f.name for f in fields(TenantSnapshot))


def record_from_dict(raw: dict) -> QuantumRecord:
    """Decode one :class:`QuantumRecord` from its ``asdict`` form.

    Strict: unknown fields — at the record or tenant-snapshot level —
    raise :class:`ValueError`.  Shared by :meth:`MetricsRecorder.from_json`
    and the trace-reconstruction views (:mod:`repro.obs.views`).
    """
    unknown = set(raw) - _RECORD_FIELDS
    if unknown:
        raise ValueError(
            f"unknown QuantumRecord field(s): {sorted(unknown)}")
    raw = dict(raw)
    tenants = {}
    for name, snap in raw.pop("tenants").items():
        extra = set(snap) - _SNAPSHOT_FIELDS
        if extra:
            raise ValueError(f"unknown TenantSnapshot field(s) for "
                             f"{name!r}: {sorted(extra)}")
        tenants[name] = TenantSnapshot(**snap)
    record = QuantumRecord(tenants=tenants, **raw)
    record.vf_delivered = dict(record.vf_delivered)
    record.vf_dropped = dict(record.vf_dropped)
    return record


class MetricsRecorder:
    """Accumulates :class:`QuantumRecord` objects and exports series."""

    def __init__(self) -> None:
        self.records: "list[QuantumRecord]" = []

    def append(self, record: QuantumRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- series extraction ------------------------------------------------
    def times(self) -> "np.ndarray":
        return np.array([r.time for r in self.records])

    def series(self, extractor) -> "np.ndarray":
        return np.array([extractor(r) for r in self.records])

    def tenant_series(self, name: str, attr: str) -> "np.ndarray":
        return np.array([getattr(r.tenants[name], attr)
                         for r in self.records])

    def ddio_hits(self) -> "np.ndarray":
        return self.series(lambda r: r.ddio_hits)

    def ddio_misses(self) -> "np.ndarray":
        return self.series(lambda r: r.ddio_misses)

    def mem_bytes(self) -> "np.ndarray":
        return self.series(lambda r: r.mem_read_bytes + r.mem_write_bytes)

    def window(self, t0: float, t1: float) -> "list[QuantumRecord]":
        """Records with ``t0 <= time < t1``."""
        return [r for r in self.records if t0 <= r.time < t1]

    def total_ddio(self) -> "tuple[int, int]":
        return (int(self.ddio_hits().sum()), int(self.ddio_misses().sum()))

    # -- serialization -----------------------------------------------------
    def to_json(self) -> str:
        """Lossless JSON dump of every record."""
        return json.dumps([asdict(r) for r in self.records])

    @classmethod
    def from_json(cls, text: str) -> "MetricsRecorder":
        """Inverse of :meth:`to_json`; raises on unknown fields."""
        recorder = cls()
        for raw in json.loads(text):
            recorder.append(record_from_dict(raw))
        return recorder

    def to_csv(self) -> str:
        """Flat CSV: one row per quantum; tenant and VF columns prefixed
        (``<tenant>.<attr>``, ``vf.<name>.delivered|dropped``)."""
        if not self.records:
            return ""
        names = sorted(self.records[0].tenants)
        vf_names = sorted(self.records[0].vf_delivered)
        header = (["time", "ddio_hits", "ddio_misses", "ddio_mask",
                   "mem_read_bytes", "mem_write_bytes"]
                  + [f"{n}.{attr}" for n in names
                     for attr in ("ipc", "llc_references", "llc_misses",
                                  "mask")]
                  + [f"vf.{n}.{attr}" for n in vf_names
                     for attr in ("delivered", "dropped")])
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(header)
        for record in self.records:
            row = [record.time, record.ddio_hits, record.ddio_misses,
                   record.ddio_mask, record.mem_read_bytes,
                   record.mem_write_bytes]
            for name in names:
                snap = record.tenants[name]
                row += [snap.ipc, snap.llc_references, snap.llc_misses,
                        snap.mask]
            for name in vf_names:
                row += [record.vf_delivered.get(name, 0),
                        record.vf_dropped.get(name, 0)]
            writer.writerow(row)
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "MetricsRecorder":
        """Inverse of :meth:`to_csv`; raises on unrecognized columns."""
        recorder = cls()
        rows = list(csv.reader(io.StringIO(text)))
        if not rows:
            return recorder
        header = rows[0]
        base = ["time", "ddio_hits", "ddio_misses", "ddio_mask",
                "mem_read_bytes", "mem_write_bytes"]
        if header[:len(base)] != base:
            raise ValueError(f"unexpected CSV base columns: "
                             f"{header[:len(base)]}")
        snapshot_attrs = ("ipc", "llc_references", "llc_misses", "mask")
        for row in rows[1:]:
            if not row:
                continue
            values = dict(zip(header, row))
            tenants: "dict[str, dict]" = {}
            vf_delivered: "dict[str, int]" = {}
            vf_dropped: "dict[str, int]" = {}
            for col in header[len(base):]:
                if col.startswith("vf.") and col.endswith(".delivered"):
                    vf_delivered[col[3:-len(".delivered")]] = \
                        int(values[col])
                elif col.startswith("vf.") and col.endswith(".dropped"):
                    vf_dropped[col[3:-len(".dropped")]] = int(values[col])
                else:
                    name, _, attr = col.rpartition(".")
                    if not name or attr not in snapshot_attrs:
                        raise ValueError(f"unrecognized CSV column: "
                                         f"{col!r}")
                    tenants.setdefault(name, {})[attr] = (
                        float(values[col]) if attr == "ipc"
                        else int(values[col]))
            recorder.append(QuantumRecord(
                time=float(values["time"]),
                tenants={name: TenantSnapshot(**snap)
                         for name, snap in tenants.items()},
                ddio_hits=int(values["ddio_hits"]),
                ddio_misses=int(values["ddio_misses"]),
                ddio_mask=int(values["ddio_mask"]),
                mem_read_bytes=int(values["mem_read_bytes"]),
                mem_write_bytes=int(values["mem_write_bytes"]),
                vf_delivered=vf_delivered, vf_dropped=vf_dropped))
        return recorder

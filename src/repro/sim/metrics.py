"""Per-quantum time-series recording.

The recorder is the reproduction's "independent pqos process" (the paper
runs one to plot Fig. 11): it snapshots ground-truth counters every
quantum, independent of the IAT daemon's own delta polling, and exposes
numpy series for the experiment harnesses.  Runs can be exported to
JSON (lossless round trip) or CSV (for external plotting).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, field

import numpy as np


@dataclass
class TenantSnapshot:
    """One tenant's activity during one quantum (deltas, not totals)."""

    ipc: float
    llc_references: int
    llc_misses: int
    mask: int


@dataclass
class QuantumRecord:
    """Everything recorded for one quantum."""

    time: float
    tenants: "dict[str, TenantSnapshot]"
    ddio_hits: int
    ddio_misses: int
    ddio_mask: int
    mem_read_bytes: int
    mem_write_bytes: int
    vf_delivered: "dict[str, int]" = field(default_factory=dict)
    vf_dropped: "dict[str, int]" = field(default_factory=dict)


class MetricsRecorder:
    """Accumulates :class:`QuantumRecord` objects and exports series."""

    def __init__(self) -> None:
        self.records: "list[QuantumRecord]" = []

    def append(self, record: QuantumRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- series extraction ------------------------------------------------
    def times(self) -> "np.ndarray":
        return np.array([r.time for r in self.records])

    def series(self, extractor) -> "np.ndarray":
        return np.array([extractor(r) for r in self.records])

    def tenant_series(self, name: str, attr: str) -> "np.ndarray":
        return np.array([getattr(r.tenants[name], attr)
                         for r in self.records])

    def ddio_hits(self) -> "np.ndarray":
        return self.series(lambda r: r.ddio_hits)

    def ddio_misses(self) -> "np.ndarray":
        return self.series(lambda r: r.ddio_misses)

    def mem_bytes(self) -> "np.ndarray":
        return self.series(lambda r: r.mem_read_bytes + r.mem_write_bytes)

    def window(self, t0: float, t1: float) -> "list[QuantumRecord]":
        """Records with ``t0 <= time < t1``."""
        return [r for r in self.records if t0 <= r.time < t1]

    def total_ddio(self) -> "tuple[int, int]":
        return (int(self.ddio_hits().sum()), int(self.ddio_misses().sum()))

    # -- serialization -----------------------------------------------------
    def to_json(self) -> str:
        """Lossless JSON dump of every record."""
        return json.dumps([asdict(r) for r in self.records])

    @classmethod
    def from_json(cls, text: str) -> "MetricsRecorder":
        recorder = cls()
        for raw in json.loads(text):
            tenants = {name: TenantSnapshot(**snap)
                       for name, snap in raw.pop("tenants").items()}
            recorder.append(QuantumRecord(tenants=tenants, **raw))
        return recorder

    def to_csv(self) -> str:
        """Flat CSV: one row per quantum, tenant columns prefixed."""
        if not self.records:
            return ""
        names = sorted(self.records[0].tenants)
        header = (["time", "ddio_hits", "ddio_misses", "ddio_mask",
                   "mem_read_bytes", "mem_write_bytes"]
                  + [f"{n}.{attr}" for n in names
                     for attr in ("ipc", "llc_references", "llc_misses",
                                  "mask")])
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(header)
        for record in self.records:
            row = [record.time, record.ddio_hits, record.ddio_misses,
                   record.ddio_mask, record.mem_read_bytes,
                   record.mem_write_bytes]
            for name in names:
                snap = record.tenants[name]
                row += [snap.ipc, snap.llc_references, snap.llc_misses,
                        snap.mask]
            writer.writerow(row)
        return buffer.getvalue()

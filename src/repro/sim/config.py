"""Platform specifications (the paper's Table I) and simulation scaling.

The reproduction keeps the cache geometry and all memory footprints at
full size while running *rates* (core cycles/second and packets/second)
at ``time_scale`` of real time.  Ring and LLC occupancy depend only on
producer/consumer rate ratios, which scaling preserves, so contention
behaviour is unchanged while Python-level simulation stays tractable
(see DESIGN.md).  Reported bandwidths and rates are un-scaled back to
real-time equivalents by the reporting helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.geometry import CacheGeometry, TINY_LLC, XEON_6140_LLC
from ..mem.dram import MemorySpec


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of one CPU package plus simulation knobs."""

    name: str
    cores: int = 18
    freq_hz: float = 2.3e9
    llc: CacheGeometry = field(default_factory=lambda: XEON_6140_LLC)
    mem: MemorySpec = field(default_factory=MemorySpec)
    #: Fraction of real-time rates the simulator runs at.
    time_scale: float = 1e-3
    #: Simulated seconds per engine quantum.
    quantum_s: float = 0.1
    #: Producer/consumer interleaving steps per quantum.
    subquanta: int = 5
    #: LLC storage engine: ``"array"`` (vectorized batches) or
    #: ``"scalar"`` (reference lists).  Bit-equivalent outcomes.
    llc_backend: str = "array"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("need at least one core")
        if not 0 < self.time_scale <= 1:
            raise ValueError("time_scale must be in (0, 1]")
        if self.quantum_s <= 0 or self.subquanta < 1:
            raise ValueError("bad quantum configuration")
        if self.llc_backend not in ("scalar", "array"):
            raise ValueError(f"unknown LLC backend {self.llc_backend!r}")

    @property
    def cycles_per_quantum(self) -> float:
        """Per-core cycle budget for one quantum (already time-scaled)."""
        return self.freq_hz * self.time_scale * self.quantum_s


#: The paper's testbed CPU (Table I): Xeon Gold 6140, 18 cores @ 2.3 GHz,
#: 11-way 24.75 MB LLC in 18 slices, six DDR4-2666 channels.
XEON_6140 = PlatformSpec(name="Xeon Gold 6140")

#: A small platform for unit tests: same 11-way geometry (so CAT/DDIO
#: masks behave identically) but a tiny LLC and few cores.
TINY_PLATFORM = PlatformSpec(name="tiny", cores=6, llc=TINY_LLC,
                             quantum_s=0.05, subquanta=2)

"""Platform assembly: wires the LLC, memory, counters, MSRs and NICs.

A :class:`Platform` is one simulated server socket.  It owns:

* the sliced LLC with its CAT controller and DDIO configuration,
* the memory controller,
* per-core counters and per-slice CHA uncore counters,
* a simulated MSR device and the pqos facade over all of the above,
* a bump allocator for the simulated physical address space (each
  workload region, vswitch table, virtio ring and NIC buffer pool gets a
  disjoint range), and
* the NICs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cache.cat import CatController
from ..cache.ddio import DdioConfig
from ..cache.llc import SlicedLLC
from ..mem.dram import MemoryController
from ..mem.mba import MbaController
from ..pci.nic import Nic
from ..perf.counters import CounterFile
from ..perf.msr import SimMsr
from ..perf.pqos import PqosLib
from ..perf.uncore import ChaCounters
from ..workloads.base import CorePort
from .config import PlatformSpec

#: Base of the simulated physical region handed to workloads/devices.
_REGION_START = 1 << 34
#: Alignment/padding between regions so neighbours never share a line.
_REGION_ALIGN = 1 << 21


@dataclass
class Platform:
    """One simulated socket: caches, memory, counters, devices."""

    spec: PlatformSpec
    llc: SlicedLLC = field(init=False)
    cat: CatController = field(init=False)
    ddio: DdioConfig = field(init=False)
    msr: SimMsr = field(init=False)
    counters: CounterFile = field(init=False)
    uncore: ChaCounters = field(init=False)
    mem: MemoryController = field(init=False)
    mba: MbaController = field(init=False)
    pqos: PqosLib = field(init=False)
    nics: "list[Nic]" = field(default_factory=list)
    _next_region: int = _REGION_START

    def __post_init__(self) -> None:
        spec = self.spec
        self.llc = SlicedLLC(spec.llc, backend=spec.llc_backend)
        # Real Skylake-SP exposes 16 CLOS; allow more on simulated
        # platforms with more tenants than that (e.g. the Fig. 15
        # overhead sweep) so every tenant still gets its own class.
        self.cat = CatController(num_ways=spec.llc.ways,
                                 num_cos=max(16, spec.cores + 2))
        self.ddio = DdioConfig(spec.llc)
        self.msr = SimMsr(self.ddio)
        self.counters = CounterFile(num_cores=spec.cores)
        self.uncore = ChaCounters(spec.llc)
        self.mem = MemoryController(spec=spec.mem, time_scale=spec.time_scale)
        self.mba = MbaController(num_cos=self.cat.num_cos)
        self.pqos = PqosLib(self.counters, self.uncore, self.cat, self.msr)

    # ------------------------------------------------------------------
    def alloc_region(self, size_bytes: int) -> int:
        """Reserve a disjoint address range; returns its base address."""
        if size_bytes < 1:
            raise ValueError("region size must be positive")
        base = self._next_region
        padded = -(-size_bytes // _REGION_ALIGN) * _REGION_ALIGN
        self._next_region += padded + _REGION_ALIGN
        return base

    def add_nic(self, name: str, link_gbps: float,
                region_size: int = 1 << 28) -> Nic:
        """Attach a NIC with its own buffer address region."""
        nic = Nic(name=name, link_gbps=link_gbps,
                  region_base=self.alloc_region(region_size),
                  region_size=region_size)
        self.nics.append(nic)
        return nic

    def core_port(self, core_id: int, owner: int) -> CorePort:
        """Build the memory-hierarchy port for one core."""
        if not 0 <= core_id < self.spec.cores:
            raise ValueError(f"core {core_id} outside 0..{self.spec.cores - 1}")
        return CorePort(core_id, owner, self.llc, self.cat, self.mem,
                        self.counters.core(core_id), mba=self.mba)

"""Comparison controllers: baseline, Core-only, and I/O-iso (Sec. VI-B).

The paper evaluates IAT against three stand-ins for the state of the
art, all reproduced here behind the same :class:`Controller` interface
the engine drives:

* **StaticPolicy** (baseline) — one allocation at start-up, never
  revisited.  Figs. 12-14 randomize the initial placement ("the LLC
  ways allocation ... randomly shuffled"), hence ``shuffle_seed``: a
  cache-hungry tenant may or may not land on the DDIO ways, producing
  the wide min-max whiskers of the baseline bars.
* **CoreOnlyPolicy** — dynamic, miss-driven way allocation *without*
  I/O awareness (the paper emulates this by "disabling I/O Demand state
  and LLC shuffling").  It happily treats the DDIO ways as free space,
  which is the Latent Contender problem in action.
* **IOIsoPolicy** — Core-only plus a hard exclusion of the DDIO ways
  from the core pool ([14, 69]'s approach).  When demand exceeds the
  shrunken pool, groups are clamped against its top and *share* ways
  ("the PC containers have to share 7-2=5 ways").

Neither reactive policy ever touches the DDIO mask; they re-read its
width every interval so external changes (the Fig. 10 script raises
DDIO from two to four ways at t=15 s) are respected.
"""

from __future__ import annotations

import numpy as np

from ..cache.cat import ways_to_mask
from ..tenants.tenant import Priority, TenantSet
from .allocator import Layout, WayAllocator, plan_layout
from .control import ControlPlane
from .monitor import rel_change
from .params import IATParams


def _initial_order(tenants: TenantSet,
                   shuffle_seed: "int | None") -> "list[str]":
    order = tenants.group_names()
    if shuffle_seed is not None:
        rng = np.random.default_rng(shuffle_seed)
        order = [order[i] for i in rng.permutation(len(order))]
    return order


def _apply_group_masks(control: ControlPlane, layout: Layout,
                       previous: "Layout | None") -> None:
    for tenant in control.tenants:
        mask = layout.mask_of(tenant)
        old = previous.group_masks.get(tenant.group) if previous else None
        if old != mask:
            control.pqos.alloc_set(tenant.cos_id, mask)


class StaticPolicy:
    """Fixed allocation applied once at start-up (the paper's baseline).

    With ``shuffle_seed`` set, the placement follows the paper's
    Sec. VI-C protocol: I/O groups (the networking containers and the
    software stack) are packed at the bottom ways, away from DDIO, while
    the non-networking groups are placed in a random order with the idle
    ways scattered randomly between them — so, across seeds, a
    cache-hungry container sometimes lands on the DDIO ways (the wide
    baseline whiskers of Figs. 12-14) and sometimes does not.
    """

    def __init__(self, control: ControlPlane, *,
                 explicit_masks: "dict[str, int] | None" = None,
                 shuffle_seed: "int | None" = None) -> None:
        self.control = control
        self.explicit_masks = explicit_masks
        self.shuffle_seed = shuffle_seed
        self.interval_s = 1e9  # effectively never re-invoked
        self.layout: "Layout | None" = None

    def _group_counts(self, groups: "list[str]") -> "list[tuple[str, int]]":
        tenants = self.control.tenants
        return [(g, max(max(1, t.initial_ways)
                        for t in tenants.group_members(g)))
                for g in groups]

    def _random_layout(self, ddio_ways: int) -> Layout:
        tenants = self.control.tenants
        num_ways = self.control.pqos.num_ways
        rng = np.random.default_rng(self.shuffle_seed)
        io_groups = [g for g in tenants.group_names()
                     if any(t.is_io or t.is_stack
                            for t in tenants.group_members(g))]
        other = [g for g in tenants.group_names() if g not in io_groups]
        other = [other[i] for i in rng.permutation(len(other))]
        counts = self._group_counts(io_groups + other)
        total = sum(c for _, c in counts)
        free = max(0, num_ways - total)
        # Scatter the idle ways as gaps between the non-I/O groups.
        gaps = (rng.multinomial(free, [1.0 / (len(other) + 1)]
                                * (len(other) + 1))
                if free and other else [0] * (len(other) + 1))
        masks: "dict[str, int]" = {}
        cursor = 0
        gap_idx = 0
        for group, count in counts:
            if group in other:
                cursor += int(gaps[gap_idx])
                gap_idx += 1
            start = min(cursor, num_ways - count)
            masks[group] = ((1 << count) - 1) << start
            cursor = start + count
        return Layout(group_masks=masks,
                      ddio_mask=ways_to_mask(num_ways - ddio_ways,
                                             ddio_ways))

    def on_start(self, now: float) -> None:
        control = self.control
        tenants = control.tenants
        ddio_ways = control.pqos.ddio_way_count()
        if self.explicit_masks is not None:
            layout = Layout(group_masks=dict(self.explicit_masks),
                            ddio_mask=control.pqos.ddio_get_mask())
        elif self.shuffle_seed is not None:
            layout = self._random_layout(ddio_ways)
        else:
            counts = self._group_counts(tenants.group_names())
            layout = plan_layout(control.pqos.num_ways, ddio_ways, counts)
        _apply_group_masks(control, layout, None)
        self.layout = layout

    def on_interval(self, now: float) -> None:
        """Static: nothing to do."""


class ReactivePolicy:
    """Miss-rate driven, I/O-unaware dynamic allocation (dCAT-like)."""

    #: Miss-rate jump (percentage points) that triggers a way grant.
    GROW_THRESHOLD_PP = 2.0
    #: Relative LLC-reference drop that triggers a reclaim.
    RECLAIM_THRESHOLD = 0.30

    def __init__(self, control: ControlPlane,
                 params: "IATParams | None" = None, *,
                 io_isolated: bool = False,
                 shuffle_seed: "int | None" = None) -> None:
        self.control = control
        self.params = params or IATParams()
        self.io_isolated = io_isolated
        self.shuffle_seed = shuffle_seed
        self.interval_s = self.params.interval_s
        self.allocator: "WayAllocator | None" = None
        self.layout: "Layout | None" = None
        self._order: "list[str]" = []
        self._prev_miss_rate: "dict[str, float]" = {}
        self._prev_refs: "dict[str, int]" = {}
        self._peak_refs: "dict[str, int]" = {}
        self._growing: "set[str]" = set()

    # ------------------------------------------------------------------
    def on_start(self, now: float) -> None:
        control = self.control
        tenants = control.tenants
        self.allocator = WayAllocator.for_tenants(
            control.pqos.num_ways, self.params, tenants)
        self.allocator.ddio_ways = control.pqos.ddio_way_count()
        self._order = _initial_order(tenants, self.shuffle_seed)
        for tenant in tenants:
            control.pqos.mon_start(f"policy.{tenant.name}", tenant.cores)
        self._apply()

    def on_interval(self, now: float) -> None:
        control = self.control
        grow_best: "tuple[float, str] | None" = None
        refs_now: "dict[str, int]" = {}
        rate_now: "dict[str, float]" = {}
        for tenant in control.tenants:
            result = control.pqos.mon_poll(f"policy.{tenant.name}")
            group = tenant.group
            refs_now[group] = refs_now.get(group, 0) + result.llc_references
            rate_now[group] = max(rate_now.get(group, 0.0), result.miss_rate)
        for group, rate in rate_now.items():
            delta_pp = (rate - self._prev_miss_rate.get(group, rate)) * 100.0
            if delta_pp > self.GROW_THRESHOLD_PP:
                self._growing.add(group)
                if grow_best is None or delta_pp > grow_best[0]:
                    grow_best = (delta_pp, group)
            elif group in self._growing:
                # Keep granting while the last way kept helping (the
                # dCAT-style grow-while-beneficial loop).
                if rate > 0.10 and delta_pp < -0.5:
                    if grow_best is None:
                        grow_best = (delta_pp, group)
                else:
                    self._growing.discard(group)
        changed = False
        if grow_best is not None:
            changed |= self._grow_into_pool(grow_best[1], refs_now)
        else:
            changed |= self._maybe_reclaim(refs_now)
        # Track the externally controlled DDIO width every interval.
        ddio_ways = control.pqos.ddio_way_count()
        if ddio_ways != self.allocator.ddio_ways:
            self.allocator.ddio_ways = ddio_ways
            changed = True
        if changed:
            self._apply()
        self._prev_miss_rate = rate_now
        self._prev_refs = refs_now

    def _grow_into_pool(self, group: str,
                        refs_now: "dict[str, int]") -> bool:
        """Grant one way from the *idle* pool only.

        Core-only considers every way a core may use — including, since
        it is I/O-unaware, the DDIO ways (the Latent Contender problem).
        I/O-iso excludes the DDIO ways; when its pool is exhausted it
        first takes a way back from a best-effort group ("it has to
        reduce the ways for BE container 2 and 3 to make room").
        """
        alloc = self.allocator
        tenants = self.control.tenants
        limit = alloc.num_ways
        if self.io_isolated:
            limit -= alloc.ddio_ways
        used = sum(alloc.group_ways.values())
        if used >= limit:
            if not self.io_isolated:
                return False  # no idle ways; Core-only never confiscates
            donors = [g for g in alloc.group_ways
                      if g != group
                      and tenants.group_priority(g) is Priority.BE
                      and alloc.group_ways[g] > 1]
            if not donors:
                return False
            victim = min(donors, key=lambda g: refs_now.get(g, 0))
            alloc.group_ways[victim] -= 1
        if alloc.grow_group(group):
            self._peak_refs[group] = refs_now.get(group, 0)
            return True
        return False

    def _maybe_reclaim(self, refs_now: "dict[str, int]") -> bool:
        tenants = self.control.tenants
        for group, ways in self.allocator.group_ways.items():
            floor = max(max(1, t.initial_ways)
                        for t in tenants.group_members(group))
            if ways <= floor:
                continue
            peak = self._peak_refs.get(group, 0)
            if peak and rel_change(refs_now.get(group, 0), peak) \
                    < -self.RECLAIM_THRESHOLD:
                return self.allocator.shrink_group(group, floor=floor)
        return False

    def _fit_to_pool(self) -> None:
        """I/O-iso repartitioning: the core pool excludes the DDIO ways,
        and partitions stay *disjoint*, so when demand exceeds the pool
        other tenants must give ways up — best-effort groups first, then
        performance-critical ones ("it has to reduce the ways for BE
        container 2 and 3 to make room for the PC containers"; after
        DDIO widens, "the PC containers have to share" a smaller pool).
        """
        alloc = self.allocator
        limit = alloc.num_ways - alloc.ddio_ways
        tenants = self.control.tenants

        def shrink_candidates():
            # BE groups yield first; PC groups only as a last resort
            # (the paper's phase-3 I/O-iso: once DDIO takes more ways,
            # even the PC containers are squeezed down to 1-3 ways).
            be = [g for g in alloc.group_ways
                  if tenants.group_priority(g) is Priority.BE]
            pc = [g for g in alloc.group_ways
                  if tenants.group_priority(g) is not Priority.BE]
            be.sort(key=lambda g: -alloc.group_ways[g])
            pc.sort(key=lambda g: -alloc.group_ways[g])
            return be + pc

        guard = 0
        while sum(alloc.group_ways.values()) > limit and guard < 64:
            guard += 1
            took = False
            for group in shrink_candidates():
                if alloc.group_ways[group] > 1:
                    alloc.group_ways[group] -= 1
                    took = True
                    break
            if not took:
                break  # everyone is at one way already

    def _apply(self) -> None:
        if self.io_isolated:
            self._fit_to_pool()
        layout = self.allocator.layout(self._order,
                                       io_isolated=self.io_isolated)
        _apply_group_masks(self.control, layout, self.layout)
        self.layout = layout


class CoreOnlyPolicy(ReactivePolicy):
    """Dynamic allocation ignoring DDIO entirely (Sec. VI-B footnote 4)."""

    def __init__(self, control: ControlPlane,
                 params: "IATParams | None" = None, *,
                 shuffle_seed: "int | None" = None) -> None:
        super().__init__(control, params, io_isolated=False,
                         shuffle_seed=shuffle_seed)


class IOIsoPolicy(ReactivePolicy):
    """Core-only with the DDIO ways excluded from the core pool."""

    def __init__(self, control: ControlPlane,
                 params: "IATParams | None" = None, *,
                 shuffle_seed: "int | None" = None) -> None:
        super().__init__(control, params, io_isolated=True,
                         shuffle_seed=shuffle_seed)
